#ifndef SDMS_COMMON_STATUS_H_
#define SDMS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sdms {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: library code reports failures through
/// `Status` / `StatusOr<T>` return values instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIoError,
  kNotSupported,
  kFailedPrecondition,
  kParseError,
  kTypeError,
  kLockConflict,
  kAborted,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy on the success
/// path (no allocation); carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status LockConflict(std::string msg) {
    return Status(StatusCode::kLockConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsLockConflict() const { return code_ == StatusCode::kLockConflict; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Dereferencing a
/// non-OK StatusOr is a programming error (assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a success value (implicit by design, mirroring
  /// absl::StatusOr, so `return value;` works in functions returning
  /// StatusOr<T>).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sdms

/// Propagates a non-OK Status out of the current function.
#define SDMS_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::sdms::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Evaluates an expression returning StatusOr<T>, propagating errors and
/// otherwise assigning the value to `lhs`.
#define SDMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define SDMS_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define SDMS_ASSIGN_OR_RETURN_CONCAT(a, b) SDMS_ASSIGN_OR_RETURN_CONCAT_(a, b)
#define SDMS_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SDMS_ASSIGN_OR_RETURN_IMPL(                                            \
      SDMS_ASSIGN_OR_RETURN_CONCAT(_statusor_tmp_, __LINE__), lhs, expr)

#endif  // SDMS_COMMON_STATUS_H_
