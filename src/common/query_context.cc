#include "common/query_context.h"

#include <limits>

#include "common/obs/metrics.h"

namespace sdms {

namespace {

thread_local QueryContext* tls_query_context = nullptr;

struct StopMetrics {
  obs::Counter& cancelled = obs::GetCounter("query.cancelled");
  obs::Counter& deadline_expired = obs::GetCounter("query.deadline_expired");
  obs::Counter& budget_exhausted = obs::GetCounter("query.budget_exhausted");
};

StopMetrics& Metrics() {
  static StopMetrics m;
  return m;
}

}  // namespace

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kOk: return "ok";
    case ShardState::kDegraded: return "degraded";
    case ShardState::kFailed: return "failed";
    case ShardState::kSkipped: return "skipped";
  }
  return "unknown";
}

int64_t QueryContext::RemainingMicros() const {
  int64_t dl = deadline_micros();
  if (dl == 0) return std::numeric_limits<int64_t>::max();
  return dl - NowMicros();
}

bool QueryContext::ChargeRows(uint64_t n) {
  uint64_t total = rows_.fetch_add(n, std::memory_order_relaxed) + n;
  uint64_t max = max_rows_.load(std::memory_order_relaxed);
  if (max != 0 && total > max) {
    LatchStop(StopReason::kBudget);
    return false;
  }
  return true;
}

bool QueryContext::ChargeBytes(uint64_t n) {
  uint64_t total = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  uint64_t max = max_result_bytes_.load(std::memory_order_relaxed);
  if (max != 0 && total > max) {
    LatchStop(StopReason::kBudget);
    return false;
  }
  return true;
}

bool QueryContext::ShouldStop() {
  if (stop_reason() != StopReason::kNone) return true;
  if (cancel_token().cancelled()) {
    LatchStop(StopReason::kCancelled);
    return true;
  }
  int64_t dl = deadline_micros();
  if (dl != 0) {
    uint32_t n = poll_calls_.fetch_add(1, std::memory_order_relaxed);
    if (n % kDeadlineCheckStride == 0 && NowMicros() >= dl) {
      LatchStop(StopReason::kDeadline);
      return true;
    }
  }
  return false;
}

Status QueryContext::CheckStatus() {
  if (stop_reason() == StopReason::kNone) {
    if (cancel_token().cancelled()) {
      LatchStop(StopReason::kCancelled);
    } else {
      int64_t dl = deadline_micros();
      if (dl != 0 && NowMicros() >= dl) LatchStop(StopReason::kDeadline);
    }
  }
  return StopStatus();
}

Status QueryContext::StopStatus() const {
  switch (stop_reason()) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kCancelled:
      return Status::Cancelled("query cancelled");
    case StopReason::kDeadline:
      return Status::DeadlineExceeded("query deadline exceeded");
    case StopReason::kBudget:
      return Status::ResourceExhausted("query budget exhausted");
  }
  return Status::Internal("unknown stop reason");
}

void QueryContext::LatchStop(StopReason reason) {
  int expected = static_cast<int>(StopReason::kNone);
  if (!stop_reason_.compare_exchange_strong(expected,
                                            static_cast<int>(reason),
                                            std::memory_order_relaxed)) {
    return;  // already latched by another observer
  }
  switch (reason) {
    case StopReason::kCancelled:
      Metrics().cancelled.Increment();
      break;
    case StopReason::kDeadline:
      Metrics().deadline_expired.Increment();
      break;
    case StopReason::kBudget:
      Metrics().budget_exhausted.Increment();
      break;
    case StopReason::kNone:
      break;
  }
}

QueryContext* QueryContext::Current() { return tls_query_context; }

QueryContext::Scope::Scope(QueryContext* ctx) : prev_(tls_query_context) {
  tls_query_context = ctx;
  obs::ProfileBinding binding;
  if (ctx != nullptr) {
    binding.query_id = ctx->query_id();
    if (ctx->profile() != nullptr) {
      binding.profile = ctx->profile().get();
      binding.stage = binding.profile->root();
    }
  }
  prev_binding_ = obs::ExchangeProfileBinding(binding);
}

QueryContext::Scope::~Scope() {
  obs::ExchangeProfileBinding(prev_binding_);
  tls_query_context = prev_;
}

}  // namespace sdms
