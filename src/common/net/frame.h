#ifndef SDMS_COMMON_NET_FRAME_H_
#define SDMS_COMMON_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sdms::net {

/// The wire framing of the sdms protocol (docs/protocol.md):
///
///   +----------------+--------+---------------------+
///   | u32 length (LE)| u8 type| payload (length - 1) |
///   +----------------+--------+---------------------+
///
/// `length` counts the type byte plus the payload, so the smallest
/// legal frame is length == 1 (a bare type). Frames above the
/// negotiated maximum are a protocol violation: the receiver cannot
/// skip them safely (the length word itself is untrusted), so the
/// session answers a protocol error and closes.

/// Frame types. Values are wire format — append only.
enum class FrameType : uint8_t {
  kHello = 1,   // version handshake, both directions
  kQuery = 2,   // client -> server: VQL + options
  kCancel = 3,  // client -> server: cancel an in-flight request
  kResult = 4,  // server -> client: rows + RunInfo
  kError = 5,   // server -> client: typed Status (+ shed cause)
  kPing = 6,    // client -> server: health probe
  kPong = 7,    // server -> client: health answer
  kGoodbye = 8, // server -> client: drain notice, no new requests
  // Protocol v3: shard serving mode (docs/protocol.md, "Shard
  // messages"). A router drives one sdms_server --shard process per
  // remote shard with these.
  kShardHello = 9,    // router -> shard: collection/shard config
  kShardSearch = 10,  // router -> shard: query + global corpus stats
  kShardHits = 11,    // shard -> router: ranked (key, score) list
  kShardOps = 12,     // router -> shard: sequenced update batch
  kShardInstall = 13, // router -> shard: full shard index image
  kShardStatus = 14,  // shard -> router: applied_seq/doc_count answer
};

const char* FrameTypeName(FrameType t);

/// True for the types a well-formed peer may send at all (unknown
/// types are a protocol violation, answered with an error frame).
bool IsKnownFrameType(uint8_t t);

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Default (and server default) frame-size cap: 16 MiB.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Validates a decoded length word against `max_frame_bytes`.
/// kInvalidArgument on violation (empty or oversized frame).
Status ValidateFrameLength(uint32_t length, uint32_t max_frame_bytes);

/// Encodes one frame (header + payload) into a contiguous buffer.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame parser: feed arbitrary byte chunks, collect
/// complete frames. Once a protocol violation is detected the parser
/// is poisoned — every later Feed returns the same error, mirroring a
/// session that answered a protocol error and closed. This is the
/// exact validation the socket path applies, factored out so fuzz
/// tests can drive it with arbitrary corpora without sockets.
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes `bytes`, appending every completed frame to `out`.
  /// Partial frames are buffered for the next Feed.
  Status Feed(std::string_view bytes, std::vector<Frame>* out);

  /// Bytes buffered toward an incomplete frame (a nonzero value at
  /// connection close means the peer truncated a frame mid-flight).
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  const uint32_t max_frame_bytes_;
  std::string buffer_;
  Status poisoned_ = Status::OK();
};

/// Reads one frame from `fd`. `idle_timeout_ms` bounds the wait for
/// the frame header (an idle connection); `io_timeout_ms` bounds every
/// subsequent chunk (a peer stalling mid-frame). Errors:
///   kNotFound("connection closed") — clean EOF before a header byte;
///   kInvalidArgument               — frame-length violation (answer a
///                                    protocol error, then close);
///   kDeadlineExceeded / kIoError   — timeout / transport failure.
/// Fault point: "net.frame.read" (mid-frame connection loss).
StatusOr<Frame> ReadFrame(int fd, int idle_timeout_ms, int io_timeout_ms,
                          uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes one frame to `fd`; every chunk must progress within
/// `io_timeout_ms` (the slow-client bound). Refuses oversized payloads
/// with kInvalidArgument before writing anything.
/// Fault points: "net.write" (injected failure), "net.write.stall"
/// (latency before the write — a stalled peer).
Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  int io_timeout_ms,
                  uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace sdms::net

#endif  // SDMS_COMMON_NET_FRAME_H_
