#include "common/net/frame.h"

#include <cstring>

#include "common/fault/fault.h"
#include "common/net/socket.h"
#include "common/obs/metrics.h"

namespace sdms::net {

namespace {

struct FrameMetrics {
  obs::Counter& read = obs::GetCounter("net.frames.read");
  obs::Counter& written = obs::GetCounter("net.frames.written");
  obs::Counter& bytes_read = obs::GetCounter("net.bytes.read");
  obs::Counter& bytes_written = obs::GetCounter("net.bytes.written");
  obs::Counter& protocol_errors = obs::GetCounter("net.frames.protocol_errors");
};

FrameMetrics& Metrics() {
  static FrameMetrics* m = new FrameMetrics();
  return *m;
}

uint32_t DecodeU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void EncodeU32Le(uint32_t v, char* p) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

}  // namespace

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kQuery: return "query";
    case FrameType::kCancel: return "cancel";
    case FrameType::kResult: return "result";
    case FrameType::kError: return "error";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kShardHello: return "shard_hello";
    case FrameType::kShardSearch: return "shard_search";
    case FrameType::kShardHits: return "shard_hits";
    case FrameType::kShardOps: return "shard_ops";
    case FrameType::kShardInstall: return "shard_install";
    case FrameType::kShardStatus: return "shard_status";
  }
  return "unknown";
}

bool IsKnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kShardStatus);
}

Status ValidateFrameLength(uint32_t length, uint32_t max_frame_bytes) {
  if (length == 0) {
    Metrics().protocol_errors.Increment();
    return Status::InvalidArgument("empty frame (length 0)");
  }
  if (length > max_frame_bytes) {
    Metrics().protocol_errors.Increment();
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(length) + " bytes exceeds cap " +
        std::to_string(max_frame_bytes));
  }
  return Status::OK();
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.resize(4 + 1 + payload.size());
  EncodeU32Le(static_cast<uint32_t>(payload.size() + 1), out.data());
  out[4] = static_cast<char>(type);
  std::memcpy(out.data() + 5, payload.data(), payload.size());
  return out;
}

Status FrameParser::Feed(std::string_view bytes, std::vector<Frame>* out) {
  if (!poisoned_.ok()) return poisoned_;
  buffer_.append(bytes.data(), bytes.size());
  for (;;) {
    if (buffer_.size() < 4) return Status::OK();
    uint32_t length = DecodeU32Le(buffer_.data());
    if (Status s = ValidateFrameLength(length, max_frame_bytes_); !s.ok()) {
      poisoned_ = s;
      return s;
    }
    if (buffer_.size() < 4 + static_cast<size_t>(length)) return Status::OK();
    Frame frame;
    uint8_t type = static_cast<uint8_t>(buffer_[4]);
    if (!IsKnownFrameType(type)) {
      Metrics().protocol_errors.Increment();
      poisoned_ = Status::InvalidArgument("unknown frame type " +
                                          std::to_string(type));
      return poisoned_;
    }
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(buffer_, 5, length - 1);
    buffer_.erase(0, 4 + static_cast<size_t>(length));
    out->push_back(std::move(frame));
  }
}

StatusOr<Frame> ReadFrame(int fd, int idle_timeout_ms, int io_timeout_ms,
                          uint32_t max_frame_bytes) {
  char header[4];
  SDMS_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header), idle_timeout_ms));
  SDMS_RETURN_IF_ERROR(fault::InjectFault("net.frame.read"));
  uint32_t length = DecodeU32Le(header);
  SDMS_RETURN_IF_ERROR(ValidateFrameLength(length, max_frame_bytes));
  std::string body;
  body.resize(length);
  SDMS_RETURN_IF_ERROR(RecvAll(fd, body.data(), body.size(), io_timeout_ms));
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (!IsKnownFrameType(type)) {
    Metrics().protocol_errors.Increment();
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = body.substr(1);
  Metrics().read.Increment();
  Metrics().bytes_read.Add(4 + length);
  return frame;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  int io_timeout_ms, uint32_t max_frame_bytes) {
  if (payload.size() + 1 > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds cap " + std::to_string(max_frame_bytes));
  }
  SDMS_RETURN_IF_ERROR(fault::InjectFault("net.write.stall"));
  SDMS_RETURN_IF_ERROR(fault::InjectFault("net.write"));
  std::string wire = EncodeFrame(type, payload);
  SDMS_RETURN_IF_ERROR(SendAll(fd, wire.data(), wire.size(), io_timeout_ms));
  Metrics().written.Increment();
  Metrics().bytes_written.Add(wire.size());
  return Status::OK();
}

}  // namespace sdms::net
