#ifndef SDMS_COMMON_NET_SOCKET_H_
#define SDMS_COMMON_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sdms::net {

/// Thin Status-returning wrappers over POSIX TCP sockets. Every
/// blocking operation takes an explicit timeout (milliseconds; < 0
/// waits forever, 0 polls) enforced with poll(2), so no caller can
/// hang on a dead peer — the building block of the server's idle- and
/// slow-client bounds.
///
/// Error taxonomy (callers branch on these):
///   kNotFound("connection closed")  — clean EOF at a message boundary;
///   kIoError                        — syscall failure or mid-message EOF;
///   kDeadlineExceeded               — the timeout elapsed first.

/// Binds and listens on host:port (port 0 picks an ephemeral port).
/// Returns the listening fd (CLOEXEC, SO_REUSEADDR).
StatusOr<int> ListenTcp(const std::string& host, uint16_t port,
                        int backlog = 64);

/// The port a socket is actually bound to (resolves port-0 binds).
StatusOr<uint16_t> LocalPort(int fd);

/// Accepts one connection; kDeadlineExceeded when none arrives within
/// `timeout_ms`. The returned fd has TCP_NODELAY set.
StatusOr<int> AcceptConn(int listen_fd, int timeout_ms);

/// Connects to host:port within `timeout_ms` (non-blocking connect +
/// poll). The returned fd has TCP_NODELAY set.
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port,
                         int timeout_ms);

/// Blocks until `fd` is readable; kDeadlineExceeded on timeout.
Status WaitReadable(int fd, int timeout_ms);

/// Writes all `n` bytes; each *chunk* must make progress within
/// `timeout_ms` or the call fails with kDeadlineExceeded (the
/// slow-client write bound — a stalled peer cannot pin the writer).
Status SendAll(int fd, const void* data, size_t n, int timeout_ms);

/// Reads exactly `n` bytes. EOF before the first byte returns
/// kNotFound("connection closed"); EOF after a partial read is a
/// truncation (kIoError). Each chunk is bounded by `timeout_ms`.
Status RecvAll(int fd, void* data, size_t n, int timeout_ms);

/// True when `s` is the clean-EOF sentinel of RecvAll.
bool IsConnClosed(const Status& s);

/// shutdown(2) both directions (wakes a peer blocked in poll).
void ShutdownFd(int fd);

/// close(2), ignoring errors (idempotent on -1).
void CloseFd(int fd);

}  // namespace sdms::net

#endif  // SDMS_COMMON_NET_SOCKET_H_
