#include "common/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace sdms::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

StatusOr<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* node = host.empty() ? "0.0.0.0" : host.c_str();
  if (inet_pton(AF_INET, node, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  return addr;
}

/// poll(2) for `events`, retrying on EINTR against the original
/// deadline. Returns OK when ready, kDeadlineExceeded on timeout.
Status PollFor(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    int r = poll(&pfd, 1, timeout_ms);
    if (r > 0) {
      // Readable/writable or an error condition the next syscall will
      // surface precisely (POLLERR/POLLHUP still mean "try the op").
      return Status::OK();
    }
    if (r == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

StatusOr<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  SDMS_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind");
    CloseFd(fd);
    return s;
  }
  if (listen(fd, backlog) < 0) {
    Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<int> AcceptConn(int listen_fd, int timeout_ms) {
  SDMS_RETURN_IF_ERROR(PollFor(listen_fd, POLLIN, timeout_ms, "accept"));
  for (;;) {
    int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      SetNoDelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port,
                         int timeout_ms) {
  SDMS_ASSIGN_OR_RETURN(sockaddr_in addr,
                        ResolveV4(host.empty() ? "127.0.0.1" : host, port));
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  // Non-blocking connect so the timeout is enforceable.
  if (Status s = SetNonBlocking(fd, true); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  int r = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (r < 0 && errno != EINPROGRESS) {
    Status s = Errno("connect");
    CloseFd(fd);
    return s;
  }
  if (r < 0) {
    if (Status s = PollFor(fd, POLLOUT, timeout_ms, "connect"); !s.ok()) {
      CloseFd(fd);
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      CloseFd(fd);
      return Status::IoError(std::string("connect: ") +
                             std::strerror(err != 0 ? err : errno));
    }
  }
  if (Status s = SetNonBlocking(fd, false); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  SetNoDelay(fd);
  return fd;
}

Status WaitReadable(int fd, int timeout_ms) {
  return PollFor(fd, POLLIN, timeout_ms, "read");
}

Status SendAll(int fd, const void* data, size_t n, int timeout_ms) {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    SDMS_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms, "write"));
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not a
    // process-killing SIGPIPE.
    ssize_t w = send(fd, p, left, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("send");
    }
    p += w;
    left -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t n, int timeout_ms) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    SDMS_RETURN_IF_ERROR(WaitReadable(fd, timeout_ms));
    ssize_t r = recv(fd, p + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::IoError("connection closed mid-message (" +
                             std::to_string(got) + "/" + std::to_string(n) +
                             " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

bool IsConnClosed(const Status& s) {
  return s.IsNotFound() && s.message() == "connection closed";
}

void ShutdownFd(int fd) {
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

}  // namespace sdms::net
