#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/obs/profile.h"
#include "common/query_context.h"

namespace sdms {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::InPool() const {
  std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t shards = std::min(workers_.size(), n);
  if (shards <= 1 || InPool()) {
    body(0, n);
    return;
  }
  // Workers inherit the caller's QueryContext so fanned-out shards
  // observe the same deadline/cancellation as the issuing thread. The
  // caller's exact profile binding (including its *current stage*) is
  // re-installed on top of the Scope's root-stage default so worker
  // charges land at the fan-out point of the owning query's tree; the
  // issuing thread blocks in f.get() below, so its stage cannot move
  // while workers run.
  QueryContext* ctx = QueryContext::Current();
  obs::ProfileBinding binding = obs::CurrentProfileBinding();
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  size_t chunk = (n + shards - 1) / shards;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    futures.push_back(Submit([&body, ctx, binding, begin, end] {
      QueryContext::Scope scope(ctx);
      obs::ProfileBinding prev = obs::ExchangeProfileBinding(binding);
      body(begin, end);
      obs::ExchangeProfileBinding(prev);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows task exceptions
}

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("SDMS_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return std::min<long>(v, 64);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = [] {
    size_t n = DefaultThreadCount();
    return n <= 1 ? nullptr : new ThreadPool(n);
  }();
  return pool;
}

}  // namespace sdms
