#include "common/fault/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/string_util.h"

namespace sdms::fault {

namespace {

struct FaultMetrics {
  obs::Counter& checks = obs::GetCounter("fault.checks");
  obs::Counter& injected = obs::GetCounter("fault.injected");
};

FaultMetrics& Metrics() {
  static FaultMetrics* m = new FaultMetrics();
  return *m;
}

uint64_t SplitMix64(uint64_t& z) {
  z += 0x9e3779b97f4a7c15ULL;
  uint64_t t = z;
  t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
  t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
  return t ^ (t >> 31);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError: return "io_error";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

FaultRegistry::FaultRegistry() {
  uint64_t seed = 42;
  if (const char* env = std::getenv("SDMS_FAULT_SEED")) {
    char* end = nullptr;
    uint64_t parsed = std::strtoull(env, &end, 10);
    if (end != env) seed = parsed;
  }
  SetSeed(seed);
  if (const char* env = std::getenv("SDMS_FAULTS")) {
    Status s = Configure(env);
    if (!s.ok()) {
      SDMS_LOG(WARN) << "ignoring bad SDMS_FAULTS: " << s.ToString();
    }
  }
}

void FaultRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t z = seed;
  rng_state_[0] = SplitMix64(z);
  rng_state_[1] = SplitMix64(z);
  if (rng_state_[0] == 0 && rng_state_[1] == 0) rng_state_[0] = 1;
}

Status FaultRegistry::Configure(const std::string& spec) {
  for (const std::string& raw_rule : Split(spec, ';')) {
    std::string_view rule_str = Trim(raw_rule);
    if (rule_str.empty()) continue;
    size_t eq = rule_str.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::ParseError("fault rule needs point=kind: " +
                                std::string(rule_str));
    }
    std::string point(Trim(rule_str.substr(0, eq)));
    std::vector<std::string> parts =
        Split(rule_str.substr(eq + 1), ',');
    if (parts.empty() || parts[0].empty()) {
      return Status::ParseError("fault rule without kind: " +
                                std::string(rule_str));
    }
    FaultRule rule;
    std::string kind(Trim(parts[0]));
    if (kind == "io_error") {
      rule.kind = FaultKind::kIoError;
    } else if (kind == "latency") {
      rule.kind = FaultKind::kLatency;
    } else if (kind == "corrupt") {
      rule.kind = FaultKind::kCorrupt;
    } else if (kind == "crash") {
      rule.kind = FaultKind::kCrash;
    } else {
      return Status::ParseError("unknown fault kind: " + kind);
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      std::string_view param = Trim(parts[i]);
      size_t peq = param.find('=');
      if (peq == std::string_view::npos) {
        return Status::ParseError("fault param needs key=value: " +
                                  std::string(param));
      }
      std::string key(param.substr(0, peq));
      std::string value(param.substr(peq + 1));
      try {
        if (key == "p") {
          rule.probability = std::stod(value);
          if (rule.probability < 0.0 || rule.probability > 1.0) {
            return Status::ParseError("fault probability out of [0,1]: " +
                                      value);
          }
        } else if (key == "n") {
          rule.max_fires = std::stoull(value);
        } else if (key == "after") {
          rule.skip = std::stoull(value);
        } else if (key == "us") {
          rule.latency_micros = std::stoull(value);
        } else {
          return Status::ParseError("unknown fault param: " + key);
        }
      } catch (...) {
        return Status::ParseError("bad fault param value: " +
                                  std::string(param));
      }
    }
    Arm(point, rule);
  }
  return Status::OK();
}

void FaultRegistry::Arm(const std::string& point, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[point].push_back(ArmedRule{rule, 0, 0});
  enabled_.store(true, std::memory_order_relaxed);
  SDMS_LOG(DEBUG) << "fault armed: " << point << "="
                  << FaultKindName(rule.kind) << " p=" << rule.probability;
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.erase(point);
  if (rules_.empty()) enabled_.store(false, std::memory_order_relaxed);
}

void FaultRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultRegistry::Fire(ArmedRule& armed) {
  ++armed.checks;
  Metrics().checks.Increment();
  if (armed.checks <= armed.rule.skip) return false;
  if (armed.rule.max_fires > 0 && armed.fires >= armed.rule.max_fires) {
    return false;
  }
  if (armed.rule.probability < 1.0) {
    // xorshift128+ draw under the registry mutex (callers hold it).
    uint64_t s1 = rng_state_[0];
    const uint64_t s0 = rng_state_[1];
    rng_state_[0] = s0;
    s1 ^= s1 << 23;
    rng_state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    double u = static_cast<double>((rng_state_[1] + s0) >> 11) *
               (1.0 / 9007199254740992.0);
    if (u >= armed.rule.probability) return false;
  }
  ++armed.fires;
  Metrics().injected.Increment();
  return true;
}

Status FaultRegistry::Check(const std::string& point) {
  uint64_t sleep_micros = 0;
  Status result = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rules_.find(point);
    if (it == rules_.end()) return Status::OK();
    for (ArmedRule& armed : it->second) {
      if (armed.rule.kind == FaultKind::kCorrupt) continue;
      if (!Fire(armed)) continue;
      switch (armed.rule.kind) {
        case FaultKind::kLatency:
          sleep_micros += armed.rule.latency_micros;
          break;
        case FaultKind::kIoError:
          result = Status::IoError("injected fault at " + point);
          break;
        case FaultKind::kCrash:
          result = Status::Aborted("injected crash at " + point);
          break;
        case FaultKind::kCorrupt:
          break;
      }
      if (!result.ok()) break;
    }
  }
  // Sleep outside the lock so latency faults don't serialize threads.
  if (sleep_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
  }
  if (!result.ok()) {
    SDMS_LOG(DEBUG) << "fault fired at " << point << ": " << result.ToString();
  }
  return result;
}

bool FaultRegistry::ShouldCorrupt(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(point);
  if (it == rules_.end()) return false;
  bool corrupt = false;
  for (ArmedRule& armed : it->second) {
    if (armed.rule.kind != FaultKind::kCorrupt) continue;
    if (Fire(armed)) corrupt = true;
  }
  return corrupt;
}

uint64_t FaultRegistry::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(point);
  if (it == rules_.end()) return 0;
  uint64_t total = 0;
  for (const ArmedRule& armed : it->second) total += armed.fires;
  return total;
}

uint64_t FaultRegistry::checks(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(point);
  if (it == rules_.end()) return 0;
  uint64_t total = 0;
  for (const ArmedRule& armed : it->second) total += armed.checks;
  return total;
}

void CorruptInPlace(std::string& data) {
  if (data.empty()) return;
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
}

}  // namespace sdms::fault
