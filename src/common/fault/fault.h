#ifndef SDMS_COMMON_FAULT_FAULT_H_
#define SDMS_COMMON_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace sdms::fault {

/// What an armed fault does when it fires at an injection point:
///   kIoError — the point returns Status::IoError;
///   kLatency — the point sleeps `latency_micros`, then proceeds;
///   kCorrupt — the point's data is corrupted (one byte flipped) but
///              the operation "succeeds", exercising checksum paths;
///   kCrash   — the point returns Status::Aborted and the call site
///              stops *without cleanup*, simulating process death at
///              exactly that instruction (e.g. between writing a temp
///              file and renaming it into place).
enum class FaultKind { kIoError, kLatency, kCorrupt, kCrash };

const char* FaultKindName(FaultKind kind);

/// One armed fault at one injection point.
struct FaultRule {
  FaultKind kind = FaultKind::kIoError;
  /// Chance of firing per check, in [0, 1].
  double probability = 1.0;
  /// Fires at most this many times; 0 = unlimited.
  uint64_t max_fires = 0;
  /// The first `skip` checks never fire (deterministic positioning of
  /// a fault "the Nth time this point is reached").
  uint64_t skip = 0;
  /// Sleep duration for kLatency.
  uint64_t latency_micros = 1000;
};

/// Process-wide registry of armed faults, keyed by injection-point
/// name (e.g. "coupling.irs_call", "file.atomic_write.before_rename").
/// Fault draws come from one seeded PRNG, so a given (spec, seed,
/// workload) triple reproduces the exact same failure sequence.
///
/// Configuration: programmatically via Arm()/Configure(), or from the
/// environment — `SDMS_FAULTS` holds a spec string (parsed on first
/// use), `SDMS_FAULT_SEED` the PRNG seed. Spec syntax (see
/// docs/robustness.md):
///
///   spec  := rule (';' rule)*
///   rule  := point '=' kind (',' param)*
///   kind  := 'io_error' | 'latency' | 'corrupt' | 'crash'
///   param := 'p=' float | 'n=' int | 'after=' int | 'us=' int
///
/// e.g. SDMS_FAULTS="coupling.irs_call=io_error,p=0.3;wal.sync=latency,us=2000"
///
/// Thread safety: all methods are internally synchronized; `enabled()`
/// is one relaxed atomic load so un-instrumented runs pay nothing.
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Parses a spec string and arms every rule in it (additive).
  Status Configure(const std::string& spec);

  void Arm(const std::string& point, FaultRule rule);
  void Disarm(const std::string& point);
  void Clear();
  void SetSeed(uint64_t seed);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Evaluates the rules armed at `point`: kLatency sleeps, kIoError /
  /// kCrash return their non-OK status; kCorrupt rules are ignored
  /// here (see ShouldCorrupt).
  Status Check(const std::string& point);

  /// True when a kCorrupt rule at `point` fires; the caller is
  /// expected to corrupt its payload (CorruptInPlace).
  bool ShouldCorrupt(const std::string& point);

  /// Times any rule at `point` has fired / been evaluated.
  uint64_t fires(const std::string& point) const;
  uint64_t checks(const std::string& point) const;

 private:
  FaultRegistry();

  struct ArmedRule {
    FaultRule rule;
    uint64_t checks = 0;
    uint64_t fires = 0;
  };

  /// Returns the kind fired, if any, advancing per-rule counters.
  bool Fire(ArmedRule& armed);

  mutable std::mutex mu_;
  std::map<std::string, std::vector<ArmedRule>> rules_;
  std::atomic<bool> enabled_{false};
  uint64_t rng_state_[2];
};

/// Flips one byte near the middle of `data` (no-op when empty) — the
/// canonical corruption applied when a kCorrupt fault fires.
void CorruptInPlace(std::string& data);

/// Fast-path injection check: a single relaxed load when no faults are
/// armed. Call sites do `SDMS_RETURN_IF_ERROR(fault::InjectFault("x"))`.
inline Status InjectFault(const char* point) {
  FaultRegistry& r = FaultRegistry::Instance();
  if (!r.enabled()) return Status::OK();
  return r.Check(point);
}

inline bool InjectCorrupt(const char* point) {
  FaultRegistry& r = FaultRegistry::Instance();
  if (!r.enabled()) return false;
  return r.ShouldCorrupt(point);
}

}  // namespace sdms::fault

#endif  // SDMS_COMMON_FAULT_FAULT_H_
