#include "common/status.h"

namespace sdms {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kLockConflict:
      return "LockConflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sdms
