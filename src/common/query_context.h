#ifndef SDMS_COMMON_QUERY_CONTEXT_H_
#define SDMS_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/obs/profile.h"
#include "common/status.h"

namespace sdms {

/// Outcome of one shard of a fan-out IRS search.
enum class ShardState : uint8_t {
  kOk = 0,        // answered on the first guarded attempt
  kDegraded = 1,  // answered, but only via the hedged re-issue
  kFailed = 2,    // no answer (fault, deadline, corrupt result)
  kSkipped = 3,   // not attempted — circuit breaker open
};

const char* ShardStateName(ShardState state);

/// Per-shard diagnostics of a fan-out search, carried from the coupling
/// through RunInfo and the wire protocol to the client: when a query
/// degrades, the caller learns *which* shard failed and why.
struct ShardStatusEntry {
  std::string collection;
  uint32_t shard = 0;
  ShardState state = ShardState::kOk;
  /// Failure detail (status string); empty when the shard was healthy.
  std::string detail;
  /// Wall time of the shard's search, including guard retries.
  int64_t micros = 0;
};

/// A cooperative cancellation flag. Cancel() may be called from any
/// thread (it is a single atomic store, so it is also safe from a
/// signal handler); workers poll cancelled() at loop boundaries.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query execution context: deadline, cancellation, and row/byte
/// budgets, threaded cooperatively through the whole read path (VQL
/// executor -> coupling -> IRS kernels). A context is installed for
/// the current thread with QueryContext::Scope; deep code reaches it
/// through QueryContext::Current() so no signature has to change.
///
/// All state is atomic: ThreadPool::ParallelFor propagates the
/// installing thread's context into its workers, which then observe
/// deadline/cancellation concurrently.
///
/// The stop decision is *sticky*: once a deadline expiry, cancellation
/// or budget exhaustion has been observed, every later ShouldStop() /
/// CheckStatus() reports it, and the corresponding obs counter
/// (query.deadline_expired / query.cancelled / query.budget_exhausted)
/// is bumped exactly once per context.
class QueryContext {
 public:
  enum class StopReason : int { kNone = 0, kCancelled, kDeadline, kBudget };

  QueryContext() : query_id_(obs::NextQueryId()) {}
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // --- Identity / profiling -----------------------------------------------

  /// Process-unique id (never 0); stamped into log lines and trace
  /// spans emitted while this context is installed.
  uint64_t query_id() const { return query_id_; }

  /// Attaches a profile; while this context is installed, charges from
  /// ProfileCount / ProfileStageScope land in it (null detaches).
  void set_profile(std::shared_ptr<obs::QueryProfile> profile) {
    profile_ = std::move(profile);
  }
  const std::shared_ptr<obs::QueryProfile>& profile() const {
    return profile_;
  }

  /// Microseconds on the steady clock (the time base of deadlines).
  static int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // --- Deadline -----------------------------------------------------------

  /// Absolute deadline in steady-clock micros; 0 clears it.
  void set_deadline_micros(int64_t deadline) {
    deadline_micros_.store(deadline, std::memory_order_relaxed);
  }
  /// Deadline `ms` milliseconds from now; ms <= 0 clears it.
  void SetDeadlineAfterMs(int64_t ms) {
    set_deadline_micros(ms > 0 ? NowMicros() + ms * 1000 : 0);
  }
  int64_t deadline_micros() const {
    return deadline_micros_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const { return deadline_micros() != 0; }

  /// Micros until the deadline (negative when past it). A context
  /// without a deadline reports a very large value.
  int64_t RemainingMicros() const;

  // --- Cancellation -------------------------------------------------------

  /// Attaches an external token (e.g. the shell's SIGINT token). The
  /// token must outlive the context. Null restores the internal one.
  void set_cancel_token(CancelToken* token) {
    external_cancel_.store(token, std::memory_order_release);
  }
  CancelToken& cancel_token() {
    CancelToken* t = external_cancel_.load(std::memory_order_acquire);
    return t != nullptr ? *t : internal_cancel_;
  }
  void RequestCancel() { cancel_token().Cancel(); }

  // --- Budgets ------------------------------------------------------------

  /// 0 = unbounded.
  void set_max_rows(uint64_t n) {
    max_rows_.store(n, std::memory_order_relaxed);
  }
  void set_max_result_bytes(uint64_t n) {
    max_result_bytes_.store(n, std::memory_order_relaxed);
  }

  /// Charges `n` rows/bytes against the budget; returns false (and
  /// latches StopReason::kBudget) once the budget is exceeded.
  bool ChargeRows(uint64_t n);
  bool ChargeBytes(uint64_t n);

  uint64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  // --- Degradation --------------------------------------------------------

  /// When set, the VQL executor converts a deadline/budget stop into a
  /// partial result flagged QueryResult::degraded instead of an error
  /// (mixed queries opt in; explicit cancellation always errors).
  void set_allow_partial(bool v) {
    allow_partial_.store(v, std::memory_order_relaxed);
  }
  bool allow_partial() const {
    return allow_partial_.load(std::memory_order_relaxed);
  }

  /// Marks the query's answer as degraded (partial rows, stale buffer
  /// serve, null-score fallback, ...).
  void NoteDegraded() { degraded_.store(true, std::memory_order_relaxed); }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  // --- Shard status -------------------------------------------------------

  /// Records the per-shard outcomes of one fan-out IRS search (appended
  /// — a query may touch several collections). Thread-safe.
  void AddShardStatus(std::vector<ShardStatusEntry> entries) {
    if (entries.empty()) return;
    std::lock_guard<std::mutex> lock(shard_status_mu_);
    for (auto& e : entries) shard_status_.push_back(std::move(e));
  }

  /// Moves the accumulated shard statuses out (RunInfo assembly).
  std::vector<ShardStatusEntry> TakeShardStatus() {
    std::lock_guard<std::mutex> lock(shard_status_mu_);
    return std::move(shard_status_);
  }

  // --- Polling ------------------------------------------------------------

  /// Cheap cooperative check for hot loops: the cancel flag is read on
  /// every call, the clock only every kDeadlineCheckStride calls (and
  /// on the first). Returns true once the query must stop.
  bool ShouldStop();

  /// Authoritative check for call boundaries: always reads the clock.
  /// Returns OK, or the Status matching the (now latched) stop reason:
  /// kCancelled / kDeadlineExceeded / kResourceExhausted.
  Status CheckStatus();

  /// The latched stop reason (kNone while the query may continue).
  StopReason stop_reason() const {
    return static_cast<StopReason>(stop_reason_.load(std::memory_order_relaxed));
  }

  /// The Status equivalent of stop_reason() (OK for kNone).
  Status StopStatus() const;

  // --- Thread-local installation ------------------------------------------

  /// The context installed for this thread, or nullptr.
  static QueryContext* Current();

  /// RAII installation of a context for the current thread. Nests; the
  /// previous context is restored on destruction.
  class Scope {
   public:
    explicit Scope(QueryContext* ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    QueryContext* prev_;
    obs::ProfileBinding prev_binding_;
  };

  /// Clock reads happen once per this many ShouldStop() calls.
  static constexpr uint32_t kDeadlineCheckStride = 64;

 private:
  /// Latches `reason` (first writer wins) and bumps its obs counter.
  void LatchStop(StopReason reason);

  const uint64_t query_id_;
  std::shared_ptr<obs::QueryProfile> profile_;
  std::atomic<int64_t> deadline_micros_{0};
  std::atomic<CancelToken*> external_cancel_{nullptr};
  CancelToken internal_cancel_;
  std::atomic<uint64_t> max_rows_{0};
  std::atomic<uint64_t> max_result_bytes_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<bool> allow_partial_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<int> stop_reason_{static_cast<int>(StopReason::kNone)};
  std::atomic<uint32_t> poll_calls_{0};
  std::mutex shard_status_mu_;
  std::vector<ShardStatusEntry> shard_status_;
};

/// Free-function form of QueryContext::Current()->ShouldStop() for deep
/// kernels: false when no context is installed.
inline bool QueryShouldStop() {
  QueryContext* ctx = QueryContext::Current();
  return ctx != nullptr && ctx->ShouldStop();
}

/// OK when no context is installed or the query may continue, else the
/// stop Status (kCancelled / kDeadlineExceeded / kResourceExhausted).
inline Status CurrentQueryStatus() {
  QueryContext* ctx = QueryContext::Current();
  return ctx != nullptr ? ctx->CheckStatus() : Status::OK();
}

}  // namespace sdms

#endif  // SDMS_COMMON_QUERY_CONTEXT_H_
