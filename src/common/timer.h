#ifndef SDMS_COMMON_TIMER_H_
#define SDMS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sdms {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds as a double.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdms

#endif  // SDMS_COMMON_TIMER_H_
