#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace sdms {

namespace fs = std::filesystem;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, got);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read failed for " + path);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = (std::fflush(f) == 0) && ok;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed for " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

StatusOr<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("file_size " + path + ": " + ec.message());
  return static_cast<int64_t>(size);
}

}  // namespace sdms
