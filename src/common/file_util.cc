#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/fault/fault.h"
#include "common/string_util.h"

namespace sdms {

namespace fs = std::filesystem;

namespace {

/// CRC-32 (zlib polynomial, reflected), table-driven.
uint32_t Crc32Of(std::string_view data) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (unsigned char ch : data) {
    crc = table[(crc ^ ch) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

constexpr char kEnvelopeMagic[] = "SDMSCHK1\n";

}  // namespace

bool FsyncEnabled() {
  static const bool enabled = std::getenv("SDMS_NO_FSYNC") == nullptr;
  return enabled;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("file.read"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, got);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read failed for " + path);
  if (fault::InjectCorrupt("file.read")) fault::CorruptInPlace(out);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("file.atomic_write"));
  std::string corrupted;
  if (fault::InjectCorrupt("file.atomic_write")) {
    corrupted.assign(data);
    fault::CorruptInPlace(corrupted);
    data = corrupted;
  }
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = (std::fflush(f) == 0) && ok;
  // The rename is only atomic-durable if the temp file's contents hit
  // disk before it moves into place.
  if (ok && FsyncEnabled()) ok = ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed for " + tmp);
  }
  // Simulated process death between writing the temp file and the
  // rename: the destination is untouched, the orphan .tmp remains.
  SDMS_RETURN_IF_ERROR(fault::InjectFault("file.atomic_write.before_rename"));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  // Simulated process death after the rename: the new file is in
  // place even though the writer never observed success.
  SDMS_RETURN_IF_ERROR(fault::InjectFault("file.atomic_write.after_rename"));
  return SyncParentDir(path);
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

StatusOr<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("file_size " + path + ": " + ec.message());
  return static_cast<int64_t>(size);
}

StatusOr<size_t> RemoveMatchingFiles(const std::string& dir,
                                     const std::string& prefix,
                                     const std::string& suffix) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return static_cast<size_t>(0);  // Missing dir: nothing to sweep.
  size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    std::string name = entry.path().filename().string();
    if (!prefix.empty() && !StartsWith(name, prefix)) continue;
    if (!suffix.empty() &&
        (name.size() < suffix.size() ||
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
             0)) {
      continue;
    }
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

Status SyncParentDir(const std::string& path) {
  if (!FsyncEnabled()) return Status::OK();
  fs::path dir = fs::path(path).parent_path();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir " + dir.string() + ": " +
                           std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync dir " + dir.string() + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string WithChecksumEnvelope(std::string_view payload) {
  std::string out = kEnvelopeMagic;
  out += StrFormat("%08x", Crc32Of(payload));
  out += "\n" + std::to_string(payload.size()) + "\n";
  out.append(payload.data(), payload.size());
  return out;
}

StatusOr<std::string> StripChecksumEnvelope(std::string data) {
  if (!StartsWith(data, kEnvelopeMagic)) return data;  // Legacy format.
  size_t pos = sizeof(kEnvelopeMagic) - 1;
  size_t crc_end = data.find('\n', pos);
  if (crc_end == std::string::npos) {
    return Status::Corruption("checksum envelope: missing CRC line");
  }
  size_t size_end = data.find('\n', crc_end + 1);
  if (size_end == std::string::npos) {
    return Status::Corruption("checksum envelope: missing size line");
  }
  uint32_t crc = 0;
  uint64_t size = 0;
  try {
    crc = static_cast<uint32_t>(
        std::stoul(data.substr(pos, crc_end - pos), nullptr, 16));
    size = std::stoull(data.substr(crc_end + 1, size_end - crc_end - 1));
  } catch (...) {
    return Status::Corruption("checksum envelope: malformed header");
  }
  std::string payload = data.substr(size_end + 1);
  if (payload.size() != size) {
    return Status::Corruption(
        "checksum envelope: size mismatch (torn file?): expected " +
        std::to_string(size) + ", got " + std::to_string(payload.size()));
  }
  if (Crc32Of(payload) != crc) {
    return Status::Corruption("checksum envelope: CRC mismatch");
  }
  return payload;
}

}  // namespace sdms
