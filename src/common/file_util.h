#ifndef SDMS_COMMON_FILE_UTIL_H_
#define SDMS_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sdms {

/// Reads the whole file at `path` into a string.
StatusOr<std::string> ReadFile(const std::string& path);

/// Writes `data` to `path` atomically (write temp + fsync + rename +
/// directory fsync). The temp file is removed on every error path;
/// only an injected crash fault (simulated process death) leaves it
/// behind, which is exactly what crash-recovery tests exercise.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// True if a file or directory exists at `path`.
bool PathExists(const std::string& path);

/// Creates directory `path` (and parents) if missing.
Status MakeDirs(const std::string& path);

/// Removes the file at `path` if present.
Status RemoveFile(const std::string& path);

/// Size in bytes of the file at `path`, or NotFound.
StatusOr<int64_t> FileSize(const std::string& path);

/// Removes every regular file directly in `dir` whose name starts with
/// `prefix` and ends with `suffix` (an empty pattern matches
/// anything). Returns the number removed; a missing directory removes
/// nothing. Used by crash recovery to sweep temp/exchange files a
/// failed run left behind.
StatusOr<size_t> RemoveMatchingFiles(const std::string& dir,
                                     const std::string& prefix,
                                     const std::string& suffix);

/// fsyncs the directory containing `path` so a completed rename is
/// durable. No-op when fsync is disabled (SDMS_NO_FSYNC).
Status SyncParentDir(const std::string& path);

/// False when SDMS_NO_FSYNC is set (bench escape hatch): fsync calls
/// in WriteFileAtomic and the WAL are skipped.
bool FsyncEnabled();

/// Wraps `payload` in a checksum envelope:
///   "SDMSCHK1\n<crc32 hex>\n<payload size>\n" + payload
/// so torn or bit-flipped files are detected as kCorruption instead of
/// being parsed as silent bad state.
std::string WithChecksumEnvelope(std::string_view payload);

/// Verifies and strips a checksum envelope, returning the payload;
/// kCorruption on size or CRC mismatch. Data without the envelope
/// magic is returned unchanged (legacy files).
StatusOr<std::string> StripChecksumEnvelope(std::string data);

}  // namespace sdms

#endif  // SDMS_COMMON_FILE_UTIL_H_
