#ifndef SDMS_COMMON_FILE_UTIL_H_
#define SDMS_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace sdms {

/// Reads the whole file at `path` into a string.
StatusOr<std::string> ReadFile(const std::string& path);

/// Writes `data` to `path` atomically (write temp + rename).
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// True if a file or directory exists at `path`.
bool PathExists(const std::string& path);

/// Creates directory `path` (and parents) if missing.
Status MakeDirs(const std::string& path);

/// Removes the file at `path` if present.
Status RemoveFile(const std::string& path);

/// Size in bytes of the file at `path`, or NotFound.
StatusOr<int64_t> FileSize(const std::string& path);

}  // namespace sdms

#endif  // SDMS_COMMON_FILE_UTIL_H_
