#ifndef SDMS_COMMON_OBS_TRACE_H_
#define SDMS_COMMON_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sdms::obs {

/// One completed span, Chrome trace_event "X" (complete) semantics.
struct TraceEvent {
  const char* name = "";
  /// Microseconds since the process-wide trace epoch.
  int64_t start_us = 0;
  int64_t duration_us = 0;
  /// Nesting depth at the time the span was open (0 = top level).
  int depth = 0;
  uint32_t tid = 0;
  /// Id of the query the span belonged to; 0 outside any query.
  uint64_t query_id = 0;
};

/// Global tracing switch. Spans constructed while tracing is disabled
/// cost two relaxed atomic loads and record nothing.
bool TracingEnabled();
void EnableTracing(bool enabled);

/// Per-thread collector of completed spans. Collectors register
/// themselves in a global list on first use; Export/Clear walk that
/// list, so spans from every thread end up in one trace.
class TraceCollector {
 public:
  /// The calling thread's collector (created on first use).
  static TraceCollector& ForCurrentThread();

  void Record(const TraceEvent& event);

  /// Snapshot of this thread's events.
  std::vector<TraceEvent> events() const;

  int depth() const { return depth_; }
  void PushDepth() { ++depth_; }
  void PopDepth() { --depth_; }

  /// All threads' events merged, ordered by start time.
  static std::vector<TraceEvent> GatherAll();

  /// Chrome about://tracing (trace_event) JSON for all threads.
  static std::string ExportChromeTrace();

  /// Drops recorded events on every thread's collector.
  static void ClearAll();

 private:
  TraceCollector();

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  int depth_ = 0;
  uint32_t tid_ = 0;
};

/// RAII span: times a scope and records it into the current thread's
/// collector. `name` must outlive the span (string literals).
///
///   void QueryEngine::Run(...) {
///     TraceSpan span("vql.run");
///     ...
///   }
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Elapsed microseconds so far (usable before destruction).
  int64_t ElapsedMicros() const;

 private:
  const char* name_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
  int64_t start_us_ = 0;
};

}  // namespace sdms::obs

#endif  // SDMS_COMMON_OBS_TRACE_H_
