#ifndef SDMS_COMMON_OBS_METRICS_H_
#define SDMS_COMMON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sdms::obs {

/// A monotonically increasing, thread-safe counter. Registry-owned
/// counters aggregate across the whole process; components may also
/// embed unnamed Counter members for per-instance tallies.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Test-only: counters are monotone in production.
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A thread-safe gauge: a value that can go up and down (queue depths,
/// buffer occupancy, open handles).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket exponential histogram: bucket i covers
/// (base * growth^(i-1), base * growth^i]; the last bucket is
/// unbounded. Records are lock-free; percentile estimation linearly
/// interpolates within the containing bucket, so a p-quantile of a
/// roughly uniform-in-bucket distribution is accurate to a few percent.
/// The default layout (base 1, growth 2, 30 buckets) covers 1 µs to
/// ~9 minutes when fed microsecond latencies.
/// Bucket layout for Histogram. Namespace-scope (not nested) so it is
/// complete where Histogram's own default arguments need it.
struct HistogramOptions {
  double base = 1.0;
  double growth = 2.0;
  size_t buckets = 30;
};

class Histogram {
 public:
  using Options = HistogramOptions;

  explicit Histogram(const Options& options = Options());
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;

  /// Estimated value at percentile `p` in [0, 100]. Returns 0 when
  /// empty; p100 returns the exact observed maximum.
  double Percentile(double p) const;

  /// Test-only: zeroes all buckets and aggregates.
  void ResetForTest();

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  /// Upper bounds, ascending; buckets_.size() == bounds_.size() + 1
  /// (the final bucket is the overflow bucket).
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide metric registry. Names follow the convention
/// `layer.component.metric` (docs/observability.md); Get* creates on
/// first use and returns a stable reference thereafter, so callers may
/// cache `static obs::Counter& c = GetCounter("...")` in hot paths.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const Histogram::Options& options = {});

  /// Human-readable dump, one metric per line, sorted by name.
  std::string DumpText() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string DumpJson() const;

  /// Test-only: zeroes every registered metric in place. References
  /// previously returned by Get* stay valid (instrumented code caches
  /// them), so this must not run while instrumented code records.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands for the common registration pattern.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name,
                        const Histogram::Options& options = {});

}  // namespace sdms::obs

#endif  // SDMS_COMMON_OBS_METRICS_H_
