#include "common/obs/profile.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/obs/metrics.h"
#include "common/string_util.h"

namespace sdms::obs {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local ProfileBinding tls_binding;

std::atomic<uint64_t> g_next_query_id{1};

std::atomic<bool> g_profiling_enabled{false};

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

obs::Counter& SlowQueriesRecorded() {
  static obs::Counter& c = obs::GetCounter("obs.slow_query.recorded");
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryProfile
// ---------------------------------------------------------------------------

QueryProfile::QueryProfile(uint64_t query_id, std::string label)
    : query_id_(query_id), epoch_us_(SteadyNowMicros()) {
  root_.name = std::move(label);
  root_.invocations = 1;
}

QueryProfile::Stage* QueryProfile::BeginStage(Stage* parent,
                                              const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (parent == nullptr) parent = &root_;
  for (auto& child : parent->children) {
    if (child->name == name) {
      ++child->invocations;
      return child.get();
    }
  }
  auto stage = std::make_unique<Stage>();
  stage->name = name;
  stage->start_us = SteadyNowMicros() - epoch_us_;
  stage->invocations = 1;
  stage->parent = parent;
  Stage* raw = stage.get();
  parent->children.push_back(std::move(stage));
  return raw;
}

void QueryProfile::EndStage(Stage* stage, int64_t elapsed_us) {
  if (stage == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  stage->total_us += elapsed_us;
}

void QueryProfile::Count(Stage* stage, const std::string& name,
                         uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stage == nullptr) stage = &root_;
  stage->counters[name] += delta;
}

void QueryProfile::Annotate(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  annotations_[key] = value;
}

void QueryProfile::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  total_us_ = SteadyNowMicros() - epoch_us_;
  root_.total_us = total_us_;
}

int64_t QueryProfile::total_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_ ? total_us_ : SteadyNowMicros() - epoch_us_;
}

uint64_t QueryProfile::SumCounterLocked(const Stage& s,
                                        const std::string& name) const {
  uint64_t total = 0;
  auto it = s.counters.find(name);
  if (it != s.counters.end()) total += it->second;
  for (const auto& child : s.children) {
    total += SumCounterLocked(*child, name);
  }
  return total;
}

uint64_t QueryProfile::TotalCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SumCounterLocked(root_, name);
}

namespace {

void RenderStage(const QueryProfile::Stage& s, int depth, std::string& out) {
  out += std::string(static_cast<size_t>(depth) * 2, ' ');
  out += StrFormat("%s  %lld us", s.name.c_str(),
                   static_cast<long long>(s.total_us));
  if (s.invocations > 1) {
    out += StrFormat(" (x%llu)", static_cast<unsigned long long>(s.invocations));
  }
  if (!s.counters.empty()) {
    out += "  [";
    bool first = true;
    for (const auto& [name, v] : s.counters) {
      if (!first) out += " ";
      first = false;
      out += StrFormat("%s=%llu", name.c_str(),
                       static_cast<unsigned long long>(v));
    }
    out += "]";
  }
  out += "\n";
  for (const auto& child : s.children) RenderStage(*child, depth + 1, out);
}

void StageJson(const QueryProfile::Stage& s, std::string& out) {
  out += StrFormat(
      "{\"name\":\"%s\",\"total_us\":%lld,\"invocations\":%llu",
      EscapeJson(s.name).c_str(), static_cast<long long>(s.total_us),
      static_cast<unsigned long long>(s.invocations));
  if (!s.counters.empty()) {
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : s.counters) {
      if (!first) out += ",";
      first = false;
      out += StrFormat("\"%s\":%llu", EscapeJson(name).c_str(),
                       static_cast<unsigned long long>(v));
    }
    out += "}";
  }
  if (!s.children.empty()) {
    out += ",\"stages\":[";
    bool first = true;
    for (const auto& child : s.children) {
      if (!first) out += ",";
      first = false;
      StageJson(*child, out);
    }
    out += "]";
  }
  out += "}";
}

}  // namespace

std::string QueryProfile::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat("query %llu: %lld us total\n",
                              static_cast<unsigned long long>(query_id_),
                              static_cast<long long>(root_.total_us));
  for (const auto& [key, value] : annotations_) {
    out += "  " + key + ": " + value + "\n";
  }
  for (const auto& child : root_.children) RenderStage(*child, 1, out);
  if (!root_.counters.empty()) {
    out += "  (unscoped counters) [";
    bool first = true;
    for (const auto& [name, v] : root_.counters) {
      if (!first) out += " ";
      first = false;
      out += StrFormat("%s=%llu", name.c_str(),
                       static_cast<unsigned long long>(v));
    }
    out += "]\n";
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat("{\"query_id\":%llu,\"total_us\":%lld",
                              static_cast<unsigned long long>(query_id_),
                              static_cast<long long>(root_.total_us));
  if (!annotations_.empty()) {
    out += ",\"annotations\":{";
    bool first = true;
    for (const auto& [key, value] : annotations_) {
      if (!first) out += ",";
      first = false;
      out += StrFormat("\"%s\":\"%s\"", EscapeJson(key).c_str(),
                       EscapeJson(value).c_str());
    }
    out += "}";
  }
  out += ",\"profile\":";
  StageJson(root_, out);
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// Thread-local binding
// ---------------------------------------------------------------------------

uint64_t NextQueryId() {
  return g_next_query_id.fetch_add(1, std::memory_order_relaxed);
}

void SetProfilingEnabled(bool enabled) {
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

bool ProfilingEnabled() {
  return g_profiling_enabled.load(std::memory_order_relaxed);
}

ProfileBinding CurrentProfileBinding() { return tls_binding; }

uint64_t CurrentQueryId() { return tls_binding.query_id; }

ProfileBinding ExchangeProfileBinding(const ProfileBinding& b) {
  ProfileBinding prev = tls_binding;
  tls_binding = b;
  return prev;
}

ProfileStageScope::ProfileStageScope(const char* name) {
  profile_ = tls_binding.profile;
  if (profile_ == nullptr) return;
  prev_stage_ = tls_binding.stage;
  opened_ = profile_->BeginStage(prev_stage_, name);
  tls_binding.stage = opened_;
  start_us_ = SteadyNowMicros();
}

ProfileStageScope::~ProfileStageScope() {
  if (profile_ == nullptr) return;
  profile_->EndStage(opened_, SteadyNowMicros() - start_us_);
  tls_binding.stage = prev_stage_;
}

void ProfileCount(const char* name, uint64_t delta) {
  if (tls_binding.profile == nullptr) return;
  tls_binding.profile->Count(tls_binding.stage, name, delta);
}

void ProfileAnnotate(const char* key, const std::string& value) {
  if (tls_binding.profile == nullptr) return;
  tls_binding.profile->Annotate(key, value);
}

// ---------------------------------------------------------------------------
// SlowQueryLog
// ---------------------------------------------------------------------------

SlowQueryLog::SlowQueryLog() : path_("slow_queries.jsonl") {
  if (const char* env = std::getenv("SDMS_SLOW_QUERY_MS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) threshold_ms_ = v;
  }
  if (const char* env = std::getenv("SDMS_SLOW_QUERY_LOG")) {
    if (*env != '\0') path_ = env;
  }
}

SlowQueryLog& SlowQueryLog::Instance() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::set_threshold_ms(int64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ms_ = ms;
}

int64_t SlowQueryLog::threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_ms_;
}

void SlowQueryLog::set_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
}

std::string SlowQueryLog::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

bool SlowQueryLog::MaybeRecord(uint64_t query_id,
                               const std::string& query_text,
                               int64_t elapsed_us,
                               const QueryProfile* profile) {
  std::lock_guard<std::mutex> lock(mu_);
  if (threshold_ms_ < 0) return false;
  // Fires at exactly the threshold: a query whose elapsed time equals
  // it is already slow.
  if (elapsed_us / 1000 < threshold_ms_) return false;
  std::string line = StrFormat(
      "{\"query_id\":%llu,\"elapsed_us\":%lld,\"query\":\"%s\"",
      static_cast<unsigned long long>(query_id),
      static_cast<long long>(elapsed_us), EscapeJson(query_text).c_str());
  if (profile != nullptr) {
    line += ",\"detail\":" + profile->ToJson();
  }
  line += "}\n";
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return false;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
  ++recorded_;
  SlowQueriesRecorded().Increment();
  return true;
}

uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

}  // namespace sdms::obs
