#include "common/obs/trace.h"

#include <algorithm>

#include "common/obs/profile.h"
#include "common/string_util.h"

namespace sdms::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

/// Trace timestamps are relative to this epoch so they stay small and
/// a single trace file is internally consistent.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

int64_t MicrosSinceEpoch(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(t - TraceEpoch())
      .count();
}

/// Registry of every thread's collector. Collectors are heap-allocated
/// and intentionally leaked (a handful per process) so GatherAll never
/// races thread teardown.
std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<TraceCollector*>& Registry() {
  static std::vector<TraceCollector*>* collectors =
      new std::vector<TraceCollector*>();
  return *collectors;
}

std::atomic<uint32_t> g_next_tid{1};

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool enabled) {
  TraceEpoch();  // Pin the epoch no later than the first enable.
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceCollector::TraceCollector()
    : tid_(g_next_tid.fetch_add(1, std::memory_order_relaxed)) {}

TraceCollector& TraceCollector::ForCurrentThread() {
  thread_local TraceCollector* collector = [] {
    auto* c = new TraceCollector();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    Registry().push_back(c);
    return c;
  }();
  return *collector;
}

void TraceCollector::Record(const TraceEvent& event) {
  TraceEvent e = event;
  e.tid = tid_;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> TraceCollector::GatherAll() {
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (TraceCollector* c : Registry()) {
    std::vector<TraceEvent> events = c->events();
    all.insert(all.end(), events.begin(), events.end());
  }
  // Order by start time; on a microsecond tie an enclosing span (which
  // lasted at least as long and has the smaller depth) sorts first, so
  // parents always precede their children.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.depth < b.depth;
                   });
  return all;
}

std::string TraceCollector::ExportChromeTrace() {
  std::vector<TraceEvent> all = GatherAll();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : all) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
        "\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%d,\"query_id\":%llu}}",
        e.name, static_cast<long long>(e.start_us),
        static_cast<long long>(e.duration_us), e.tid, e.depth,
        static_cast<unsigned long long>(e.query_id));
  }
  out += "]}";
  return out;
}

void TraceCollector::ClearAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (TraceCollector* c : Registry()) {
    std::lock_guard<std::mutex> event_lock(c->mu_);
    c->events_.clear();
  }
}

TraceSpan::TraceSpan(const char* name)
    : name_(name), enabled_(TracingEnabled()) {
  start_ = std::chrono::steady_clock::now();
  if (!enabled_) return;
  start_us_ = MicrosSinceEpoch(start_);
  TraceCollector::ForCurrentThread().PushDepth();
}

TraceSpan::~TraceSpan() {
  if (!enabled_) return;
  TraceCollector& collector = TraceCollector::ForCurrentThread();
  collector.PopDepth();
  TraceEvent e;
  e.name = name_;
  e.start_us = start_us_;
  e.duration_us = ElapsedMicros();
  e.depth = collector.depth();
  e.query_id = CurrentQueryId();
  collector.Record(e);
}

int64_t TraceSpan::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace sdms::obs
