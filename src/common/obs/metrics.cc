#include "common/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace sdms::obs {

namespace {

/// fetch_min/fetch_max for atomic doubles via CAS.
void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Formats a double without trailing-zero noise ("12.5", "3", "0.004").
std::string FmtDouble(double v) {
  std::string s = StrFormat("%.6g", v);
  return s;
}

/// Minimal JSON string escaping (metric names are ASCII identifiers,
/// but stay safe).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const Options& options)
    : buckets_(options.buckets + 1) {
  bounds_.reserve(options.buckets);
  double bound = options.base;
  for (size_t i = 0; i < options.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
}

void Histogram::Record(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  // First record seeds min/max; subsequent ones CAS toward extremes.
  if (prev == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    AtomicMin(min_, v);
    AtomicMax(max_, v);
  }
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(n);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Interpolate within [lo, hi], clamped to the observed extremes
      // so sparse edge buckets don't over- or under-shoot.
      double lo = i == 0 ? 0.0 : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max();
      lo = std::max(lo, min());
      hi = std::min(hi, max());
      if (hi <= lo) return hi;
      double fraction =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + fraction * (hi - lo);
    }
    cum += in_bucket;
  }
  return max();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Histogram::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return *slot;
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%-44s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%-44s %lld\n", name.c_str(),
                     static_cast<long long>(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "%-44s count=%llu mean=%s p50=%s p90=%s p99=%s max=%s\n", name.c_str(),
        static_cast<unsigned long long>(h->count()),
        FmtDouble(h->mean()).c_str(), FmtDouble(h->Percentile(50)).c_str(),
        FmtDouble(h->Percentile(90)).c_str(),
        FmtDouble(h->Percentile(99)).c_str(), FmtDouble(h->max()).c_str());
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + FmtDouble(h->sum());
    out += ",\"mean\":" + FmtDouble(h->mean());
    out += ",\"min\":" + FmtDouble(h->min());
    out += ",\"max\":" + FmtDouble(h->max());
    out += ",\"p50\":" + FmtDouble(h->Percentile(50));
    out += ",\"p90\":" + FmtDouble(h->Percentile(90));
    out += ",\"p99\":" + FmtDouble(h->Percentile(99));
    out += "}";
  }
  out += "}}";
  return out;
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

Counter& GetCounter(const std::string& name) {
  return MetricsRegistry::Instance().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return MetricsRegistry::Instance().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name,
                        const Histogram::Options& options) {
  return MetricsRegistry::Instance().GetHistogram(name, options);
}

}  // namespace sdms::obs
