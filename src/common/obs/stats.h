#ifndef SDMS_COMMON_OBS_STATS_H_
#define SDMS_COMMON_OBS_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"

namespace sdms::obs {

/// Compact latency summary used for the per-strategy histograms:
/// power-of-two microsecond buckets, trivially serializable (unlike
/// obs::Histogram, whose atomics don't persist).
struct LatencyStat {
  static constexpr size_t kBuckets = 32;  // 2^31 us ~ 36 min, plenty
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;
  uint64_t buckets[kBuckets] = {};

  void Record(uint64_t micros);
  /// Estimated value at percentile `p` in [0, 100] (upper bucket bound
  /// interpolation; 0 when empty).
  double Percentile(double p) const;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) /
                                  static_cast<double>(count);
  }
};

/// Process-wide statistics service — the data layer the ROADMAP's
/// cost-based optimizer needs. Maintains:
///   - per-term document-frequency snapshots per collection (recorded
///     from the inverted index whenever a query's terms are searched),
///   - per-collection document counts and per-class extent
///     cardinalities,
///   - result-buffer hit-rate EWMAs per collection,
///   - per-strategy latency histograms keyed by query shape
///     (e.g. "b1.c1" = one binding, one content conjunct).
/// Persisted to a stats file on checkpoint (Coupling::PersistIrs) and
/// reloaded at startup, so the optimizer starts warm after a restart.
class StatisticsService {
 public:
  static StatisticsService& Instance();

  // --- Term / collection statistics ---------------------------------------

  /// Snapshot of term `term`'s document frequency in `collection`
  /// (later snapshots overwrite — the index is ground truth).
  void RecordTermDf(const std::string& collection, const std::string& term,
                    uint64_t df);
  std::optional<uint64_t> TermDf(const std::string& collection,
                                 const std::string& term) const;
  /// Number of term-DF snapshots held for `collection`.
  size_t TermCount(const std::string& collection) const;

  void RecordCollectionDocCount(const std::string& collection, uint64_t docs);
  uint64_t CollectionDocCount(const std::string& collection) const;

  void RecordExtentCardinality(const std::string& class_name, uint64_t size);
  uint64_t ExtentCardinality(const std::string& class_name) const;

  // --- Result-buffer hit rate ---------------------------------------------

  /// Folds one lookup into the collection's hit-rate EWMA (alpha 0.05;
  /// the first observation seeds the average).
  void RecordBufferLookup(const std::string& collection, bool hit);
  /// EWMA hit rate in [0, 1]; negative when no lookup was recorded.
  double BufferHitRate(const std::string& collection) const;

  // --- Postings buffer-pool hit rate ---------------------------------------

  /// Folds one buffer-pool page fetch into the collection's pool
  /// hit-rate EWMA (same smoothing as the result buffer). This is the
  /// I/O-cost signal the cost-based optimizer prices IRS access with:
  /// a cold pool means a content conjunct costs real page reads.
  void RecordPoolLookup(const std::string& collection, bool hit);
  /// EWMA pool hit rate in [0, 1]; negative when no fetch was recorded.
  double PoolHitRate(const std::string& collection) const;

  // --- Strategy latencies --------------------------------------------------

  /// Records one mixed-query run: `shape` describes the query (binding
  /// and content-conjunct counts), `strategy` the evaluation strategy.
  void RecordStrategyLatency(const std::string& shape,
                             const std::string& strategy, uint64_t micros);
  /// Latency summary for (shape, strategy); nullopt when unseen.
  std::optional<LatencyStat> StrategyLatency(const std::string& shape,
                                             const std::string& strategy) const;

  // --- Export / persistence ------------------------------------------------

  /// Human-readable dump (the shell's `.stats queries` view).
  std::string DumpText() const;
  /// Machine-readable JSON object.
  std::string DumpJson() const;

  /// Persists every statistic to `path` (atomic write, line format).
  Status SaveToFile(const std::string& path) const;
  /// Merges a previously saved file into the live state (DF snapshots
  /// and cardinalities overwrite; EWMAs and latency buckets seed empty
  /// entries only, so live observations win).
  Status LoadFromFile(const std::string& path);

  void ResetForTest();

 private:
  StatisticsService() = default;

  struct BufferEwma {
    double rate = -1.0;
    uint64_t lookups = 0;
  };

  mutable std::mutex mu_;
  /// collection -> term -> df.
  std::map<std::string, std::map<std::string, uint64_t>> term_df_;
  std::map<std::string, uint64_t> collection_docs_;
  std::map<std::string, uint64_t> extent_cardinality_;
  std::map<std::string, BufferEwma> buffer_hit_rate_;
  std::map<std::string, BufferEwma> pool_hit_rate_;
  /// "shape|strategy" -> latency summary.
  std::map<std::string, LatencyStat> strategy_latency_;
};

}  // namespace sdms::obs

#endif  // SDMS_COMMON_OBS_STATS_H_
