#ifndef SDMS_COMMON_OBS_PROFILE_H_
#define SDMS_COMMON_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sdms::obs {

/// Per-query profile: a tree of timed stages (parse, plan, admission
/// wait, IRS fan-out, postings kernels, join, derivation, buffer
/// lookups), each carrying named resource counters (postings_scanned,
/// rows, buffer_hits, early_exits, ...). The profile is attached to a
/// QueryContext and installed thread-locally by QueryContext::Scope, so
/// deep layers charge the active query without signature changes —
/// including ThreadPool::ParallelFor workers, which inherit the issuing
/// thread's binding.
///
/// Concurrency model: the tree is mutex-protected, so any thread may
/// open stages or charge counters. Each thread keeps its *own* current
/// stage (thread-local, part of the binding), so concurrent workers
/// nest their stages under the stage that was active at fan-out time
/// without racing on a shared stack. Stages opened repeatedly under the
/// same parent with the same name merge (invocations accumulate, like
/// EXPLAIN ANALYZE's loops=N) to keep trees bounded.
class QueryProfile {
 public:
  struct Stage {
    std::string name;
    /// Micros since the profile's construction at first open.
    int64_t start_us = 0;
    /// Accumulated wall time across all invocations.
    int64_t total_us = 0;
    /// How many times this (parent, name) stage was opened.
    uint64_t invocations = 0;
    std::map<std::string, uint64_t> counters;
    std::vector<std::unique_ptr<Stage>> children;
    Stage* parent = nullptr;
  };

  explicit QueryProfile(uint64_t query_id, std::string label = "query");

  uint64_t query_id() const { return query_id_; }
  Stage* root() { return &root_; }

  /// Opens (or merges into) the child stage `name` under `parent`.
  /// Null parent means the root. Thread-safe.
  Stage* BeginStage(Stage* parent, const std::string& name);

  /// Closes one invocation of `stage`, accumulating `elapsed_us`.
  void EndStage(Stage* stage, int64_t elapsed_us);

  /// Charges `delta` to `stage`'s counter `name` (root when null).
  void Count(Stage* stage, const std::string& name, uint64_t delta);

  /// Attaches a string annotation to the profile (strategy, degradation
  /// reason, query text); later writes to the same key overwrite.
  void Annotate(const std::string& key, const std::string& value);

  /// Closes the root stage; total_micros() is stable afterwards.
  void Finish();
  int64_t total_micros() const;

  /// Sum of counter `name` over the whole stage tree (tests compare
  /// this against process-wide metric deltas).
  uint64_t TotalCounter(const std::string& name) const;

  /// ASCII stage tree with times, invocation counts and counters — the
  /// EXPLAIN ANALYZE rendering.
  std::string Render() const;

  /// Single-line JSON object (query_id, total_us, annotations, nested
  /// stage tree) — the slow-query log record body.
  std::string ToJson() const;

 private:
  uint64_t SumCounterLocked(const Stage& s, const std::string& name) const;

  const uint64_t query_id_;
  const int64_t epoch_us_;  // steady-clock micros at construction
  mutable std::mutex mu_;
  Stage root_;
  std::map<std::string, std::string> annotations_;
  int64_t total_us_ = 0;
  bool finished_ = false;
};

/// Allocates a process-unique query id (never 0).
uint64_t NextQueryId();

/// Global profiling switch (the shell's `.profile on|off`). Query
/// surfaces (MixedQueryEvaluator) create and attach a QueryProfile to
/// their context when this is on or the slow-query log is armed.
void SetProfilingEnabled(bool enabled);
bool ProfilingEnabled();

/// Thread-local correlation state: which query this thread is working
/// for (query_id stamps log lines and trace spans) and where profile
/// charges land (profile + this thread's current stage). Installed by
/// QueryContext::Scope; ThreadPool::ParallelFor re-installs the issuing
/// thread's exact binding in its workers.
struct ProfileBinding {
  uint64_t query_id = 0;
  QueryProfile* profile = nullptr;
  QueryProfile::Stage* stage = nullptr;
};

/// The calling thread's binding (all-zero when none is installed).
ProfileBinding CurrentProfileBinding();

/// The calling thread's query id, 0 when none (log/trace stamping).
uint64_t CurrentQueryId();

/// Installs `b` for the calling thread, returning the previous binding
/// (restore it when done). QueryContext::Scope and ProfileStageScope
/// use this; it is exposed for ParallelFor-style fan-out.
ProfileBinding ExchangeProfileBinding(const ProfileBinding& b);

/// RAII stage: opens `name` under the thread's current stage on
/// construction, accumulates elapsed time and pops back on destruction.
/// A no-op (two thread-local reads) when no profile is installed.
class ProfileStageScope {
 public:
  explicit ProfileStageScope(const char* name);
  ~ProfileStageScope();
  ProfileStageScope(const ProfileStageScope&) = delete;
  ProfileStageScope& operator=(const ProfileStageScope&) = delete;

 private:
  QueryProfile* profile_ = nullptr;
  QueryProfile::Stage* opened_ = nullptr;
  QueryProfile::Stage* prev_stage_ = nullptr;
  int64_t start_us_ = 0;
};

/// Charges `delta` to counter `name` of the calling thread's current
/// stage. No-op without an installed profile.
void ProfileCount(const char* name, uint64_t delta = 1);

/// Annotates the calling thread's profile. No-op without one.
void ProfileAnnotate(const char* key, const std::string& value);

/// Append-only JSON-lines log of queries whose wall time reached a
/// threshold. Armed via SDMS_SLOW_QUERY_MS (unset or negative =
/// disabled; 0 logs every profiled query — elapsed_ms >= threshold) and
/// SDMS_SLOW_QUERY_LOG (path, default "slow_queries.jsonl").
class SlowQueryLog {
 public:
  static SlowQueryLog& Instance();

  /// Threshold in ms; < 0 disables.
  void set_threshold_ms(int64_t ms);
  int64_t threshold_ms() const;
  bool enabled() const { return threshold_ms() >= 0; }

  void set_path(const std::string& path);
  std::string path() const;

  /// Appends one JSON line when elapsed_us / 1000 >= threshold_ms.
  /// `profile` may be null (the line then carries no stage tree).
  /// Returns true when a record was written.
  bool MaybeRecord(uint64_t query_id, const std::string& query_text,
                   int64_t elapsed_us, const QueryProfile* profile);

  uint64_t recorded() const;

 private:
  SlowQueryLog();

  mutable std::mutex mu_;
  int64_t threshold_ms_ = -1;
  std::string path_;
  uint64_t recorded_ = 0;
};

}  // namespace sdms::obs

#endif  // SDMS_COMMON_OBS_PROFILE_H_
