#include "common/obs/stats.h"

#include <cmath>
#include <sstream>

#include "common/file_util.h"
#include "common/string_util.h"

namespace sdms::obs {

namespace {

/// EWMA smoothing for the buffer hit rate: slow enough to ride out a
/// cold start, fast enough to track a workload shift within ~50 lookups.
constexpr double kEwmaAlpha = 0.05;

size_t BucketOf(uint64_t micros) {
  size_t b = 0;
  while (b + 1 < LatencyStat::kBuckets && (1ULL << b) <= micros) ++b;
  return b;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void LatencyStat::Record(uint64_t micros) {
  if (count == 0 || micros < min_us) min_us = micros;
  if (micros > max_us) max_us = micros;
  ++count;
  sum_us += micros;
  ++buckets[BucketOf(micros)];
}

double LatencyStat::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p >= 100.0) return static_cast<double>(max_us);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Upper bound of bucket b (bucket 0 covers [0, 1]).
      return static_cast<double>(1ULL << b);
    }
  }
  return static_cast<double>(max_us);
}

StatisticsService& StatisticsService::Instance() {
  static StatisticsService* service = new StatisticsService();
  return *service;
}

void StatisticsService::RecordTermDf(const std::string& collection,
                                     const std::string& term, uint64_t df) {
  std::lock_guard<std::mutex> lock(mu_);
  term_df_[collection][term] = df;
}

std::optional<uint64_t> StatisticsService::TermDf(
    const std::string& collection, const std::string& term) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto coll = term_df_.find(collection);
  if (coll == term_df_.end()) return std::nullopt;
  auto it = coll->second.find(term);
  if (it == coll->second.end()) return std::nullopt;
  return it->second;
}

size_t StatisticsService::TermCount(const std::string& collection) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto coll = term_df_.find(collection);
  return coll == term_df_.end() ? 0 : coll->second.size();
}

void StatisticsService::RecordCollectionDocCount(const std::string& collection,
                                                 uint64_t docs) {
  std::lock_guard<std::mutex> lock(mu_);
  collection_docs_[collection] = docs;
}

uint64_t StatisticsService::CollectionDocCount(
    const std::string& collection) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collection_docs_.find(collection);
  return it == collection_docs_.end() ? 0 : it->second;
}

void StatisticsService::RecordExtentCardinality(const std::string& class_name,
                                                uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  extent_cardinality_[class_name] = size;
}

uint64_t StatisticsService::ExtentCardinality(
    const std::string& class_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extent_cardinality_.find(class_name);
  return it == extent_cardinality_.end() ? 0 : it->second;
}

void StatisticsService::RecordBufferLookup(const std::string& collection,
                                           bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  BufferEwma& e = buffer_hit_rate_[collection];
  double sample = hit ? 1.0 : 0.0;
  e.rate = e.lookups == 0 ? sample
                          : (1.0 - kEwmaAlpha) * e.rate + kEwmaAlpha * sample;
  ++e.lookups;
}

double StatisticsService::BufferHitRate(const std::string& collection) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffer_hit_rate_.find(collection);
  return it == buffer_hit_rate_.end() ? -1.0 : it->second.rate;
}

void StatisticsService::RecordPoolLookup(const std::string& collection,
                                         bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  BufferEwma& e = pool_hit_rate_[collection];
  double sample = hit ? 1.0 : 0.0;
  e.rate = e.lookups == 0 ? sample
                          : (1.0 - kEwmaAlpha) * e.rate + kEwmaAlpha * sample;
  ++e.lookups;
}

double StatisticsService::PoolHitRate(const std::string& collection) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pool_hit_rate_.find(collection);
  return it == pool_hit_rate_.end() ? -1.0 : it->second.rate;
}

void StatisticsService::RecordStrategyLatency(const std::string& shape,
                                              const std::string& strategy,
                                              uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  strategy_latency_[shape + "|" + strategy].Record(micros);
}

std::optional<LatencyStat> StatisticsService::StrategyLatency(
    const std::string& shape, const std::string& strategy) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = strategy_latency_.find(shape + "|" + strategy);
  if (it == strategy_latency_.end()) return std::nullopt;
  return it->second;
}

std::string StatisticsService::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "query statistics\n";
  out += "  collections:\n";
  for (const auto& [coll, docs] : collection_docs_) {
    auto df = term_df_.find(coll);
    size_t terms = df == term_df_.end() ? 0 : df->second.size();
    auto hr = buffer_hit_rate_.find(coll);
    std::string rate =
        hr == buffer_hit_rate_.end() || hr->second.rate < 0.0
            ? "n/a"
            : StrFormat("%.3f (%llu lookups)", hr->second.rate,
                        static_cast<unsigned long long>(hr->second.lookups));
    auto pr = pool_hit_rate_.find(coll);
    std::string pool_rate =
        pr == pool_hit_rate_.end() || pr->second.rate < 0.0
            ? "n/a"
            : StrFormat("%.3f (%llu fetches)", pr->second.rate,
                        static_cast<unsigned long long>(pr->second.lookups));
    out += StrFormat(
        "    %-16s docs=%llu  df snapshots=%zu  buffer hit rate=%s  "
        "pool hit rate=%s\n",
        coll.c_str(), static_cast<unsigned long long>(docs), terms,
        rate.c_str(), pool_rate.c_str());
  }
  out += "  extents:\n";
  for (const auto& [cls, n] : extent_cardinality_) {
    out += StrFormat("    %-16s %llu objects\n", cls.c_str(),
                     static_cast<unsigned long long>(n));
  }
  out += "  strategy latencies (shape|strategy):\n";
  for (const auto& [key, stat] : strategy_latency_) {
    out += StrFormat(
        "    %-28s n=%llu  mean=%.0f us  p50=%.0f us  p99=%.0f us\n",
        key.c_str(), static_cast<unsigned long long>(stat.count), stat.mean(),
        stat.Percentile(50), stat.Percentile(99));
  }
  return out;
}

std::string StatisticsService::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"collections\":{";
  bool first = true;
  for (const auto& [coll, terms] : term_df_) {
    if (!first) out += ",";
    first = false;
    uint64_t docs = 0;
    if (auto it = collection_docs_.find(coll); it != collection_docs_.end()) {
      docs = it->second;
    }
    double rate = -1.0;
    uint64_t lookups = 0;
    if (auto it = buffer_hit_rate_.find(coll); it != buffer_hit_rate_.end()) {
      rate = it->second.rate;
      lookups = it->second.lookups;
    }
    double pool_rate = -1.0;
    uint64_t pool_lookups = 0;
    if (auto it = pool_hit_rate_.find(coll); it != pool_hit_rate_.end()) {
      pool_rate = it->second.rate;
      pool_lookups = it->second.lookups;
    }
    out += StrFormat(
        "\"%s\":{\"doc_count\":%llu,\"buffer_hit_rate\":%.6f,"
        "\"buffer_lookups\":%llu,\"pool_hit_rate\":%.6f,"
        "\"pool_lookups\":%llu,\"term_df\":{",
        JsonEscape(coll).c_str(), static_cast<unsigned long long>(docs), rate,
        static_cast<unsigned long long>(lookups), pool_rate,
        static_cast<unsigned long long>(pool_lookups));
    bool tfirst = true;
    for (const auto& [term, df] : terms) {
      if (!tfirst) out += ",";
      tfirst = false;
      out += StrFormat("\"%s\":%llu", JsonEscape(term).c_str(),
                       static_cast<unsigned long long>(df));
    }
    out += "}}";
  }
  // Collections with doc counts or hit rates but no DF snapshots yet.
  for (const auto& [coll, docs] : collection_docs_) {
    if (term_df_.count(coll) > 0) continue;
    if (!first) out += ",";
    first = false;
    double rate = -1.0;
    uint64_t lookups = 0;
    if (auto it = buffer_hit_rate_.find(coll); it != buffer_hit_rate_.end()) {
      rate = it->second.rate;
      lookups = it->second.lookups;
    }
    double pool_rate = -1.0;
    uint64_t pool_lookups = 0;
    if (auto it = pool_hit_rate_.find(coll); it != pool_hit_rate_.end()) {
      pool_rate = it->second.rate;
      pool_lookups = it->second.lookups;
    }
    out += StrFormat(
        "\"%s\":{\"doc_count\":%llu,\"buffer_hit_rate\":%.6f,"
        "\"buffer_lookups\":%llu,\"pool_hit_rate\":%.6f,"
        "\"pool_lookups\":%llu,\"term_df\":{}}",
        JsonEscape(coll).c_str(), static_cast<unsigned long long>(docs), rate,
        static_cast<unsigned long long>(lookups), pool_rate,
        static_cast<unsigned long long>(pool_lookups));
  }
  out += "},\"extents\":{";
  first = true;
  for (const auto& [cls, n] : extent_cardinality_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(cls).c_str(),
                     static_cast<unsigned long long>(n));
  }
  out += "},\"strategy_latency\":{";
  first = true;
  for (const auto& [key, stat] : strategy_latency_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"mean_us\":%.1f,\"p50_us\":%.0f,"
        "\"p99_us\":%.0f,\"max_us\":%llu}",
        JsonEscape(key).c_str(), static_cast<unsigned long long>(stat.count),
        stat.mean(), stat.Percentile(50), stat.Percentile(99),
        static_cast<unsigned long long>(stat.max_us));
  }
  out += "}}";
  return out;
}

Status StatisticsService::SaveToFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Line format, one fact per line, whitespace-delimited. Terms pass
  // through the analyzer first (no spaces), collection and class names
  // are identifiers — so plain token splitting round-trips.
  std::string out = "sdms_stats v1\n";
  for (const auto& [coll, terms] : term_df_) {
    for (const auto& [term, df] : terms) {
      out += StrFormat("df %s %s %llu\n", coll.c_str(), term.c_str(),
                       static_cast<unsigned long long>(df));
    }
  }
  for (const auto& [coll, docs] : collection_docs_) {
    out += StrFormat("docs %s %llu\n", coll.c_str(),
                     static_cast<unsigned long long>(docs));
  }
  for (const auto& [cls, n] : extent_cardinality_) {
    out += StrFormat("extent %s %llu\n", cls.c_str(),
                     static_cast<unsigned long long>(n));
  }
  for (const auto& [coll, e] : buffer_hit_rate_) {
    out += StrFormat("buffer %s %.9f %llu\n", coll.c_str(), e.rate,
                     static_cast<unsigned long long>(e.lookups));
  }
  for (const auto& [coll, e] : pool_hit_rate_) {
    out += StrFormat("pool %s %.9f %llu\n", coll.c_str(), e.rate,
                     static_cast<unsigned long long>(e.lookups));
  }
  for (const auto& [key, stat] : strategy_latency_) {
    out += StrFormat("latency %s %llu %llu %llu %llu", key.c_str(),
                     static_cast<unsigned long long>(stat.count),
                     static_cast<unsigned long long>(stat.sum_us),
                     static_cast<unsigned long long>(stat.min_us),
                     static_cast<unsigned long long>(stat.max_us));
    for (size_t b = 0; b < LatencyStat::kBuckets; ++b) {
      out += StrFormat(" %llu",
                       static_cast<unsigned long long>(stat.buckets[b]));
    }
    out += "\n";
  }
  return WriteFileAtomic(path, out);
}

Status StatisticsService::LoadFromFile(const std::string& path) {
  SDMS_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  std::istringstream in(data);
  std::string header, version;
  in >> header >> version;
  if (header != "sdms_stats" || version != "v1") {
    return Status::Corruption("unrecognized stats file header in " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string kind;
  while (in >> kind) {
    if (kind == "df") {
      std::string coll, term;
      uint64_t df = 0;
      if (!(in >> coll >> term >> df)) break;
      term_df_[coll][term] = df;
    } else if (kind == "docs") {
      std::string coll;
      uint64_t docs = 0;
      if (!(in >> coll >> docs)) break;
      collection_docs_[coll] = docs;
    } else if (kind == "extent") {
      std::string cls;
      uint64_t n = 0;
      if (!(in >> cls >> n)) break;
      extent_cardinality_[cls] = n;
    } else if (kind == "buffer") {
      std::string coll;
      double rate = -1.0;
      uint64_t lookups = 0;
      if (!(in >> coll >> rate >> lookups)) break;
      // Seed only: live observations beat restored smoothing state.
      BufferEwma& e = buffer_hit_rate_[coll];
      if (e.lookups == 0) {
        e.rate = rate;
        e.lookups = lookups;
      }
    } else if (kind == "pool") {
      std::string coll;
      double rate = -1.0;
      uint64_t lookups = 0;
      if (!(in >> coll >> rate >> lookups)) break;
      BufferEwma& e = pool_hit_rate_[coll];
      if (e.lookups == 0) {
        e.rate = rate;
        e.lookups = lookups;
      }
    } else if (kind == "latency") {
      std::string key;
      LatencyStat stat;
      if (!(in >> key >> stat.count >> stat.sum_us >> stat.min_us >>
            stat.max_us)) {
        break;
      }
      for (size_t b = 0; b < LatencyStat::kBuckets; ++b) {
        if (!(in >> stat.buckets[b])) break;
      }
      LatencyStat& live = strategy_latency_[key];
      if (live.count == 0) live = stat;
    } else {
      // Unknown record from a newer writer: skip the rest of the line.
      std::string rest;
      std::getline(in, rest);
    }
  }
  return Status::OK();
}

void StatisticsService::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  term_df_.clear();
  collection_docs_.clear();
  extent_cardinality_.clear();
  buffer_hit_rate_.clear();
  pool_hit_rate_.clear();
  strategy_latency_.clear();
}

}  // namespace sdms::obs
