#include "common/obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "common/obs/profile.h"
#include "common/string_util.h"

namespace sdms::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {

/// "2026-08-05 12:34:56.123456 INFO file.cc:42] [q42] message\n"
/// (the [qN] correlation stamp appears only inside a query).
std::string FormatRecord(const LogRecord& record) {
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    now.time_since_epoch())
                    .count() %
                1000000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%Y-%m-%d %H:%M:%S", &tm_buf);
  const char* base = std::strrchr(record.file, '/');
  base = base != nullptr ? base + 1 : record.file;
  std::string qid =
      record.query_id != 0
          ? StrFormat("[q%llu] ",
                      static_cast<unsigned long long>(record.query_id))
          : "";
  return StrFormat("%s.%06lld %-5s %s:%d] ", ts,
                   static_cast<long long>(micros), LogLevelName(record.level),
                   base, record.line) +
         qid + record.message + "\n";
}

class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::string line = FormatRecord(record);
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), stderr);
  }

 private:
  std::mutex mu_;
};

class FileSink : public LogSink {
 public:
  explicit FileSink(const std::string& path)
      : file_(std::fopen(path.c_str(), "ab")) {}
  ~FileSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void Write(const LogRecord& record) override {
    if (file_ == nullptr) return;
    std::string line = FormatRecord(record);
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
  std::mutex mu_;
};

class NullSink : public LogSink {
 public:
  void Write(const LogRecord&) override {}
};

}  // namespace

std::unique_ptr<LogSink> MakeStderrSink() {
  return std::make_unique<StderrSink>();
}

std::unique_ptr<LogSink> MakeFileSink(const std::string& path) {
  return std::make_unique<FileSink>(path);
}

std::unique_ptr<LogSink> MakeNullSink() { return std::make_unique<NullSink>(); }

Logger::Logger() : level_(LogLevel::kInfo), sink_(MakeStderrSink()) {}

Logger& Logger::Instance() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::SetLevel(LogLevel level) {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return level_.load(std::memory_order_relaxed);
}

void Logger::SetSink(std::unique_ptr<LogSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink != nullptr ? std::move(sink) : MakeStderrSink();
}

void Logger::Write(const LogRecord& record) {
  // Copy the sink pointer under the lock; Write itself runs outside it
  // so a slow sink doesn't serialize unrelated threads' level checks.
  LogSink* sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_.get();
  }
  sink->Write(record);
}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.query_id = CurrentQueryId();
  record.message = stream_.str();
  Logger::Instance().Write(record);
}

}  // namespace sdms::obs
