#ifndef SDMS_COMMON_OBS_LOG_H_
#define SDMS_COMMON_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

namespace sdms::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

const char* LogLevelName(LogLevel level);

/// One structured log record, handed to the sink pre-formatted and as
/// fields (file sinks write the line; richer sinks may re-serialize).
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  /// Id of the query the emitting thread was working for; 0 when the
  /// line was emitted outside any query.
  uint64_t query_id = 0;
  std::string message;
};

/// Output backend of the logger. Write() must be thread-safe (the
/// built-in sinks serialize internally).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

std::unique_ptr<LogSink> MakeStderrSink();
std::unique_ptr<LogSink> MakeFileSink(const std::string& path);
std::unique_ptr<LogSink> MakeNullSink();

/// Process-wide leveled logger with a pluggable sink. Default: kInfo
/// to stderr. The SDMS_LOG macro below is the entry point; Logger is
/// only touched directly to configure level/sink.
class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level);
  LogLevel level() const;
  bool Enabled(LogLevel level) const { return level >= this->level(); }

  /// Replaces the sink (nullptr restores stderr).
  void SetSink(std::unique_ptr<LogSink> sink);

  void Write(const LogRecord& record);

 private:
  Logger();

  /// Atomic so the per-statement enabled check stays lock-free.
  std::atomic<LogLevel> level_;
  mutable std::mutex mu_;  // guards sink_
  std::unique_ptr<LogSink> sink_;
};

/// Stream-collecting helper behind SDMS_LOG; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the ostream produced by the macro's else-branch so the
/// whole statement has type void either way.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace sdms::obs

// Compile-time floor: statements below this severity compile to
// nothing (dead-code-eliminated constant-false condition). Build with
// -DSDMS_MIN_LOG_LEVEL=1 to strip DEBUG statements entirely.
#ifndef SDMS_MIN_LOG_LEVEL
#define SDMS_MIN_LOG_LEVEL 0
#endif

#define SDMS_LOG_SEVERITY_DEBUG 0
#define SDMS_LOG_SEVERITY_INFO 1
#define SDMS_LOG_SEVERITY_WARN 2
#define SDMS_LOG_SEVERITY_ERROR 3

#define SDMS_LOG_LEVEL_DEBUG ::sdms::obs::LogLevel::kDebug
#define SDMS_LOG_LEVEL_INFO ::sdms::obs::LogLevel::kInfo
#define SDMS_LOG_LEVEL_WARN ::sdms::obs::LogLevel::kWarn
#define SDMS_LOG_LEVEL_ERROR ::sdms::obs::LogLevel::kError

/// Leveled structured logging: SDMS_LOG(INFO) << "indexed " << n;
/// Arguments are not evaluated when the level is disabled.
#define SDMS_LOG(level)                                                \
  !(SDMS_LOG_SEVERITY_##level >= SDMS_MIN_LOG_LEVEL &&                 \
    ::sdms::obs::Logger::Instance().Enabled(SDMS_LOG_LEVEL_##level))   \
      ? (void)0                                                        \
      : ::sdms::obs::LogVoidify() &                                    \
            ::sdms::obs::LogMessage(SDMS_LOG_LEVEL_##level, __FILE__,  \
                                    __LINE__)                          \
                .stream()

#endif  // SDMS_COMMON_OBS_LOG_H_
