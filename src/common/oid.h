#ifndef SDMS_COMMON_OID_H_
#define SDMS_COMMON_OID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace sdms {

/// A database object identifier. OIDs are immutable, never reused, and
/// are the join key between the OODBMS and the IRS: every IRS document
/// carries the OID of the database object it represents (Section 4.3 of
/// the paper).
class Oid {
 public:
  /// Constructs the invalid ("null") OID.
  constexpr Oid() : raw_(0) {}

  /// Constructs an OID from its raw 64-bit representation.
  constexpr explicit Oid(uint64_t raw) : raw_(raw) {}

  constexpr uint64_t raw() const { return raw_; }
  constexpr bool valid() const { return raw_ != 0; }

  friend constexpr bool operator==(Oid a, Oid b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Oid a, Oid b) { return a.raw_ < b.raw_; }

  /// Renders as "oid:<n>"; used in IRS document metadata and traces.
  std::string ToString() const { return "oid:" + std::to_string(raw_); }

 private:
  uint64_t raw_;
};

/// The invalid OID constant.
inline constexpr Oid kNullOid{};

}  // namespace sdms

template <>
struct std::hash<sdms::Oid> {
  size_t operator()(const sdms::Oid& oid) const noexcept {
    return std::hash<uint64_t>()(oid.raw());
  }
};

#endif  // SDMS_COMMON_OID_H_
