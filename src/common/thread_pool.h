#ifndef SDMS_COMMON_THREAD_POOL_H_
#define SDMS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace sdms {

/// A fixed-size worker pool for CPU-bound fan-out (batch indexing,
/// parallel analysis). Tasks are plain callables; Submit returns a
/// future for the callable's result. The pool is created with a fixed
/// thread count and joins all workers on destruction, after draining
/// the queue.
///
/// Thread-safety: Submit/ParallelFor may be called from any thread,
/// including from inside a pool task (ParallelFor detects that case and
/// runs inline to avoid deadlocking a fully-occupied pool).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `fn`; the future resolves with its result (or exception).
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> Submit(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Splits [0, n) into per-worker ranges and runs
  /// `body(begin, end)` for each, blocking until all complete. Runs
  /// inline when the pool has one worker, when n is tiny, or when
  /// called from a pool thread.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  bool InPool() const;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Number of threads the default pool uses: the SDMS_THREADS
/// environment variable when set (clamped to [1, 64]), otherwise
/// std::thread::hardware_concurrency().
size_t DefaultThreadCount();

/// Lazily-constructed process-wide pool sized by DefaultThreadCount().
/// Never destroyed (workers live for the process). Returns nullptr when
/// the default thread count is 1 — callers then run sequentially.
ThreadPool* DefaultThreadPool();

}  // namespace sdms

#endif  // SDMS_COMMON_THREAD_POOL_H_
