#ifndef SDMS_COMMON_STRING_UTIL_H_
#define SDMS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sdms {

/// Returns a lowercase copy of `s` (ASCII only).
std::string ToLower(std::string_view s);

/// Returns an uppercase copy of `s` (ASCII only).
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` in `s` by `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a floating-point literal, locale-independent ("." is always
/// the decimal separator regardless of the process locale). The whole
/// of `s` (after trimming ASCII whitespace) must be consumed;
/// InvalidArgument otherwise. Round-trips any double printed with
/// "%.17g" exactly.
StatusOr<double> ParseDouble(std::string_view s);

}  // namespace sdms

#endif  // SDMS_COMMON_STRING_UTIL_H_
