#ifndef SDMS_COMMON_RNG_H_
#define SDMS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace sdms {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). Used by
/// the corpus generator and benchmark workloads so every run reproduces
/// exactly the same corpora and query streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 to expand the seed into two non-zero state words.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = t ^ (t >> 31);
    }
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return state_[1] + s0;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Shuffles `v` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[2];
};

/// Samples ranks from a Zipf distribution over {0, .., n-1} with skew
/// `s` using precomputed cumulative weights. Rank 0 is the most likely.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  /// Draws one rank using uniform variate from `rng`.
  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sdms

#endif  // SDMS_COMMON_RNG_H_
