#include "sgml/dtd.h"

#include <cctype>

#include "common/string_util.h"

namespace sdms::sgml {

bool ContentModel::AllowsPcdata() const {
  if (kind == Kind::kPcdata || kind == Kind::kAny) return true;
  for (const ContentModel& c : children) {
    if (c.AllowsPcdata()) return true;
  }
  return false;
}

std::string ContentModel::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kElement:
      out = element;
      break;
    case Kind::kPcdata:
      out = "#PCDATA";
      break;
    case Kind::kEmpty:
      return "EMPTY";
    case Kind::kAny:
      return "ANY";
    case Kind::kSeq:
    case Kind::kChoice: {
      out = "(";
      const char* sep = kind == Kind::kSeq ? ", " : " | ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i].ToString();
      }
      out += ")";
      break;
    }
  }
  switch (occurrence) {
    case Occurrence::kOne:
      break;
    case Occurrence::kOpt:
      out += "?";
      break;
    case Occurrence::kStar:
      out += "*";
      break;
    case Occurrence::kPlus:
      out += "+";
      break;
  }
  return out;
}

const AttributeDecl* ElementDecl::FindAttribute(const std::string& name) const {
  for (const AttributeDecl& a : attributes) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

Status Dtd::AddElement(ElementDecl decl) {
  if (elements_.count(decl.name) > 0) {
    return Status::AlreadyExists("element declared twice: " + decl.name);
  }
  order_.push_back(decl.name);
  elements_.emplace(decl.name, std::move(decl));
  return Status::OK();
}

Status Dtd::AddAttributes(const std::string& element,
                          std::vector<AttributeDecl> attrs) {
  auto it = elements_.find(element);
  if (it == elements_.end()) {
    return Status::NotFound("ATTLIST for undeclared element: " + element);
  }
  for (AttributeDecl& a : attrs) {
    if (it->second.FindAttribute(a.name) != nullptr) {
      return Status::AlreadyExists("attribute declared twice: " + element +
                                   "." + a.name);
    }
    it->second.attributes.push_back(std::move(a));
  }
  return Status::OK();
}

StatusOr<const ElementDecl*> Dtd::GetElement(const std::string& name) const {
  auto it = elements_.find(name);
  if (it == elements_.end()) {
    return Status::NotFound("element not declared: " + name);
  }
  return &it->second;
}

// ---------------------------------------------------------------------------
// DTD parsing
// ---------------------------------------------------------------------------

namespace {

class DtdParser {
 public:
  explicit DtdParser(std::string_view text) : text_(text) {}

  StatusOr<Dtd> Parse() {
    Dtd dtd;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      if (!Consume("<!")) {
        return Status::ParseError("expected declaration at offset " +
                                  std::to_string(pos_));
      }
      std::string kw = ReadName();
      if (kw == "ELEMENT") {
        SDMS_RETURN_IF_ERROR(ParseElementDecl(dtd));
      } else if (kw == "ATTLIST") {
        SDMS_RETURN_IF_ERROR(ParseAttlistDecl(dtd));
      } else if (kw == "DOCTYPE") {
        SkipSpace();
        dtd.set_doctype(ReadName());
        SkipUntil('>');
      } else {
        // Unknown declaration (ENTITY, NOTATION, ...): skip.
        SkipUntil('>');
      }
    }
    if (dtd.doctype().empty() && !dtd.element_names().empty()) {
      dtd.set_doctype(dtd.element_names().front());
    }
    return dtd;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void SkipSpaceAndComments() {
    while (true) {
      SkipSpace();
      if (pos_ + 3 < text_.size() && text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  bool Consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  void SkipUntil(char c) {
    while (pos_ < text_.size() && text_[pos_] != c) ++pos_;
    if (pos_ < text_.size()) ++pos_;
  }

  std::string ReadName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '_' || c == '#') {
        ++pos_;
      } else {
        break;
      }
    }
    return ToUpper(text_.substr(start, pos_ - start));
  }

  Status ParseElementDecl(Dtd& dtd) {
    ElementDecl decl;
    decl.name = ReadName();
    if (decl.name.empty()) {
      return Status::ParseError("missing element name in <!ELEMENT>");
    }
    // Optional omitted-tag minimization indicators: "- -", "- O", "O O".
    SkipSpace();
    while (pos_ < text_.size() &&
           (text_[pos_] == '-' ||
            (std::toupper(static_cast<unsigned char>(text_[pos_])) == 'O' &&
             pos_ + 1 < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_ + 1]))))) {
      ++pos_;
      SkipSpace();
    }
    SDMS_ASSIGN_OR_RETURN(decl.content, ParseContent());
    SkipSpace();
    if (!Consume(">")) {
      return Status::ParseError("expected '>' after element " + decl.name);
    }
    return dtd.AddElement(std::move(decl));
  }

  StatusOr<ContentModel> ParseContent() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of DTD in content model");
    }
    if (text_[pos_] == '(') return ParseGroup();
    std::string name = ReadName();
    ContentModel m;
    if (name == "EMPTY") {
      m.kind = ContentModel::Kind::kEmpty;
    } else if (name == "ANY") {
      m.kind = ContentModel::Kind::kAny;
    } else if (name == "#PCDATA") {
      m.kind = ContentModel::Kind::kPcdata;
    } else if (!name.empty()) {
      m.kind = ContentModel::Kind::kElement;
      m.element = name;
    } else {
      return Status::ParseError("bad content model at offset " +
                                std::to_string(pos_));
    }
    m.occurrence = ParseOccurrence();
    return m;
  }

  StatusOr<ContentModel> ParseGroup() {
    ++pos_;  // consume '('
    std::vector<ContentModel> parts;
    bool is_choice = false;
    bool is_seq = false;
    while (true) {
      SDMS_ASSIGN_OR_RETURN(ContentModel part, ParseContent());
      parts.push_back(std::move(part));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated content group");
      }
      char c = text_[pos_];
      if (c == ')') {
        ++pos_;
        break;
      }
      if (c == '|') {
        if (is_seq) {
          return Status::ParseError("mixed ',' and '|' in one group");
        }
        is_choice = true;
        ++pos_;
      } else if (c == ',') {
        if (is_choice) {
          return Status::ParseError("mixed ',' and '|' in one group");
        }
        is_seq = true;
        ++pos_;
      } else if (c == '&') {
        // AND-group: treat as a sequence (order-insensitive matching is
        // not supported; generated corpora do not use '&').
        is_seq = true;
        ++pos_;
      } else {
        return Status::ParseError(std::string("unexpected '") + c +
                                  "' in content group");
      }
    }
    ContentModel m;
    m.kind = is_choice ? ContentModel::Kind::kChoice : ContentModel::Kind::kSeq;
    if (parts.size() == 1) {
      // Single-particle group: unwrap but keep group occurrence below.
      m = std::move(parts[0]);
      Occurrence inner = m.occurrence;
      Occurrence outer = ParseOccurrence();
      // Combine occurrences conservatively: any repetition wins.
      if (outer != Occurrence::kOne) m.occurrence = outer;
      else m.occurrence = inner;
      return m;
    }
    m.children = std::move(parts);
    m.occurrence = ParseOccurrence();
    return m;
  }

  Occurrence ParseOccurrence() {
    if (pos_ >= text_.size()) return Occurrence::kOne;
    switch (text_[pos_]) {
      case '?':
        ++pos_;
        return Occurrence::kOpt;
      case '*':
        ++pos_;
        return Occurrence::kStar;
      case '+':
        ++pos_;
        return Occurrence::kPlus;
      default:
        return Occurrence::kOne;
    }
  }

  Status ParseAttlistDecl(Dtd& dtd) {
    std::string element = ReadName();
    std::vector<AttributeDecl> attrs;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated <!ATTLIST>");
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      AttributeDecl a;
      a.name = ReadName();
      std::string type = ReadName();
      if (type == "CDATA") {
        a.type = AttrType::kCdata;
      } else if (type == "NUMBER") {
        a.type = AttrType::kNumber;
      } else if (type == "ID") {
        a.type = AttrType::kId;
      } else if (type == "NMTOKEN" || type == "NAME") {
        a.type = AttrType::kNameToken;
      } else if (type.empty() && text_[pos_] == '(') {
        // Enumerated type: skip the alternatives, treat as name token.
        SkipUntil(')');
        a.type = AttrType::kNameToken;
      } else {
        a.type = AttrType::kCdata;
      }
      SkipSpace();
      if (Consume("#REQUIRED")) {
        a.required = true;
      } else if (Consume("#IMPLIED")) {
        // optional, no default
      } else if (pos_ < text_.size() &&
                 (text_[pos_] == '"' || text_[pos_] == '\'')) {
        char q = text_[pos_++];
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != q) ++pos_;
        a.default_value = std::string(text_.substr(start, pos_ - start));
        a.has_default = true;
        if (pos_ < text_.size()) ++pos_;
      }
      attrs.push_back(std::move(a));
    }
    return dtd.AddAttributes(element, std::move(attrs));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Dtd> ParseDtd(const std::string& text) {
  DtdParser parser(text);
  return parser.Parse();
}

}  // namespace sdms::sgml
