#include "sgml/validator.h"

#include <cctype>
#include <set>

namespace sdms::sgml {

namespace {

using PosSet = std::set<size_t>;

PosSet MatchParticle(const ContentModel& m, const std::vector<std::string>& seq,
                     size_t pos);

/// Matches exactly one instance of `m` (ignoring its occurrence
/// indicator) starting at `pos`; returns the reachable end positions.
PosSet MatchOnce(const ContentModel& m, const std::vector<std::string>& seq,
                 size_t pos) {
  switch (m.kind) {
    case ContentModel::Kind::kElement: {
      PosSet out;
      if (pos < seq.size() && seq[pos] == m.element) out.insert(pos + 1);
      return out;
    }
    case ContentModel::Kind::kPcdata:
      // Text does not consume element positions.
      return {pos};
    case ContentModel::Kind::kEmpty:
      return {pos};
    case ContentModel::Kind::kAny:
      // ANY accepts the remaining sequence entirely.
      return {seq.size()};
    case ContentModel::Kind::kSeq: {
      PosSet current = {pos};
      for (const ContentModel& child : m.children) {
        PosSet next;
        for (size_t p : current) {
          PosSet ends = MatchParticle(child, seq, p);
          next.insert(ends.begin(), ends.end());
        }
        current = std::move(next);
        if (current.empty()) break;
      }
      return current;
    }
    case ContentModel::Kind::kChoice: {
      PosSet out;
      for (const ContentModel& child : m.children) {
        PosSet ends = MatchParticle(child, seq, pos);
        out.insert(ends.begin(), ends.end());
      }
      return out;
    }
  }
  return {};
}

/// Matches `m` including its occurrence indicator.
PosSet MatchParticle(const ContentModel& m, const std::vector<std::string>& seq,
                     size_t pos) {
  PosSet result;
  switch (m.occurrence) {
    case Occurrence::kOne:
      return MatchOnce(m, seq, pos);
    case Occurrence::kOpt: {
      result = MatchOnce(m, seq, pos);
      result.insert(pos);
      return result;
    }
    case Occurrence::kStar:
    case Occurrence::kPlus: {
      PosSet frontier = MatchOnce(m, seq, pos);
      result = frontier;
      // Transitive closure over repeated matches.
      while (!frontier.empty()) {
        PosSet next;
        for (size_t p : frontier) {
          for (size_t q : MatchOnce(m, seq, p)) {
            if (result.insert(q).second) next.insert(q);
          }
        }
        frontier = std::move(next);
      }
      if (m.occurrence == Occurrence::kStar) result.insert(pos);
      return result;
    }
  }
  return result;
}

/// Collects element names referenced anywhere in a (mixed) model.
void CollectElementNames(const ContentModel& m, std::set<std::string>& out) {
  if (m.kind == ContentModel::Kind::kElement) out.insert(m.element);
  for (const ContentModel& c : m.children) CollectElementNames(c, out);
}

bool IsWhitespaceOnly(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Status Validator::Validate(const Document& doc) const {
  std::vector<std::string> errors = ValidateAll(doc);
  if (errors.empty()) return Status::OK();
  return Status::InvalidArgument(errors.front());
}

std::vector<std::string> Validator::ValidateAll(const Document& doc) const {
  std::vector<std::string> errors;
  if (doc.root == nullptr) {
    errors.push_back("document has no root element");
    return errors;
  }
  if (!dtd_->doctype().empty() && doc.root->gi() != dtd_->doctype()) {
    errors.push_back("root element " + doc.root->gi() +
                     " does not match doctype " + dtd_->doctype());
  }
  ValidateElement(*doc.root, "/" + doc.root->gi(), errors);
  return errors;
}

void Validator::ValidateElement(const ElementNode& element,
                                const std::string& path,
                                std::vector<std::string>& errors) const {
  auto decl_or = dtd_->GetElement(element.gi());
  if (!decl_or.ok()) {
    errors.push_back(path + ": element " + element.gi() +
                     " is not declared in the DTD");
    // Children still validated so one unknown wrapper does not hide
    // deeper errors.
    for (const Node& n : element.children()) {
      if (n.kind == Node::Kind::kElement) {
        ValidateElement(*n.element, path + "/" + n.element->gi(), errors);
      }
    }
    return;
  }
  const ElementDecl& decl = **decl_or;
  ValidateAttributes(element, decl, path, errors);
  ValidateContent(element, decl, path, errors);
  size_t child_no = 0;
  for (const Node& n : element.children()) {
    if (n.kind == Node::Kind::kElement) {
      ++child_no;
      ValidateElement(*n.element,
                      path + "/" + n.element->gi() + "[" +
                          std::to_string(child_no) + "]",
                      errors);
    }
  }
}

void Validator::ValidateAttributes(const ElementNode& element,
                                   const ElementDecl& decl,
                                   const std::string& path,
                                   std::vector<std::string>& errors) const {
  for (const auto& [name, value] : element.attributes()) {
    const AttributeDecl* attr = decl.FindAttribute(name);
    if (attr == nullptr) {
      errors.push_back(path + ": undeclared attribute " + name);
      continue;
    }
    if (attr->type == AttrType::kNumber) {
      bool numeric = !value.empty();
      for (char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c))) numeric = false;
      }
      if (!numeric) {
        errors.push_back(path + ": attribute " + name +
                         " must be a NUMBER, got '" + value + "'");
      }
    }
  }
  for (const AttributeDecl& attr : decl.attributes) {
    if (attr.required && element.attributes().count(attr.name) == 0) {
      errors.push_back(path + ": missing required attribute " + attr.name);
    }
  }
}

void Validator::ValidateContent(const ElementNode& element,
                                const ElementDecl& decl,
                                const std::string& path,
                                std::vector<std::string>& errors) const {
  const ContentModel& model = decl.content;
  bool has_text = false;
  std::vector<std::string> child_gis;
  for (const Node& n : element.children()) {
    if (n.kind == Node::Kind::kText) {
      if (!IsWhitespaceOnly(n.text)) has_text = true;
    } else {
      child_gis.push_back(n.element->gi());
    }
  }

  if (model.kind == ContentModel::Kind::kEmpty) {
    if (has_text || !child_gis.empty()) {
      errors.push_back(path + ": declared EMPTY but has content");
    }
    return;
  }
  if (model.kind == ContentModel::Kind::kAny) return;

  if (model.AllowsPcdata()) {
    // Mixed content (#PCDATA | a | b)*: every element child must be one
    // of the alternatives.
    std::set<std::string> allowed;
    CollectElementNames(model, allowed);
    for (const std::string& gi : child_gis) {
      if (allowed.count(gi) == 0) {
        errors.push_back(path + ": element " + gi +
                         " not allowed in mixed content of " + element.gi());
      }
    }
    return;
  }

  if (has_text) {
    errors.push_back(path + ": text not allowed in element content of " +
                     element.gi());
  }
  PosSet ends = MatchParticle(model, child_gis, 0);
  if (ends.count(child_gis.size()) == 0) {
    std::string got;
    for (size_t i = 0; i < child_gis.size(); ++i) {
      if (i > 0) got += ", ";
      got += child_gis[i];
    }
    errors.push_back(path + ": children (" + got +
                     ") do not match content model " + model.ToString());
  }
}

}  // namespace sdms::sgml
