#ifndef SDMS_SGML_MMF_DTD_H_
#define SDMS_SGML_MMF_DTD_H_

#include <string>

#include "common/status.h"
#include "sgml/dtd.h"

namespace sdms::sgml {

/// Textual DTD modeled after the MultiMedia Forum document type the
/// paper's experiments used (MMFDOC with LOGBOOK, DOCTITLE, ABSTRACT,
/// sections and paragraphs; Section 4.3's example fragment).
const char* MmfDtdText();

/// Parses MmfDtdText() into a Dtd.
StatusOr<Dtd> LoadMmfDtd();

}  // namespace sdms::sgml

#endif  // SDMS_SGML_MMF_DTD_H_
