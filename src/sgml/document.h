#ifndef SDMS_SGML_DOCUMENT_H_
#define SDMS_SGML_DOCUMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sdms::sgml {

class ElementNode;

/// A child of an element: either a nested element or raw text.
struct Node {
  enum class Kind { kElement, kText };

  Kind kind = Kind::kText;
  std::unique_ptr<ElementNode> element;  // kElement
  std::string text;                      // kText

  static Node MakeText(std::string text);
  static Node MakeElement(std::unique_ptr<ElementNode> element);
};

/// One SGML element: generic identifier, attributes, ordered children.
/// The database stores one object per element (Section 4.1 of the
/// paper: "each document corresponds to a tree of database objects").
class ElementNode {
 public:
  explicit ElementNode(std::string gi) : gi_(std::move(gi)) {}

  const std::string& gi() const { return gi_; }

  const std::map<std::string, std::string>& attributes() const {
    return attrs_;
  }
  void SetAttribute(const std::string& name, std::string value) {
    attrs_[name] = std::move(value);
  }
  StatusOr<std::string> GetAttribute(const std::string& name) const;

  const std::vector<Node>& children() const { return children_; }
  std::vector<Node>& mutable_children() { return children_; }

  /// Appends a text child.
  void AddText(std::string text);

  /// Appends an element child and returns it.
  ElementNode* AddElement(std::string gi);

  /// Concatenated text of the subtree rooted here, children in document
  /// order, separated by single spaces. This is the paper's default
  /// getText: "by inspecting the leaves of the subtree rooted at an
  /// element" (Section 4.3.2).
  std::string SubtreeText() const;

  /// Direct text content only (no descendants).
  std::string DirectText() const;

  /// All descendant elements (and optionally self) with GI `gi`.
  void FindAll(const std::string& gi, bool include_self,
               std::vector<const ElementNode*>& out) const;

  /// Child elements (text children skipped).
  std::vector<const ElementNode*> ChildElements() const;

  /// Number of elements in the subtree (including self).
  size_t SubtreeElementCount() const;

  /// Serializes back to SGML text.
  std::string ToSgml() const;

 private:
  std::string gi_;
  std::map<std::string, std::string> attrs_;
  std::vector<Node> children_;
};

/// A parsed SGML document instance.
struct Document {
  std::string doctype;
  std::unique_ptr<ElementNode> root;
};

/// Parses an SGML document instance. Supported syntax: start/end tags
/// with attributes (quoted or name-token values), character data,
/// comments, a <!DOCTYPE ...> preamble, and the character entities
/// &amp; &lt; &gt; &quot; &apos;. Tag minimization is not supported —
/// documents must be fully tagged (the corpus generator emits such).
StatusOr<Document> ParseSgml(const std::string& text);

/// Escapes text for inclusion in SGML output.
std::string EscapeSgml(std::string_view text);

}  // namespace sdms::sgml

#endif  // SDMS_SGML_DOCUMENT_H_
