#include "sgml/mmf_dtd.h"

namespace sdms::sgml {

const char* MmfDtdText() {
  return R"dtd(
<!-- MultiMedia Forum document type (reconstruction). The fragment in
     the paper shows MMFDOC containing LOGBOOK, DOCTITLE, ABSTRACT and
     PARA elements; we add AUTHOR, SECTION, FIGREF and HYPERLINK to
     cover the structural queries of Sections 4.4 and 5. -->
<!ELEMENT MMFDOC   - - (LOGBOOK?, DOCTITLE, AUTHOR*, ABSTRACT?, (SECTION | PARA)*)>
<!ELEMENT LOGBOOK  - - (#PCDATA)>
<!ELEMENT DOCTITLE - - (#PCDATA)>
<!ELEMENT AUTHOR   - - (#PCDATA)>
<!ELEMENT ABSTRACT - - (#PCDATA | PARA)*>
<!ELEMENT SECTION  - - (SECTITLE?, (PARA | FIGURE | SECTION)*)>
<!ELEMENT SECTITLE - - (#PCDATA)>
<!ELEMENT PARA     - - (#PCDATA | HYPERLINK)*>
<!ELEMENT FIGURE   - - (CAPTION?)>
<!ELEMENT CAPTION  - - (#PCDATA)>
<!ELEMENT HYPERLINK - - (#PCDATA)>
<!ATTLIST MMFDOC
          YEAR     NUMBER #IMPLIED
          CATEGORY CDATA  #IMPLIED
          DOCID    CDATA  #IMPLIED>
<!ATTLIST SECTION
          SECNO    NUMBER #IMPLIED>
<!ATTLIST FIGURE
          SRC      CDATA  #REQUIRED>
<!ATTLIST HYPERLINK
          TARGET   CDATA  #REQUIRED
          LINKTYPE CDATA  "refers">
)dtd";
}

StatusOr<Dtd> LoadMmfDtd() {
  SDMS_ASSIGN_OR_RETURN(Dtd dtd, ParseDtd(MmfDtdText()));
  dtd.set_doctype("MMFDOC");
  return dtd;
}

}  // namespace sdms::sgml
