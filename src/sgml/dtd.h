#ifndef SDMS_SGML_DTD_H_
#define SDMS_SGML_DTD_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace sdms::sgml {

/// Occurrence indicator of a content-model particle.
enum class Occurrence {
  kOne,   // (no indicator)
  kOpt,   // ?
  kStar,  // *
  kPlus,  // +
};

/// A content-model expression: element reference, sequence (a, b),
/// choice (a | b), #PCDATA, EMPTY or ANY, each with an occurrence
/// indicator.
struct ContentModel {
  enum class Kind { kElement, kSeq, kChoice, kPcdata, kEmpty, kAny };

  Kind kind = Kind::kEmpty;
  /// Element name (kElement only), uppercased.
  std::string element;
  /// Sub-particles (kSeq / kChoice).
  std::vector<ContentModel> children;
  Occurrence occurrence = Occurrence::kOne;

  /// True if #PCDATA occurs anywhere in this model (mixed content).
  bool AllowsPcdata() const;

  /// Renders back to DTD syntax, e.g. "(DOCTITLE, (SECTION | PARA)*)".
  std::string ToString() const;
};

/// Declared attribute kinds (simplified SGML attribute types).
enum class AttrType { kCdata, kNumber, kId, kNameToken };

/// One attribute declaration from an <!ATTLIST ...>.
struct AttributeDecl {
  std::string name;   // uppercased
  AttrType type = AttrType::kCdata;
  bool required = false;       // #REQUIRED
  std::string default_value;   // empty when #IMPLIED
  bool has_default = false;
};

/// One <!ELEMENT ...> declaration plus its attributes.
struct ElementDecl {
  std::string name;  // uppercased generic identifier
  ContentModel content;
  std::vector<AttributeDecl> attributes;

  const AttributeDecl* FindAttribute(const std::string& name) const;
};

/// A parsed document type definition: the element declarations the
/// OODBMS maps to element-type classes ([ABH94]).
class Dtd {
 public:
  /// Name of the document type (the root element by convention).
  const std::string& doctype() const { return doctype_; }
  void set_doctype(std::string name) { doctype_ = std::move(name); }

  Status AddElement(ElementDecl decl);

  /// Merges an ATTLIST into an existing element declaration.
  Status AddAttributes(const std::string& element,
                       std::vector<AttributeDecl> attrs);

  StatusOr<const ElementDecl*> GetElement(const std::string& name) const;

  bool HasElement(const std::string& name) const {
    return elements_.count(name) > 0;
  }

  /// Element names in declaration order.
  const std::vector<std::string>& element_names() const { return order_; }

 private:
  std::string doctype_;
  std::map<std::string, ElementDecl> elements_;
  std::vector<std::string> order_;
};

/// Parses a DTD from its textual form. Supports the common subset:
///   <!ELEMENT NAME - - (content)>   (minimization indicators optional)
///   <!ELEMENT NAME - O EMPTY>, ANY, #PCDATA, sequences, choices,
///   occurrence indicators ? * +, nested groups
///   <!ATTLIST NAME attr CDATA #REQUIRED|#IMPLIED|"default">
///   <!-- comments -->
StatusOr<Dtd> ParseDtd(const std::string& text);

}  // namespace sdms::sgml

#endif  // SDMS_SGML_DTD_H_
