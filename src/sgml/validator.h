#ifndef SDMS_SGML_VALIDATOR_H_
#define SDMS_SGML_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sgml/document.h"
#include "sgml/dtd.h"

namespace sdms::sgml {

/// Validates document instances against a DTD: element declarations,
/// content models (sequence/choice/occurrence via NFA-style position
/// sets), mixed content, and attribute declarations.
class Validator {
 public:
  explicit Validator(const Dtd* dtd) : dtd_(dtd) {}

  /// OK when `doc` conforms to the DTD; otherwise the first violation.
  Status Validate(const Document& doc) const;

  /// Collects every violation (element path + message).
  std::vector<std::string> ValidateAll(const Document& doc) const;

 private:
  void ValidateElement(const ElementNode& element, const std::string& path,
                       std::vector<std::string>& errors) const;
  void ValidateAttributes(const ElementNode& element, const ElementDecl& decl,
                          const std::string& path,
                          std::vector<std::string>& errors) const;
  void ValidateContent(const ElementNode& element, const ElementDecl& decl,
                       const std::string& path,
                       std::vector<std::string>& errors) const;

  const Dtd* dtd_;
};

}  // namespace sdms::sgml

#endif  // SDMS_SGML_VALIDATOR_H_
