#include "sgml/document.h"

#include <cctype>

#include "common/string_util.h"

namespace sdms::sgml {

Node Node::MakeText(std::string text) {
  Node n;
  n.kind = Kind::kText;
  n.text = std::move(text);
  return n;
}

Node Node::MakeElement(std::unique_ptr<ElementNode> element) {
  Node n;
  n.kind = Kind::kElement;
  n.element = std::move(element);
  return n;
}

StatusOr<std::string> ElementNode::GetAttribute(const std::string& name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) {
    return Status::NotFound("no attribute " + name + " on element " + gi_);
  }
  return it->second;
}

void ElementNode::AddText(std::string text) {
  children_.push_back(Node::MakeText(std::move(text)));
}

ElementNode* ElementNode::AddElement(std::string gi) {
  auto child = std::make_unique<ElementNode>(std::move(gi));
  ElementNode* raw = child.get();
  children_.push_back(Node::MakeElement(std::move(child)));
  return raw;
}

std::string ElementNode::SubtreeText() const {
  std::string out;
  for (const Node& n : children_) {
    std::string part = n.kind == Node::Kind::kText
                           ? std::string(Trim(n.text))
                           : n.element->SubtreeText();
    if (part.empty()) continue;
    if (!out.empty()) out += " ";
    out += part;
  }
  return out;
}

std::string ElementNode::DirectText() const {
  std::string out;
  for (const Node& n : children_) {
    if (n.kind != Node::Kind::kText) continue;
    std::string part(Trim(n.text));
    if (part.empty()) continue;
    if (!out.empty()) out += " ";
    out += part;
  }
  return out;
}

void ElementNode::FindAll(const std::string& gi, bool include_self,
                          std::vector<const ElementNode*>& out) const {
  if (include_self && gi_ == gi) out.push_back(this);
  for (const Node& n : children_) {
    if (n.kind == Node::Kind::kElement) {
      n.element->FindAll(gi, /*include_self=*/true, out);
    }
  }
}

std::vector<const ElementNode*> ElementNode::ChildElements() const {
  std::vector<const ElementNode*> out;
  for (const Node& n : children_) {
    if (n.kind == Node::Kind::kElement) out.push_back(n.element.get());
  }
  return out;
}

size_t ElementNode::SubtreeElementCount() const {
  size_t count = 1;
  for (const Node& n : children_) {
    if (n.kind == Node::Kind::kElement) {
      count += n.element->SubtreeElementCount();
    }
  }
  return count;
}

std::string EscapeSgml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string ElementNode::ToSgml() const {
  std::string out = "<" + gi_;
  for (const auto& [k, v] : attrs_) {
    out += " " + k + "=\"" + EscapeSgml(v) + "\"";
  }
  out += ">";
  for (const Node& n : children_) {
    if (n.kind == Node::Kind::kText) {
      out += EscapeSgml(n.text);
    } else {
      out += n.element->ToSgml();
    }
  }
  out += "</" + gi_ + ">";
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class SgmlParser {
 public:
  explicit SgmlParser(std::string_view text) : text_(text) {}

  StatusOr<Document> Parse() {
    Document doc;
    SkipMisc(doc);
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::ParseError("expected root start tag");
    }
    SDMS_ASSIGN_OR_RETURN(doc.root, ParseElement());
    SkipMiscTail();
    if (pos_ < text_.size()) {
      return Status::ParseError("trailing content after root element");
    }
    if (doc.doctype.empty()) doc.doctype = doc.root->gi();
    return doc;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// Skips whitespace, comments and a DOCTYPE preamble.
  void SkipMisc(Document& doc) {
    while (true) {
      SkipSpace();
      if (text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      if (text_.substr(pos_, 9) == "<!DOCTYPE" ||
          text_.substr(pos_, 9) == "<!doctype") {
        size_t p = pos_ + 9;
        while (p < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[p]))) {
          ++p;
        }
        size_t name_start = p;
        while (p < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[p])) &&
               text_[p] != '>' && text_[p] != '[') {
          ++p;
        }
        doc.doctype = ToUpper(text_.substr(name_start, p - name_start));
        // Skip an internal subset if present.
        size_t close = text_.find('>', p);
        size_t bracket = text_.find('[', p);
        if (bracket != std::string_view::npos && bracket < close) {
          size_t end_subset = text_.find(']', bracket);
          close = text_.find('>', end_subset == std::string_view::npos
                                      ? bracket
                                      : end_subset);
        }
        pos_ = close == std::string_view::npos ? text_.size() : close + 1;
        continue;
      }
      break;
    }
  }

  void SkipMiscTail() {
    while (true) {
      SkipSpace();
      if (text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  std::string ReadName() {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    return ToUpper(text_.substr(start, pos_ - start));
  }

  /// Decodes the supported character entities in `raw`.
  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] == '&') {
        struct Entity {
          std::string_view name;
          char ch;
        };
        static constexpr Entity kEntities[] = {
            {"&amp;", '&'}, {"&lt;", '<'}, {"&gt;", '>'},
            {"&quot;", '"'}, {"&apos;", '\''},
        };
        bool matched = false;
        for (const Entity& e : kEntities) {
          if (raw.substr(i, e.name.size()) == e.name) {
            out.push_back(e.ch);
            i += e.name.size();
            matched = true;
            break;
          }
        }
        if (matched) continue;
      }
      out.push_back(raw[i]);
      ++i;
    }
    return out;
  }

  StatusOr<std::unique_ptr<ElementNode>> ParseElement() {
    // At '<' of a start tag.
    ++pos_;
    std::string gi = ReadName();
    if (gi.empty()) {
      return Status::ParseError("empty element name at offset " +
                                std::to_string(pos_));
    }
    auto element = std::make_unique<ElementNode>(gi);
    // Attributes.
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated start tag <" + gi);
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (text_[pos_] == '/' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '>') {
        // XML-style empty element: accept and return.
        pos_ += 2;
        return element;
      }
      std::string attr = ReadName();
      if (attr.empty()) {
        return Status::ParseError("bad attribute in <" + gi + ">");
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '=') {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() &&
            (text_[pos_] == '"' || text_[pos_] == '\'')) {
          char q = text_[pos_++];
          size_t start = pos_;
          while (pos_ < text_.size() && text_[pos_] != q) ++pos_;
          if (pos_ >= text_.size()) {
            return Status::ParseError("unterminated attribute value in <" +
                                      gi + ">");
          }
          element->SetAttribute(
              attr, DecodeEntities(text_.substr(start, pos_ - start)));
          ++pos_;
        } else {
          // Unquoted name-token value.
          size_t start = pos_;
          while (pos_ < text_.size() &&
                 !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
                 text_[pos_] != '>') {
            ++pos_;
          }
          element->SetAttribute(
              attr, std::string(text_.substr(start, pos_ - start)));
        }
      } else {
        // Minimized boolean attribute.
        element->SetAttribute(attr, attr);
      }
    }
    // Content until matching end tag.
    std::string pending_text;
    auto flush_text = [&]() {
      if (!pending_text.empty()) {
        std::string trimmed(Trim(pending_text));
        if (!trimmed.empty()) {
          element->AddText(DecodeEntities(pending_text));
        }
        pending_text.clear();
      }
    };
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::ParseError("missing end tag </" + gi + ">");
      }
      char c = text_[pos_];
      if (c == '<') {
        if (text_.substr(pos_, 4) == "<!--") {
          size_t end = text_.find("-->", pos_ + 4);
          pos_ = end == std::string_view::npos ? text_.size() : end + 3;
          continue;
        }
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          flush_text();
          pos_ += 2;
          std::string close = ReadName();
          SkipSpace();
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return Status::ParseError("malformed end tag </" + close);
          }
          ++pos_;
          if (close != gi) {
            return Status::ParseError("mismatched end tag: expected </" + gi +
                                      ">, got </" + close + ">");
          }
          return element;
        }
        flush_text();
        SDMS_ASSIGN_OR_RETURN(std::unique_ptr<ElementNode> child,
                              ParseElement());
        element->mutable_children().push_back(
            Node::MakeElement(std::move(child)));
      } else {
        pending_text.push_back(c);
        ++pos_;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Document> ParseSgml(const std::string& text) {
  SgmlParser parser(text);
  return parser.Parse();
}

}  // namespace sdms::sgml
