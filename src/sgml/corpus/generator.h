#ifndef SDMS_SGML_CORPUS_GENERATOR_H_
#define SDMS_SGML_CORPUS_GENERATOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sgml/document.h"

namespace sdms::sgml {

/// Parameters of the synthetic MMF corpus. The generator substitutes
/// for the proprietary MultiMedia Forum document base: it emits
/// MMF-DTD-conformant documents whose paragraph-level relevance to a
/// set of topic terms is planted, giving exact ground truth for the
/// retrieval-quality experiments (E2/E3/E9).
struct CorpusOptions {
  uint64_t seed = 42;
  size_t num_docs = 100;

  size_t min_sections_per_doc = 1;
  size_t max_sections_per_doc = 4;
  size_t min_paras_per_section = 2;
  size_t max_paras_per_section = 6;
  size_t min_words_per_para = 20;
  size_t max_words_per_para = 60;

  /// Background vocabulary (Zipf-distributed pseudo-words).
  size_t vocabulary_size = 3000;
  double zipf_skew = 1.05;

  /// Topic terms planted into relevant paragraphs. Must not collide
  /// with generated background words (generated words are synthetic
  /// syllable strings, topics are caller-supplied).
  std::vector<std::string> topics = {"www", "nii", "telnet", "hypertext"};

  /// P(document covers a given topic).
  double topic_doc_prob = 0.25;
  /// P(paragraph of a covering document is relevant to the topic).
  double topic_para_prob = 0.35;
  /// Fraction of words in a relevant paragraph replaced by the topic
  /// term.
  double topic_term_density = 0.10;

  /// Years drawn uniformly from [min_year, max_year] for the YEAR
  /// attribute (the Section 4.4 sample query filters on YEAR = 1994).
  int min_year = 1990;
  int max_year = 1996;

  /// Probability that a paragraph ends with a HYPERLINK element
  /// pointing at a random earlier document (TARGET = its DOCID,
  /// LINKTYPE "implies"). 0 disables hyperlink markup.
  double hyperlink_prob = 0.0;

  std::vector<std::string> categories = {"travel", "science", "culture",
                                         "politics"};
};

/// Ground truth for one generated document.
struct DocTruth {
  /// Topics each paragraph is relevant to, in document order
  /// (paragraph index -> topic set).
  std::vector<std::set<std::string>> para_topics;
  /// Union of paragraph topic sets (document-level relevance).
  std::set<std::string> doc_topics;
};

/// A generated corpus: SGML documents plus aligned ground truth.
struct Corpus {
  std::vector<Document> documents;
  std::vector<DocTruth> truths;

  /// Total number of PARA elements.
  size_t TotalParagraphs() const;
};

/// Deterministic corpus generator (same options -> same corpus).
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusOptions options);

  /// Generates the corpus described by the options.
  Corpus Generate();

  /// The background vocabulary (rank order, most frequent first).
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  std::string MakeWord(size_t id) const;
  std::string MakeParagraphText(Rng& rng, const std::set<std::string>& topics);

  CorpusOptions options_;
  std::vector<std::string> vocabulary_;
  ZipfSampler zipf_;
};

/// Builds the exact document/paragraph configuration of the paper's
/// Figure 4: four MMF documents M1..M4 over paragraphs P1..P11 where
///   P1 (M1) is relevant to WWW;
///   P4 (M2) is relevant to both WWW and NII;
///   P7, P8 (M3) are relevant to WWW resp. NII;
///   P9, P10 (M4) are both relevant to WWW only;
/// all remaining paragraphs are relevant to neither. Paragraphs have
/// (approximately) equal length as the figure assumes.
Corpus MakeFigure4Corpus(uint64_t seed = 7);

}  // namespace sdms::sgml

#endif  // SDMS_SGML_CORPUS_GENERATOR_H_
