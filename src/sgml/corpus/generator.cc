#include "sgml/corpus/generator.h"

#include <algorithm>

namespace sdms::sgml {

size_t Corpus::TotalParagraphs() const {
  size_t total = 0;
  for (const DocTruth& t : truths) total += t.para_topics.size();
  return total;
}

CorpusGenerator::CorpusGenerator(CorpusOptions options)
    : options_(std::move(options)),
      zipf_(options_.vocabulary_size, options_.zipf_skew) {
  vocabulary_.reserve(options_.vocabulary_size);
  for (size_t i = 0; i < options_.vocabulary_size; ++i) {
    std::string w = MakeWord(i);
    // Avoid accidental collision with a topic term.
    for (const std::string& t : options_.topics) {
      if (w == t) {
        w += "x";
        break;
      }
    }
    vocabulary_.push_back(std::move(w));
  }
}

std::string CorpusGenerator::MakeWord(size_t id) const {
  // Deterministic pseudo-words built from CV syllables: ids map
  // bijectively to syllable sequences, so all words are distinct.
  static constexpr const char* kSyllables[] = {
      "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
      "fa", "fe", "fi", "fo", "fu", "ga", "ge", "gi", "go", "gu",
      "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
      "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
      "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
      "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
      "va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
  };
  constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);
  std::string word;
  size_t n = id;
  // At least two syllables so words never collide with stopwords.
  do {
    word += kSyllables[n % kNumSyllables];
    n /= kNumSyllables;
  } while (n > 0);
  while (word.size() < 4) word += kSyllables[id % kNumSyllables];
  return word;
}

std::string CorpusGenerator::MakeParagraphText(
    Rng& rng, const std::set<std::string>& topics) {
  size_t words = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(options_.min_words_per_para),
      static_cast<int64_t>(options_.max_words_per_para)));
  std::vector<std::string> tokens;
  tokens.reserve(words);
  for (size_t i = 0; i < words; ++i) {
    tokens.push_back(vocabulary_[zipf_.Sample(rng)]);
  }
  // Plant topic terms by replacing a density-sized share of positions.
  for (const std::string& topic : topics) {
    size_t count = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(words) *
                               options_.topic_term_density));
    for (size_t i = 0; i < count; ++i) {
      tokens[rng.Uniform(tokens.size())] = topic;
    }
  }
  std::string text;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) text += " ";
    text += tokens[i];
  }
  text += ".";
  return text;
}

Corpus CorpusGenerator::Generate() {
  Rng rng(options_.seed);
  Corpus corpus;
  corpus.documents.reserve(options_.num_docs);
  corpus.truths.reserve(options_.num_docs);

  for (size_t d = 0; d < options_.num_docs; ++d) {
    Document doc;
    doc.doctype = "MMFDOC";
    doc.root = std::make_unique<ElementNode>("MMFDOC");
    ElementNode& root = *doc.root;
    root.SetAttribute("DOCID", "doc" + std::to_string(d));
    root.SetAttribute(
        "YEAR", std::to_string(rng.UniformInt(options_.min_year,
                                              options_.max_year)));
    if (!options_.categories.empty()) {
      root.SetAttribute(
          "CATEGORY",
          options_.categories[rng.Uniform(options_.categories.size())]);
    }

    // Which topics does this document cover at all?
    std::set<std::string> doc_topic_pool;
    for (const std::string& t : options_.topics) {
      if (rng.Bernoulli(options_.topic_doc_prob)) doc_topic_pool.insert(t);
    }

    ElementNode* logbook = root.AddElement("LOGBOOK");
    logbook->AddText("created by corpus generator, document " +
                     std::to_string(d));
    ElementNode* title = root.AddElement("DOCTITLE");
    title->AddText("Report " + std::to_string(d) + " on " +
                   vocabulary_[zipf_.Sample(rng)]);
    ElementNode* author = root.AddElement("AUTHOR");
    author->AddText("author" + std::to_string(rng.Uniform(25)));
    ElementNode* abstract = root.AddElement("ABSTRACT");
    abstract->AddText(MakeParagraphText(rng, {}));

    DocTruth truth;
    size_t sections = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options_.min_sections_per_doc),
                       static_cast<int64_t>(options_.max_sections_per_doc)));
    for (size_t s = 0; s < sections; ++s) {
      ElementNode* section = root.AddElement("SECTION");
      section->SetAttribute("SECNO", std::to_string(s + 1));
      ElementNode* sectitle = section->AddElement("SECTITLE");
      sectitle->AddText("Section " + std::to_string(s + 1) + " about " +
                        vocabulary_[zipf_.Sample(rng)]);
      size_t paras = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(options_.min_paras_per_section),
          static_cast<int64_t>(options_.max_paras_per_section)));
      for (size_t p = 0; p < paras; ++p) {
        std::set<std::string> para_topics;
        for (const std::string& t : doc_topic_pool) {
          if (rng.Bernoulli(options_.topic_para_prob)) para_topics.insert(t);
        }
        ElementNode* para = section->AddElement("PARA");
        para->AddText(MakeParagraphText(rng, para_topics));
        if (d > 0 && rng.Bernoulli(options_.hyperlink_prob)) {
          ElementNode* link = para->AddElement("HYPERLINK");
          link->SetAttribute("TARGET",
                             "doc" + std::to_string(rng.Uniform(d)));
          link->SetAttribute("LINKTYPE", "implies");
          link->AddText("see the related report");
        }
        truth.doc_topics.insert(para_topics.begin(), para_topics.end());
        truth.para_topics.push_back(std::move(para_topics));
      }
    }
    corpus.documents.push_back(std::move(doc));
    corpus.truths.push_back(std::move(truth));
  }
  return corpus;
}

Corpus MakeFigure4Corpus(uint64_t seed) {
  // Paragraph relevance exactly as discussed for Figure 4.
  struct ParaSpec {
    int doc;
    std::set<std::string> topics;
  };
  const std::vector<ParaSpec> specs = {
      {0, {"www"}},        // P1
      {0, {}},             // P2
      {0, {}},             // P3
      {1, {"www", "nii"}}, // P4
      {1, {}},             // P5
      {1, {}},             // P6
      {2, {"www"}},        // P7
      {2, {"nii"}},        // P8
      {3, {"www"}},        // P9
      {3, {"www"}},        // P10
      {3, {}},             // P11
  };

  CorpusOptions opts;
  opts.seed = seed;
  opts.topics = {"www", "nii"};
  // Equal-length paragraphs, as the figure's discussion assumes.
  opts.min_words_per_para = 30;
  opts.max_words_per_para = 30;
  opts.topic_term_density = 0.10;
  CorpusGenerator gen(opts);
  Rng rng(seed);

  Corpus corpus;
  corpus.documents.resize(4);
  corpus.truths.resize(4);
  for (int d = 0; d < 4; ++d) {
    Document& doc = corpus.documents[d];
    doc.doctype = "MMFDOC";
    doc.root = std::make_unique<ElementNode>("MMFDOC");
    doc.root->SetAttribute("DOCID", "M" + std::to_string(d + 1));
    doc.root->SetAttribute("YEAR", "1994");
    ElementNode* title = doc.root->AddElement("DOCTITLE");
    title->AddText("Figure-4 document M" + std::to_string(d + 1));
  }

  int para_no = 0;
  for (const ParaSpec& spec : specs) {
    ++para_no;
    Document& doc = corpus.documents[spec.doc];
    ElementNode* para = doc.root->AddElement("PARA");
    // Build a 30-word paragraph with planted topics; background words
    // come from the generator's vocabulary.
    std::vector<std::string> tokens;
    for (int i = 0; i < 30; ++i) {
      tokens.push_back(gen.vocabulary()[rng.Uniform(gen.vocabulary().size())]);
    }
    // Three occurrences per topic at fixed distinct positions (spread
    // across the paragraph): clearly relevant, equal paragraph length,
    // no topic overwriting another.
    size_t topic_no = 0;
    for (const std::string& t : spec.topics) {
      for (size_t i = 0; i < 3; ++i) {
        tokens[(topic_no + i * spec.topics.size()) % tokens.size()] = t;
      }
      ++topic_no;
    }
    std::string text = "P" + std::to_string(para_no);
    for (const std::string& tok : tokens) text += " " + tok;
    para->AddText(text);
    corpus.truths[spec.doc].para_topics.push_back(spec.topics);
    corpus.truths[spec.doc].doc_topics.insert(spec.topics.begin(),
                                              spec.topics.end());
  }
  return corpus;
}

}  // namespace sdms::sgml
