#ifndef SDMS_IRS_INDEX_BLOCK_POSTINGS_H_
#define SDMS_IRS_INDEX_BLOCK_POSTINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sdms::irs {

class PostingsStore;

/// Internal document identifier within one index.
using DocId = uint32_t;

/// One posting: a document and the term's occurrences in it.
struct Posting {
  DocId doc = 0;
  uint32_t tf = 0;
  /// Word positions (0-based, post-analysis); enables phrase/proximity
  /// extensions and makes the on-disk format realistic.
  std::vector<uint32_t> positions;
};

/// Location of one encoded block inside a paged postings file, in
/// logical payload coordinates (the store maps these onto pages).
struct BlockHandle {
  uint64_t offset = 0;
  uint32_t length = 0;
};

/// Metadata of one postings block — everything the query kernels need
/// to decide whether the block must be decoded at all. `last_doc`
/// drives doc-id skipping (galloping intersection, SkipTo); `max_tf`
/// and `min_doc_len` bound any tf/length-monotone score contribution
/// from the block (Block-Max-WAND-style pruning).
struct PostingsBlockMeta {
  DocId first_doc = 0;
  DocId last_doc = 0;
  uint32_t count = 0;
  uint32_t max_tf = 0;
  uint32_t min_doc_len = 0xffffffffu;
  /// Encoded payload while the block lives in memory (unsealed).
  std::string bytes;
  /// Location in the postings store once sealed (bytes then empty).
  BlockHandle handle;
  bool sealed = false;
};

/// A postings list stored as a sequence of delta+varbyte encoded
/// blocks of up to kBlockPostings postings each. Blocks are either
/// resident (encoded bytes held in memory) or sealed into a paged
/// postings store and fetched through its buffer pool on decode.
/// Doc ids must be appended in strictly increasing order.
class BlockPostingsList {
 public:
  static constexpr uint32_t kBlockPostings = 128;

  void Append(DocId doc, uint32_t tf, const std::vector<uint32_t>& positions,
              uint32_t doc_len);

  /// Splices `other`'s blocks after this list's (batch-shard merge; all
  /// of `other`'s doc ids must exceed last_doc()). Blocks are moved
  /// as-is, so a shard boundary may leave a partially filled block in
  /// the middle of the list — block sizes are metadata, not format.
  void AppendList(BlockPostingsList&& other);

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  DocId last_doc() const;
  /// Maximum term frequency across the whole list (0 when empty).
  uint32_t max_tf() const;
  /// Minimum length of any document in the list (UINT32_MAX when empty).
  uint32_t min_doc_len() const;

  size_t block_count() const { return blocks_.size(); }
  const PostingsBlockMeta& block(size_t i) const { return blocks_[i]; }
  const std::vector<PostingsBlockMeta>& blocks() const { return blocks_; }

  /// Decodes block `i`, appending its postings to `out`. Sealed blocks
  /// are read through the store's buffer pool. Charges the
  /// postings_scanned / blocks_decoded accounting.
  Status DecodeBlockInto(size_t i, std::vector<Posting>& out) const;

  /// Decodes the whole list (tf-cache builds, compaction, the oracle
  /// tests, serialization).
  StatusOr<std::vector<Posting>> DecodeAll() const;

  /// Marks block `i` sealed at `handle` and drops its resident bytes.
  void MarkSealed(size_t i, const BlockHandle& handle);

  void set_store(const PostingsStore* store) { store_ = store; }
  const PostingsStore* store() const { return store_; }

  /// Main-memory footprint: block metadata plus resident payloads
  /// (sealed payloads live in the store's buffer pool, not here).
  size_t ApproxMemoryBytes() const;

 private:
  std::vector<PostingsBlockMeta> blocks_;
  uint64_t total_ = 0;
  /// Borrowed from the owning InvertedIndex; set when sealed.
  const PostingsStore* store_ = nullptr;
};

/// Forward iterator over a BlockPostingsList that decodes lazily: a
/// block's payload is only decoded when the cursor actually positions
/// inside it, and SkipTo gallops over whole blocks using last_doc
/// metadata. Decode failures (a corrupt sealed block) latch into
/// status() and exhaust the cursor.
class PostingsCursor {
 public:
  PostingsCursor() = default;
  /// `list` may be null (empty cursor). The first block is NOT decoded
  /// until an accessor needs it, so block-level inspection stays free.
  explicit PostingsCursor(const BlockPostingsList* list);

  bool AtEnd() const {
    return list_ == nullptr || block_ >= list_->block_count();
  }

  /// Accessors decode the current block on first use. Only valid while
  /// !AtEnd().
  DocId doc();
  uint32_t tf();
  const std::vector<uint32_t>& positions();

  void Next();

  /// Advances to the first posting with doc >= target. Whole blocks
  /// whose last_doc < target are skipped without decoding. Returns
  /// false when the list is exhausted.
  bool SkipTo(DocId target);

  // --- Block-level operations (never decode) -------------------------

  /// Advances the block position until block_last_doc() >= target.
  /// Returns false (cursor exhausted) when no block qualifies.
  bool AdvanceBlocksTo(DocId target);
  /// Abandons the rest of the current block and moves to the next one.
  void SkipCurrentBlock();

  DocId block_first_doc() const { return Meta().first_doc; }
  DocId block_last_doc() const { return Meta().last_doc; }
  uint32_t block_max_tf() const { return Meta().max_tf; }
  uint32_t block_min_doc_len() const { return Meta().min_doc_len; }

  /// Total postings in the underlying list (0 for a null cursor).
  size_t size() const { return list_ == nullptr ? 0 : list_->size(); }

  /// Sticky decode error; OK while the cursor has only seen healthy
  /// blocks. Kernels surface it after iteration.
  const Status& status() const { return status_; }

 private:
  const PostingsBlockMeta& Meta() const { return list_->block(block_); }
  /// Decodes the current block if needed; false on error (cursor ends).
  bool EnsureDecoded();
  /// Accounts `n` blocks passed over without decoding.
  static void CountSkipped(size_t n);

  const BlockPostingsList* list_ = nullptr;
  size_t block_ = 0;
  size_t pos_ = 0;
  std::vector<Posting> decoded_;
  size_t decoded_block_ = static_cast<size_t>(-1);
  Status status_;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_BLOCK_POSTINGS_H_
