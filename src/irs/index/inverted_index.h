#ifndef SDMS_IRS_INDEX_INVERTED_INDEX_H_
#define SDMS_IRS_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "irs/index/block_postings.h"

namespace sdms {
class ThreadPool;
}

namespace sdms::irs {

class PostingsStore;

/// Per-document bookkeeping.
struct DocInfo {
  /// External key — the OODBMS object identifier string ("oid:n"). The
  /// paper stores the OID as IRS-document meta data (Section 4.3).
  std::string key;
  /// Document length in analyzed tokens.
  uint32_t length = 0;
  bool alive = false;
};

/// One document of a batch insert: external key plus analyzed tokens.
struct DocTokens {
  std::string key;
  std::vector<std::string> tokens;
};

/// A positional inverted index over analyzed token streams. Documents
/// are added as token vectors (analysis happens in IrsCollection).
///
/// Postings are held as block-compressed lists (BlockPostingsList):
/// ~128 postings per block, delta+varbyte encoded, with per-block
/// last_doc / max_tf / min_doc_len metadata so the query kernels can
/// skip whole blocks without decoding them. Freshly appended blocks
/// are memory-resident; SealToStore() moves them into a paged postings
/// file served through a buffer pool, after which decodes go through
/// the pool (and its hit/miss accounting). The checksum-envelope `.idx`
/// snapshot produced by Serialize() remains the durable truth — the
/// postings file is a derived cache rebuilt at every seal.
///
/// Deletion strategies (Section 4.3.1, option 3 — "deleting IRS
/// documents is costly"):
///   * eager (set_eager_delete(true)): the paper's architecture — every
///     removal rewrites all postings lists pruning the document
///     immediately;
///   * tombstone (default): removal only marks the document dead;
///     postings are pruned by Compact(), triggered automatically when
///     tombstoned documents exceed kCompactionRatio of the doc table.
/// Between a tombstone delete and the next compaction, cursors and
/// DocFreq still see the dead document's postings; result-producing
/// callers (IrsCollection::Search and the retrieval models) filter dead
/// documents, so hit sets are exact while corpus statistics (df) may
/// briefly include tombstones.
class InvertedIndex {
 public:
  /// Fraction of the doc table that may be tombstoned before an
  /// automatic Compact() (checked after each tombstone delete).
  static constexpr double kCompactionRatio = 0.25;

  InvertedIndex();
  ~InvertedIndex();
  InvertedIndex(InvertedIndex&& other) noexcept;
  InvertedIndex& operator=(InvertedIndex&& other) noexcept;
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Adds a document; returns its internal id.
  DocId AddDocument(const std::string& key,
                    const std::vector<std::string>& tokens);

  /// Bulk insert: assigns consecutive doc ids in `docs` order, builds
  /// per-shard postings lists on `pool` (sequentially when null) and
  /// splices them in doc-id order, so the decoded postings are
  /// identical to adding the documents one by one. Keys must be
  /// distinct and absent from the index. Returns the ids in input
  /// order.
  StatusOr<std::vector<DocId>> AddDocumentsBatch(
      const std::vector<DocTokens>& docs, ThreadPool* pool = nullptr);

  /// Removes document `id` — tombstone or eager prune depending on
  /// set_eager_delete().
  Status RemoveDocument(DocId id);

  /// Prunes the postings of every tombstoned document now. Returns the
  /// number of tombstones cleared; 0 (tombstones retained, index
  /// unchanged) when a postings block fails to decode — the prune is
  /// retried by a later Compact().
  size_t Compact();

  /// Switches between the paper's eager rewrite-on-delete and
  /// tombstone + threshold compaction (the default).
  void set_eager_delete(bool eager) { eager_delete_ = eager; }
  bool eager_delete() const { return eager_delete_; }

  /// Disables the per-index threshold compaction after tombstone
  /// deletes. A sharded IrsCollection owns the decision instead: the
  /// 25% ratio evaluated over shard-local counts fires at different
  /// points for different shard layouts, and DocFreq (which includes
  /// tombstones until the prune) would then diverge from the unsharded
  /// corpus statistics. The collection re-applies the same ratio over
  /// collection-global counts and compacts every shard together, so
  /// rankings stay layout-independent. Tombstones still prune via
  /// Compact().
  void set_auto_compact(bool on) { auto_compact_ = on; }
  bool auto_compact() const { return auto_compact_; }

  /// Size of the doc table including dead entries — the denominator of
  /// the compaction ratio. Doc ids are never reclaimed, so this is the
  /// number of documents ever added and sums across shards to exactly
  /// the unsharded table size.
  size_t doc_table_size() const { return docs_.size(); }

  /// Dead documents whose postings are not yet pruned.
  size_t tombstone_count() const { return tombstones_; }

  /// Looks up the internal id of an external key.
  StatusOr<DocId> FindByKey(const std::string& key) const;

  /// Block-compressed postings list for `term` (nullptr if unknown).
  /// Metadata access only — nothing is decoded. May include tombstoned
  /// documents until the next Compact().
  const BlockPostingsList* GetPostingsList(const std::string& term) const;

  /// Lazy cursor over `term`'s postings (empty cursor if unknown).
  PostingsCursor OpenCursor(const std::string& term) const;

  /// Fully decodes `term`'s postings (tf caches, feedback, tests).
  /// An empty vector when the term is unknown.
  StatusOr<std::vector<Posting>> DecodePostings(const std::string& term) const;

  /// Document frequency of `term` (including tombstones, see above).
  /// Served from list metadata — no block is decoded.
  uint32_t DocFreq(const std::string& term) const;

  /// Info for document `id`.
  StatusOr<const DocInfo*> GetDoc(DocId id) const;

  /// True when `id` names a live document.
  bool IsAlive(DocId id) const {
    return id < docs_.size() && docs_[id].alive;
  }

  /// Number of live documents.
  uint32_t doc_count() const { return live_docs_; }

  /// Average live-document length in tokens.
  double avg_doc_length() const;

  /// Number of distinct terms (including terms whose only postings are
  /// tombstoned; converges after Compact()).
  size_t term_count() const { return dictionary_.size(); }

  /// Total token occurrences indexed (live docs).
  uint64_t total_tokens() const { return total_tokens_; }

  /// Approximate main-memory footprint in bytes: dictionary + resident
  /// block payloads + block metadata + doc table + buffer-pool frames
  /// of the sealed store. Also refreshes the process-wide
  /// irs.index.memory_bytes gauge (delta-tracked per index). Used by
  /// the redundancy experiment (E8).
  size_t ApproximateSizeBytes() const;

  /// Seals every memory-resident block into a paged postings file at
  /// `path`, served through a buffer pool of `pool_pages` frames
  /// (<= 0: SDMS_BUFFER_POOL_PAGES or the default). Atomic: on error
  /// the index keeps serving from memory. Subsequent appends start new
  /// resident blocks; re-sealing folds them into a fresh file.
  Status SealToStore(const std::string& path, const std::string& collection,
                     int pool_pages = 0);

  /// The sealed postings store, if any (diagnostics, benches).
  const PostingsStore* store() const { return store_.get(); }

  /// Iterates all live documents.
  template <typename Fn>
  void ForEachDoc(Fn&& fn) const {
    for (DocId id = 0; id < docs_.size(); ++id) {
      if (docs_[id].alive) fn(id, docs_[id]);
    }
  }

  /// Iterates the dictionary in term order (persistence, tests),
  /// passing each term's BlockPostingsList. Postings may include
  /// tombstoned documents.
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    for (const auto* entry : SortedTerms()) fn(entry->first, entry->second);
  }

  /// Serializes to a binary blob / restores from one. The serialized
  /// form is always compacted (tombstoned postings are skipped), so
  /// tombstone and eager indexes over the same documents serialize
  /// identically. The format predates block storage and is unchanged:
  /// snapshots round-trip across versions. Fails when a sealed block
  /// cannot be decoded.
  StatusOr<std::string> Serialize() const;
  static StatusOr<InvertedIndex> Deserialize(std::string_view data);

  /// Structural invariants (sorted postings, tf == positions.size(),
  /// doc lengths consistent, dead postings only for pending
  /// tombstones, block metadata matching decoded content). Empty
  /// string when consistent.
  std::string CheckInvariants() const;

  /// Content digest independent of internal DocId assignment and
  /// insertion/compaction history: live documents and their postings
  /// are canonicalized by external key and term before hashing. Two
  /// indexes holding the same documents with the same token streams
  /// digest identically, no matter in which order (or through how many
  /// remove/re-add cycles) they were built. This is the "bit-identical
  /// to the fault-free oracle" comparison of the simulation harness.
  std::string CanonicalDigest() const;

  /// One live posting in canonical form: term, owning document's
  /// external key, and the "tf pos pos..." payload. The canonical
  /// order is (term, key) — DocId-free, so entries from different
  /// shards merge into the same canonical stream.
  struct CanonicalPosting {
    std::string term;
    std::string key;
    std::string payload;
  };

  /// Appends every live document as (key, length) — the "d" lines of
  /// the canonical serialization, unsorted.
  void CollectCanonicalDocs(
      std::vector<std::pair<std::string, uint32_t>>& out) const;

  /// Appends every live posting in canonical form, unsorted. Returns
  /// the first decode error (entries from undecodable blocks are
  /// skipped); the caller must fold it into FinishCanonicalDigest so a
  /// corrupt index can never digest equal to a healthy one.
  Status CollectCanonicalPostings(std::vector<CanonicalPosting>& out) const;

  /// Sorts the collected entries, renders the canonical serialization,
  /// and hashes it — the shared tail of CanonicalDigest() and the
  /// cross-shard collection digest.
  static std::string FinishCanonicalDigest(
      std::vector<std::pair<std::string, uint32_t>> docs,
      std::vector<CanonicalPosting> postings, const Status& decode_error);

 private:
  using DictEntry = std::pair<const std::string, BlockPostingsList>;

  /// Dictionary entries ordered by term, cached with a dirty flag —
  /// mutations invalidate, the next call rebuilds once (persistence
  /// and digest paths call this repeatedly).
  const std::vector<const DictEntry*>& SortedTerms() const;
  void InvalidateSortedTerms() {
    std::lock_guard<std::mutex> lock(sorted_terms_mu_);
    sorted_terms_dirty_ = true;
  }

  /// Appends `tokens` of document `id` (of length `doc_len`) into
  /// `dict`, positions grouped per term. Shared by the single and
  /// batch insert paths.
  static void AccumulatePostings(
      DocId id, const std::vector<std::string>& tokens,
      std::unordered_map<std::string, BlockPostingsList>& dict);

  /// Rebuilds every list without the tombstoned docs. False (index
  /// unchanged, tombstones kept) when any block fails to decode.
  bool PrunePostingsOfDeadDocs();
  void MaybeCompact();

  // Term -> block-compressed postings; hashed for the query hot path,
  // with SortedTerms() providing the deterministic iteration order that
  // serialization and tests need.
  std::unordered_map<std::string, BlockPostingsList> dictionary_;
  std::vector<DocInfo> docs_;
  std::unordered_map<std::string, DocId> by_key_;
  /// Dead docs whose postings still sit in the dictionary.
  std::vector<bool> pending_prune_;
  uint32_t live_docs_ = 0;
  uint64_t total_tokens_ = 0;
  size_t tombstones_ = 0;
  bool eager_delete_ = false;
  bool auto_compact_ = true;

  /// Sealed paged postings file + buffer pool; null while fully
  /// memory-resident. Lists hold a borrowed pointer to this store.
  std::unique_ptr<PostingsStore> store_;

  /// SortedTerms() cache (satellite: persistence profiles showed the
  /// sort rebuilt on every snapshot). Guarded so concurrent readers can
  /// fill it; mutations happen under writer exclusivity.
  mutable std::mutex sorted_terms_mu_;
  mutable std::vector<const DictEntry*> sorted_terms_;
  mutable bool sorted_terms_dirty_ = true;

  /// Last footprint reported into the irs.index.memory_bytes gauge.
  mutable int64_t reported_memory_bytes_ = 0;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_INVERTED_INDEX_H_
