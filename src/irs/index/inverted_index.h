#ifndef SDMS_IRS_INDEX_INVERTED_INDEX_H_
#define SDMS_IRS_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sdms::irs {

/// Internal document identifier within one index.
using DocId = uint32_t;

/// One posting: a document and the term's occurrences in it.
struct Posting {
  DocId doc = 0;
  uint32_t tf = 0;
  /// Word positions (0-based, post-analysis); enables phrase/proximity
  /// extensions and makes the on-disk format realistic.
  std::vector<uint32_t> positions;
};

/// Per-document bookkeeping.
struct DocInfo {
  /// External key — the OODBMS object identifier string ("oid:n"). The
  /// paper stores the OID as IRS-document meta data (Section 4.3).
  std::string key;
  /// Document length in analyzed tokens.
  uint32_t length = 0;
  bool alive = false;
};

/// A positional inverted index over analyzed token streams. Documents
/// are added as token vectors (analysis happens in IrsCollection).
/// Deletion is physical (postings are pruned), mirroring the cost the
/// paper attributes to IRS document removal (Section 4.3.1, option 3).
class InvertedIndex {
 public:
  /// Adds a document; returns its internal id.
  DocId AddDocument(const std::string& key,
                    const std::vector<std::string>& tokens);

  /// Removes document `id`; scans the dictionary pruning its postings.
  Status RemoveDocument(DocId id);

  /// Looks up the internal id of an external key.
  StatusOr<DocId> FindByKey(const std::string& key) const;

  /// Postings list for `term` (nullptr if unknown).
  const std::vector<Posting>* GetPostings(const std::string& term) const;

  /// Document frequency of `term`.
  uint32_t DocFreq(const std::string& term) const;

  /// Info for document `id`.
  StatusOr<const DocInfo*> GetDoc(DocId id) const;

  /// Number of live documents.
  uint32_t doc_count() const { return live_docs_; }

  /// Average live-document length in tokens.
  double avg_doc_length() const;

  /// Number of distinct terms.
  size_t term_count() const { return dictionary_.size(); }

  /// Total token occurrences indexed (live docs).
  uint64_t total_tokens() const { return total_tokens_; }

  /// Approximate main-memory footprint of the index structures, in
  /// bytes (dictionary + postings + doc table). Used by the redundancy
  /// experiment (E8).
  size_t ApproximateSizeBytes() const;

  /// Iterates all live documents.
  template <typename Fn>
  void ForEachDoc(Fn&& fn) const {
    for (DocId id = 0; id < docs_.size(); ++id) {
      if (docs_[id].alive) fn(id, docs_[id]);
    }
  }

  /// Iterates the dictionary in term order (persistence, tests).
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    for (const auto& [term, postings] : dictionary_) fn(term, postings);
  }

  /// Serializes to a binary blob / restores from one.
  std::string Serialize() const;
  static StatusOr<InvertedIndex> Deserialize(std::string_view data);

  /// Structural invariants (sorted postings, tf == positions.size(),
  /// doc lengths consistent). Empty string when consistent.
  std::string CheckInvariants() const;

 private:
  // Term -> postings sorted by doc id. std::map keeps deterministic
  // iteration for serialization and tests.
  std::map<std::string, std::vector<Posting>> dictionary_;
  std::vector<DocInfo> docs_;
  std::unordered_map<std::string, DocId> by_key_;
  uint32_t live_docs_ = 0;
  uint64_t total_tokens_ = 0;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_INVERTED_INDEX_H_
