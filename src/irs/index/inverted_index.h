#ifndef SDMS_IRS_INDEX_INVERTED_INDEX_H_
#define SDMS_IRS_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sdms {
class ThreadPool;
}

namespace sdms::irs {

/// Internal document identifier within one index.
using DocId = uint32_t;

/// One posting: a document and the term's occurrences in it.
struct Posting {
  DocId doc = 0;
  uint32_t tf = 0;
  /// Word positions (0-based, post-analysis); enables phrase/proximity
  /// extensions and makes the on-disk format realistic.
  std::vector<uint32_t> positions;
};

/// Per-document bookkeeping.
struct DocInfo {
  /// External key — the OODBMS object identifier string ("oid:n"). The
  /// paper stores the OID as IRS-document meta data (Section 4.3).
  std::string key;
  /// Document length in analyzed tokens.
  uint32_t length = 0;
  bool alive = false;
};

/// One document of a batch insert: external key plus analyzed tokens.
struct DocTokens {
  std::string key;
  std::vector<std::string> tokens;
};

/// A positional inverted index over analyzed token streams. Documents
/// are added as token vectors (analysis happens in IrsCollection).
///
/// Deletion strategies (Section 4.3.1, option 3 — "deleting IRS
/// documents is costly"):
///   * eager (set_eager_delete(true)): the paper's architecture — every
///     removal scans the whole dictionary pruning the document's
///     postings immediately;
///   * tombstone (default): removal only marks the document dead;
///     postings are pruned by Compact(), triggered automatically when
///     tombstoned documents exceed kCompactionRatio of the doc table.
/// Between a tombstone delete and the next compaction, GetPostings /
/// DocFreq still see the dead document's postings; result-producing
/// callers (IrsCollection::Search and the retrieval models) filter dead
/// documents, so hit sets are exact while corpus statistics (df) may
/// briefly include tombstones.
class InvertedIndex {
 public:
  /// Fraction of the doc table that may be tombstoned before an
  /// automatic Compact() (checked after each tombstone delete).
  static constexpr double kCompactionRatio = 0.25;

  /// Adds a document; returns its internal id.
  DocId AddDocument(const std::string& key,
                    const std::vector<std::string>& tokens);

  /// Bulk insert: assigns consecutive doc ids in `docs` order, builds
  /// per-shard postings maps on `pool` (sequentially when null) and
  /// merges them in doc-id order, so the result is bit-identical to
  /// adding the documents one by one. Keys must be distinct and absent
  /// from the index. Returns the ids in input order.
  StatusOr<std::vector<DocId>> AddDocumentsBatch(
      const std::vector<DocTokens>& docs, ThreadPool* pool = nullptr);

  /// Removes document `id` — tombstone or eager prune depending on
  /// set_eager_delete().
  Status RemoveDocument(DocId id);

  /// Prunes the postings of every tombstoned document now. Returns the
  /// number of tombstones cleared.
  size_t Compact();

  /// Switches between the paper's eager dictionary-scan delete and
  /// tombstone + threshold compaction (the default).
  void set_eager_delete(bool eager) { eager_delete_ = eager; }
  bool eager_delete() const { return eager_delete_; }

  /// Dead documents whose postings are not yet pruned.
  size_t tombstone_count() const { return tombstones_; }

  /// Looks up the internal id of an external key.
  StatusOr<DocId> FindByKey(const std::string& key) const;

  /// Postings list for `term` (nullptr if unknown). May include
  /// tombstoned documents until the next Compact().
  const std::vector<Posting>* GetPostings(const std::string& term) const;

  /// Document frequency of `term` (including tombstones, see above).
  uint32_t DocFreq(const std::string& term) const;

  /// Info for document `id`.
  StatusOr<const DocInfo*> GetDoc(DocId id) const;

  /// True when `id` names a live document.
  bool IsAlive(DocId id) const {
    return id < docs_.size() && docs_[id].alive;
  }

  /// Number of live documents.
  uint32_t doc_count() const { return live_docs_; }

  /// Average live-document length in tokens.
  double avg_doc_length() const;

  /// Number of distinct terms (including terms whose only postings are
  /// tombstoned; converges after Compact()).
  size_t term_count() const { return dictionary_.size(); }

  /// Total token occurrences indexed (live docs).
  uint64_t total_tokens() const { return total_tokens_; }

  /// Approximate main-memory footprint of the index structures, in
  /// bytes (dictionary + postings + doc table). Used by the redundancy
  /// experiment (E8).
  size_t ApproximateSizeBytes() const;

  /// Iterates all live documents.
  template <typename Fn>
  void ForEachDoc(Fn&& fn) const {
    for (DocId id = 0; id < docs_.size(); ++id) {
      if (docs_[id].alive) fn(id, docs_[id]);
    }
  }

  /// Iterates the dictionary in term order (persistence, tests).
  /// Postings passed to `fn` may include tombstoned documents.
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    for (const auto* entry : SortedTerms()) fn(entry->first, entry->second);
  }

  /// Serializes to a binary blob / restores from one. The serialized
  /// form is always compacted (tombstoned postings are skipped), so
  /// tombstone and eager indexes over the same documents serialize
  /// identically.
  std::string Serialize() const;
  static StatusOr<InvertedIndex> Deserialize(std::string_view data);

  /// Structural invariants (sorted postings, tf == positions.size(),
  /// doc lengths consistent, dead postings only for pending
  /// tombstones). Empty string when consistent.
  std::string CheckInvariants() const;

  /// Content digest independent of internal DocId assignment and
  /// insertion/compaction history: live documents and their postings
  /// are canonicalized by external key and term before hashing. Two
  /// indexes holding the same documents with the same token streams
  /// digest identically, no matter in which order (or through how many
  /// remove/re-add cycles) they were built. This is the "bit-identical
  /// to the fault-free oracle" comparison of the simulation harness.
  std::string CanonicalDigest() const;

 private:
  using DictEntry = std::pair<const std::string, std::vector<Posting>>;

  /// Dictionary entries ordered by term (built on demand; the
  /// dictionary itself is hashed for O(1) lookups on the query path).
  std::vector<const DictEntry*> SortedTerms() const;

  /// Appends `tokens` of document `id` into `dict`, positions grouped
  /// per term. Shared by the single and batch insert paths.
  static void AccumulatePostings(
      DocId id, const std::vector<std::string>& tokens,
      std::unordered_map<std::string, std::vector<Posting>>& dict);

  void PrunePostingsOfDeadDocs();
  void MaybeCompact();

  // Term -> postings sorted by doc id; hashed for the query hot path,
  // with SortedTerms() providing the deterministic iteration order that
  // serialization and tests need.
  std::unordered_map<std::string, std::vector<Posting>> dictionary_;
  std::vector<DocInfo> docs_;
  std::unordered_map<std::string, DocId> by_key_;
  /// Dead docs whose postings still sit in the dictionary.
  std::vector<bool> pending_prune_;
  uint32_t live_docs_ = 0;
  uint64_t total_tokens_ = 0;
  size_t tombstones_ = 0;
  bool eager_delete_ = false;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_INVERTED_INDEX_H_
