#include "irs/index/proximity.h"

#include <algorithm>
#include <set>

namespace sdms::irs {

namespace {

/// Positions of `term` in `doc`, or nullptr when absent.
const std::vector<uint32_t>* PositionsOf(const InvertedIndex& index,
                                         const std::string& term, DocId doc) {
  const std::vector<Posting>* postings = index.GetPostings(term);
  if (postings == nullptr) return nullptr;
  auto it = std::lower_bound(
      postings->begin(), postings->end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (it == postings->end() || it->doc != doc) return nullptr;
  return &it->positions;
}

}  // namespace

uint32_t CountOrderedMatches(const InvertedIndex& index,
                             const std::vector<std::string>& terms, DocId doc,
                             uint32_t max_gap) {
  if (terms.size() < 2) return 0;
  std::vector<const std::vector<uint32_t>*> positions;
  positions.reserve(terms.size());
  for (const std::string& t : terms) {
    const std::vector<uint32_t>* p = PositionsOf(index, t, doc);
    if (p == nullptr || p->empty()) return 0;
    positions.push_back(p);
  }
  uint32_t matches = 0;
  // Greedy non-overlapping matching: for each start occurrence of the
  // first term (after the previous match), chain through the remaining
  // terms taking the earliest position within the gap.
  size_t first_idx = 0;
  uint32_t resume_after = 0;
  bool have_resume = false;
  while (first_idx < positions[0]->size()) {
    uint32_t start = (*positions[0])[first_idx];
    if (have_resume && start <= resume_after) {
      ++first_idx;
      continue;
    }
    uint32_t prev = start;
    bool complete = true;
    for (size_t t = 1; t < positions.size(); ++t) {
      const std::vector<uint32_t>& plist = *positions[t];
      auto it = std::upper_bound(plist.begin(), plist.end(), prev);
      if (it == plist.end() || *it > prev + max_gap) {
        complete = false;
        break;
      }
      prev = *it;
    }
    if (complete) {
      ++matches;
      resume_after = prev;
      have_resume = true;
    }
    ++first_idx;
  }
  return matches;
}

uint32_t CountUnorderedMatches(const InvertedIndex& index,
                               const std::vector<std::string>& terms,
                               DocId doc, uint32_t span) {
  if (terms.size() < 2) return 0;
  // Merge all positions tagged by term id.
  std::vector<std::pair<uint32_t, size_t>> merged;  // (position, term idx)
  for (size_t t = 0; t < terms.size(); ++t) {
    const std::vector<uint32_t>* p = PositionsOf(index, terms[t], doc);
    if (p == nullptr || p->empty()) return 0;
    for (uint32_t pos : *p) merged.emplace_back(pos, t);
  }
  std::sort(merged.begin(), merged.end());
  // Sliding window: find minimal windows covering all terms, count
  // them non-overlapping (advance left past the window after a match).
  std::vector<size_t> in_window(terms.size(), 0);
  size_t covered = 0;
  uint32_t matches = 0;
  size_t left = 0;
  for (size_t right = 0; right < merged.size(); ++right) {
    if (in_window[merged[right].second]++ == 0) ++covered;
    // Shrink from the left while still covering.
    while (covered == terms.size()) {
      uint32_t window_span = merged[right].first - merged[left].first + 1;
      if (window_span <= span) {
        ++matches;
        // Non-overlapping: drop everything up to `right`.
        for (size_t i = left; i <= right; ++i) {
          if (--in_window[merged[i].second] == 0) --covered;
        }
        left = right + 1;
        break;
      }
      if (--in_window[merged[left].second] == 0) --covered;
      ++left;
    }
  }
  return matches;
}

std::map<DocId, uint32_t> WindowMatchFrequencies(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    bool ordered, uint32_t window) {
  std::map<DocId, uint32_t> out;
  if (terms.empty()) return out;
  // Candidates: documents containing the rarest term.
  const std::string* rarest = &terms[0];
  for (const std::string& t : terms) {
    if (index.DocFreq(t) < index.DocFreq(*rarest)) rarest = &t;
  }
  const std::vector<Posting>* postings = index.GetPostings(*rarest);
  if (postings == nullptr) return out;
  for (const Posting& p : *postings) {
    uint32_t tf = ordered
                      ? CountOrderedMatches(index, terms, p.doc, window)
                      : CountUnorderedMatches(index, terms, p.doc, window);
    if (tf > 0) out[p.doc] = tf;
  }
  return out;
}

}  // namespace sdms::irs
