#include "irs/index/proximity.h"

#include <algorithm>

#include "irs/index/postings_kernels.h"

namespace sdms::irs {

namespace {

/// Core ordered matcher over per-term position lists (one doc).
uint32_t OrderedMatchesIn(
    const std::vector<const std::vector<uint32_t>*>& positions,
    uint32_t max_gap) {
  uint32_t matches = 0;
  // Greedy non-overlapping matching: for each start occurrence of the
  // first term (after the previous match), chain through the remaining
  // terms taking the earliest position within the gap.
  size_t first_idx = 0;
  uint32_t resume_after = 0;
  bool have_resume = false;
  while (first_idx < positions[0]->size()) {
    uint32_t start = (*positions[0])[first_idx];
    if (have_resume && start <= resume_after) {
      ++first_idx;
      continue;
    }
    uint32_t prev = start;
    bool complete = true;
    for (size_t t = 1; t < positions.size(); ++t) {
      const std::vector<uint32_t>& plist = *positions[t];
      auto it = std::upper_bound(plist.begin(), plist.end(), prev);
      if (it == plist.end() || *it > prev + max_gap) {
        complete = false;
        break;
      }
      prev = *it;
    }
    if (complete) {
      ++matches;
      resume_after = prev;
      have_resume = true;
    }
    ++first_idx;
  }
  return matches;
}

/// Core unordered matcher over per-term position lists (one doc).
uint32_t UnorderedMatchesIn(
    const std::vector<const std::vector<uint32_t>*>& positions,
    uint32_t span) {
  size_t nterms = positions.size();
  // Merge all positions tagged by term id.
  std::vector<std::pair<uint32_t, size_t>> merged;  // (position, term idx)
  for (size_t t = 0; t < nterms; ++t) {
    for (uint32_t pos : *positions[t]) merged.emplace_back(pos, t);
  }
  std::sort(merged.begin(), merged.end());
  // Sliding window: find minimal windows covering all terms, count
  // them non-overlapping (advance left past the window after a match).
  std::vector<size_t> in_window(nterms, 0);
  size_t covered = 0;
  uint32_t matches = 0;
  size_t left = 0;
  for (size_t right = 0; right < merged.size(); ++right) {
    if (in_window[merged[right].second]++ == 0) ++covered;
    // Shrink from the left while still covering.
    while (covered == nterms) {
      uint32_t window_span = merged[right].first - merged[left].first + 1;
      if (window_span <= span) {
        ++matches;
        // Non-overlapping: drop everything up to `right`.
        for (size_t i = left; i <= right; ++i) {
          if (--in_window[merged[i].second] == 0) --covered;
        }
        left = right + 1;
        break;
      }
      if (--in_window[merged[left].second] == 0) --covered;
      ++left;
    }
  }
  return matches;
}

/// One cursor per term, or an empty vector when any term is absent
/// (no window can match then).
std::vector<PostingsCursor> OpenCursors(const InvertedIndex& index,
                                        const std::vector<std::string>& terms) {
  std::vector<PostingsCursor> cursors;
  cursors.reserve(terms.size());
  for (const std::string& t : terms) {
    PostingsCursor c = index.OpenCursor(t);
    if (c.AtEnd()) return {};
    cursors.push_back(std::move(c));
  }
  return cursors;
}

/// Places every cursor on `doc`; false when any term misses it.
bool PlaceOn(std::vector<PostingsCursor>& cursors, DocId doc) {
  for (PostingsCursor& c : cursors) {
    if (!c.SkipTo(doc) || c.doc() != doc) return false;
  }
  return true;
}

/// Position-list pointers for cursors already placed on one document.
/// The references stay valid until a cursor moves again, so they are
/// collected only after *all* cursors are placed.
std::vector<const std::vector<uint32_t>*> PositionsView(
    std::vector<PostingsCursor>& cursors) {
  std::vector<const std::vector<uint32_t>*> positions;
  positions.reserve(cursors.size());
  for (PostingsCursor& c : cursors) positions.push_back(&c.positions());
  return positions;
}

}  // namespace

uint32_t CountOrderedMatches(const InvertedIndex& index,
                             const std::vector<std::string>& terms, DocId doc,
                             uint32_t max_gap) {
  if (terms.size() < 2) return 0;
  std::vector<PostingsCursor> cursors = OpenCursors(index, terms);
  if (cursors.empty() || !PlaceOn(cursors, doc)) return 0;
  return OrderedMatchesIn(PositionsView(cursors), max_gap);
}

uint32_t CountUnorderedMatches(const InvertedIndex& index,
                               const std::vector<std::string>& terms,
                               DocId doc, uint32_t span) {
  if (terms.size() < 2) return 0;
  std::vector<PostingsCursor> cursors = OpenCursors(index, terms);
  if (cursors.empty() || !PlaceOn(cursors, doc)) return 0;
  return UnorderedMatchesIn(PositionsView(cursors), span);
}

StatusOr<std::map<DocId, uint32_t>> WindowMatchFrequencies(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    bool ordered, uint32_t window) {
  std::map<DocId, uint32_t> out;
  if (terms.size() < 2) return out;
  // Candidate generation: a window match needs every term, so the
  // candidates are exactly the cursor intersection — whole blocks that
  // cannot contain a common document are skipped without decoding.
  // The visitor fires with every cursor positioned on the candidate,
  // so the position lists are read straight out of the cursors.
  std::vector<PostingsCursor> cursors = OpenCursors(index, terms);
  if (cursors.empty()) return out;
  SDMS_RETURN_IF_ERROR(IntersectCursorsVisit(cursors, [&](DocId doc) {
    std::vector<const std::vector<uint32_t>*> positions =
        PositionsView(cursors);
    uint32_t tf = ordered ? OrderedMatchesIn(positions, window)
                          : UnorderedMatchesIn(positions, window);
    if (tf > 0) out[doc] = tf;
  }));
  return out;
}

}  // namespace sdms::irs
