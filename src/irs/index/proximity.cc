#include "irs/index/proximity.h"

#include <algorithm>

#include "irs/index/postings_kernels.h"

namespace sdms::irs {

namespace {

/// Positions of `term` in `doc`, or nullptr when absent.
const std::vector<uint32_t>* PositionsOf(const InvertedIndex& index,
                                         const std::string& term, DocId doc) {
  const std::vector<Posting>* postings = index.GetPostings(term);
  if (postings == nullptr) return nullptr;
  auto it = std::lower_bound(
      postings->begin(), postings->end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (it == postings->end() || it->doc != doc) return nullptr;
  return &it->positions;
}

/// Core ordered matcher over per-term position lists (one doc).
uint32_t OrderedMatchesIn(
    const std::vector<const std::vector<uint32_t>*>& positions,
    uint32_t max_gap) {
  uint32_t matches = 0;
  // Greedy non-overlapping matching: for each start occurrence of the
  // first term (after the previous match), chain through the remaining
  // terms taking the earliest position within the gap.
  size_t first_idx = 0;
  uint32_t resume_after = 0;
  bool have_resume = false;
  while (first_idx < positions[0]->size()) {
    uint32_t start = (*positions[0])[first_idx];
    if (have_resume && start <= resume_after) {
      ++first_idx;
      continue;
    }
    uint32_t prev = start;
    bool complete = true;
    for (size_t t = 1; t < positions.size(); ++t) {
      const std::vector<uint32_t>& plist = *positions[t];
      auto it = std::upper_bound(plist.begin(), plist.end(), prev);
      if (it == plist.end() || *it > prev + max_gap) {
        complete = false;
        break;
      }
      prev = *it;
    }
    if (complete) {
      ++matches;
      resume_after = prev;
      have_resume = true;
    }
    ++first_idx;
  }
  return matches;
}

/// Core unordered matcher over per-term position lists (one doc).
uint32_t UnorderedMatchesIn(
    const std::vector<const std::vector<uint32_t>*>& positions,
    uint32_t span) {
  size_t nterms = positions.size();
  // Merge all positions tagged by term id.
  std::vector<std::pair<uint32_t, size_t>> merged;  // (position, term idx)
  for (size_t t = 0; t < nterms; ++t) {
    for (uint32_t pos : *positions[t]) merged.emplace_back(pos, t);
  }
  std::sort(merged.begin(), merged.end());
  // Sliding window: find minimal windows covering all terms, count
  // them non-overlapping (advance left past the window after a match).
  std::vector<size_t> in_window(nterms, 0);
  size_t covered = 0;
  uint32_t matches = 0;
  size_t left = 0;
  for (size_t right = 0; right < merged.size(); ++right) {
    if (in_window[merged[right].second]++ == 0) ++covered;
    // Shrink from the left while still covering.
    while (covered == nterms) {
      uint32_t window_span = merged[right].first - merged[left].first + 1;
      if (window_span <= span) {
        ++matches;
        // Non-overlapping: drop everything up to `right`.
        for (size_t i = left; i <= right; ++i) {
          if (--in_window[merged[i].second] == 0) --covered;
        }
        left = right + 1;
        break;
      }
      if (--in_window[merged[left].second] == 0) --covered;
      ++left;
    }
  }
  return matches;
}

}  // namespace

uint32_t CountOrderedMatches(const InvertedIndex& index,
                             const std::vector<std::string>& terms, DocId doc,
                             uint32_t max_gap) {
  if (terms.size() < 2) return 0;
  std::vector<const std::vector<uint32_t>*> positions;
  positions.reserve(terms.size());
  for (const std::string& t : terms) {
    const std::vector<uint32_t>* p = PositionsOf(index, t, doc);
    if (p == nullptr || p->empty()) return 0;
    positions.push_back(p);
  }
  return OrderedMatchesIn(positions, max_gap);
}

uint32_t CountUnorderedMatches(const InvertedIndex& index,
                               const std::vector<std::string>& terms,
                               DocId doc, uint32_t span) {
  if (terms.size() < 2) return 0;
  std::vector<const std::vector<uint32_t>*> positions;
  positions.reserve(terms.size());
  for (const std::string& t : terms) {
    const std::vector<uint32_t>* p = PositionsOf(index, t, doc);
    if (p == nullptr || p->empty()) return 0;
    positions.push_back(p);
  }
  return UnorderedMatchesIn(positions, span);
}

std::map<DocId, uint32_t> WindowMatchFrequencies(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    bool ordered, uint32_t window) {
  std::map<DocId, uint32_t> out;
  if (terms.size() < 2) return out;
  // Candidate generation: a window match needs every term, so the
  // candidate set is the galloping intersection of all postings lists
  // (doc-at-a-time, rarest list driving) instead of a scan of the
  // rarest term's postings with per-doc binary searches.
  std::vector<const std::vector<Posting>*> lists;
  lists.reserve(terms.size());
  for (const std::string& t : terms) {
    const std::vector<Posting>* p = index.GetPostings(t);
    if (p == nullptr || p->empty()) return out;
    lists.push_back(p);
  }
  std::vector<DocId> candidates = IntersectPostings(lists);
  // Ascending candidates: advance a cursor per term instead of a fresh
  // binary search per (term, doc) pair.
  std::vector<size_t> cursors(terms.size(), 0);
  std::vector<const std::vector<uint32_t>*> positions(terms.size());
  for (DocId doc : candidates) {
    for (size_t t = 0; t < lists.size(); ++t) {
      cursors[t] = GallopTo(*lists[t], cursors[t], doc);
      // Intersection guarantees presence.
      positions[t] = &(*lists[t])[cursors[t]].positions;
    }
    uint32_t tf = ordered ? OrderedMatchesIn(positions, window)
                          : UnorderedMatchesIn(positions, window);
    if (tf > 0) out[doc] = tf;
  }
  return out;
}

}  // namespace sdms::irs
