#ifndef SDMS_IRS_INDEX_POSTINGS_CODEC_H_
#define SDMS_IRS_INDEX_POSTINGS_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "irs/index/block_postings.h"

namespace sdms::irs::codec {

/// Variable-byte (LEB128) integer coding — the classic postings
/// compression primitive: 7 value bits per byte, high bit set on every
/// byte except the last. Small deltas (the common case after
/// gap-encoding sorted doc ids and positions) cost one byte.
void PutVarU32(std::string& out, uint32_t v);

/// Decodes one varint at `*p`, advancing it. False on truncation or a
/// value that overflows 32 bits (treated as corruption by callers).
bool GetVarU32(const char*& p, const char* end, uint32_t& v);

/// Appends one posting to a block payload. `prev_doc` is the doc id of
/// the previous posting in the block (== `doc` for the first posting,
/// which therefore encodes gap 0 — the absolute id lives in the block's
/// metadata, never in the payload). Positions are gap-encoded within
/// the posting. Layout per posting:
///   doc_gap, tf, npos, pos_0, pos_gap...
void AppendPosting(std::string& out, DocId prev_doc, DocId doc, uint32_t tf,
                   const std::vector<uint32_t>& positions);

/// Decodes a block payload produced by EncodeBlock back into `count`
/// postings appended to `out`. `first_doc` seeds the gap decoding.
Status DecodeBlock(std::string_view payload, DocId first_doc, uint32_t count,
                   std::vector<Posting>& out);

}  // namespace sdms::irs::codec

#endif  // SDMS_IRS_INDEX_POSTINGS_CODEC_H_
