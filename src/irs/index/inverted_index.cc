#include "irs/index/inverted_index.h"

#include <algorithm>

#include "common/obs/metrics.h"
#include "oodb/storage/serializer.h"

namespace sdms::irs {

using oodb::Decoder;
using oodb::Encoder;

namespace {

obs::Counter& TermLookups() {
  static obs::Counter& c = obs::GetCounter("irs.index.term_lookups");
  return c;
}

obs::Counter& PostingsScanned() {
  static obs::Counter& c = obs::GetCounter("irs.index.postings_scanned");
  return c;
}

}  // namespace

DocId InvertedIndex::AddDocument(const std::string& key,
                                 const std::vector<std::string>& tokens) {
  DocId id = static_cast<DocId>(docs_.size());
  DocInfo info;
  info.key = key;
  info.length = static_cast<uint32_t>(tokens.size());
  info.alive = true;
  docs_.push_back(std::move(info));
  by_key_[key] = id;
  ++live_docs_;
  total_tokens_ += tokens.size();

  // Group positions per term for this document.
  std::map<std::string, std::vector<uint32_t>> grouped;
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    grouped[tokens[pos]].push_back(pos);
  }
  for (auto& [term, positions] : grouped) {
    Posting p;
    p.doc = id;
    p.tf = static_cast<uint32_t>(positions.size());
    p.positions = std::move(positions);
    // Doc ids are monotonically increasing, so appending keeps the
    // postings sorted.
    dictionary_[term].push_back(std::move(p));
  }
  return id;
}

Status InvertedIndex::RemoveDocument(DocId id) {
  if (id >= docs_.size() || !docs_[id].alive) {
    return Status::NotFound("no live IRS document " + std::to_string(id));
  }
  docs_[id].alive = false;
  by_key_.erase(docs_[id].key);
  --live_docs_;
  total_tokens_ -= docs_[id].length;
  // Physical prune: this full-dictionary scan is the "deleting IRS
  // documents is costly" behaviour the paper discusses (4.3.1 (3)).
  for (auto it = dictionary_.begin(); it != dictionary_.end();) {
    auto& postings = it->second;
    postings.erase(std::remove_if(postings.begin(), postings.end(),
                                  [id](const Posting& p) { return p.doc == id; }),
                   postings.end());
    if (postings.empty()) {
      it = dictionary_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

StatusOr<DocId> InvertedIndex::FindByKey(const std::string& key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no IRS document with key " + key);
  }
  return it->second;
}

const std::vector<Posting>* InvertedIndex::GetPostings(
    const std::string& term) const {
  TermLookups().Increment();
  auto it = dictionary_.find(term);
  if (it == dictionary_.end()) return nullptr;
  // Callers walk the returned list in full, so its length is the
  // number of postings this lookup puts in play.
  PostingsScanned().Add(it->second.size());
  return &it->second;
}

uint32_t InvertedIndex::DocFreq(const std::string& term) const {
  const std::vector<Posting>* p = GetPostings(term);
  return p == nullptr ? 0 : static_cast<uint32_t>(p->size());
}

StatusOr<const DocInfo*> InvertedIndex::GetDoc(DocId id) const {
  if (id >= docs_.size()) {
    return Status::NotFound("no IRS document " + std::to_string(id));
  }
  return &docs_[id];
}

double InvertedIndex::avg_doc_length() const {
  if (live_docs_ == 0) return 0.0;
  return static_cast<double>(total_tokens_) / static_cast<double>(live_docs_);
}

size_t InvertedIndex::ApproximateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [term, postings] : dictionary_) {
    bytes += term.size() + sizeof(void*) * 4;  // dictionary entry overhead
    for (const Posting& p : postings) {
      bytes += sizeof(Posting) + p.positions.size() * sizeof(uint32_t);
    }
  }
  for (const DocInfo& d : docs_) {
    bytes += sizeof(DocInfo) + d.key.size();
  }
  return bytes;
}

std::string InvertedIndex::Serialize() const {
  Encoder enc;
  enc.PutU64(docs_.size());
  for (const DocInfo& d : docs_) {
    enc.PutString(d.key);
    enc.PutU32(d.length);
    enc.PutU8(d.alive ? 1 : 0);
  }
  enc.PutU64(dictionary_.size());
  for (const auto& [term, postings] : dictionary_) {
    enc.PutString(term);
    enc.PutU64(postings.size());
    for (const Posting& p : postings) {
      enc.PutU32(p.doc);
      enc.PutU32(p.tf);
      // Delta-encode positions (classic postings compression).
      uint32_t prev = 0;
      enc.PutU64(p.positions.size());
      for (uint32_t pos : p.positions) {
        enc.PutU32(pos - prev);
        prev = pos;
      }
    }
  }
  return enc.Release();
}

StatusOr<InvertedIndex> InvertedIndex::Deserialize(std::string_view data) {
  InvertedIndex index;
  Decoder dec(data);
  SDMS_ASSIGN_OR_RETURN(uint64_t ndocs, dec.GetU64());
  for (uint64_t i = 0; i < ndocs; ++i) {
    DocInfo d;
    SDMS_ASSIGN_OR_RETURN(d.key, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(d.length, dec.GetU32());
    SDMS_ASSIGN_OR_RETURN(uint8_t alive, dec.GetU8());
    d.alive = alive != 0;
    if (d.alive) {
      index.by_key_[d.key] = static_cast<DocId>(i);
      ++index.live_docs_;
      index.total_tokens_ += d.length;
    }
    index.docs_.push_back(std::move(d));
  }
  SDMS_ASSIGN_OR_RETURN(uint64_t nterms, dec.GetU64());
  for (uint64_t t = 0; t < nterms; ++t) {
    SDMS_ASSIGN_OR_RETURN(std::string term, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(uint64_t nposts, dec.GetU64());
    std::vector<Posting> postings;
    postings.reserve(nposts);
    for (uint64_t i = 0; i < nposts; ++i) {
      Posting p;
      SDMS_ASSIGN_OR_RETURN(p.doc, dec.GetU32());
      SDMS_ASSIGN_OR_RETURN(p.tf, dec.GetU32());
      SDMS_ASSIGN_OR_RETURN(uint64_t npos, dec.GetU64());
      uint32_t cur = 0;
      for (uint64_t k = 0; k < npos; ++k) {
        SDMS_ASSIGN_OR_RETURN(uint32_t delta, dec.GetU32());
        cur += delta;
        p.positions.push_back(cur);
      }
      postings.push_back(std::move(p));
    }
    index.dictionary_.emplace(std::move(term), std::move(postings));
  }
  return index;
}

std::string InvertedIndex::CheckInvariants() const {
  std::vector<uint64_t> doc_token_counts(docs_.size(), 0);
  for (const auto& [term, postings] : dictionary_) {
    if (postings.empty()) return "empty postings list for term " + term;
    DocId prev = 0;
    bool first = true;
    for (const Posting& p : postings) {
      if (!first && p.doc <= prev) return "postings unsorted for " + term;
      first = false;
      prev = p.doc;
      if (p.doc >= docs_.size()) return "posting references unknown doc";
      if (!docs_[p.doc].alive) return "posting references dead doc";
      if (p.tf != p.positions.size()) return "tf != positions.size()";
      for (size_t i = 1; i < p.positions.size(); ++i) {
        if (p.positions[i] <= p.positions[i - 1]) {
          return "positions unsorted for " + term;
        }
      }
      doc_token_counts[p.doc] += p.tf;
    }
  }
  uint64_t tokens = 0;
  uint32_t live = 0;
  for (DocId id = 0; id < docs_.size(); ++id) {
    if (!docs_[id].alive) continue;
    ++live;
    tokens += docs_[id].length;
    if (doc_token_counts[id] != docs_[id].length) {
      return "doc length mismatch for " + docs_[id].key;
    }
  }
  if (live != live_docs_) return "live_docs_ mismatch";
  if (tokens != total_tokens_) return "total_tokens_ mismatch";
  return "";
}

}  // namespace sdms::irs
