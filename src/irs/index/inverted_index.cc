#include "irs/index/inverted_index.h"

#include <algorithm>
#include <cstdio>

#include "common/fault/fault.h"
#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/thread_pool.h"
#include "irs/storage/postings_store.h"
#include "oodb/storage/serializer.h"

namespace sdms::irs {

using oodb::Decoder;
using oodb::Encoder;

namespace {

obs::Counter& TermLookups() {
  static obs::Counter& c = obs::GetCounter("irs.index.term_lookups");
  return c;
}

obs::Counter& BatchDocs() {
  static obs::Counter& c = obs::GetCounter("irs.index.batch_docs");
  return c;
}

obs::Counter& BatchCalls() {
  static obs::Counter& c = obs::GetCounter("irs.index.batch_calls");
  return c;
}

obs::Counter& Compactions() {
  static obs::Counter& c = obs::GetCounter("irs.index.compactions");
  return c;
}

obs::Counter& CompactionDecodeFailures() {
  static obs::Counter& c =
      obs::GetCounter("irs.index.compaction_decode_failures");
  return c;
}

obs::Gauge& IndexMemoryBytes() {
  static obs::Gauge& g = obs::GetGauge("irs.index.memory_bytes");
  return g;
}

}  // namespace

InvertedIndex::InvertedIndex() = default;

InvertedIndex::~InvertedIndex() {
  IndexMemoryBytes().Add(-reported_memory_bytes_);
}

InvertedIndex::InvertedIndex(InvertedIndex&& other) noexcept {
  *this = std::move(other);
}

InvertedIndex& InvertedIndex::operator=(InvertedIndex&& other) noexcept {
  if (this == &other) return *this;
  IndexMemoryBytes().Add(-reported_memory_bytes_);
  dictionary_ = std::move(other.dictionary_);
  docs_ = std::move(other.docs_);
  by_key_ = std::move(other.by_key_);
  pending_prune_ = std::move(other.pending_prune_);
  live_docs_ = other.live_docs_;
  total_tokens_ = other.total_tokens_;
  tombstones_ = other.tombstones_;
  eager_delete_ = other.eager_delete_;
  auto_compact_ = other.auto_compact_;
  store_ = std::move(other.store_);
  // The cached sorted view holds pointers into the moved-from map's
  // nodes; unordered_map move preserves nodes, but rebuild lazily
  // anyway — the mutex member is why these operators are hand-written.
  sorted_terms_.clear();
  sorted_terms_dirty_ = true;
  reported_memory_bytes_ = other.reported_memory_bytes_;
  other.reported_memory_bytes_ = 0;
  other.live_docs_ = 0;
  other.total_tokens_ = 0;
  other.tombstones_ = 0;
  return *this;
}

void InvertedIndex::AccumulatePostings(
    DocId id, const std::vector<std::string>& tokens,
    std::unordered_map<std::string, BlockPostingsList>& dict) {
  // Group positions per term for this document.
  std::unordered_map<std::string, std::vector<uint32_t>> grouped;
  grouped.reserve(tokens.size());
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    grouped[tokens[pos]].push_back(pos);
  }
  uint32_t doc_len = static_cast<uint32_t>(tokens.size());
  for (auto& [term, positions] : grouped) {
    // Doc ids are monotonically increasing, so appending keeps the
    // block sequence sorted.
    dict[term].Append(id, static_cast<uint32_t>(positions.size()), positions,
                      doc_len);
  }
}

DocId InvertedIndex::AddDocument(const std::string& key,
                                 const std::vector<std::string>& tokens) {
  DocId id = static_cast<DocId>(docs_.size());
  DocInfo info;
  info.key = key;
  info.length = static_cast<uint32_t>(tokens.size());
  info.alive = true;
  docs_.push_back(std::move(info));
  pending_prune_.push_back(false);
  by_key_[key] = id;
  ++live_docs_;
  total_tokens_ += tokens.size();
  AccumulatePostings(id, tokens, dictionary_);
  InvalidateSortedTerms();
  return id;
}

StatusOr<std::vector<DocId>> InvertedIndex::AddDocumentsBatch(
    const std::vector<DocTokens>& docs, ThreadPool* pool) {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  if (docs.empty()) return ids;

  // Phase 1 (sequential, cheap): assign consecutive ids and register
  // the documents, so shard workers only touch disjoint postings state.
  const DocId base = static_cast<DocId>(docs_.size());
  docs_.reserve(docs_.size() + docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    auto [it, inserted] =
        by_key_.emplace(docs[i].key, base + static_cast<DocId>(i));
    if (!inserted) {
      // Roll back the keys registered so far; the index is unchanged.
      for (size_t k = 0; k < i; ++k) by_key_.erase(docs[k].key);
      return Status::AlreadyExists("duplicate IRS document key in batch: " +
                                   docs[i].key);
    }
  }
  for (const DocTokens& d : docs) {
    DocInfo info;
    info.key = d.key;
    info.length = static_cast<uint32_t>(d.tokens.size());
    info.alive = true;
    docs_.push_back(std::move(info));
    pending_prune_.push_back(false);
    ++live_docs_;
    total_tokens_ += d.tokens.size();
    ids.push_back(base + static_cast<DocId>(ids.size()));
  }

  // Phase 2 (parallel): contiguous shards of the batch each build a
  // local term -> postings map. Within a shard postings are generated
  // in ascending doc-id order.
  size_t shards = pool != nullptr ? std::min(pool->size(), docs.size()) : 1;
  std::vector<std::unordered_map<std::string, BlockPostingsList>> local(
      shards);
  if (shards <= 1) {
    for (size_t i = 0; i < docs.size(); ++i) {
      AccumulatePostings(base + static_cast<DocId>(i), docs[i].tokens,
                         local[0]);
    }
  } else {
    size_t chunk = (docs.size() + shards - 1) / shards;
    pool->ParallelFor(shards, [&](size_t sbegin, size_t send) {
      for (size_t s = sbegin; s < send; ++s) {
        size_t lo = s * chunk;
        size_t hi = std::min(lo + chunk, docs.size());
        for (size_t i = lo; i < hi; ++i) {
          AccumulatePostings(base + static_cast<DocId>(i), docs[i].tokens,
                             local[s]);
        }
      }
    });
  }

  // Phase 3 (sequential): splice shard lists in shard order. Shards
  // cover ascending doc-id ranges, so per-term concatenation keeps the
  // block sequence sorted — decoded postings are identical to the
  // sequential path (a shard boundary may just leave a short block).
  for (auto& shard : local) {
    for (auto& [term, list] : shard) {
      auto it = dictionary_.find(term);
      if (it == dictionary_.end()) {
        dictionary_.emplace(term, std::move(list));
      } else {
        it->second.AppendList(std::move(list));
      }
    }
  }
  InvalidateSortedTerms();
  BatchDocs().Add(docs.size());
  BatchCalls().Increment();
  return ids;
}

Status InvertedIndex::RemoveDocument(DocId id) {
  if (id >= docs_.size() || !docs_[id].alive) {
    return Status::NotFound("no live IRS document " + std::to_string(id));
  }
  docs_[id].alive = false;
  by_key_.erase(docs_[id].key);
  --live_docs_;
  total_tokens_ -= docs_[id].length;
  pending_prune_[id] = true;
  ++tombstones_;
  if (eager_delete_) {
    // Physical prune: rewriting every affected list on each delete is
    // the "deleting IRS documents is costly" behaviour the paper
    // discusses (4.3.1 (3)).
    PrunePostingsOfDeadDocs();
  } else {
    MaybeCompact();
  }
  return Status::OK();
}

bool InvertedIndex::PrunePostingsOfDeadDocs() {
  // Rebuild every list without the tombstoned docs. All decodes happen
  // before the dictionary is touched, so a corrupt sealed block aborts
  // the prune with the index unchanged (tombstones stay pending and a
  // later Compact retries).
  std::unordered_map<std::string, BlockPostingsList> rebuilt;
  rebuilt.reserve(dictionary_.size());
  for (const auto& [term, list] : dictionary_) {
    auto postings = list.DecodeAll();
    if (!postings.ok()) {
      CompactionDecodeFailures().Increment();
      return false;
    }
    BlockPostingsList pruned;
    for (const Posting& p : *postings) {
      if (pending_prune_[p.doc]) continue;
      pruned.Append(p.doc, p.tf, p.positions, docs_[p.doc].length);
    }
    if (!pruned.empty()) rebuilt.emplace(term, std::move(pruned));
  }
  dictionary_ = std::move(rebuilt);
  // Every block is memory-resident again; the sealed store (if any) no
  // longer backs anything. The next seal rewrites the postings file.
  store_.reset();
  std::fill(pending_prune_.begin(), pending_prune_.end(), false);
  tombstones_ = 0;
  InvalidateSortedTerms();
  return true;
}

size_t InvertedIndex::Compact() {
  size_t cleared = tombstones_;
  if (cleared == 0) return 0;
  if (!PrunePostingsOfDeadDocs()) return 0;
  Compactions().Increment();
  return cleared;
}

void InvertedIndex::MaybeCompact() {
  if (!auto_compact_ || tombstones_ == 0) return;
  if (static_cast<double>(tombstones_) >=
      kCompactionRatio * static_cast<double>(docs_.size())) {
    Compact();
  }
}

StatusOr<DocId> InvertedIndex::FindByKey(const std::string& key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no IRS document with key " + key);
  }
  return it->second;
}

const BlockPostingsList* InvertedIndex::GetPostingsList(
    const std::string& term) const {
  TermLookups().Increment();
  obs::ProfileCount("term_lookups");
  auto it = dictionary_.find(term);
  return it == dictionary_.end() ? nullptr : &it->second;
}

PostingsCursor InvertedIndex::OpenCursor(const std::string& term) const {
  return PostingsCursor(GetPostingsList(term));
}

StatusOr<std::vector<Posting>> InvertedIndex::DecodePostings(
    const std::string& term) const {
  const BlockPostingsList* list = GetPostingsList(term);
  if (list == nullptr) return std::vector<Posting>{};
  return list->DecodeAll();
}

uint32_t InvertedIndex::DocFreq(const std::string& term) const {
  // Metadata-only: the old flat index walked (and charged) the whole
  // list here; block metadata answers df without decoding anything.
  const BlockPostingsList* list = GetPostingsList(term);
  return list == nullptr ? 0 : static_cast<uint32_t>(list->size());
}

StatusOr<const DocInfo*> InvertedIndex::GetDoc(DocId id) const {
  if (id >= docs_.size()) {
    return Status::NotFound("no IRS document " + std::to_string(id));
  }
  return &docs_[id];
}

double InvertedIndex::avg_doc_length() const {
  if (live_docs_ == 0) return 0.0;
  return static_cast<double>(total_tokens_) / static_cast<double>(live_docs_);
}

size_t InvertedIndex::ApproximateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [term, list] : dictionary_) {
    bytes += term.size() + sizeof(void*) * 4;  // dictionary entry overhead
    bytes += list.ApproxMemoryBytes();
  }
  for (const DocInfo& d : docs_) {
    bytes += sizeof(DocInfo) + d.key.size();
  }
  if (store_ != nullptr) bytes += store_->ApproxMemoryBytes();
  IndexMemoryBytes().Add(static_cast<int64_t>(bytes) -
                         reported_memory_bytes_);
  reported_memory_bytes_ = static_cast<int64_t>(bytes);
  return bytes;
}

Status InvertedIndex::SealToStore(const std::string& path,
                                  const std::string& collection,
                                  int pool_pages) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.seal"));
  // Lay the file out in term order (deterministic image for identical
  // content). Handles are only applied after the new file and store
  // are in place, so any failure leaves the index serving as before.
  const std::vector<const DictEntry*>& terms = SortedTerms();
  PostingsStore::Writer writer;
  std::vector<std::vector<BlockHandle>> handles(terms.size());
  for (size_t t = 0; t < terms.size(); ++t) {
    const BlockPostingsList& list = terms[t]->second;
    handles[t].reserve(list.block_count());
    for (size_t i = 0; i < list.block_count(); ++i) {
      const PostingsBlockMeta& b = list.block(i);
      if (b.sealed) {
        // Re-seal: pull the encoded payload back out of the old store.
        if (store_ == nullptr) {
          return Status::Internal("sealed postings block without a store");
        }
        SDMS_ASSIGN_OR_RETURN(std::string bytes, store_->ReadBlock(b.handle));
        handles[t].push_back(writer.AppendBlock(bytes));
      } else {
        handles[t].push_back(writer.AppendBlock(b.bytes));
      }
    }
  }
  SDMS_RETURN_IF_ERROR(writer.Finish(path));
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<PostingsStore> store,
                        PostingsStore::Open(path, collection, pool_pages));
  store_ = std::move(store);
  for (size_t t = 0; t < terms.size(); ++t) {
    // The sorted view holds const pointers into the dictionary; the
    // underlying entries are ours to mutate.
    auto& list = const_cast<BlockPostingsList&>(terms[t]->second);
    for (size_t i = 0; i < handles[t].size(); ++i) {
      list.MarkSealed(i, handles[t][i]);
    }
    list.set_store(store_.get());
  }
  return Status::OK();
}

const std::vector<const InvertedIndex::DictEntry*>&
InvertedIndex::SortedTerms() const {
  std::lock_guard<std::mutex> lock(sorted_terms_mu_);
  if (sorted_terms_dirty_) {
    sorted_terms_.clear();
    sorted_terms_.reserve(dictionary_.size());
    for (const auto& entry : dictionary_) sorted_terms_.push_back(&entry);
    std::sort(sorted_terms_.begin(), sorted_terms_.end(),
              [](const DictEntry* a, const DictEntry* b) {
                return a->first < b->first;
              });
    sorted_terms_dirty_ = false;
  }
  return sorted_terms_;
}

StatusOr<std::string> InvertedIndex::Serialize() const {
  Encoder enc;
  enc.PutU64(docs_.size());
  for (const DocInfo& d : docs_) {
    enc.PutString(d.key);
    enc.PutU32(d.length);
    enc.PutU8(d.alive ? 1 : 0);
  }
  // Serialize in compacted form: tombstoned postings are dropped, and
  // terms they empty out are not written at all. The per-posting
  // layout is the pre-block-storage snapshot format, unchanged.
  const std::vector<const DictEntry*>& terms = SortedTerms();
  std::vector<std::vector<Posting>> decoded(terms.size());
  uint64_t live_terms = 0;
  for (size_t t = 0; t < terms.size(); ++t) {
    SDMS_ASSIGN_OR_RETURN(decoded[t], terms[t]->second.DecodeAll());
    auto& postings = decoded[t];
    postings.erase(std::remove_if(postings.begin(), postings.end(),
                                  [this](const Posting& p) {
                                    return pending_prune_[p.doc];
                                  }),
                   postings.end());
    if (!postings.empty()) ++live_terms;
  }
  enc.PutU64(live_terms);
  for (size_t t = 0; t < terms.size(); ++t) {
    const auto& postings = decoded[t];
    if (postings.empty()) continue;
    enc.PutString(terms[t]->first);
    enc.PutU64(postings.size());
    for (const Posting& p : postings) {
      enc.PutU32(p.doc);
      enc.PutU32(p.tf);
      // Delta-encode positions (classic postings compression).
      uint32_t prev = 0;
      enc.PutU64(p.positions.size());
      for (uint32_t pos : p.positions) {
        enc.PutU32(pos - prev);
        prev = pos;
      }
    }
  }
  return enc.Release();
}

StatusOr<InvertedIndex> InvertedIndex::Deserialize(std::string_view data) {
  InvertedIndex index;
  Decoder dec(data);
  SDMS_ASSIGN_OR_RETURN(uint64_t ndocs, dec.GetU64());
  for (uint64_t i = 0; i < ndocs; ++i) {
    DocInfo d;
    SDMS_ASSIGN_OR_RETURN(d.key, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(d.length, dec.GetU32());
    SDMS_ASSIGN_OR_RETURN(uint8_t alive, dec.GetU8());
    d.alive = alive != 0;
    if (d.alive) {
      index.by_key_[d.key] = static_cast<DocId>(i);
      ++index.live_docs_;
      index.total_tokens_ += d.length;
    }
    index.docs_.push_back(std::move(d));
    index.pending_prune_.push_back(false);
  }
  SDMS_ASSIGN_OR_RETURN(uint64_t nterms, dec.GetU64());
  for (uint64_t t = 0; t < nterms; ++t) {
    SDMS_ASSIGN_OR_RETURN(std::string term, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(uint64_t nposts, dec.GetU64());
    BlockPostingsList list;
    std::vector<uint32_t> positions;
    for (uint64_t i = 0; i < nposts; ++i) {
      uint32_t doc = 0, tf = 0;
      SDMS_ASSIGN_OR_RETURN(doc, dec.GetU32());
      SDMS_ASSIGN_OR_RETURN(tf, dec.GetU32());
      SDMS_ASSIGN_OR_RETURN(uint64_t npos, dec.GetU64());
      positions.clear();
      uint32_t cur = 0;
      for (uint64_t k = 0; k < npos; ++k) {
        SDMS_ASSIGN_OR_RETURN(uint32_t delta, dec.GetU32());
        cur += delta;
        positions.push_back(cur);
      }
      uint32_t doc_len =
          doc < index.docs_.size() ? index.docs_[doc].length : 0;
      list.Append(doc, tf, positions, doc_len);
    }
    index.dictionary_.emplace(std::move(term), std::move(list));
  }
  index.InvalidateSortedTerms();
  return index;
}

void InvertedIndex::CollectCanonicalDocs(
    std::vector<std::pair<std::string, uint32_t>>& out) const {
  ForEachDoc(
      [&](DocId, const DocInfo& d) { out.emplace_back(d.key, d.length); });
}

Status InvertedIndex::CollectCanonicalPostings(
    std::vector<CanonicalPosting>& out) const {
  Status decode_error;
  ForEachTerm([&](const std::string& term, const BlockPostingsList& list) {
    auto postings = list.DecodeAll();
    if (!postings.ok()) {
      if (decode_error.ok()) decode_error = postings.status();
      return;
    }
    for (const Posting& p : *postings) {
      if (!IsAlive(p.doc)) continue;
      CanonicalPosting entry;
      entry.term = term;
      entry.key = docs_[p.doc].key;
      entry.payload = std::to_string(p.tf);
      for (uint32_t pos : p.positions) {
        entry.payload += " " + std::to_string(pos);
      }
      out.push_back(std::move(entry));
    }
  });
  return decode_error;
}

std::string InvertedIndex::FinishCanonicalDigest(
    std::vector<std::pair<std::string, uint32_t>> docs,
    std::vector<CanonicalPosting> postings, const Status& decode_error) {
  if (!decode_error.ok()) {
    // A digest must always be produced; a corrupt block yields one
    // that can never match a healthy index.
    return "decode-error:" + decode_error.ToString();
  }
  // Canonical serialization: documents sorted by external key, then
  // every live posting sorted by (term, key) with its positions —
  // nothing here depends on DocId values, insertion order, shard
  // assignment, or whether tombstones have been compacted yet.
  std::sort(docs.begin(), docs.end());
  std::sort(postings.begin(), postings.end(),
            [](const CanonicalPosting& a, const CanonicalPosting& b) {
              if (a.term != b.term) return a.term < b.term;
              return a.key < b.key;
            });
  std::string canon;
  for (const auto& [key, length] : docs) {
    canon += "d " + key + " " + std::to_string(length) + "\n";
  }
  for (const CanonicalPosting& p : postings) {
    canon += "t " + p.term + " " + p.key + " " + p.payload + "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "crc32:%08x;docs:%zu;postings:%zu",
                oodb::Crc32(canon), docs.size(), postings.size());
  return buf;
}

std::string InvertedIndex::CanonicalDigest() const {
  std::vector<std::pair<std::string, uint32_t>> docs;
  std::vector<CanonicalPosting> postings;
  CollectCanonicalDocs(docs);
  Status decode_error = CollectCanonicalPostings(postings);
  return FinishCanonicalDigest(std::move(docs), std::move(postings),
                               decode_error);
}

std::string InvertedIndex::CheckInvariants() const {
  std::vector<uint64_t> doc_token_counts(docs_.size(), 0);
  size_t seen_tombstones = 0;
  std::vector<bool> counted(docs_.size(), false);
  for (const auto& [term, list] : dictionary_) {
    if (list.empty()) return "empty postings list for term " + term;
    auto decoded = list.DecodeAll();
    if (!decoded.ok()) {
      return "undecodable postings for " + term + ": " +
             decoded.status().ToString();
    }
    const std::vector<Posting>& postings = *decoded;
    if (postings.size() != list.size()) {
      return "block metadata count mismatch for " + term;
    }
    // Block metadata must agree with decoded content — the skipping
    // kernels trust it blindly.
    size_t off = 0;
    for (size_t b = 0; b < list.block_count(); ++b) {
      const PostingsBlockMeta& meta = list.block(b);
      if (meta.count == 0) return "empty block for term " + term;
      if (postings[off].doc != meta.first_doc ||
          postings[off + meta.count - 1].doc != meta.last_doc) {
        return "block doc-range metadata mismatch for " + term;
      }
      uint32_t max_tf = 0;
      for (size_t i = 0; i < meta.count; ++i) {
        max_tf = std::max(max_tf, postings[off + i].tf);
      }
      if (max_tf != meta.max_tf) {
        return "block max_tf metadata mismatch for " + term;
      }
      off += meta.count;
    }
    DocId prev = 0;
    bool first = true;
    for (const Posting& p : postings) {
      if (!first && p.doc <= prev) return "postings unsorted for " + term;
      first = false;
      prev = p.doc;
      if (p.doc >= docs_.size()) return "posting references unknown doc";
      if (!docs_[p.doc].alive) {
        // Dead postings are legal only while the doc awaits compaction.
        if (!pending_prune_[p.doc]) return "posting references dead doc";
        if (!counted[p.doc]) {
          counted[p.doc] = true;
          ++seen_tombstones;
        }
        continue;
      }
      if (p.tf != p.positions.size()) return "tf != positions.size()";
      for (size_t i = 1; i < p.positions.size(); ++i) {
        if (p.positions[i] <= p.positions[i - 1]) {
          return "positions unsorted for " + term;
        }
      }
      doc_token_counts[p.doc] += p.tf;
    }
  }
  if (seen_tombstones > tombstones_) return "tombstone count mismatch";
  uint64_t tokens = 0;
  uint32_t live = 0;
  for (DocId id = 0; id < docs_.size(); ++id) {
    if (!docs_[id].alive) continue;
    ++live;
    tokens += docs_[id].length;
    if (doc_token_counts[id] != docs_[id].length) {
      return "doc length mismatch for " + docs_[id].key;
    }
  }
  if (live != live_docs_) return "live_docs_ mismatch";
  if (tokens != total_tokens_) return "total_tokens_ mismatch";
  return "";
}

}  // namespace sdms::irs
