#include "irs/index/inverted_index.h"

#include <algorithm>
#include <cstdio>

#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/thread_pool.h"
#include "oodb/storage/serializer.h"

namespace sdms::irs {

using oodb::Decoder;
using oodb::Encoder;

namespace {

obs::Counter& TermLookups() {
  static obs::Counter& c = obs::GetCounter("irs.index.term_lookups");
  return c;
}

obs::Counter& PostingsScanned() {
  static obs::Counter& c = obs::GetCounter("irs.index.postings_scanned");
  return c;
}

obs::Counter& BatchDocs() {
  static obs::Counter& c = obs::GetCounter("irs.index.batch_docs");
  return c;
}

obs::Counter& BatchCalls() {
  static obs::Counter& c = obs::GetCounter("irs.index.batch_calls");
  return c;
}

obs::Counter& Compactions() {
  static obs::Counter& c = obs::GetCounter("irs.index.compactions");
  return c;
}

}  // namespace

void InvertedIndex::AccumulatePostings(
    DocId id, const std::vector<std::string>& tokens,
    std::unordered_map<std::string, std::vector<Posting>>& dict) {
  // Group positions per term for this document.
  std::unordered_map<std::string, std::vector<uint32_t>> grouped;
  grouped.reserve(tokens.size());
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    grouped[tokens[pos]].push_back(pos);
  }
  for (auto& [term, positions] : grouped) {
    Posting p;
    p.doc = id;
    p.tf = static_cast<uint32_t>(positions.size());
    p.positions = std::move(positions);
    // Doc ids are monotonically increasing, so appending keeps the
    // postings sorted.
    dict[term].push_back(std::move(p));
  }
}

DocId InvertedIndex::AddDocument(const std::string& key,
                                 const std::vector<std::string>& tokens) {
  DocId id = static_cast<DocId>(docs_.size());
  DocInfo info;
  info.key = key;
  info.length = static_cast<uint32_t>(tokens.size());
  info.alive = true;
  docs_.push_back(std::move(info));
  pending_prune_.push_back(false);
  by_key_[key] = id;
  ++live_docs_;
  total_tokens_ += tokens.size();
  AccumulatePostings(id, tokens, dictionary_);
  return id;
}

StatusOr<std::vector<DocId>> InvertedIndex::AddDocumentsBatch(
    const std::vector<DocTokens>& docs, ThreadPool* pool) {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  if (docs.empty()) return ids;

  // Phase 1 (sequential, cheap): assign consecutive ids and register
  // the documents, so shard workers only touch disjoint postings state.
  const DocId base = static_cast<DocId>(docs_.size());
  docs_.reserve(docs_.size() + docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    auto [it, inserted] =
        by_key_.emplace(docs[i].key, base + static_cast<DocId>(i));
    if (!inserted) {
      // Roll back the keys registered so far; the index is unchanged.
      for (size_t k = 0; k < i; ++k) by_key_.erase(docs[k].key);
      return Status::AlreadyExists("duplicate IRS document key in batch: " +
                                   docs[i].key);
    }
  }
  for (const DocTokens& d : docs) {
    DocInfo info;
    info.key = d.key;
    info.length = static_cast<uint32_t>(d.tokens.size());
    info.alive = true;
    docs_.push_back(std::move(info));
    pending_prune_.push_back(false);
    ++live_docs_;
    total_tokens_ += d.tokens.size();
    ids.push_back(base + static_cast<DocId>(ids.size()));
  }

  // Phase 2 (parallel): contiguous shards of the batch each build a
  // local term -> postings map. Within a shard postings are generated
  // in ascending doc-id order.
  size_t shards = pool != nullptr ? std::min(pool->size(), docs.size()) : 1;
  std::vector<std::unordered_map<std::string, std::vector<Posting>>> local(
      shards);
  if (shards <= 1) {
    for (size_t i = 0; i < docs.size(); ++i) {
      AccumulatePostings(base + static_cast<DocId>(i), docs[i].tokens,
                         local[0]);
    }
  } else {
    size_t chunk = (docs.size() + shards - 1) / shards;
    pool->ParallelFor(shards, [&](size_t sbegin, size_t send) {
      for (size_t s = sbegin; s < send; ++s) {
        size_t lo = s * chunk;
        size_t hi = std::min(lo + chunk, docs.size());
        for (size_t i = lo; i < hi; ++i) {
          AccumulatePostings(base + static_cast<DocId>(i), docs[i].tokens,
                             local[s]);
        }
      }
    });
  }

  // Phase 3 (sequential): merge shard maps in shard order. Shards cover
  // ascending doc-id ranges, so per-term concatenation keeps postings
  // sorted — the merged dictionary is identical to the sequential path.
  for (auto& shard : local) {
    for (auto& [term, postings] : shard) {
      auto& dst = dictionary_[term];
      if (dst.empty()) {
        dst = std::move(postings);
      } else {
        dst.insert(dst.end(), std::make_move_iterator(postings.begin()),
                   std::make_move_iterator(postings.end()));
      }
    }
  }
  BatchDocs().Add(docs.size());
  BatchCalls().Increment();
  return ids;
}

Status InvertedIndex::RemoveDocument(DocId id) {
  if (id >= docs_.size() || !docs_[id].alive) {
    return Status::NotFound("no live IRS document " + std::to_string(id));
  }
  docs_[id].alive = false;
  by_key_.erase(docs_[id].key);
  --live_docs_;
  total_tokens_ -= docs_[id].length;
  if (eager_delete_) {
    // Physical prune: this full-dictionary scan is the "deleting IRS
    // documents is costly" behaviour the paper discusses (4.3.1 (3)).
    pending_prune_[id] = true;
    ++tombstones_;
    PrunePostingsOfDeadDocs();
  } else {
    pending_prune_[id] = true;
    ++tombstones_;
    MaybeCompact();
  }
  return Status::OK();
}

void InvertedIndex::PrunePostingsOfDeadDocs() {
  for (auto it = dictionary_.begin(); it != dictionary_.end();) {
    auto& postings = it->second;
    postings.erase(
        std::remove_if(postings.begin(), postings.end(),
                       [this](const Posting& p) {
                         return pending_prune_[p.doc];
                       }),
        postings.end());
    if (postings.empty()) {
      it = dictionary_.erase(it);
    } else {
      ++it;
    }
  }
  std::fill(pending_prune_.begin(), pending_prune_.end(), false);
  tombstones_ = 0;
}

size_t InvertedIndex::Compact() {
  size_t cleared = tombstones_;
  if (cleared == 0) return 0;
  PrunePostingsOfDeadDocs();
  Compactions().Increment();
  return cleared;
}

void InvertedIndex::MaybeCompact() {
  if (tombstones_ == 0) return;
  if (static_cast<double>(tombstones_) >=
      kCompactionRatio * static_cast<double>(docs_.size())) {
    Compact();
  }
}

StatusOr<DocId> InvertedIndex::FindByKey(const std::string& key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no IRS document with key " + key);
  }
  return it->second;
}

const std::vector<Posting>* InvertedIndex::GetPostings(
    const std::string& term) const {
  TermLookups().Increment();
  obs::ProfileCount("term_lookups");
  auto it = dictionary_.find(term);
  if (it == dictionary_.end()) return nullptr;
  // Callers walk the returned list in full, so its length is the
  // number of postings this lookup puts in play.
  PostingsScanned().Add(it->second.size());
  obs::ProfileCount("postings_scanned", it->second.size());
  return &it->second;
}

uint32_t InvertedIndex::DocFreq(const std::string& term) const {
  const std::vector<Posting>* p = GetPostings(term);
  return p == nullptr ? 0 : static_cast<uint32_t>(p->size());
}

StatusOr<const DocInfo*> InvertedIndex::GetDoc(DocId id) const {
  if (id >= docs_.size()) {
    return Status::NotFound("no IRS document " + std::to_string(id));
  }
  return &docs_[id];
}

double InvertedIndex::avg_doc_length() const {
  if (live_docs_ == 0) return 0.0;
  return static_cast<double>(total_tokens_) / static_cast<double>(live_docs_);
}

size_t InvertedIndex::ApproximateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [term, postings] : dictionary_) {
    bytes += term.size() + sizeof(void*) * 4;  // dictionary entry overhead
    for (const Posting& p : postings) {
      bytes += sizeof(Posting) + p.positions.size() * sizeof(uint32_t);
    }
  }
  for (const DocInfo& d : docs_) {
    bytes += sizeof(DocInfo) + d.key.size();
  }
  return bytes;
}

std::vector<const InvertedIndex::DictEntry*> InvertedIndex::SortedTerms()
    const {
  std::vector<const DictEntry*> entries;
  entries.reserve(dictionary_.size());
  for (const auto& entry : dictionary_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const DictEntry* a, const DictEntry* b) {
              return a->first < b->first;
            });
  return entries;
}

std::string InvertedIndex::Serialize() const {
  Encoder enc;
  enc.PutU64(docs_.size());
  for (const DocInfo& d : docs_) {
    enc.PutString(d.key);
    enc.PutU32(d.length);
    enc.PutU8(d.alive ? 1 : 0);
  }
  // Serialize in compacted form: tombstoned postings are dropped, and
  // terms they empty out are not written at all.
  auto live_postings = [this](const std::vector<Posting>& postings) {
    size_t n = 0;
    for (const Posting& p : postings) {
      if (!pending_prune_[p.doc]) ++n;
    }
    return n;
  };
  std::vector<const DictEntry*> terms = SortedTerms();
  uint64_t live_terms = 0;
  for (const DictEntry* entry : terms) {
    if (live_postings(entry->second) > 0) ++live_terms;
  }
  enc.PutU64(live_terms);
  for (const DictEntry* entry : terms) {
    size_t nposts = live_postings(entry->second);
    if (nposts == 0) continue;
    enc.PutString(entry->first);
    enc.PutU64(nposts);
    for (const Posting& p : entry->second) {
      if (pending_prune_[p.doc]) continue;
      enc.PutU32(p.doc);
      enc.PutU32(p.tf);
      // Delta-encode positions (classic postings compression).
      uint32_t prev = 0;
      enc.PutU64(p.positions.size());
      for (uint32_t pos : p.positions) {
        enc.PutU32(pos - prev);
        prev = pos;
      }
    }
  }
  return enc.Release();
}

StatusOr<InvertedIndex> InvertedIndex::Deserialize(std::string_view data) {
  InvertedIndex index;
  Decoder dec(data);
  SDMS_ASSIGN_OR_RETURN(uint64_t ndocs, dec.GetU64());
  for (uint64_t i = 0; i < ndocs; ++i) {
    DocInfo d;
    SDMS_ASSIGN_OR_RETURN(d.key, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(d.length, dec.GetU32());
    SDMS_ASSIGN_OR_RETURN(uint8_t alive, dec.GetU8());
    d.alive = alive != 0;
    if (d.alive) {
      index.by_key_[d.key] = static_cast<DocId>(i);
      ++index.live_docs_;
      index.total_tokens_ += d.length;
    }
    index.docs_.push_back(std::move(d));
    index.pending_prune_.push_back(false);
  }
  SDMS_ASSIGN_OR_RETURN(uint64_t nterms, dec.GetU64());
  for (uint64_t t = 0; t < nterms; ++t) {
    SDMS_ASSIGN_OR_RETURN(std::string term, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(uint64_t nposts, dec.GetU64());
    std::vector<Posting> postings;
    postings.reserve(nposts);
    for (uint64_t i = 0; i < nposts; ++i) {
      Posting p;
      SDMS_ASSIGN_OR_RETURN(p.doc, dec.GetU32());
      SDMS_ASSIGN_OR_RETURN(p.tf, dec.GetU32());
      SDMS_ASSIGN_OR_RETURN(uint64_t npos, dec.GetU64());
      uint32_t cur = 0;
      for (uint64_t k = 0; k < npos; ++k) {
        SDMS_ASSIGN_OR_RETURN(uint32_t delta, dec.GetU32());
        cur += delta;
        p.positions.push_back(cur);
      }
      postings.push_back(std::move(p));
    }
    index.dictionary_.emplace(std::move(term), std::move(postings));
  }
  return index;
}

std::string InvertedIndex::CanonicalDigest() const {
  // Canonical serialization: documents sorted by external key, then
  // every live posting sorted by (term, key) with its positions —
  // nothing here depends on DocId values, insertion order, or whether
  // tombstones have been compacted yet.
  std::string canon;
  std::vector<std::pair<std::string, uint32_t>> live;
  ForEachDoc([&](DocId, const DocInfo& d) {
    live.emplace_back(d.key, d.length);
  });
  std::sort(live.begin(), live.end());
  for (const auto& [key, length] : live) {
    canon += "d " + key + " " + std::to_string(length) + "\n";
  }
  size_t posting_count = 0;
  ForEachTerm([&](const std::string& term,
                  const std::vector<Posting>& postings) {
    std::vector<std::pair<std::string, const Posting*>> alive;
    for (const Posting& p : postings) {
      if (IsAlive(p.doc)) alive.emplace_back(docs_[p.doc].key, &p);
    }
    std::sort(alive.begin(), alive.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, p] : alive) {
      canon += "t " + term + " " + key + " " + std::to_string(p->tf);
      for (uint32_t pos : p->positions) {
        canon += " " + std::to_string(pos);
      }
      canon += "\n";
      ++posting_count;
    }
  });
  char buf[64];
  std::snprintf(buf, sizeof(buf), "crc32:%08x;docs:%zu;postings:%zu",
                oodb::Crc32(canon), live.size(), posting_count);
  return buf;
}

std::string InvertedIndex::CheckInvariants() const {
  std::vector<uint64_t> doc_token_counts(docs_.size(), 0);
  size_t seen_tombstones = 0;
  std::vector<bool> counted(docs_.size(), false);
  for (const auto& [term, postings] : dictionary_) {
    if (postings.empty()) return "empty postings list for term " + term;
    DocId prev = 0;
    bool first = true;
    for (const Posting& p : postings) {
      if (!first && p.doc <= prev) return "postings unsorted for " + term;
      first = false;
      prev = p.doc;
      if (p.doc >= docs_.size()) return "posting references unknown doc";
      if (!docs_[p.doc].alive) {
        // Dead postings are legal only while the doc awaits compaction.
        if (!pending_prune_[p.doc]) return "posting references dead doc";
        if (!counted[p.doc]) {
          counted[p.doc] = true;
          ++seen_tombstones;
        }
        continue;
      }
      if (p.tf != p.positions.size()) return "tf != positions.size()";
      for (size_t i = 1; i < p.positions.size(); ++i) {
        if (p.positions[i] <= p.positions[i - 1]) {
          return "positions unsorted for " + term;
        }
      }
      doc_token_counts[p.doc] += p.tf;
    }
  }
  if (seen_tombstones > tombstones_) return "tombstone count mismatch";
  uint64_t tokens = 0;
  uint32_t live = 0;
  for (DocId id = 0; id < docs_.size(); ++id) {
    if (!docs_[id].alive) continue;
    ++live;
    tokens += docs_[id].length;
    if (doc_token_counts[id] != docs_[id].length) {
      return "doc length mismatch for " + docs_[id].key;
    }
  }
  if (live != live_docs_) return "live_docs_ mismatch";
  if (tokens != total_tokens_) return "total_tokens_ mismatch";
  return "";
}

}  // namespace sdms::irs
