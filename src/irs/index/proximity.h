#ifndef SDMS_IRS_INDEX_PROXIMITY_H_
#define SDMS_IRS_INDEX_PROXIMITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "irs/index/inverted_index.h"

namespace sdms::irs {

/// Proximity matching over the positional postings. These back the
/// #odN/#phrase/#uwN operators: an extension the positional index was
/// built for (INQUERY shipped equivalent operators). All matching runs
/// over block cursors, so only the blocks containing candidate
/// documents are ever decoded.

/// Counts non-overlapping *ordered* window matches of `terms` in `doc`:
/// the terms appear in the given order with at most `max_gap` positions
/// between adjacent terms (#phrase == max_gap 1, i.e. adjacent).
/// Returns 0 when any term is absent from the document (including on a
/// block decode failure — single-doc probes have no error channel).
uint32_t CountOrderedMatches(const InvertedIndex& index,
                             const std::vector<std::string>& terms, DocId doc,
                             uint32_t max_gap);

/// Counts non-overlapping *unordered* window matches: all terms occur
/// (in any order) within a window of `span` positions.
uint32_t CountUnorderedMatches(const InvertedIndex& index,
                               const std::vector<std::string>& terms,
                               DocId doc, uint32_t span);

/// Match frequencies for every document with at least one match.
/// `ordered` selects ordered vs unordered matching; `window` is the
/// max gap (ordered) or span (unordered). Candidates come from the
/// block-skipping cursor intersection; a block decode failure surfaces
/// as an error status.
StatusOr<std::map<DocId, uint32_t>> WindowMatchFrequencies(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    bool ordered, uint32_t window);

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_PROXIMITY_H_
