#include "irs/index/postings_kernels.h"

#include <algorithm>
#include <queue>

#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/query_context.h"

namespace sdms::irs {

namespace {

/// Cooperative-cancellation poll cadence inside postings loops: cheap
/// enough to be invisible, frequent enough that a cancelled query stops
/// burning CPU within microseconds.
constexpr size_t kCancelCheckStride = 1024;

/// Bumped whenever a kernel abandons its loop because the current
/// QueryContext asked it to stop — the proof that cancellation is
/// observed *inside* the postings kernels, not just at call boundaries.
obs::Counter& EarlyExits() {
  static obs::Counter& c = obs::GetCounter("irs.kernel.early_exits");
  return c;
}

}  // namespace

size_t GallopTo(const std::vector<Posting>& postings, size_t lo,
                DocId target) {
  size_t n = postings.size();
  if (lo >= n || postings[lo].doc >= target) return lo;
  // Exponential probe: double the step until we overshoot.
  size_t step = 1;
  size_t prev = lo;
  size_t probe = lo + 1;
  while (probe < n && postings[probe].doc < target) {
    prev = probe;
    step <<= 1;
    probe = lo + step;
  }
  size_t hi = std::min(probe + 1, n);
  auto it = std::lower_bound(
      postings.begin() + static_cast<ptrdiff_t>(prev + 1),
      postings.begin() + static_cast<ptrdiff_t>(hi), target,
      [](const Posting& p, DocId d) { return p.doc < d; });
  return static_cast<size_t>(it - postings.begin());
}

std::vector<DocId> IntersectPostings(
    std::vector<const std::vector<Posting>*> lists) {
  std::vector<DocId> out;
  if (lists.empty()) return out;
  for (const auto* l : lists) {
    if (l == nullptr || l->empty()) return out;
  }
  // Rarest first: the smallest list drives, the others confirm.
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<Posting>* a, const std::vector<Posting>* b) {
              return a->size() < b->size();
            });
  const std::vector<Posting>& driver = *lists[0];
  out.reserve(driver.size());
  std::vector<size_t> cursors(lists.size(), 0);
  size_t steps = 0;
  for (const Posting& p : driver) {
    if (++steps % kCancelCheckStride == 0 && QueryShouldStop()) {
      EarlyExits().Increment();
      obs::ProfileCount("early_exits");
      return out;  // partial; the caller re-checks the context's status
    }
    DocId doc = p.doc;
    bool in_all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      size_t pos = GallopTo(*lists[i], cursors[i], doc);
      cursors[i] = pos;
      if (pos >= lists[i]->size() || (*lists[i])[pos].doc != doc) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(doc);
  }
  return out;
}

std::vector<DocId> UnionPostings(
    const std::vector<const std::vector<Posting>*>& lists) {
  // (doc at cursor, list index) min-heap for the k-way merge.
  using HeapItem = std::pair<DocId, size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  std::vector<size_t> cursors(lists.size(), 0);
  size_t total = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i] != nullptr && !lists[i]->empty()) {
      heap.emplace((*lists[i])[0].doc, i);
      total += lists[i]->size();
    }
  }
  std::vector<DocId> out;
  out.reserve(total);
  size_t steps = 0;
  while (!heap.empty()) {
    if (++steps % kCancelCheckStride == 0 && QueryShouldStop()) {
      EarlyExits().Increment();
      obs::ProfileCount("early_exits");
      return out;  // partial; the caller re-checks the context's status
    }
    auto [doc, i] = heap.top();
    heap.pop();
    if (out.empty() || out.back() != doc) out.push_back(doc);
    size_t next = ++cursors[i];
    if (next < lists[i]->size()) heap.emplace((*lists[i])[next].doc, i);
  }
  return out;
}

Status IntersectCursorsVisit(std::vector<PostingsCursor>& cursors,
                             const std::function<void(DocId)>& visit) {
  if (cursors.empty()) return Status::OK();
  for (PostingsCursor& c : cursors) {
    if (c.AtEnd()) return c.status();  // empty list → empty intersection
  }
  // Rarest first: the smallest list drives, the others confirm. The
  // caller's cursor order is preserved (proximity reads positions in
  // term order); only this pointer view is reordered.
  std::vector<PostingsCursor*> ordered;
  ordered.reserve(cursors.size());
  for (PostingsCursor& c : cursors) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const PostingsCursor* a, const PostingsCursor* b) {
              return a->size() < b->size();
            });
  PostingsCursor* driver = ordered[0];
  size_t steps = 0;
  while (!driver->AtEnd()) {
    if (++steps % kCancelCheckStride == 0 && QueryShouldStop()) {
      EarlyExits().Increment();
      obs::ProfileCount("early_exits");
      return Status::OK();  // partial; the caller re-checks the context
    }
    DocId doc = driver->doc();
    if (driver->AtEnd()) break;  // decode failure latched by doc()
    bool in_all = true;
    for (size_t i = 1; i < ordered.size(); ++i) {
      if (!ordered[i]->SkipTo(doc)) {
        // Exhausted (no further matches possible) or decode failure.
        SDMS_RETURN_IF_ERROR(ordered[i]->status());
        return driver->status();
      }
      if (ordered[i]->doc() != doc) {
        in_all = false;
        break;
      }
    }
    if (in_all) visit(doc);
    driver->Next();
  }
  return driver->status();
}

StatusOr<std::vector<DocId>> IntersectCursors(
    std::vector<PostingsCursor> cursors) {
  std::vector<DocId> out;
  SDMS_RETURN_IF_ERROR(IntersectCursorsVisit(
      cursors, [&out](DocId doc) { out.push_back(doc); }));
  return out;
}

StatusOr<std::vector<DocId>> UnionCursors(
    std::vector<PostingsCursor> cursors) {
  // (doc at cursor, cursor index) min-heap for the k-way merge.
  using HeapItem = std::pair<DocId, size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  size_t total = 0;
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].AtEnd()) {
      SDMS_RETURN_IF_ERROR(cursors[i].status());
      continue;
    }
    DocId d = cursors[i].doc();
    if (cursors[i].AtEnd()) return cursors[i].status();
    heap.emplace(d, i);
    total += cursors[i].size();
  }
  std::vector<DocId> out;
  out.reserve(total);
  size_t steps = 0;
  while (!heap.empty()) {
    if (++steps % kCancelCheckStride == 0 && QueryShouldStop()) {
      EarlyExits().Increment();
      obs::ProfileCount("early_exits");
      return out;  // partial; the caller re-checks the context's status
    }
    auto [doc, i] = heap.top();
    heap.pop();
    if (out.empty() || out.back() != doc) out.push_back(doc);
    cursors[i].Next();
    if (!cursors[i].AtEnd()) {
      DocId d = cursors[i].doc();
      if (cursors[i].AtEnd()) return cursors[i].status();
      heap.emplace(d, i);
    } else {
      SDMS_RETURN_IF_ERROR(cursors[i].status());
    }
  }
  return out;
}

std::vector<std::pair<DocId, double>> TopK(
    const std::vector<std::pair<DocId, double>>& scored, size_t k) {
  // "Worse" = lower score, then higher doc id; the heap keeps the worst
  // retained entry on top so a better candidate can displace it.
  auto worse = [](const std::pair<DocId, double>& a,
                  const std::pair<DocId, double>& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first > b.first;
  };
  std::vector<std::pair<DocId, double>> out;
  if (k == 0 || scored.size() <= k) {
    out = scored;
  } else {
    out.reserve(k + 1);
    // Min-heap on `worse`: out.front() is the weakest retained hit.
    auto heap_cmp = [&worse](const std::pair<DocId, double>& a,
                             const std::pair<DocId, double>& b) {
      return worse(b, a);
    };
    size_t steps = 0;
    for (const auto& s : scored) {
      if (++steps % kCancelCheckStride == 0 && QueryShouldStop()) {
        EarlyExits().Increment();
        obs::ProfileCount("early_exits");
        break;  // partial; the caller re-checks the context's status
      }
      if (out.size() < k) {
        out.push_back(s);
        std::push_heap(out.begin(), out.end(), heap_cmp);
      } else if (worse(out.front(), s)) {
        std::pop_heap(out.begin(), out.end(), heap_cmp);
        out.back() = s;
        std::push_heap(out.begin(), out.end(), heap_cmp);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [&worse](const std::pair<DocId, double>& a,
                     const std::pair<DocId, double>& b) {
              return worse(b, a);
            });
  return out;
}

}  // namespace sdms::irs
