#ifndef SDMS_IRS_INDEX_POSTINGS_KERNELS_H_
#define SDMS_IRS_INDEX_POSTINGS_KERNELS_H_

#include <cstddef>
#include <vector>

#include "irs/index/inverted_index.h"

namespace sdms::irs {

/// Doc-at-a-time kernels over sorted postings lists. These back the
/// conjunctive operators (#and in the boolean model, candidate
/// generation for #odN/#uwN windows) and replace set-based merges with
/// galloping (exponential search) intersection: cost is
/// O(k · |smallest| · log(|largest| / |smallest|)) instead of a full
/// scan-and-sort of every list.

/// Smallest index i in [lo, postings.size()) with postings[i].doc >=
/// target, found by exponential probing followed by binary search.
/// Returns postings.size() when no such element exists.
size_t GallopTo(const std::vector<Posting>& postings, size_t lo, DocId target);

/// Documents present in *every* list (ascending). Lists are processed
/// rarest-first; candidates from the smallest list are confirmed by
/// galloping through the others. Empty input yields an empty result.
std::vector<DocId> IntersectPostings(
    std::vector<const std::vector<Posting>*> lists);

/// Documents present in *any* list (ascending, deduplicated) — a k-way
/// merge producing a sorted candidate vector without a std::set.
std::vector<DocId> UnionPostings(
    const std::vector<const std::vector<Posting>*>& lists);

/// Keeps the k best (score, doc) pairs with a bounded min-heap instead
/// of materializing and fully sorting every scored document. Orders by
/// descending score, ties broken by ascending doc id. k == 0 returns
/// everything sorted.
std::vector<std::pair<DocId, double>> TopK(
    const std::vector<std::pair<DocId, double>>& scored, size_t k);

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_POSTINGS_KERNELS_H_
