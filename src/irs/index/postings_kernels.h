#ifndef SDMS_IRS_INDEX_POSTINGS_KERNELS_H_
#define SDMS_IRS_INDEX_POSTINGS_KERNELS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "irs/index/inverted_index.h"

namespace sdms::irs {

/// Doc-at-a-time kernels over sorted postings lists. These back the
/// conjunctive operators (#and in the boolean model, candidate
/// generation for #odN/#uwN windows) and replace set-based merges with
/// galloping (exponential search) intersection: cost is
/// O(k · |smallest| · log(|largest| / |smallest|)) instead of a full
/// scan-and-sort of every list.
///
/// Two tiers exist:
///   * cursor kernels (IntersectCursors / UnionCursors / …) operate on
///     block-compressed lists through PostingsCursor, skipping whole
///     blocks via last_doc metadata without decoding them — the
///     production query path;
///   * flat kernels (GallopTo / IntersectPostings / UnionPostings)
///     operate on decoded `std::vector<Posting>` and are retained as
///     the reference implementation — the oracle the block path is
///     tested bit-identical against — and for callers that already
///     hold decoded lists.

/// Smallest index i in [lo, postings.size()) with postings[i].doc >=
/// target, found by exponential probing followed by binary search.
/// Returns postings.size() when no such element exists.
size_t GallopTo(const std::vector<Posting>& postings, size_t lo, DocId target);

/// Documents present in *every* list (ascending). Lists are processed
/// rarest-first; candidates from the smallest list are confirmed by
/// galloping through the others. Empty input yields an empty result.
std::vector<DocId> IntersectPostings(
    std::vector<const std::vector<Posting>*> lists);

/// Documents present in *any* list (ascending, deduplicated) — a k-way
/// merge producing a sorted candidate vector without a std::set.
std::vector<DocId> UnionPostings(
    const std::vector<const std::vector<Posting>*>& lists);

/// Conjunction over block cursors, driving a visitor: `visit(doc)` is
/// invoked for every doc present in all lists, with every cursor in
/// `cursors` positioned on that doc — so the visitor can read tf() /
/// positions() directly (the proximity operators do). The rarest list
/// drives; the others SkipTo over it, skipping undecoded blocks.
/// Cancellation returns OK with a partial visit sequence (the caller
/// re-checks its QueryContext); a block decode failure returns that
/// error. Empty `cursors` visits nothing.
Status IntersectCursorsVisit(std::vector<PostingsCursor>& cursors,
                             const std::function<void(DocId)>& visit);

/// Documents present in *every* cursor's list (ascending).
StatusOr<std::vector<DocId>> IntersectCursors(
    std::vector<PostingsCursor> cursors);

/// Documents present in *any* cursor's list (ascending, deduplicated)
/// — the k-way merge over lazily decoded blocks.
StatusOr<std::vector<DocId>> UnionCursors(std::vector<PostingsCursor> cursors);

/// Keeps the k best (score, doc) pairs with a bounded min-heap instead
/// of materializing and fully sorting every scored document. Orders by
/// descending score, ties broken by ascending doc id. k == 0 returns
/// everything sorted.
std::vector<std::pair<DocId, double>> TopK(
    const std::vector<std::pair<DocId, double>>& scored, size_t k);

}  // namespace sdms::irs

#endif  // SDMS_IRS_INDEX_POSTINGS_KERNELS_H_
