#include "irs/index/postings_codec.h"

namespace sdms::irs::codec {

void PutVarU32(std::string& out, uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool GetVarU32(const char*& p, const char* end, uint32_t& v) {
  uint64_t result = 0;
  int shift = 0;
  while (p < end && shift <= 28) {
    uint8_t byte = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (result > 0xffffffffull) return false;
      v = static_cast<uint32_t>(result);
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or more than 5 bytes
}

void AppendPosting(std::string& out, DocId prev_doc, DocId doc, uint32_t tf,
                   const std::vector<uint32_t>& positions) {
  PutVarU32(out, doc - prev_doc);
  PutVarU32(out, tf);
  PutVarU32(out, static_cast<uint32_t>(positions.size()));
  uint32_t prev = 0;
  for (uint32_t pos : positions) {
    PutVarU32(out, pos - prev);
    prev = pos;
  }
}

Status DecodeBlock(std::string_view payload, DocId first_doc, uint32_t count,
                   std::vector<Posting>& out) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  DocId doc = first_doc;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t gap = 0, tf = 0, npos = 0;
    if (!GetVarU32(p, end, gap) || !GetVarU32(p, end, tf) ||
        !GetVarU32(p, end, npos)) {
      return Status::Corruption("truncated postings block");
    }
    doc += gap;
    Posting posting;
    posting.doc = doc;
    posting.tf = tf;
    posting.positions.reserve(npos);
    uint32_t pos = 0;
    for (uint32_t k = 0; k < npos; ++k) {
      uint32_t pgap = 0;
      if (!GetVarU32(p, end, pgap)) {
        return Status::Corruption("truncated position list in postings block");
      }
      pos += pgap;
      posting.positions.push_back(pos);
    }
    out.push_back(std::move(posting));
  }
  if (p != end) {
    return Status::Corruption("trailing bytes after postings block");
  }
  return Status::OK();
}

}  // namespace sdms::irs::codec
