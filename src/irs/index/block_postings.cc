#include "irs/index/block_postings.h"

#include <algorithm>

#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "irs/index/postings_codec.h"
#include "irs/storage/postings_store.h"

namespace sdms::irs {

namespace {

obs::Counter& PostingsScanned() {
  static obs::Counter& c = obs::GetCounter("irs.index.postings_scanned");
  return c;
}

obs::Counter& BlocksDecoded() {
  static obs::Counter& c = obs::GetCounter("irs.index.blocks_decoded");
  return c;
}

obs::Counter& BlocksSkipped() {
  static obs::Counter& c = obs::GetCounter("irs.index.blocks_skipped");
  return c;
}

}  // namespace

void BlockPostingsList::Append(DocId doc, uint32_t tf,
                               const std::vector<uint32_t>& positions,
                               uint32_t doc_len) {
  if (blocks_.empty() || blocks_.back().sealed ||
      blocks_.back().count >= kBlockPostings) {
    PostingsBlockMeta meta;
    meta.first_doc = doc;
    meta.last_doc = doc;
    blocks_.push_back(std::move(meta));
  }
  PostingsBlockMeta& b = blocks_.back();
  DocId prev = b.count == 0 ? doc : b.last_doc;
  codec::AppendPosting(b.bytes, prev, doc, tf, positions);
  b.last_doc = doc;
  ++b.count;
  b.max_tf = std::max(b.max_tf, tf);
  b.min_doc_len = std::min(b.min_doc_len, doc_len);
  ++total_;
}

void BlockPostingsList::AppendList(BlockPostingsList&& other) {
  blocks_.reserve(blocks_.size() + other.blocks_.size());
  for (PostingsBlockMeta& b : other.blocks_) {
    blocks_.push_back(std::move(b));
  }
  total_ += other.total_;
  other.blocks_.clear();
  other.total_ = 0;
}

DocId BlockPostingsList::last_doc() const {
  return blocks_.empty() ? 0 : blocks_.back().last_doc;
}

uint32_t BlockPostingsList::max_tf() const {
  uint32_t m = 0;
  for (const PostingsBlockMeta& b : blocks_) m = std::max(m, b.max_tf);
  return m;
}

uint32_t BlockPostingsList::min_doc_len() const {
  uint32_t m = 0xffffffffu;
  for (const PostingsBlockMeta& b : blocks_) m = std::min(m, b.min_doc_len);
  return m;
}

Status BlockPostingsList::DecodeBlockInto(size_t i,
                                          std::vector<Posting>& out) const {
  const PostingsBlockMeta& b = blocks_[i];
  Status decoded;
  if (b.sealed) {
    if (store_ == nullptr) {
      return Status::Internal("sealed postings block without a store");
    }
    SDMS_ASSIGN_OR_RETURN(std::string payload, store_->ReadBlock(b.handle));
    decoded = codec::DecodeBlock(payload, b.first_doc, b.count, out);
  } else {
    decoded = codec::DecodeBlock(b.bytes, b.first_doc, b.count, out);
  }
  if (!decoded.ok()) return decoded;
  PostingsScanned().Add(b.count);
  BlocksDecoded().Increment();
  obs::ProfileCount("postings_scanned", b.count);
  obs::ProfileCount("blocks_decoded");
  return Status::OK();
}

StatusOr<std::vector<Posting>> BlockPostingsList::DecodeAll() const {
  std::vector<Posting> out;
  out.reserve(total_);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    SDMS_RETURN_IF_ERROR(DecodeBlockInto(i, out));
  }
  return out;
}

void BlockPostingsList::MarkSealed(size_t i, const BlockHandle& handle) {
  PostingsBlockMeta& b = blocks_[i];
  b.handle = handle;
  b.bytes.clear();
  b.bytes.shrink_to_fit();
  b.sealed = true;
}

size_t BlockPostingsList::ApproxMemoryBytes() const {
  size_t bytes = sizeof(BlockPostingsList);
  for (const PostingsBlockMeta& b : blocks_) {
    bytes += sizeof(PostingsBlockMeta) + b.bytes.capacity();
  }
  return bytes;
}

PostingsCursor::PostingsCursor(const BlockPostingsList* list) : list_(list) {
  if (list_ != nullptr && list_->block_count() == 0) list_ = nullptr;
}

void PostingsCursor::CountSkipped(size_t n) {
  if (n == 0) return;
  BlocksSkipped().Add(n);
  obs::ProfileCount("blocks_skipped", n);
}

bool PostingsCursor::EnsureDecoded() {
  if (decoded_block_ == block_) return true;
  decoded_.clear();
  Status s = list_->DecodeBlockInto(block_, decoded_);
  if (!s.ok()) {
    status_ = s;
    block_ = list_->block_count();  // exhaust
    return false;
  }
  decoded_block_ = block_;
  return true;
}

DocId PostingsCursor::doc() {
  if (!EnsureDecoded()) return 0;  // cursor now AtEnd with status() set
  return decoded_[pos_].doc;
}

uint32_t PostingsCursor::tf() {
  if (!EnsureDecoded()) return 0;
  return decoded_[pos_].tf;
}

const std::vector<uint32_t>& PostingsCursor::positions() {
  static const std::vector<uint32_t> kEmpty;
  if (!EnsureDecoded()) return kEmpty;
  return decoded_[pos_].positions;
}

void PostingsCursor::Next() {
  if (AtEnd() || !EnsureDecoded()) return;
  if (++pos_ >= decoded_.size()) {
    ++block_;
    pos_ = 0;
  }
}

bool PostingsCursor::AdvanceBlocksTo(DocId target) {
  if (AtEnd()) return false;
  if (Meta().last_doc >= target) return true;
  // Gallop over the block metadata: exponential probe then binary
  // search on last_doc. The blocks passed over are never decoded.
  size_t n = list_->block_count();
  size_t lo = block_ + 1;
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && list_->block(hi).last_doc < target) {
    lo = hi + 1;
    hi = block_ + (step <<= 1);
  }
  hi = std::min(hi, n);
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (list_->block(mid).last_doc < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t undecoded_current = decoded_block_ == block_ ? 0 : 1;
  size_t landing = lo;
  if (landing >= n) {
    CountSkipped(n - block_ - 1 + undecoded_current);
    block_ = n;
    pos_ = 0;
    return false;
  }
  CountSkipped(landing - block_ - 1 + undecoded_current);
  block_ = landing;
  pos_ = 0;
  return true;
}

void PostingsCursor::SkipCurrentBlock() {
  if (AtEnd()) return;
  if (decoded_block_ != block_) CountSkipped(1);
  ++block_;
  pos_ = 0;
}

bool PostingsCursor::SkipTo(DocId target) {
  if (AtEnd()) return false;
  // Fast path: the target is inside the block we are positioned in.
  if (Meta().last_doc >= target) {
    if (!EnsureDecoded()) return false;
    // The current posting may already satisfy the target.
    if (decoded_[pos_].doc >= target) return true;
    auto it = std::lower_bound(
        decoded_.begin() + static_cast<ptrdiff_t>(pos_) + 1, decoded_.end(),
        target, [](const Posting& p, DocId d) { return p.doc < d; });
    pos_ = static_cast<size_t>(it - decoded_.begin());
    // last_doc >= target guarantees a hit within this block.
    return true;
  }
  if (!AdvanceBlocksTo(target)) return false;
  if (!EnsureDecoded()) return false;
  auto it = std::lower_bound(decoded_.begin(), decoded_.end(), target,
                             [](const Posting& p, DocId d) { return p.doc < d; });
  pos_ = static_cast<size_t>(it - decoded_.begin());
  return true;
}

}  // namespace sdms::irs
