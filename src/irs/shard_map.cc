#include "irs/shard_map.h"

#include <cstdlib>

#include "oodb/storage/serializer.h"

namespace sdms::irs {

namespace {

/// Routing map encoding version: 1 = modulo-hash over a shard count.
constexpr uint8_t kShardMapVersion = 1;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

uint32_t ShardMap::ShardOf(std::string_view key) const {
  if (num_shards_ <= 1) return 0;
  return static_cast<uint32_t>(Fnv1a64(key) % num_shards_);
}

void ShardMap::EncodeTo(oodb::Encoder& enc) const {
  enc.PutU8(kShardMapVersion);
  enc.PutU32(num_shards_);
}

StatusOr<ShardMap> ShardMap::DecodeFrom(oodb::Decoder& dec) {
  SDMS_ASSIGN_OR_RETURN(uint8_t version, dec.GetU8());
  if (version != kShardMapVersion) {
    return Status::Corruption("unknown shard map version " +
                              std::to_string(version));
  }
  SDMS_ASSIGN_OR_RETURN(uint32_t shards, dec.GetU32());
  if (shards < 1 || shards > kMaxShards) {
    return Status::Corruption("shard map count out of range: " +
                              std::to_string(shards));
  }
  return ShardMap(shards);
}

uint32_t ShardsFromEnv() {
  const char* raw = std::getenv("SDMS_SHARDS");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 1) return 1;
  if (parsed > static_cast<long>(ShardMap::kMaxShards)) {
    return ShardMap::kMaxShards;
  }
  return static_cast<uint32_t>(parsed);
}

}  // namespace sdms::irs
