#include "irs/collection.h"

#include <algorithm>
#include <mutex>

#include "common/fault/fault.h"
#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/obs/stats.h"
#include "common/obs/trace.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "irs/index/proximity.h"
#include "oodb/storage/serializer.h"

namespace sdms::irs {

namespace {

struct IrsMetrics {
  obs::Counter& searches = obs::GetCounter("irs.index.searches");
  obs::Counter& docs_indexed = obs::GetCounter("irs.index.docs_indexed");
  obs::Counter& docs_removed = obs::GetCounter("irs.index.docs_removed");
  obs::Histogram& build_us = obs::GetHistogram("irs.index.build_micros");
  obs::Histogram& search_us = obs::GetHistogram("irs.index.search_micros");
  obs::Histogram& batch_us = obs::GetHistogram("irs.index.batch_micros");
};

IrsMetrics& Metrics() {
  static IrsMetrics* m = new IrsMetrics();
  return *m;
}

/// Lazily built, process-stable per-shard name tables. Profile stages
/// and fault points both keep borrowed const char* pointers, so the
/// strings must never move or be destroyed.
const char* StableShardName(size_t shard, const char* prefix,
                            std::vector<std::unique_ptr<std::string>>& names,
                            std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  while (names.size() <= shard) {
    names.push_back(std::make_unique<std::string>(
        prefix + std::to_string(names.size())));
  }
  return names[shard]->c_str();
}

/// Hit ordering: descending score, ties broken by key.
bool BetterHit(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.key < b.key;
}

}  // namespace

void CollectWindowNodes(const QueryNode& node,
                        std::vector<const QueryNode*>& out) {
  if (node.op == QueryOp::kOdn || node.op == QueryOp::kUwn) {
    out.push_back(&node);
    return;
  }
  for (const auto& c : node.children) CollectWindowNodes(*c, out);
}

const char* ShardSearchStageName(size_t shard) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  return StableShardName(shard, "irs_search/shard", names, mu);
}

const char* ShardSearchFaultPoint(size_t shard) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  return StableShardName(shard, "irs.search.shard", names, mu);
}

IrsCollection::IrsCollection(std::string name,
                             AnalyzerOptions analyzer_options,
                             std::unique_ptr<RetrievalModel> model,
                             uint32_t num_shards)
    : name_(std::move(name)),
      analyzer_(analyzer_options),
      model_(std::move(model)),
      shard_map_(num_shards) {
  shards_.reserve(shard_map_.num_shards());
  for (uint32_t s = 0; s < shard_map_.num_shards(); ++s) {
    shards_.push_back(NewShard());
  }
  applied_seq_.assign(shards_.size(), 0);
}

std::unique_ptr<InvertedIndex> IrsCollection::NewShard() const {
  auto shard = std::make_unique<InvertedIndex>();
  shard->set_eager_delete(eager_delete_);
  // Threshold compaction is driven collection-wide (MaybeCompactShards)
  // so that DocFreq — which counts tombstones until the prune — stays
  // identical across shard layouts.
  shard->set_auto_compact(false);
  return shard;
}

void IrsCollection::MaybeCompactShards() {
  // The same 25% ratio InvertedIndex applies locally, evaluated over
  // collection-global counts. Doc ids are never reclaimed, so the doc
  // tables sum to the unsharded table size and the decision fires at
  // exactly the same deletes for every shard layout (for one shard it
  // is the index's own check verbatim). All shards prune together,
  // keeping the summed corpus statistics bit-identical to an unsharded
  // index's.
  size_t tombstones = 0;
  size_t table = 0;
  for (const auto& shard : shards_) {
    tombstones += shard->tombstone_count();
    table += shard->doc_table_size();
  }
  if (tombstones == 0) return;
  if (static_cast<double>(tombstones) >=
      InvertedIndex::kCompactionRatio * static_cast<double>(table)) {
    CompactIndex();
  }
}

Status IrsCollection::SetNumShards(uint32_t n) {
  if (doc_count() != 0) {
    return Status::FailedPrecondition(
        "collection " + name_ +
        " is not empty; the shard map is fixed once documents exist");
  }
  shard_map_ = ShardMap(n);
  shards_.clear();
  for (uint32_t s = 0; s < shard_map_.num_shards(); ++s) {
    shards_.push_back(NewShard());
  }
  applied_seq_.assign(shards_.size(), 0);
  return Status::OK();
}

void IrsCollection::set_eager_delete(bool eager) {
  eager_delete_ = eager;
  for (auto& shard : shards_) shard->set_eager_delete(eager);
}

size_t IrsCollection::CompactIndex() {
  size_t cleared = 0;
  for (auto& shard : shards_) cleared += shard->Compact();
  return cleared;
}

uint64_t IrsCollection::doc_count() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->doc_count();
  return n;
}

size_t IrsCollection::ApproximateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->ApproximateSizeBytes();
  return bytes;
}

Status IrsCollection::AddDocument(const std::string& key,
                                  const std::string& text) {
  // All fault points sit before any mutation, so an injected failure
  // never leaves the index half-updated.
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.add"));
  if (HasDocument(key)) {
    return Status::AlreadyExists("document already in collection " + name_ +
                                 ": " + key);
  }
  obs::TraceSpan span("irs.add_document");
  std::vector<std::string> tokens = analyzer_.Analyze(text);
  shards_[ShardOfKey(key)]->AddDocument(key, tokens);
  ++stats_.docs_indexed;
  Metrics().docs_indexed.Increment();
  Metrics().build_us.Record(static_cast<double>(span.ElapsedMicros()));
  return Status::OK();
}

Status IrsCollection::AddDocumentsBatch(const std::vector<BatchDocument>& docs,
                                        ThreadPool* pool) {
  if (docs.empty()) return Status::OK();
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.batch_add"));
  for (const BatchDocument& d : docs) {
    if (HasDocument(d.key)) {
      return Status::AlreadyExists("document already in collection " + name_ +
                                   ": " + d.key);
    }
  }
  obs::TraceSpan span("irs.add_documents_batch");
  if (pool == nullptr) pool = DefaultThreadPool();

  // Fan the analysis pipeline (tokenize/stop/stem — the dominant cost)
  // out across the pool; the Analyzer is stateless and shared.
  std::vector<DocTokens> analyzed(docs.size());
  auto analyze_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (QueryShouldStop()) return;  // abandoned below, pre-mutation
      analyzed[i].key = docs[i].key;
      analyzed[i].tokens = analyzer_.Analyze(docs[i].text);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(docs.size(), analyze_range);
  } else {
    analyze_range(0, docs.size());
  }
  // Analysis precedes any index mutation, so a deadline/cancellation
  // here aborts the batch cleanly (no half-indexed documents).
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());

  // Partition per shard, preserving batch order within each shard. A
  // within-batch duplicate key lands in one shard and is rejected by
  // that shard's AddDocumentsBatch — catch it here first so no other
  // shard has been mutated by the time it surfaces.
  std::vector<std::vector<DocTokens>> per_shard(shards_.size());
  for (auto& d : analyzed) {
    uint32_t s = ShardOfKey(d.key);
    for (const DocTokens& seen : per_shard[s]) {
      if (seen.key == d.key) {
        return Status::AlreadyExists("duplicate IRS document key in batch: " +
                                     d.key);
      }
    }
    per_shard[s].push_back(std::move(d));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    SDMS_RETURN_IF_ERROR(
        shards_[s]->AddDocumentsBatch(per_shard[s], pool).status());
  }
  stats_.docs_indexed += docs.size();
  Metrics().docs_indexed.Add(docs.size());
  Metrics().batch_us.Record(static_cast<double>(span.ElapsedMicros()));
  return Status::OK();
}

Status IrsCollection::UpdateDocument(const std::string& key,
                                     const std::string& text) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.update"));
  SDMS_RETURN_IF_ERROR(RemoveDocument(key));
  return AddDocument(key, text);
}

Status IrsCollection::RemoveDocument(const std::string& key) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.remove"));
  InvertedIndex& shard = *shards_[ShardOfKey(key)];
  SDMS_ASSIGN_OR_RETURN(DocId id, shard.FindByKey(key));
  SDMS_RETURN_IF_ERROR(shard.RemoveDocument(id));
  if (!eager_delete_) MaybeCompactShards();
  ++stats_.docs_removed;
  Metrics().docs_removed.Increment();
  return Status::OK();
}

StatusOr<IrsCollection::SearchPlan> IrsCollection::PrepareSearch(
    const std::string& query, size_t k) {
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());
  Metrics().searches.Increment();
  SearchPlan plan;
  plan.k = k;
  SDMS_ASSIGN_OR_RETURN(plan.tree, ParseIrsQuery(query, analyzer_));

  // Global corpus statistics: integer sums over shards, so every shard
  // scores against exactly the numbers one unsharded index would hold.
  for (const auto& shard : shards_) {
    plan.corpus.doc_count += shard->doc_count();
    plan.corpus.total_tokens += shard->total_tokens();
  }
  std::vector<std::string> terms;
  plan.tree->CollectTerms(terms);
  for (const std::string& term : terms) {
    if (plan.corpus.term_df.count(term) > 0) continue;
    uint64_t df = 0;
    for (const auto& shard : shards_) df += shard->DocFreq(term);
    plan.corpus.term_df[term] = df;
  }
  // Window pseudo-term df: matching documents summed over shards. Each
  // shard's scoring pass recomputes its local matches for tf; only the
  // df must be global.
  std::vector<const QueryNode*> windows;
  CollectWindowNodes(*plan.tree, windows);
  for (const QueryNode* node : windows) {
    std::vector<std::string> wterms;
    node->CollectTerms(wterms);
    uint64_t df = 0;
    for (const auto& shard : shards_) {
      SDMS_ASSIGN_OR_RETURN(
          auto freqs,
          WindowMatchFrequencies(*shard, wterms, node->op == QueryOp::kOdn,
                                 node->window));
      df += freqs.size();
    }
    plan.corpus.window_df[node] = df;
  }

  {
    // Snapshot statistics for the cost model: the searched terms' DFs
    // and the collection's live document count.
    obs::StatisticsService& stats = obs::StatisticsService::Instance();
    for (const std::string& term : terms) {
      stats.RecordTermDf(name_, term,
                         static_cast<uint32_t>(plan.corpus.Df(term)));
    }
    stats.RecordCollectionDocCount(name_,
                                   static_cast<uint32_t>(plan.corpus.doc_count));
  }
  ++stats_.queries_executed;
  return plan;
}

StatusOr<std::vector<SearchHit>> IrsCollection::SearchShard(
    const SearchPlan& plan, size_t shard) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.search"));
  SDMS_RETURN_IF_ERROR(fault::InjectFault(ShardSearchFaultPoint(shard)));
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());
  obs::TraceSpan span("irs.search");
  const InvertedIndex& index = *shards_[shard];
  const size_t k = plan.k;
  // k > 0 lets the model prune: ScoreTopK returns a map guaranteed to
  // contain every live doc that can appear in the final top k, with
  // scores bit-identical to Score() — the selection below is unchanged.
  SDMS_ASSIGN_OR_RETURN(
      ScoreMap scores,
      k > 0 ? model_->ScoreTopK(index, *plan.tree, k, &plan.corpus)
            : model_->Score(index, *plan.tree, &plan.corpus));
  obs::ProfileCount("irs_candidates", scores.size());
  // The kernels exit early (with partial output) on cancellation; make
  // that an authoritative error before hits are materialized.
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());

  std::vector<SearchHit> hits;
  if (k > 0 && scores.size() > k) {
    // Bounded top-k: a k-sized min-heap whose root is the weakest
    // retained hit; better candidates displace it.
    hits.reserve(k + 1);
    auto heap_cmp = [](const SearchHit& a, const SearchHit& b) {
      return BetterHit(a, b);  // makes the *worst* hit the heap root
    };
    for (const auto& [doc, score] : scores) {
      auto info = index.GetDoc(doc);
      if (!info.ok() || !(*info)->alive) continue;
      SearchHit h{(*info)->key, score};
      if (hits.size() < k) {
        hits.push_back(std::move(h));
        std::push_heap(hits.begin(), hits.end(), heap_cmp);
      } else if (BetterHit(h, hits.front())) {
        std::pop_heap(hits.begin(), hits.end(), heap_cmp);
        hits.back() = std::move(h);
        std::push_heap(hits.begin(), hits.end(), heap_cmp);
      }
    }
  } else {
    hits.reserve(scores.size());
    for (const auto& [doc, score] : scores) {
      auto info = index.GetDoc(doc);
      if (!info.ok() || !(*info)->alive) continue;
      hits.push_back(SearchHit{(*info)->key, score});
    }
  }
  std::sort(hits.begin(), hits.end(), BetterHit);
  return hits;
}

std::vector<SearchHit> IrsCollection::MergeShardHits(
    std::vector<std::vector<SearchHit>> per_shard, size_t k) {
  std::vector<SearchHit> merged;
  size_t total = 0;
  for (const auto& hits : per_shard) total += hits.size();
  merged.reserve(total);
  for (auto& hits : per_shard) {
    merged.insert(merged.end(), std::make_move_iterator(hits.begin()),
                  std::make_move_iterator(hits.end()));
  }
  std::sort(merged.begin(), merged.end(), BetterHit);
  if (k > 0 && merged.size() > k) merged.resize(k);
  return merged;
}

StatusOr<std::vector<SearchHit>> IrsCollection::Search(
    const std::string& query) {
  return Search(query, 0);
}

StatusOr<std::vector<SearchHit>> IrsCollection::Search(
    const std::string& query, size_t k) {
  obs::TraceSpan span("irs.search");
  obs::ProfileStageScope stage("irs_search");
  SDMS_ASSIGN_OR_RETURN(SearchPlan plan, PrepareSearch(query, k));

  const size_t n = shards_.size();
  std::vector<StatusOr<std::vector<SearchHit>>> results;
  results.reserve(n);
  for (size_t s = 0; s < n; ++s) results.emplace_back(std::vector<SearchHit>{});
  auto run_range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      obs::ProfileStageScope shard_stage(ShardSearchStageName(s));
      results[s] = SearchShard(plan, s);
    }
  };
  ThreadPool* pool = n > 1 ? DefaultThreadPool() : nullptr;
  if (pool != nullptr) {
    pool->ParallelFor(n, run_range);
  } else {
    run_range(0, n);
  }

  std::vector<std::vector<SearchHit>> per_shard;
  per_shard.reserve(n);
  for (auto& r : results) {
    // All-or-nothing here: a direct Search has no per-shard guard to
    // absorb the failure, so it surfaces. The coupling's fan-out path
    // degrades instead.
    SDMS_RETURN_IF_ERROR(r.status());
    per_shard.push_back(std::move(*r));
  }
  Metrics().search_us.Record(static_cast<double>(span.ElapsedMicros()));
  return MergeShardHits(std::move(per_shard), k);
}

uint64_t IrsCollection::applied_seq() const {
  uint64_t low = applied_seq_.empty() ? 0 : applied_seq_[0];
  for (uint64_t seq : applied_seq_) low = std::min(low, seq);
  return low;
}

void IrsCollection::set_applied_seq(uint64_t seq) {
  for (size_t s = 0; s < applied_seq_.size(); ++s) {
    set_shard_applied_seq(s, seq);
  }
}

std::string IrsCollection::DigestShards(
    const std::vector<std::unique_ptr<InvertedIndex>>& shards) {
  std::vector<std::pair<std::string, uint32_t>> docs;
  std::vector<InvertedIndex::CanonicalPosting> postings;
  Status decode_error;
  for (const auto& shard : shards) {
    shard->CollectCanonicalDocs(docs);
    Status s = shard->CollectCanonicalPostings(postings);
    if (decode_error.ok()) decode_error = s;
  }
  return InvertedIndex::FinishCanonicalDigest(std::move(docs),
                                              std::move(postings),
                                              decode_error);
}

std::string IrsCollection::CanonicalDigest() const {
  return DigestShards(shards_);
}

std::string IrsCollection::CheckInvariants() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::string broken = shards_[s]->CheckInvariants();
    if (!broken.empty()) {
      return "shard " + std::to_string(s) + ": " + broken;
    }
    std::string misrouted;
    shards_[s]->ForEachDoc([&](DocId, const DocInfo& info) {
      if (misrouted.empty() && ShardOfKey(info.key) != s) {
        misrouted = "document " + info.key + " in shard " +
                    std::to_string(s) + " but routes to shard " +
                    std::to_string(ShardOfKey(info.key));
      }
    });
    if (!misrouted.empty()) return misrouted;
  }
  return "";
}

namespace {

/// Envelope prefix for single-index sequence-number-carrying blobs
/// (pre-shard format). A legacy blob (raw InvertedIndex bytes) starts
/// with the u64 document count, whose low word can never plausibly
/// reach this value.
constexpr uint32_t kCollectionMagic = 0x53435156;  // "VQCS"

/// Envelope prefix for sharded collection blobs: shard map + per-shard
/// (applied_seq, index bytes).
constexpr uint32_t kShardedCollectionMagic = 0x53445156;  // "VQDS"

}  // namespace

StatusOr<std::string> IrsCollection::Serialize() const {
  oodb::Encoder enc;
  enc.PutU32(kShardedCollectionMagic);
  shard_map_.EncodeTo(enc);
  for (size_t s = 0; s < shards_.size(); ++s) {
    enc.PutU64(applied_seq_[s]);
    SDMS_ASSIGN_OR_RETURN(std::string index_bytes, shards_[s]->Serialize());
    enc.PutString(index_bytes);
  }
  return enc.Release();
}

Status IrsCollection::RestoreIndex(std::string_view data) {
  oodb::Decoder probe(data);
  auto magic = probe.GetU32();
  if (magic.ok() && *magic == kShardedCollectionMagic) {
    SDMS_ASSIGN_OR_RETURN(ShardMap map, ShardMap::DecodeFrom(probe));
    std::vector<std::unique_ptr<InvertedIndex>> shards;
    std::vector<uint64_t> seqs;
    for (uint32_t s = 0; s < map.num_shards(); ++s) {
      SDMS_ASSIGN_OR_RETURN(uint64_t seq, probe.GetU64());
      SDMS_ASSIGN_OR_RETURN(std::string bytes, probe.GetString());
      SDMS_ASSIGN_OR_RETURN(InvertedIndex index,
                            InvertedIndex::Deserialize(bytes));
      auto shard = std::make_unique<InvertedIndex>(std::move(index));
      shard->set_eager_delete(eager_delete_);
      shard->set_auto_compact(false);
      shards.push_back(std::move(shard));
      seqs.push_back(seq);
    }
    // The snapshot's shard layout wins over the current SDMS_SHARDS:
    // the map is part of the data (re-sharding is a rebuild, not a
    // restore).
    shard_map_ = map;
    shards_ = std::move(shards);
    applied_seq_ = std::move(seqs);
    return Status::OK();
  }

  // Pre-shard formats restore as one shard.
  uint64_t applied_seq = 0;
  if (magic.ok() && *magic == kCollectionMagic) {
    SDMS_ASSIGN_OR_RETURN(applied_seq, probe.GetU64());
    data = data.substr(probe.position());
  }
  SDMS_ASSIGN_OR_RETURN(InvertedIndex index, InvertedIndex::Deserialize(data));
  shard_map_ = ShardMap(1);
  shards_.clear();
  auto shard = std::make_unique<InvertedIndex>(std::move(index));
  shard->set_eager_delete(eager_delete_);
  shard->set_auto_compact(false);
  shards_.push_back(std::move(shard));
  applied_seq_.assign(1, applied_seq);
  return Status::OK();
}

std::string IrsCollection::EncodePlanStats(const SearchPlan& plan) {
  oodb::Encoder enc;
  enc.PutU64(plan.corpus.doc_count);
  enc.PutU64(plan.corpus.total_tokens);
  // Deterministic bytes: terms sorted (the decoder looks them up by
  // name, so only the encoding order needs pinning).
  std::vector<std::pair<std::string, uint64_t>> terms(
      plan.corpus.term_df.begin(), plan.corpus.term_df.end());
  std::sort(terms.begin(), terms.end());
  enc.PutU64(terms.size());
  for (const auto& [term, df] : terms) {
    enc.PutString(term);
    enc.PutU64(df);
  }
  // Window df travels positionally: both sides parse the same query
  // with the same analyzer, so CollectWindowNodes yields the windows
  // in the same order.
  std::vector<const QueryNode*> windows;
  CollectWindowNodes(*plan.tree, windows);
  enc.PutU64(windows.size());
  for (const QueryNode* node : windows) {
    enc.PutU64(plan.corpus.WindowDf(node));
  }
  return enc.Release();
}

StatusOr<IrsCollection::SearchPlan> IrsCollection::PrepareSearchWithStats(
    const std::string& query, size_t k, std::string_view stats) {
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());
  Metrics().searches.Increment();
  SearchPlan plan;
  plan.k = k;
  SDMS_ASSIGN_OR_RETURN(plan.tree, ParseIrsQuery(query, analyzer_));
  oodb::Decoder dec(stats);
  SDMS_ASSIGN_OR_RETURN(plan.corpus.doc_count, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(plan.corpus.total_tokens, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint64_t num_terms, dec.GetU64());
  for (uint64_t i = 0; i < num_terms; ++i) {
    SDMS_ASSIGN_OR_RETURN(std::string term, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(uint64_t df, dec.GetU64());
    plan.corpus.term_df[term] = df;
  }
  std::vector<const QueryNode*> windows;
  CollectWindowNodes(*plan.tree, windows);
  SDMS_ASSIGN_OR_RETURN(uint64_t num_windows, dec.GetU64());
  if (num_windows != windows.size()) {
    return Status::Corruption(
        "wire statistics carry " + std::to_string(num_windows) +
        " window df(s) but the query parses to " +
        std::to_string(windows.size()) +
        " window node(s); query/analyzer mismatch between router and shard");
  }
  for (const QueryNode* node : windows) {
    SDMS_ASSIGN_OR_RETURN(uint64_t df, dec.GetU64());
    plan.corpus.window_df[node] = df;
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after wire statistics");
  }
  ++stats_.queries_executed;
  return plan;
}

StatusOr<std::string> IrsCollection::SerializeShard(size_t shard) const {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range (collection has " +
                                   std::to_string(shards_.size()) + ")");
  }
  return shards_[shard]->Serialize();
}

Status IrsCollection::InstallShard(size_t shard, std::string_view index_bytes,
                                   uint64_t seq) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range (collection has " +
                                   std::to_string(shards_.size()) + ")");
  }
  SDMS_ASSIGN_OR_RETURN(InvertedIndex index,
                        InvertedIndex::Deserialize(index_bytes));
  auto replacement = std::make_unique<InvertedIndex>(std::move(index));
  replacement->set_eager_delete(eager_delete_);
  replacement->set_auto_compact(false);
  shards_[shard] = std::move(replacement);
  // An install is a state replacement, not an incremental apply: the
  // floor is set to exactly what the image reflects.
  applied_seq_[shard] = seq;
  return Status::OK();
}

Status IrsCollection::Reshard(uint32_t m) {
  if (m == 0 || m > ShardMap::kMaxShards) {
    return Status::InvalidArgument("shard count " + std::to_string(m) +
                                   " out of range [1, " +
                                   std::to_string(ShardMap::kMaxShards) + "]");
  }
  if (m == shards_.size()) return Status::OK();

  // 1. Reconstruct every live document's analyzed token sequence from
  // its positional postings — exact, with no re-analysis (re-stemming
  // already-stemmed tokens would not be idempotent).
  struct Rebuilt {
    std::string key;
    std::vector<std::string> tokens;
  };
  std::vector<Rebuilt> docs;
  for (const auto& shard : shards_) {
    std::unordered_map<DocId, size_t> slot;
    shard->ForEachDoc([&](DocId id, const DocInfo& info) {
      slot[id] = docs.size();
      Rebuilt doc;
      doc.key = info.key;
      doc.tokens.resize(info.length);
      docs.push_back(std::move(doc));
    });
    Status decode_error;
    shard->ForEachTerm(
        [&](const std::string& term, const BlockPostingsList& list) {
          auto postings = list.DecodeAll();
          if (!postings.ok()) {
            if (decode_error.ok()) decode_error = postings.status();
            return;
          }
          for (const Posting& p : *postings) {
            auto it = slot.find(p.doc);
            if (it == slot.end()) continue;  // tombstoned
            std::vector<std::string>& tokens = docs[it->second].tokens;
            for (uint32_t pos : p.positions) {
              if (pos >= tokens.size()) {
                decode_error = Status::Corruption(
                    "position " + std::to_string(pos) +
                    " beyond document length in " + docs[it->second].key);
                return;
              }
              tokens[pos] = term;
            }
          }
        });
    SDMS_RETURN_IF_ERROR(decode_error);
  }
  for (const Rebuilt& doc : docs) {
    for (const std::string& token : doc.tokens) {
      if (token.empty()) {
        return Status::Corruption("position gap reconstructing " + doc.key +
                                  "; postings do not cover its length");
      }
    }
  }
  // Deterministic rebuild order, independent of the old layout.
  std::sort(docs.begin(), docs.end(),
            [](const Rebuilt& a, const Rebuilt& b) { return a.key < b.key; });

  // 2. Build the m-shard layout off to the side.
  ShardMap new_map(m);
  std::vector<std::unique_ptr<InvertedIndex>> new_shards;
  new_shards.reserve(m);
  for (uint32_t s = 0; s < m; ++s) new_shards.push_back(NewShard());
  for (const Rebuilt& doc : docs) {
    new_shards[new_map.ShardOf(doc.key)]->AddDocument(doc.key, doc.tokens);
  }

  // 3. Verify before swap: the rebuilt layout must hold exactly the
  // same documents and postings (CanonicalDigest is layout-independent
  // and live-only, so the digests must be equal).
  std::string before = CanonicalDigest();
  std::string after = DigestShards(new_shards);
  if (before != after) {
    return Status::Internal("reshard verification failed: digest " + before +
                            " != rebuilt " + after +
                            "; collection left unchanged");
  }

  // 4. Swap. Every new shard holds documents whose updates were
  // applied up to at least the collection-wide floor; per-shard floors
  // above it are discarded conservatively (replay is reconciling).
  uint64_t floor = applied_seq();
  shard_map_ = new_map;
  shards_ = std::move(new_shards);
  applied_seq_.assign(m, floor);
  return Status::OK();
}

Status IrsCollection::SealPostings(const std::string& path, int pool_pages) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::string shard_path =
        s == 0 ? path : path + ".s" + std::to_string(s);
    SDMS_RETURN_IF_ERROR(
        shards_[s]->SealToStore(shard_path, name_, pool_pages));
  }
  return Status::OK();
}

}  // namespace sdms::irs
