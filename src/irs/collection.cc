#include "irs/collection.h"

#include <algorithm>

#include "common/obs/metrics.h"
#include "common/obs/trace.h"

namespace sdms::irs {

namespace {

struct IrsMetrics {
  obs::Counter& searches = obs::GetCounter("irs.index.searches");
  obs::Counter& docs_indexed = obs::GetCounter("irs.index.docs_indexed");
  obs::Counter& docs_removed = obs::GetCounter("irs.index.docs_removed");
  obs::Histogram& build_us = obs::GetHistogram("irs.index.build_micros");
  obs::Histogram& search_us = obs::GetHistogram("irs.index.search_micros");
};

IrsMetrics& Metrics() {
  static IrsMetrics* m = new IrsMetrics();
  return *m;
}

}  // namespace

Status IrsCollection::AddDocument(const std::string& key,
                                  const std::string& text) {
  if (HasDocument(key)) {
    return Status::AlreadyExists("document already in collection " + name_ +
                                 ": " + key);
  }
  obs::TraceSpan span("irs.add_document");
  std::vector<std::string> tokens = analyzer_.Analyze(text);
  index_.AddDocument(key, tokens);
  ++stats_.docs_indexed;
  Metrics().docs_indexed.Increment();
  Metrics().build_us.Record(static_cast<double>(span.ElapsedMicros()));
  return Status::OK();
}

Status IrsCollection::UpdateDocument(const std::string& key,
                                     const std::string& text) {
  SDMS_RETURN_IF_ERROR(RemoveDocument(key));
  return AddDocument(key, text);
}

Status IrsCollection::RemoveDocument(const std::string& key) {
  SDMS_ASSIGN_OR_RETURN(DocId id, index_.FindByKey(key));
  SDMS_RETURN_IF_ERROR(index_.RemoveDocument(id));
  ++stats_.docs_removed;
  Metrics().docs_removed.Increment();
  return Status::OK();
}

StatusOr<std::vector<SearchHit>> IrsCollection::Search(
    const std::string& query) {
  obs::TraceSpan span("irs.search");
  Metrics().searches.Increment();
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> tree,
                        ParseIrsQuery(query, analyzer_));
  SDMS_ASSIGN_OR_RETURN(ScoreMap scores, model_->Score(index_, *tree));
  ++stats_.queries_executed;
  Metrics().search_us.Record(static_cast<double>(span.ElapsedMicros()));
  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    auto info = index_.GetDoc(doc);
    if (!info.ok() || !(*info)->alive) continue;
    hits.push_back(SearchHit{(*info)->key, score});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a,
                                         const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.key < b.key;
  });
  return hits;
}

std::string IrsCollection::Serialize() const { return index_.Serialize(); }

Status IrsCollection::RestoreIndex(std::string_view data) {
  SDMS_ASSIGN_OR_RETURN(InvertedIndex index, InvertedIndex::Deserialize(data));
  index_ = std::move(index);
  return Status::OK();
}

}  // namespace sdms::irs
