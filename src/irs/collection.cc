#include "irs/collection.h"

#include <algorithm>

#include "common/fault/fault.h"
#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/obs/stats.h"
#include "common/obs/trace.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "oodb/storage/serializer.h"

namespace sdms::irs {

namespace {

struct IrsMetrics {
  obs::Counter& searches = obs::GetCounter("irs.index.searches");
  obs::Counter& docs_indexed = obs::GetCounter("irs.index.docs_indexed");
  obs::Counter& docs_removed = obs::GetCounter("irs.index.docs_removed");
  obs::Histogram& build_us = obs::GetHistogram("irs.index.build_micros");
  obs::Histogram& search_us = obs::GetHistogram("irs.index.search_micros");
  obs::Histogram& batch_us = obs::GetHistogram("irs.index.batch_micros");
};

IrsMetrics& Metrics() {
  static IrsMetrics* m = new IrsMetrics();
  return *m;
}

}  // namespace

Status IrsCollection::AddDocument(const std::string& key,
                                  const std::string& text) {
  // All fault points sit before any mutation, so an injected failure
  // never leaves the index half-updated.
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.add"));
  if (HasDocument(key)) {
    return Status::AlreadyExists("document already in collection " + name_ +
                                 ": " + key);
  }
  obs::TraceSpan span("irs.add_document");
  std::vector<std::string> tokens = analyzer_.Analyze(text);
  index_.AddDocument(key, tokens);
  ++stats_.docs_indexed;
  Metrics().docs_indexed.Increment();
  Metrics().build_us.Record(static_cast<double>(span.ElapsedMicros()));
  return Status::OK();
}

Status IrsCollection::AddDocumentsBatch(const std::vector<BatchDocument>& docs,
                                        ThreadPool* pool) {
  if (docs.empty()) return Status::OK();
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.batch_add"));
  for (const BatchDocument& d : docs) {
    if (HasDocument(d.key)) {
      return Status::AlreadyExists("document already in collection " + name_ +
                                   ": " + d.key);
    }
  }
  obs::TraceSpan span("irs.add_documents_batch");
  if (pool == nullptr) pool = DefaultThreadPool();

  // Fan the analysis pipeline (tokenize/stop/stem — the dominant cost)
  // out across the pool; the Analyzer is stateless and shared.
  std::vector<DocTokens> analyzed(docs.size());
  auto analyze_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (QueryShouldStop()) return;  // abandoned below, pre-mutation
      analyzed[i].key = docs[i].key;
      analyzed[i].tokens = analyzer_.Analyze(docs[i].text);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(docs.size(), analyze_range);
  } else {
    analyze_range(0, docs.size());
  }
  // Analysis precedes any index mutation, so a deadline/cancellation
  // here aborts the batch cleanly (no half-indexed documents).
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());

  SDMS_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                        index_.AddDocumentsBatch(analyzed, pool));
  (void)ids;
  stats_.docs_indexed += docs.size();
  Metrics().docs_indexed.Add(docs.size());
  Metrics().batch_us.Record(static_cast<double>(span.ElapsedMicros()));
  return Status::OK();
}

Status IrsCollection::UpdateDocument(const std::string& key,
                                     const std::string& text) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.update"));
  SDMS_RETURN_IF_ERROR(RemoveDocument(key));
  return AddDocument(key, text);
}

Status IrsCollection::RemoveDocument(const std::string& key) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.remove"));
  SDMS_ASSIGN_OR_RETURN(DocId id, index_.FindByKey(key));
  SDMS_RETURN_IF_ERROR(index_.RemoveDocument(id));
  ++stats_.docs_removed;
  Metrics().docs_removed.Increment();
  return Status::OK();
}

StatusOr<std::vector<SearchHit>> IrsCollection::Search(
    const std::string& query) {
  return Search(query, 0);
}

StatusOr<std::vector<SearchHit>> IrsCollection::Search(
    const std::string& query, size_t k) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.search"));
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());
  obs::TraceSpan span("irs.search");
  obs::ProfileStageScope stage("irs_search");
  Metrics().searches.Increment();
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> tree,
                        ParseIrsQuery(query, analyzer_));
  {
    // Snapshot statistics for the cost model: the searched terms' DFs
    // and the collection's live document count.
    obs::StatisticsService& stats = obs::StatisticsService::Instance();
    std::vector<std::string> terms;
    tree->CollectTerms(terms);
    for (const std::string& term : terms) {
      stats.RecordTermDf(name_, term, index_.DocFreq(term));
    }
    stats.RecordCollectionDocCount(name_, index_.doc_count());
  }
  // k > 0 lets the model prune: ScoreTopK returns a map guaranteed to
  // contain every live doc that can appear in the final top k, with
  // scores bit-identical to Score() — the selection below is unchanged.
  SDMS_ASSIGN_OR_RETURN(ScoreMap scores,
                        k > 0 ? model_->ScoreTopK(index_, *tree, k)
                              : model_->Score(index_, *tree));
  obs::ProfileCount("irs_candidates", scores.size());
  // The kernels exit early (with partial output) on cancellation; make
  // that an authoritative error before hits are materialized.
  SDMS_RETURN_IF_ERROR(CurrentQueryStatus());
  ++stats_.queries_executed;
  Metrics().search_us.Record(static_cast<double>(span.ElapsedMicros()));

  // Hit ordering: descending score, ties broken by key.
  auto better = [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.key < b.key;
  };

  std::vector<SearchHit> hits;
  if (k > 0 && scores.size() > k) {
    // Bounded top-k: a k-sized min-heap whose root is the weakest
    // retained hit; better candidates displace it.
    hits.reserve(k + 1);
    auto heap_cmp = [&better](const SearchHit& a, const SearchHit& b) {
      return better(a, b);  // makes the *worst* hit the heap root
    };
    for (const auto& [doc, score] : scores) {
      auto info = index_.GetDoc(doc);
      if (!info.ok() || !(*info)->alive) continue;
      SearchHit h{(*info)->key, score};
      if (hits.size() < k) {
        hits.push_back(std::move(h));
        std::push_heap(hits.begin(), hits.end(), heap_cmp);
      } else if (better(h, hits.front())) {
        std::pop_heap(hits.begin(), hits.end(), heap_cmp);
        hits.back() = std::move(h);
        std::push_heap(hits.begin(), hits.end(), heap_cmp);
      }
    }
  } else {
    hits.reserve(scores.size());
    for (const auto& [doc, score] : scores) {
      auto info = index_.GetDoc(doc);
      if (!info.ok() || !(*info)->alive) continue;
      hits.push_back(SearchHit{(*info)->key, score});
    }
  }
  std::sort(hits.begin(), hits.end(), better);
  return hits;
}

namespace {

/// Envelope prefix for sequence-number-carrying collection blobs. A
/// legacy blob (raw InvertedIndex bytes) starts with the u64 document
/// count, whose low word can never plausibly reach this value.
constexpr uint32_t kCollectionMagic = 0x53435156;  // "VQCS"

}  // namespace

StatusOr<std::string> IrsCollection::Serialize() const {
  oodb::Encoder enc;
  enc.PutU32(kCollectionMagic);
  enc.PutU64(applied_seq_);
  std::string out = enc.Release();
  SDMS_ASSIGN_OR_RETURN(std::string index_bytes, index_.Serialize());
  out += index_bytes;
  return out;
}

Status IrsCollection::RestoreIndex(std::string_view data) {
  uint64_t applied_seq = 0;
  {
    oodb::Decoder probe(data);
    auto magic = probe.GetU32();
    if (magic.ok() && *magic == kCollectionMagic) {
      SDMS_ASSIGN_OR_RETURN(applied_seq, probe.GetU64());
      data = data.substr(probe.position());
    }
  }
  SDMS_ASSIGN_OR_RETURN(InvertedIndex index, InvertedIndex::Deserialize(data));
  bool eager = index_.eager_delete();
  index_ = std::move(index);
  index_.set_eager_delete(eager);
  applied_seq_ = applied_seq;
  return Status::OK();
}

}  // namespace sdms::irs
