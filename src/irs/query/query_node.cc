#include "irs/query/query_node.h"

#include <cctype>

#include "common/string_util.h"
#include "irs/analysis/analyzer.h"

namespace sdms::irs {

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kTerm:
      return "term";
    case QueryOp::kSum:
      return "#sum";
    case QueryOp::kWsum:
      return "#wsum";
    case QueryOp::kAnd:
      return "#and";
    case QueryOp::kOr:
      return "#or";
    case QueryOp::kNot:
      return "#not";
    case QueryOp::kMax:
      return "#max";
    case QueryOp::kOdn:
      return "#od";
    case QueryOp::kUwn:
      return "#uw";
  }
  return "?";
}

std::string QueryNode::ToString() const {
  if (op == QueryOp::kTerm) return term;
  std::string out = QueryOpName(op);
  if (op == QueryOp::kOdn || op == QueryOp::kUwn) {
    out += std::to_string(window);
  }
  out += "(";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += " ";
    if (op == QueryOp::kWsum) {
      out += StrFormat("%g ", i < weights.size() ? weights[i] : 1.0);
    }
    out += children[i]->ToString();
  }
  out += ")";
  return out;
}

std::unique_ptr<QueryNode> QueryNode::Clone() const {
  auto out = std::make_unique<QueryNode>();
  out->op = op;
  out->term = term;
  out->weights = weights;
  out->window = window;
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

void QueryNode::CollectTerms(std::vector<std::string>& out) const {
  if (op == QueryOp::kTerm) {
    out.push_back(term);
    return;
  }
  for (const auto& c : children) c->CollectTerms(out);
}

namespace {

/// Token stream over the raw IRS query text.
struct IrsLexer {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == ',')) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  char Peek() {
    SkipSpace();
    return pos < text.size() ? text[pos] : '\0';
  }

  /// Reads a bare word (term, operator name or number).
  std::string ReadWord() {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size()) {
      char c = text[pos];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
          c == ')' || c == ',' || c == '#') {
        break;
      }
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }
};

class IrsParser {
 public:
  IrsParser(std::string_view text, const Analyzer& analyzer)
      : lex_{text, 0}, analyzer_(analyzer) {}

  StatusOr<std::unique_ptr<QueryNode>> ParseTop() {
    std::vector<std::unique_ptr<QueryNode>> nodes;
    while (!lex_.AtEnd()) {
      SDMS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> n, ParseNode());
      if (n != nullptr) nodes.push_back(std::move(n));
    }
    if (nodes.empty()) {
      // All terms stopped out (or empty query): an empty #sum matches
      // nothing but is not an error.
      auto empty = std::make_unique<QueryNode>();
      empty->op = QueryOp::kSum;
      return StatusOr<std::unique_ptr<QueryNode>>(std::move(empty));
    }
    if (nodes.size() == 1) {
      return StatusOr<std::unique_ptr<QueryNode>>(std::move(nodes[0]));
    }
    auto sum = std::make_unique<QueryNode>();
    sum->op = QueryOp::kSum;
    sum->children = std::move(nodes);
    return StatusOr<std::unique_ptr<QueryNode>>(std::move(sum));
  }

 private:
  /// Returns nullptr for terms removed by the analyzer (stopwords).
  StatusOr<std::unique_ptr<QueryNode>> ParseNode() {
    if (lex_.Peek() == '#') return ParseOperator();
    std::string word = lex_.ReadWord();
    if (word.empty()) {
      return Status::ParseError("unexpected character '" +
                                std::string(1, lex_.Peek()) +
                                "' in IRS query");
    }
    std::string analyzed = analyzer_.AnalyzeTerm(word);
    if (analyzed.empty()) {
      return StatusOr<std::unique_ptr<QueryNode>>(nullptr);
    }
    auto n = std::make_unique<QueryNode>();
    n->op = QueryOp::kTerm;
    n->term = std::move(analyzed);
    return StatusOr<std::unique_ptr<QueryNode>>(std::move(n));
  }

  StatusOr<std::unique_ptr<QueryNode>> ParseOperator() {
    ++lex_.pos;  // consume '#'
    std::string name = ToLower(lex_.ReadWord());
    QueryOp op;
    uint32_t window = 1;
    if (name == "sum") {
      op = QueryOp::kSum;
    } else if (name == "wsum") {
      op = QueryOp::kWsum;
    } else if (name == "and") {
      op = QueryOp::kAnd;
    } else if (name == "or") {
      op = QueryOp::kOr;
    } else if (name == "not") {
      op = QueryOp::kNot;
    } else if (name == "max") {
      op = QueryOp::kMax;
    } else if (name == "phrase") {
      op = QueryOp::kOdn;
      window = 1;
    } else if (StartsWith(name, "od") || StartsWith(name, "uw")) {
      op = StartsWith(name, "od") ? QueryOp::kOdn : QueryOp::kUwn;
      std::string digits = name.substr(2);
      if (digits.empty()) {
        return Status::ParseError("window operator needs a size: #" + name);
      }
      for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::ParseError("unknown IRS operator #" + name);
        }
      }
      window = static_cast<uint32_t>(std::stoul(digits));
      if (window == 0) {
        return Status::ParseError("window size must be positive: #" + name);
      }
    } else {
      return Status::ParseError("unknown IRS operator #" + name);
    }
    if (lex_.Peek() != '(') {
      return Status::ParseError("expected '(' after #" + name);
    }
    ++lex_.pos;
    auto node = std::make_unique<QueryNode>();
    node->op = op;
    while (lex_.Peek() != ')') {
      if (lex_.AtEnd()) {
        return Status::ParseError("unterminated #" + name + "(...)");
      }
      double weight = 1.0;
      if (op == QueryOp::kWsum) {
        std::string w = lex_.ReadWord();
        try {
          weight = std::stod(w);
        } catch (...) {
          return Status::ParseError("expected numeric weight in #wsum, got '" +
                                    w + "'");
        }
      }
      SDMS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> child, ParseNode());
      if (child != nullptr) {
        node->children.push_back(std::move(child));
        node->weights.push_back(weight);
      }
    }
    ++lex_.pos;  // consume ')'
    node->window = window;
    if (op == QueryOp::kNot && node->children.size() != 1) {
      return Status::ParseError("#not takes exactly one argument");
    }
    if (op == QueryOp::kOdn || op == QueryOp::kUwn) {
      if (node->children.size() < 2) {
        return Status::ParseError("window operators need >= 2 terms");
      }
      for (const auto& child : node->children) {
        if (child->op != QueryOp::kTerm) {
          return Status::ParseError(
              "window operators take term arguments only");
        }
      }
    }
    return StatusOr<std::unique_ptr<QueryNode>>(std::move(node));
  }

  IrsLexer lex_;
  const Analyzer& analyzer_;
};

}  // namespace

StatusOr<std::unique_ptr<QueryNode>> ParseIrsQuery(const std::string& query,
                                                   const Analyzer& analyzer) {
  IrsParser p(query, analyzer);
  return p.ParseTop();
}

}  // namespace sdms::irs
