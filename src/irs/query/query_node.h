#ifndef SDMS_IRS_QUERY_QUERY_NODE_H_
#define SDMS_IRS_QUERY_QUERY_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sdms::irs {

class Analyzer;

/// Operator kinds of the structured IRS query language. The #-operators
/// mirror the INQUERY operators whose exact semantics the paper says it
/// re-implemented inside the DBMS ("For INQUERY, we have knowledge of
/// half a dozen operators' exact semantics", Section 4.5.4).
enum class QueryOp {
  kTerm,  // leaf
  kSum,   // #sum: mean of children beliefs (INQUERY default)
  kWsum,  // #wsum: weighted mean
  kAnd,   // #and: product
  kOr,    // #or: 1 - prod(1 - b)
  kNot,   // #not: 1 - b
  kMax,   // #max: maximum
  kOdn,   // #odN / #phrase: ordered window over term children
  kUwn,   // #uwN: unordered window over term children
};

/// Returns "#sum", "#and", ... (or "term").
const char* QueryOpName(QueryOp op);

/// A node of the parsed IRS query tree.
struct QueryNode {
  QueryOp op = QueryOp::kTerm;
  /// Analyzed term (leaves only).
  std::string term;
  std::vector<std::unique_ptr<QueryNode>> children;
  /// Child weights for #wsum (parallel to children; 1.0 otherwise).
  std::vector<double> weights;
  /// Window size for #odN / #uwN (maximum distance between adjacent
  /// matched terms for #od, total window span for #uw).
  uint32_t window = 1;

  /// Renders back to query syntax.
  std::string ToString() const;

  std::unique_ptr<QueryNode> Clone() const;

  /// Collects all leaf terms (duplicates preserved).
  void CollectTerms(std::vector<std::string>& out) const;
};

/// Parses the IRS query language:
///   query    := node+                      (implicit #sum when several)
///   node     := '#' op '(' node+ ')' | TERM
///   #wsum    := '#wsum' '(' (WEIGHT node)+ ')'
///   windows  := '#odN' | '#phrase' (= #od1) | '#uwN', term children only
/// Terms are run through `analyzer`; stopped-out terms are dropped.
/// Examples: "WWW", "#and(WWW NII)", "#wsum(2 www 1 #or(nii internet))",
/// "#phrase(information retrieval)", "#uw8(database coupling)".
StatusOr<std::unique_ptr<QueryNode>> ParseIrsQuery(const std::string& query,
                                                   const Analyzer& analyzer);

}  // namespace sdms::irs

#endif  // SDMS_IRS_QUERY_QUERY_NODE_H_
