#include "irs/analysis/porter_stemmer.h"

namespace sdms::irs {

namespace {

/// Working buffer for one stemming run. Implements the measure and
/// condition predicates of Porter (1980), operating on b[0..k] with
/// signed indices exactly like the reference implementation.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word)
      : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string Run() {
    if (k_ <= 1) return b_;
    Step1a();
    if (k_ > 0) Step1b();
    if (k_ > 0) Step1c();
    if (k_ > 0) Step2();
    if (k_ > 0) Step3();
    if (k_ > 0) Step4();
    if (k_ > 0) Step5a();
    if (k_ > 0) Step5b();
    return b_.substr(0, static_cast<size_t>(k_) + 1);
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// m(): the number of VC sequences in b[0..j_].
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  /// True if b[0..j_] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  /// True if b[i-1..i] is a double consonant.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i) - 1]) {
      return false;
    }
    return IsConsonant(i);
  }

  /// cvc(i): consonant-vowel-consonant ending at i with the final
  /// consonant not w, x or y (so "hop" triggers, "snow" does not).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) ||
        !IsConsonant(i - 2)) {
      return false;
    }
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  /// True if b[0..k_] ends with `s`; sets j_ to the stem end.
  bool Ends(std::string_view s) {
    int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  /// Replaces the suffix after j_ by `s` and updates k_.
  void SetTo(std::string_view s) {
    b_.resize(static_cast<size_t>(j_) + 1);
    b_.append(s);
    k_ = j_ + static_cast<int>(s.size());
  }

  /// SetTo(s) when m() > 0.
  void R(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  void Truncate() { b_.resize(static_cast<size_t>(k_) + 1); }

  // Step 1a: plurals. SSES->SS, IES->I, SS->SS, S->"".
  void Step1a() {
    if (b_[static_cast<size_t>(k_)] != 's') return;
    if (Ends("sses")) {
      k_ -= 2;
    } else if (Ends("ies")) {
      SetTo("i");
    } else if (k_ >= 1 && b_[static_cast<size_t>(k_) - 1] != 's') {
      --k_;
    }
    Truncate();
  }

  // Step 1b: -eed, -ed, -ing.
  void Step1b() {
    if (Ends("eed")) {
      if (Measure() > 0) {
        --k_;
        Truncate();
      }
      return;
    }
    bool stripped = false;
    if (Ends("ed") && VowelInStem()) {
      k_ = j_;
      stripped = true;
    } else if (Ends("ing") && VowelInStem()) {
      k_ = j_;
      stripped = true;
    }
    if (!stripped) return;
    Truncate();
    if (Ends("at")) {
      SetTo("ate");
    } else if (Ends("bl")) {
      SetTo("ble");
    } else if (Ends("iz")) {
      SetTo("ize");
    } else if (DoubleC(k_)) {
      char ch = b_[static_cast<size_t>(k_)];
      if (ch != 'l' && ch != 's' && ch != 'z') {
        --k_;
        Truncate();
      }
    } else {
      j_ = k_;
      if (Measure() == 1 && Cvc(k_)) SetTo("e");
    }
  }

  // Step 1c: y -> i when there is a vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<size_t>(k_)] = 'i';
  }

  // Step 2: double suffixes mapped to single ones when m > 0.
  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_) - 1]) {
      case 'a':
        if (Ends("ational")) { R("ate"); break; }
        if (Ends("tional")) { R("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { R("ence"); break; }
        if (Ends("anci")) { R("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { R("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { R("ble"); break; }
        if (Ends("alli")) { R("al"); break; }
        if (Ends("entli")) { R("ent"); break; }
        if (Ends("eli")) { R("e"); break; }
        if (Ends("ousli")) { R("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { R("ize"); break; }
        if (Ends("ation")) { R("ate"); break; }
        if (Ends("ator")) { R("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { R("al"); break; }
        if (Ends("iveness")) { R("ive"); break; }
        if (Ends("fulness")) { R("ful"); break; }
        if (Ends("ousness")) { R("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { R("al"); break; }
        if (Ends("iviti")) { R("ive"); break; }
        if (Ends("biliti")) { R("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { R("log"); break; }
        break;
      default:
        break;
    }
    Truncate();
  }

  // Step 3: -icate, -ful, -ness etc.
  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { R("ic"); break; }
        if (Ends("ative")) { R(""); break; }
        if (Ends("alize")) { R("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { R("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { R("ic"); break; }
        if (Ends("ful")) { R(""); break; }
        break;
      case 's':
        if (Ends("ness")) { R(""); break; }
        break;
      default:
        break;
    }
    Truncate();
  }

  // Step 4: single suffixes removed when m > 1.
  void Step4() {
    if (k_ < 1) return;
    bool matched = false;
    switch (b_[static_cast<size_t>(k_) - 1]) {
      case 'a':
        matched = Ends("al");
        break;
      case 'c':
        matched = Ends("ance") || Ends("ence");
        break;
      case 'e':
        matched = Ends("er");
        break;
      case 'i':
        matched = Ends("ic");
        break;
      case 'l':
        matched = Ends("able") || Ends("ible");
        break;
      case 'n':
        matched = Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent");
        break;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          matched = true;
        } else {
          matched = Ends("ou");
        }
        break;
      case 's':
        matched = Ends("ism");
        break;
      case 't':
        matched = Ends("ate") || Ends("iti");
        break;
      case 'u':
        matched = Ends("ous");
        break;
      case 'v':
        matched = Ends("ive");
        break;
      case 'z':
        matched = Ends("ize");
        break;
      default:
        break;
    }
    if (matched && Measure() > 1) {
      k_ = j_;
      Truncate();
    }
  }

  // Step 5a: remove final -e when m > 1, or m == 1 and not cvc.
  void Step5a() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) {
        --k_;
        Truncate();
      }
    }
  }

  // Step 5b: -ll -> -l when m > 1.
  void Step5b() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleC(k_) && Measure() > 1) {
      --k_;
      Truncate();
    }
  }

  std::string b_;
  int k_;       // Index of the last character.
  int j_ = 0;   // Stem end set by Ends().
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (c < 'a' || c > 'z') return std::string(word);  // Non-alpha: skip.
  }
  Stemmer s(word);
  return s.Run();
}

}  // namespace sdms::irs
