#ifndef SDMS_IRS_ANALYSIS_TOKENIZER_H_
#define SDMS_IRS_ANALYSIS_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sdms::irs {

/// Splits raw text into lowercase word tokens. A token is a maximal
/// run of ASCII letters/digits; apostrophes inside words are dropped
/// ("don't" -> "dont"); everything else separates tokens.
std::vector<std::string> TokenizeText(std::string_view text);

}  // namespace sdms::irs

#endif  // SDMS_IRS_ANALYSIS_TOKENIZER_H_
