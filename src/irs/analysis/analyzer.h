#ifndef SDMS_IRS_ANALYSIS_ANALYZER_H_
#define SDMS_IRS_ANALYSIS_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sdms::irs {

/// Configuration of the text-analysis pipeline applied to documents at
/// indexing time and to query terms at search time.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  /// Tokens shorter than this (after analysis) are dropped.
  size_t min_token_length = 1;
};

/// The analysis pipeline: tokenize -> lowercase -> stop-filter -> stem.
/// Both the indexer and the query parsers route text through the same
/// analyzer so document and query terms agree.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Full pipeline over running text.
  std::vector<std::string> Analyze(std::string_view text) const;

  /// Pipeline for a single query term; returns empty when the term is
  /// stopped out.
  std::string AnalyzeTerm(std::string_view term) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_ANALYSIS_ANALYZER_H_
