#include "irs/analysis/tokenizer.h"

#include <cctype>

namespace sdms::irs {

std::vector<std::string> TokenizeText(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      cur.push_back(static_cast<char>(std::tolower(uc)));
    } else if (c == '\'') {
      // Drop apostrophes inside words: "don't" -> "dont".
      continue;
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace sdms::irs
