#include "irs/analysis/analyzer.h"

#include "common/string_util.h"
#include "irs/analysis/porter_stemmer.h"
#include "irs/analysis/stopwords.h"
#include "irs/analysis/tokenizer.h"

namespace sdms::irs {

std::vector<std::string> Analyzer::Analyze(std::string_view text) const {
  std::vector<std::string> tokens = TokenizeText(text);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& tok : tokens) {
    if (options_.remove_stopwords && IsStopword(tok)) continue;
    if (options_.stem) tok = PorterStem(tok);
    if (tok.size() < options_.min_token_length) continue;
    out.push_back(std::move(tok));
  }
  return out;
}

std::string Analyzer::AnalyzeTerm(std::string_view term) const {
  std::string tok = ToLower(term);
  if (options_.remove_stopwords && IsStopword(tok)) return "";
  if (options_.stem) tok = PorterStem(tok);
  if (tok.size() < options_.min_token_length) return "";
  return tok;
}

}  // namespace sdms::irs
