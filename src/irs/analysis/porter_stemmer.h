#ifndef SDMS_IRS_ANALYSIS_PORTER_STEMMER_H_
#define SDMS_IRS_ANALYSIS_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace sdms::irs {

/// Stems `word` (lowercase ASCII) with the classic Porter (1980)
/// algorithm — the stemmer INQUERY-era IR systems used. Words shorter
/// than 3 characters are returned unchanged.
std::string PorterStem(std::string_view word);

}  // namespace sdms::irs

#endif  // SDMS_IRS_ANALYSIS_PORTER_STEMMER_H_
