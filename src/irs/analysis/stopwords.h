#ifndef SDMS_IRS_ANALYSIS_STOPWORDS_H_
#define SDMS_IRS_ANALYSIS_STOPWORDS_H_

#include <string_view>

namespace sdms::irs {

/// True if `word` (already lowercased) is in the built-in English
/// stop list (a standard ~120-entry function-word list).
bool IsStopword(std::string_view word);

/// Number of entries in the built-in stop list (for tests).
size_t StopwordCount();

}  // namespace sdms::irs

#endif  // SDMS_IRS_ANALYSIS_STOPWORDS_H_
