#ifndef SDMS_IRS_COLLECTION_H_
#define SDMS_IRS_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "irs/analysis/analyzer.h"
#include "irs/index/inverted_index.h"
#include "irs/model/retrieval_model.h"

namespace sdms {
class ThreadPool;
}

namespace sdms::irs {

/// One document of a batch indexing call.
struct BatchDocument {
  std::string key;
  std::string text;
};

/// One ranked search hit: external document key (the OID string) and
/// its IRS value.
struct SearchHit {
  std::string key;
  double score = 0.0;
};

/// Usage counters of a collection (benches read these).
struct CollectionStats {
  uint64_t docs_indexed = 0;
  uint64_t docs_removed = 0;
  uint64_t queries_executed = 0;
};

/// An IRS collection in the paper's sense: an independent set of flat
/// text documents with its own index, analyzer, and retrieval model.
/// Each document carries an external key — the OID of the database
/// object it represents.
class IrsCollection {
 public:
  IrsCollection(std::string name, AnalyzerOptions analyzer_options,
                std::unique_ptr<RetrievalModel> model)
      : name_(std::move(name)),
        analyzer_(analyzer_options),
        model_(std::move(model)) {}

  const std::string& name() const { return name_; }
  const Analyzer& analyzer() const { return analyzer_; }
  const RetrievalModel& model() const { return *model_; }
  const InvertedIndex& index() const { return index_; }
  const CollectionStats& stats() const { return stats_; }

  /// Exchanges the retrieval paradigm (loose-coupling flexibility).
  void set_model(std::unique_ptr<RetrievalModel> model) {
    model_ = std::move(model);
  }

  /// Indexes `text` under `key`. Fails if the key is present.
  Status AddDocument(const std::string& key, const std::string& text);

  /// Bulk indexing: analysis fans out across `pool` (DefaultThreadPool()
  /// when omitted, sequential when that is null), then the postings are
  /// built via InvertedIndex::AddDocumentsBatch. Produces an index
  /// identical to adding the documents one by one in `docs` order.
  /// Fails without side effects if a key is already present or occurs
  /// twice in the batch.
  Status AddDocumentsBatch(const std::vector<BatchDocument>& docs,
                           ThreadPool* pool = nullptr);

  /// Switches the index between tombstone deletes with threshold
  /// compaction (default) and the paper's eager dictionary-scan delete.
  void set_eager_delete(bool eager) { index_.set_eager_delete(eager); }

  /// Prunes tombstoned postings now; returns tombstones cleared.
  size_t CompactIndex() { return index_.Compact(); }

  /// Replaces the document under `key` (remove + re-add).
  Status UpdateDocument(const std::string& key, const std::string& text);

  /// Removes the document under `key`.
  Status RemoveDocument(const std::string& key);

  bool HasDocument(const std::string& key) const {
    return index_.FindByKey(key).ok();
  }

  /// Evaluates an IRS query, returning hits ranked by descending score
  /// (ties broken by key for determinism).
  StatusOr<std::vector<SearchHit>> Search(const std::string& query);

  /// Top-k variant: keeps only the `k` best hits with a bounded heap
  /// instead of materializing and fully sorting every scored document.
  /// The result equals the first k entries of Search(query); k == 0
  /// means unbounded.
  StatusOr<std::vector<SearchHit>> Search(const std::string& query, size_t k);

  /// Highest database update-event sequence number whose effect is
  /// known to be reflected in this index (the exactly-once high-water
  /// mark). Persisted with the index so crash recovery can tell which
  /// update events are already applied. 0 = nothing sequenced yet.
  uint64_t applied_seq() const { return applied_seq_; }

  /// Monotonic bump — the mark never moves backwards.
  void set_applied_seq(uint64_t seq) {
    if (seq > applied_seq_) applied_seq_ = seq;
  }

  /// Content digest of the index, independent of DocId assignment and
  /// build history (see InvertedIndex::CanonicalDigest).
  std::string CanonicalDigest() const { return index_.CanonicalDigest(); }

  /// Serializes applied_seq + index (analyzer/model are configuration
  /// and are re-supplied at load). Pre-sequence-number blobs (raw index
  /// bytes without the envelope) restore with applied_seq == 0. Fails
  /// when a sealed postings block cannot be decoded.
  StatusOr<std::string> Serialize() const;
  Status RestoreIndex(std::string_view data);

  /// Seals the block postings into a paged store at `path` served
  /// through a buffer pool (see InvertedIndex::SealToStore).
  Status SealPostings(const std::string& path, int pool_pages = 0) {
    return index_.SealToStore(path, name_, pool_pages);
  }

 private:
  std::string name_;
  Analyzer analyzer_;
  std::unique_ptr<RetrievalModel> model_;
  InvertedIndex index_;
  CollectionStats stats_;
  uint64_t applied_seq_ = 0;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_COLLECTION_H_
