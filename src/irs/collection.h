#ifndef SDMS_IRS_COLLECTION_H_
#define SDMS_IRS_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "irs/analysis/analyzer.h"
#include "irs/index/inverted_index.h"
#include "irs/model/retrieval_model.h"
#include "irs/shard_map.h"

namespace sdms {
class ThreadPool;
}

namespace sdms::irs {

/// One document of a batch indexing call.
struct BatchDocument {
  std::string key;
  std::string text;
};

/// One ranked search hit: external document key (the OID string) and
/// its IRS value.
struct SearchHit {
  std::string key;
  double score = 0.0;
};

/// Usage counters of a collection (benches read these).
struct CollectionStats {
  uint64_t docs_indexed = 0;
  uint64_t docs_removed = 0;
  uint64_t queries_executed = 0;
};

/// Profile stage name for one shard's slice of a fan-out search
/// ("irs_search/shard<i>"); the pointer is stable for the process
/// lifetime, as ProfileStageScope requires.
const char* ShardSearchStageName(size_t shard);

/// Fault injection point name for one shard's search
/// ("irs.search.shard<i>"); stable for the process lifetime.
const char* ShardSearchFaultPoint(size_t shard);

/// Collects every window (#odN/#uwN) node of a parsed tree in
/// deterministic pre-order. Both PrepareSearch and the wire-statistics
/// decoder key window df by this traversal, which is why a remote
/// shard server that re-parses the same query with the same analyzer
/// attaches the router's window statistics to the right nodes.
void CollectWindowNodes(const QueryNode& node,
                        std::vector<const QueryNode*>& out);

/// An IRS collection in the paper's sense: an independent set of flat
/// text documents with its own analyzer and retrieval model.
///
/// Documents are partitioned across N shards (SDMS_SHARDS, default 1)
/// by a stable hash of their external key (ShardMap). Each shard is a
/// self-contained InvertedIndex — its own postings, doc table,
/// tombstones, sealed postings store, and exactly-once high-water mark
/// — so one shard is an independent failure domain: a caller can
/// search the surviving shards and merge while one shard is faulted.
///
/// Searches split into PrepareSearch (parse once, snapshot *global*
/// corpus statistics) and per-shard SearchShard calls; because every
/// retrieval model scores from the injected global statistics, a
/// document's score is identical no matter which shard holds it, and
/// the merged N-shard top-k is bit-identical to the unsharded ranking.
class IrsCollection {
 public:
  IrsCollection(std::string name, AnalyzerOptions analyzer_options,
                std::unique_ptr<RetrievalModel> model,
                uint32_t num_shards = ShardsFromEnv());

  const std::string& name() const { return name_; }
  const Analyzer& analyzer() const { return analyzer_; }
  const RetrievalModel& model() const { return *model_; }
  const CollectionStats& stats() const { return stats_; }

  /// Shard-0 view. With one shard (the default) this is the whole
  /// collection — existing single-index tests and benches read it.
  const InvertedIndex& index() const { return *shards_[0]; }

  size_t num_shards() const { return shards_.size(); }
  const InvertedIndex& shard(size_t s) const { return *shards_[s]; }
  const ShardMap& shard_map() const { return shard_map_; }

  /// Shard owning `key` under the current map.
  uint32_t ShardOfKey(const std::string& key) const {
    return shard_map_.ShardOf(key);
  }

  /// Re-partitions an *empty* collection into `n` shards (tests, the
  /// simulation harness). Fails once any document has been indexed:
  /// the shard map is a durable property of the data.
  Status SetNumShards(uint32_t n);

  /// Exchanges the retrieval paradigm (loose-coupling flexibility).
  void set_model(std::unique_ptr<RetrievalModel> model) {
    model_ = std::move(model);
  }

  /// Indexes `text` under `key`. Fails if the key is present.
  Status AddDocument(const std::string& key, const std::string& text);

  /// Bulk indexing: analysis fans out across `pool` (DefaultThreadPool()
  /// when omitted, sequential when that is null), then each shard's
  /// slice of the batch is built via InvertedIndex::AddDocumentsBatch.
  /// Per shard the result is identical to adding that shard's documents
  /// one by one in `docs` order. Fails without side effects if a key is
  /// already present or occurs twice in the batch.
  Status AddDocumentsBatch(const std::vector<BatchDocument>& docs,
                           ThreadPool* pool = nullptr);

  /// Switches every shard between tombstone deletes with threshold
  /// compaction (default) and the paper's eager dictionary-scan delete.
  void set_eager_delete(bool eager);

  /// Prunes tombstoned postings now; returns tombstones cleared
  /// (summed over shards).
  size_t CompactIndex();

  /// Replaces the document under `key` (remove + re-add).
  Status UpdateDocument(const std::string& key, const std::string& text);

  /// Removes the document under `key`.
  Status RemoveDocument(const std::string& key);

  bool HasDocument(const std::string& key) const {
    return shards_[ShardOfKey(key)]->FindByKey(key).ok();
  }

  /// Live documents across all shards.
  uint64_t doc_count() const;

  /// Approximate memory footprint summed over shards.
  size_t ApproximateSizeBytes() const;

  /// Iterates every live document across all shards:
  /// fn(shard, DocId, DocInfo). DocIds are only meaningful within
  /// their shard.
  template <typename Fn>
  void ForEachDoc(Fn&& fn) const {
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->ForEachDoc(
          [&](DocId id, const DocInfo& info) { fn(s, id, info); });
    }
  }

  /// A parsed query plus the global statistics every shard scores
  /// against. Built once per query; shared (read-only) by all
  /// per-shard SearchShard calls — window statistics are keyed by
  /// nodes of this plan's tree.
  struct SearchPlan {
    std::unique_ptr<QueryNode> tree;
    CorpusStats corpus;
    size_t k = 0;  // 0 = unbounded
  };

  /// Parses `query` and snapshots corpus-wide statistics (document
  /// count, token count, per-term df, per-window-node df). Counts the
  /// query in stats()/metrics.
  StatusOr<SearchPlan> PrepareSearch(const std::string& query, size_t k);

  /// Evaluates the plan on one shard, returning that shard's hits
  /// ranked by (score desc, key asc), truncated to plan.k when k > 0.
  /// Checks the "irs.search" and "irs.search.shard<i>" fault points
  /// and the current QueryContext. Safe to call concurrently for
  /// *different* shards of the same plan.
  StatusOr<std::vector<SearchHit>> SearchShard(const SearchPlan& plan,
                                               size_t shard);

  /// Merges per-shard ranked hit lists into one ranking — (score desc,
  /// key asc), truncated to `k` when k > 0. Keys are disjoint across
  /// shards, so this is a pure merge.
  static std::vector<SearchHit> MergeShardHits(
      std::vector<std::vector<SearchHit>> per_shard, size_t k);

  // --- Remote shard serving (protocol v3) -------------------------------

  /// Wire form of a plan's global corpus statistics (doc count, token
  /// count, per-term df, window df in CollectWindowNodes order).
  /// Shipped with the query string to remote shard servers, whose
  /// scoring against these injected statistics is bit-identical to a
  /// local SearchShard of the same plan.
  static std::string EncodePlanStats(const SearchPlan& plan);

  /// Rebuilds a SearchPlan from a query string plus wire statistics:
  /// parses with this collection's analyzer and attaches the decoded
  /// statistics instead of computing local ones. kCorruption when the
  /// statistics don't decode or don't match the parsed tree's shape
  /// (window count) — the two sides must share query and analyzer.
  StatusOr<SearchPlan> PrepareSearchWithStats(const std::string& query,
                                              size_t k,
                                              std::string_view stats);

  /// Serialized image of one shard's index (pair it with
  /// shard_applied_seq(s)) — the remote catch-up full-install payload.
  StatusOr<std::string> SerializeShard(size_t shard) const;

  /// Atomically replaces shard `shard` with a deserialized image and
  /// its applied-seq floor. On a decode error the current shard is
  /// untouched. Used by shard servers installing router state.
  Status InstallShard(size_t shard, std::string_view index_bytes,
                      uint64_t seq);

  /// Rebalances the collection to `m` shards as a rebuild pipeline:
  /// every live document's analyzed token sequence is reconstructed
  /// from its positional postings, indexed into a fresh m-shard
  /// layout, and the new layout's CanonicalDigest is verified equal to
  /// the current one *before* the swap — a failed verify leaves the
  /// collection unchanged. Applied-seq floors carry over conservatively
  /// (every new shard starts at the collection-wide minimum floor).
  Status Reshard(uint32_t m);

  /// Evaluates an IRS query, returning hits ranked by descending score
  /// (ties broken by key for determinism). Fans out across all shards
  /// (through the default thread pool) and merges; any shard failure
  /// fails the whole search — per-shard degradation is the coupling
  /// layer's job (it drives SearchShard itself, one guard per shard).
  StatusOr<std::vector<SearchHit>> Search(const std::string& query);

  /// Top-k variant: each shard keeps only its `k` best hits with a
  /// bounded heap. The merged result equals the first k entries of
  /// Search(query); k == 0 means unbounded.
  StatusOr<std::vector<SearchHit>> Search(const std::string& query, size_t k);

  /// Highest database update-event sequence number whose effect is
  /// known to be reflected in *every* shard (the exactly-once
  /// high-water mark): the minimum over per-shard marks. Persisted
  /// with the index so crash recovery can tell which update events
  /// are already applied. 0 = nothing sequenced yet.
  uint64_t applied_seq() const;

  /// Per-shard high-water mark.
  uint64_t shard_applied_seq(size_t shard) const {
    return applied_seq_[shard];
  }

  /// Monotonic bump of every shard's mark (unsharded callers).
  void set_applied_seq(uint64_t seq);

  /// Monotonic bump of one shard's mark — shard-isolated propagation
  /// advances only the shards it actually applied to.
  void set_shard_applied_seq(size_t shard, uint64_t seq) {
    if (seq > applied_seq_[shard]) applied_seq_[shard] = seq;
  }

  /// Content digest of the collection, independent of DocId
  /// assignment, build history, *and shard count*: canonical doc and
  /// posting lines are merged across shards before hashing, so an
  /// N-shard collection digests identically to an unsharded one
  /// holding the same documents.
  std::string CanonicalDigest() const;

  /// Structural invariants of every shard plus the routing invariant
  /// (each document lives in the shard its key hashes to). Empty
  /// string when consistent.
  std::string CheckInvariants() const;

  /// Serializes shard map + per-shard applied_seq + per-shard index
  /// (analyzer/model are configuration and are re-supplied at load).
  /// Pre-shard blobs (single-index envelope or raw index bytes)
  /// restore as one shard; the snapshot's shard layout always wins
  /// over the current SDMS_SHARDS setting. Fails when a sealed
  /// postings block cannot be decoded.
  StatusOr<std::string> Serialize() const;
  Status RestoreIndex(std::string_view data);

  /// Seals each shard's block postings into a paged store served
  /// through a buffer pool (see InvertedIndex::SealToStore). Shard 0
  /// seals at `path` (the unsharded layout); shard i > 0 at
  /// `path + ".s<i>"`.
  Status SealPostings(const std::string& path, int pool_pages = 0);

 private:
  /// Fresh empty shard respecting the collection's eager-delete mode,
  /// with per-index threshold compaction disabled — the collection
  /// drives compaction globally (MaybeCompactShards) so corpus
  /// statistics stay identical across shard layouts.
  std::unique_ptr<InvertedIndex> NewShard() const;

  /// CanonicalDigest over an arbitrary shard vector (Reshard verifies
  /// the rebuilt layout before swapping it in).
  static std::string DigestShards(
      const std::vector<std::unique_ptr<InvertedIndex>>& shards);

  /// Applies InvertedIndex::kCompactionRatio over collection-global
  /// tombstone/doc-table counts and compacts every shard together when
  /// it trips. Layout-independent: for one shard this is exactly the
  /// index's own auto-compaction check.
  void MaybeCompactShards();

  std::string name_;
  Analyzer analyzer_;
  std::unique_ptr<RetrievalModel> model_;
  ShardMap shard_map_;
  std::vector<std::unique_ptr<InvertedIndex>> shards_;
  std::vector<uint64_t> applied_seq_;
  CollectionStats stats_;
  bool eager_delete_ = false;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_COLLECTION_H_
