#include "irs/engine.h"

#include <cstdio>

#include "common/fault/fault.h"
#include "common/file_util.h"
#include "common/obs/metrics.h"
#include "common/string_util.h"

namespace sdms::irs {

namespace {

/// Sealing the postings into the paged store is an optimization, not a
/// durability requirement (the `.idx` snapshot is the truth): on
/// failure the collection keeps serving from memory-resident blocks.
void SealPostingsBestEffort(IrsCollection& coll, const std::string& dir) {
  Status sealed = coll.SealPostings(dir + "/" + coll.name() + ".postings");
  if (!sealed.ok()) {
    obs::GetCounter("irs.seal.failures").Increment();
  }
}

}  // namespace

StatusOr<IrsCollection*> IrsEngine::CreateCollection(
    const std::string& name, AnalyzerOptions analyzer_options,
    const std::string& model_name) {
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("IRS collection exists: " + name);
  }
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<RetrievalModel> model,
                        MakeModel(model_name));
  auto coll = std::make_unique<IrsCollection>(name, analyzer_options,
                                              std::move(model));
  IrsCollection* raw = coll.get();
  collections_.emplace(name, std::move(coll));
  model_names_[name] = model_name;
  return raw;
}

StatusOr<IrsCollection*> IrsEngine::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no IRS collection: " + name);
  }
  return it->second.get();
}

Status IrsEngine::DropCollection(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no IRS collection: " + name);
  }
  model_names_.erase(name);
  return Status::OK();
}

std::vector<std::string> IrsEngine::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, coll] : collections_) out.push_back(name);
  return out;
}

Status IrsEngine::SaveTo(const std::string& dir) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.save"));
  SDMS_RETURN_IF_ERROR(MakeDirs(dir));
  std::string manifest;
  for (const auto& [name, coll] : collections_) {
    auto model_it = model_names_.find(name);
    manifest += name + "\t" +
                (model_it != model_names_.end() ? model_it->second
                                                : std::string("inquery")) +
                "\n";
    // The checksum envelope turns a torn or bit-flipped index file
    // into a clean kCorruption at load instead of silent bad state.
    SDMS_ASSIGN_OR_RETURN(std::string blob, coll->Serialize());
    SDMS_RETURN_IF_ERROR(WriteFileAtomic(dir + "/" + name + ".idx",
                                         WithChecksumEnvelope(blob)));
    SealPostingsBestEffort(*coll, dir);
  }
  return WriteFileAtomic(dir + "/collections.manifest",
                         WithChecksumEnvelope(manifest));
}

Status IrsEngine::LoadFrom(const std::string& dir) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.load"));
  SDMS_ASSIGN_OR_RETURN(std::string manifest_raw,
                        ReadFile(dir + "/collections.manifest"));
  SDMS_ASSIGN_OR_RETURN(std::string manifest,
                        StripChecksumEnvelope(std::move(manifest_raw)));
  for (const std::string& line : Split(manifest, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, '\t');
    if (parts.size() != 2) {
      return Status::Corruption("bad manifest line: " + line);
    }
    const std::string& name = parts[0];
    const std::string& model_name = parts[1];
    SDMS_ASSIGN_OR_RETURN(IrsCollection * coll,
                          CreateCollection(name, AnalyzerOptions{}, model_name));
    SDMS_ASSIGN_OR_RETURN(std::string raw, ReadFile(dir + "/" + name + ".idx"));
    SDMS_ASSIGN_OR_RETURN(std::string data,
                          StripChecksumEnvelope(std::move(raw)));
    SDMS_RETURN_IF_ERROR(coll->RestoreIndex(data));
    // The restored index holds memory-resident blocks; push them back
    // into the paged store so queries run through the buffer pool.
    SealPostingsBestEffort(*coll, dir);
  }
  return Status::OK();
}

Status IrsEngine::SearchToFile(const std::string& collection,
                               const std::string& query,
                               const std::string& path) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.exchange.write"));
  SDMS_ASSIGN_OR_RETURN(IrsCollection * coll, GetCollection(collection));
  SDMS_ASSIGN_OR_RETURN(std::vector<SearchHit> hits, coll->Search(query));
  std::string out;
  for (const SearchHit& h : hits) {
    // %.17g survives the text round-trip exactly for any double, so the
    // exchange-file detour never perturbs scores or ranking.
    out += h.key + "\t" + StrFormat("%.17g", h.score) + "\n";
  }
  // Checksummed so a torn exchange file surfaces as kCorruption when
  // parsed, never as a truncated-but-plausible result list.
  return WriteFileAtomic(path, WithChecksumEnvelope(out));
}

StatusOr<std::vector<SearchHit>> IrsEngine::ParseResultFile(
    const std::string& path) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.exchange.read"));
  SDMS_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
  if (fault::InjectCorrupt("irs.exchange.read")) fault::CorruptInPlace(raw);
  SDMS_ASSIGN_OR_RETURN(std::string data, StripChecksumEnvelope(std::move(raw)));
  std::vector<SearchHit> hits;
  for (const std::string& line : Split(data, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, '\t');
    if (parts.size() != 2) {
      return Status::Corruption("bad IRS result line: " + line);
    }
    SearchHit h;
    h.key = parts[0];
    StatusOr<double> score = ParseDouble(parts[1]);
    if (!score.ok()) {
      return Status::Corruption("bad IRS score: " + parts[1]);
    }
    h.score = *score;
    hits.push_back(std::move(h));
  }
  return hits;
}

}  // namespace sdms::irs
