#include "irs/engine.h"

#include <cstdio>

#include "common/file_util.h"
#include "common/string_util.h"

namespace sdms::irs {

StatusOr<IrsCollection*> IrsEngine::CreateCollection(
    const std::string& name, AnalyzerOptions analyzer_options,
    const std::string& model_name) {
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("IRS collection exists: " + name);
  }
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<RetrievalModel> model,
                        MakeModel(model_name));
  auto coll = std::make_unique<IrsCollection>(name, analyzer_options,
                                              std::move(model));
  IrsCollection* raw = coll.get();
  collections_.emplace(name, std::move(coll));
  model_names_[name] = model_name;
  return raw;
}

StatusOr<IrsCollection*> IrsEngine::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no IRS collection: " + name);
  }
  return it->second.get();
}

Status IrsEngine::DropCollection(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no IRS collection: " + name);
  }
  model_names_.erase(name);
  return Status::OK();
}

std::vector<std::string> IrsEngine::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, coll] : collections_) out.push_back(name);
  return out;
}

Status IrsEngine::SaveTo(const std::string& dir) const {
  SDMS_RETURN_IF_ERROR(MakeDirs(dir));
  std::string manifest;
  for (const auto& [name, coll] : collections_) {
    auto model_it = model_names_.find(name);
    manifest += name + "\t" +
                (model_it != model_names_.end() ? model_it->second
                                                : std::string("inquery")) +
                "\n";
    SDMS_RETURN_IF_ERROR(
        WriteFileAtomic(dir + "/" + name + ".idx", coll->Serialize()));
  }
  return WriteFileAtomic(dir + "/collections.manifest", manifest);
}

Status IrsEngine::LoadFrom(const std::string& dir) {
  SDMS_ASSIGN_OR_RETURN(std::string manifest,
                        ReadFile(dir + "/collections.manifest"));
  for (const std::string& line : Split(manifest, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, '\t');
    if (parts.size() != 2) {
      return Status::Corruption("bad manifest line: " + line);
    }
    const std::string& name = parts[0];
    const std::string& model_name = parts[1];
    SDMS_ASSIGN_OR_RETURN(IrsCollection * coll,
                          CreateCollection(name, AnalyzerOptions{}, model_name));
    SDMS_ASSIGN_OR_RETURN(std::string data, ReadFile(dir + "/" + name + ".idx"));
    SDMS_RETURN_IF_ERROR(coll->RestoreIndex(data));
  }
  return Status::OK();
}

Status IrsEngine::SearchToFile(const std::string& collection,
                               const std::string& query,
                               const std::string& path) {
  SDMS_ASSIGN_OR_RETURN(IrsCollection * coll, GetCollection(collection));
  SDMS_ASSIGN_OR_RETURN(std::vector<SearchHit> hits, coll->Search(query));
  std::string out;
  for (const SearchHit& h : hits) {
    // %.17g survives the text round-trip exactly for any double, so the
    // exchange-file detour never perturbs scores or ranking.
    out += h.key + "\t" + StrFormat("%.17g", h.score) + "\n";
  }
  return WriteFileAtomic(path, out);
}

StatusOr<std::vector<SearchHit>> IrsEngine::ParseResultFile(
    const std::string& path) {
  SDMS_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  std::vector<SearchHit> hits;
  for (const std::string& line : Split(data, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, '\t');
    if (parts.size() != 2) {
      return Status::Corruption("bad IRS result line: " + line);
    }
    SearchHit h;
    h.key = parts[0];
    StatusOr<double> score = ParseDouble(parts[1]);
    if (!score.ok()) {
      return Status::Corruption("bad IRS score: " + parts[1]);
    }
    h.score = *score;
    hits.push_back(std::move(h));
  }
  return hits;
}

}  // namespace sdms::irs
