#include "irs/storage/postings_store.h"

#include <cstdlib>

#include "common/file_util.h"
#include "common/obs/stats.h"
#include "common/string_util.h"

namespace sdms::irs {

size_t ResolveBufferPoolPages(int pool_pages) {
  if (pool_pages > 0) return static_cast<size_t>(pool_pages);
  if (const char* env = std::getenv("SDMS_BUFFER_POOL_PAGES")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return kDefaultBufferPoolPages;
}

BlockHandle PostingsStore::Writer::AppendBlock(std::string_view encoded) {
  BlockHandle handle;
  handle.offset = file_.Append(encoded);
  handle.length = static_cast<uint32_t>(encoded.size());
  return handle;
}

Status PostingsStore::Writer::Finish(const std::string& path) {
  return WriteFileAtomic(path, file_.Finish());
}

StatusOr<std::unique_ptr<PostingsStore>> PostingsStore::Open(
    const std::string& path, const std::string& collection, int pool_pages) {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> file, PageFile::Open(path));
  return std::unique_ptr<PostingsStore>(
      new PostingsStore(std::move(file), collection, path,
                        ResolveBufferPoolPages(pool_pages)));
}

StatusOr<std::string> PostingsStore::ReadBlock(const BlockHandle& handle) const {
  if (handle.offset + handle.length > file_->payload_size()) {
    return Status::Corruption(StrFormat(
        "block handle [%llu, +%u) outside postings payload (%llu bytes): %s",
        static_cast<unsigned long long>(handle.offset), handle.length,
        static_cast<unsigned long long>(file_->payload_size()),
        path_.c_str()));
  }
  auto& stats = obs::StatisticsService::Instance();
  std::string block;
  block.reserve(handle.length);
  uint64_t remaining = handle.length;
  uint64_t offset = handle.offset;
  while (remaining > 0) {
    uint64_t page = offset / kPagePayloadBytes;
    uint64_t in_page = offset % kPagePayloadBytes;
    auto ref = pool_.Fetch(
        page, [this](uint64_t p) { return file_->ReadPage(p); });
    if (!ref.ok()) {
      stats.RecordPoolLookup(collection_, /*hit=*/false);
      return ref.status();
    }
    stats.RecordPoolLookup(collection_, ref->hit());
    std::string_view payload = ref->data();
    if (in_page >= payload.size()) {
      return Status::Corruption(StrFormat(
          "block handle points past payload of page %llu: %s",
          static_cast<unsigned long long>(page), path_.c_str()));
    }
    uint64_t take = std::min<uint64_t>(remaining, payload.size() - in_page);
    block.append(payload.data() + in_page, take);
    offset += take;
    remaining -= take;
  }
  return block;
}

}  // namespace sdms::irs
