#include "irs/storage/page_file.h"

#include <cstring>

#include "common/fault/fault.h"
#include "common/string_util.h"
#include "oodb/storage/serializer.h"

namespace sdms::irs {

namespace {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

uint64_t PageFileWriter::Append(std::string_view bytes) {
  uint64_t offset = payload_.size();
  payload_.append(bytes.data(), bytes.size());
  return offset;
}

std::string PageFileWriter::Finish() const {
  // Header page: magic, page size, payload size, CRC over those fields.
  std::string header(kPageFileMagic, sizeof(kPageFileMagic));
  PutU32(header, static_cast<uint32_t>(kPageSize));
  PutU64(header, payload_.size());
  PutU32(header, oodb::Crc32(header));
  header.resize(kPageSize, '\0');

  std::string image = std::move(header);
  uint64_t pages =
      (payload_.size() + kPagePayloadBytes - 1) / kPagePayloadBytes;
  image.reserve(kPageSize * (1 + pages));
  for (uint64_t p = 0; p < pages; ++p) {
    uint64_t begin = p * kPagePayloadBytes;
    uint64_t len = std::min<uint64_t>(kPagePayloadBytes,
                                      payload_.size() - begin);
    std::string_view chunk(payload_.data() + begin, len);
    std::string page;
    page.reserve(kPageSize);
    PutU32(page, oodb::Crc32(chunk));
    PutU32(page, static_cast<uint32_t>(len));
    page.append(chunk);
    page.resize(kPageSize, '\0');
    image += page;
  }
  return image;
}

StatusOr<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.pagefile.open"));
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    return Status::NotFound(StrFormat("postings file missing: %s",
                                      path.c_str()));
  }
  char header[kPageSize];
  if (std::fread(header, 1, kPageSize, fp) != kPageSize) {
    std::fclose(fp);
    return Status::Corruption(
        StrFormat("postings file header truncated: %s", path.c_str()));
  }
  if (std::memcmp(header, kPageFileMagic, sizeof(kPageFileMagic)) != 0) {
    std::fclose(fp);
    return Status::Corruption(
        StrFormat("postings file bad magic: %s", path.c_str()));
  }
  const size_t kHeaderLen = sizeof(kPageFileMagic) + 4 + 8;
  uint32_t page_size = ReadU32(header + sizeof(kPageFileMagic));
  uint64_t payload_size = ReadU64(header + sizeof(kPageFileMagic) + 4);
  uint32_t crc = ReadU32(header + kHeaderLen);
  if (crc != oodb::Crc32(std::string_view(header, kHeaderLen))) {
    std::fclose(fp);
    return Status::Corruption(
        StrFormat("postings file header checksum mismatch: %s", path.c_str()));
  }
  if (page_size != kPageSize) {
    std::fclose(fp);
    return Status::Corruption(
        StrFormat("postings file page size %u != %zu: %s", page_size,
                  kPageSize, path.c_str()));
  }
  return std::unique_ptr<PageFile>(new PageFile(fp, payload_size, path));
}

PageFile::~PageFile() {
  if (fp_ != nullptr) std::fclose(fp_);
}

StatusOr<std::string> PageFile::ReadPage(uint64_t page) const {
  if (page >= page_count()) {
    return Status::InvalidArgument(
        StrFormat("page %llu out of range (%llu data pages): %s",
                  static_cast<unsigned long long>(page),
                  static_cast<unsigned long long>(page_count()),
                  path_.c_str()));
  }
  SDMS_RETURN_IF_ERROR(fault::InjectFault("irs.pagefile.read"));
  char buf[kPageSize];
  {
    std::lock_guard<std::mutex> lock(mu_);
    long off = static_cast<long>((page + 1) * kPageSize);
    if (std::fseek(fp_, off, SEEK_SET) != 0 ||
        std::fread(buf, 1, kPageSize, fp_) != kPageSize) {
      return Status::IoError(
          StrFormat("short read of page %llu: %s",
                    static_cast<unsigned long long>(page), path_.c_str()));
    }
  }
  uint32_t crc = ReadU32(buf);
  uint32_t len = ReadU32(buf + 4);
  if (len > kPagePayloadBytes) {
    return Status::Corruption(
        StrFormat("page %llu payload length %u exceeds page capacity: %s",
                  static_cast<unsigned long long>(page), len, path_.c_str()));
  }
  std::string_view payload(buf + kPageHeaderBytes, len);
  if (crc != oodb::Crc32(payload)) {
    return Status::Corruption(
        StrFormat("page %llu checksum mismatch: %s",
                  static_cast<unsigned long long>(page), path_.c_str()));
  }
  return std::string(payload);
}

}  // namespace sdms::irs
