#ifndef SDMS_IRS_STORAGE_BUFFER_POOL_H_
#define SDMS_IRS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sdms::irs {

class BufferPool;

/// RAII pin on one buffer-pool frame. While alive, the frame cannot be
/// evicted and data() stays valid. Move-only; the destructor unpins.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  std::string_view data() const;
  /// True when this fetch was served from the pool without touching disk.
  bool hit() const { return hit_; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, bool hit)
      : pool_(pool), frame_(frame), hit_(hit) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  bool hit_ = false;
};

/// Fixed-capacity page cache in front of the paged postings file:
/// `capacity` frames, pin/unpin via PageRef, LRU eviction of unpinned
/// frames. When every frame is pinned a fetch fails with
/// kResourceExhausted rather than growing — memory pressure is a real
/// error the caller must see (mirrors the paper's E4 point that the
/// buffering budget, not the algorithm, bounds coupled-query cost).
///
/// Exposes obs counters irs.bufferpool.{hits,misses,evictions} and the
/// gauge irs.bufferpool.resident_pages (process-wide totals across
/// pools).
class BufferPool {
 public:
  using PageLoader = std::function<StatusOr<std::string>(uint64_t)>;

  explicit BufferPool(size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned reference to `page_id`, invoking `loader` on a
  /// miss. The loader runs under the pool lock (loads are serialized;
  /// correctness first — the page file read is one seek+read anyway).
  StatusOr<PageRef> Fetch(uint64_t page_id, const PageLoader& loader);

  size_t capacity() const { return capacity_; }
  size_t resident() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  /// Number of currently pinned frames (test/diagnostic aid).
  size_t pinned() const;

  /// Bytes held by resident frame payloads plus frame bookkeeping.
  size_t ApproxMemoryBytes() const;

 private:
  friend class PageRef;

  struct Frame {
    uint64_t page_id = 0;
    std::string payload;
    uint32_t pins = 0;
    uint64_t tick = 0;
    bool valid = false;
  };

  void Unpin(size_t frame);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> page_to_frame_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_STORAGE_BUFFER_POOL_H_
