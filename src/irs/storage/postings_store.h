#ifndef SDMS_IRS_STORAGE_POSTINGS_STORE_H_
#define SDMS_IRS_STORAGE_POSTINGS_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "irs/index/block_postings.h"
#include "irs/storage/buffer_pool.h"
#include "irs/storage/page_file.h"

namespace sdms::irs {

/// Default buffer-pool size in pages when SDMS_BUFFER_POOL_PAGES is
/// unset (256 × 4 KiB ≈ 1 MiB per open postings store).
inline constexpr size_t kDefaultBufferPoolPages = 256;

/// Resolves the buffer-pool capacity: an explicit `pool_pages` > 0
/// wins, then the SDMS_BUFFER_POOL_PAGES environment knob, then the
/// default. Always at least 1.
size_t ResolveBufferPoolPages(int pool_pages);

/// A sealed, read-only postings file: encoded blocks addressed by
/// BlockHandle (logical payload offset + length), served through a
/// fixed-size buffer pool over the paged file. Each page fetch is
/// recorded into the StatisticsService pool-hit EWMA for `collection`
/// so the cost model can price IRS-side I/O.
class PostingsStore {
 public:
  /// Builds the paged image for one seal. AppendBlock hands back the
  /// handle the index stores in its block metadata; Finish publishes
  /// the file atomically.
  class Writer {
   public:
    BlockHandle AppendBlock(std::string_view encoded);
    Status Finish(const std::string& path);

   private:
    PageFileWriter file_;
  };

  /// Opens the postings file at `path`. `pool_pages` <= 0 defers to
  /// SDMS_BUFFER_POOL_PAGES / the default.
  static StatusOr<std::unique_ptr<PostingsStore>> Open(
      const std::string& path, const std::string& collection,
      int pool_pages = 0);

  /// Reassembles one encoded block, fetching each spanned page through
  /// the buffer pool.
  StatusOr<std::string> ReadBlock(const BlockHandle& handle) const;

  uint64_t payload_size() const { return file_->payload_size(); }
  const BufferPool& pool() const { return pool_; }
  const std::string& path() const { return path_; }

  /// Buffer-pool frame memory (resident payloads + bookkeeping).
  size_t ApproxMemoryBytes() const { return pool_.ApproxMemoryBytes(); }

 private:
  PostingsStore(std::unique_ptr<PageFile> file, std::string collection,
                std::string path, size_t pool_pages)
      : file_(std::move(file)),
        collection_(std::move(collection)),
        path_(std::move(path)),
        pool_(pool_pages) {}

  std::unique_ptr<PageFile> file_;
  std::string collection_;
  std::string path_;
  mutable BufferPool pool_;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_STORAGE_POSTINGS_STORE_H_
