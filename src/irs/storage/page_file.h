#ifndef SDMS_IRS_STORAGE_PAGE_FILE_H_
#define SDMS_IRS_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace sdms::irs {

/// Fixed page geometry of the paged postings file. Every page is
/// kPageSize bytes; data pages carry an 8-byte header
/// {u32 crc32(payload), u32 payload_len} followed by up to
/// kPagePayloadBytes of payload. Page 0 is the file header (magic,
/// geometry, total payload size — checksummed like everything else).
inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageHeaderBytes = 8;
inline constexpr size_t kPagePayloadBytes = kPageSize - kPageHeaderBytes;

inline constexpr char kPageFileMagic[8] = {'S', 'D', 'M', 'S',
                                           'P', 'S', 'T', '1'};

/// Builds a paged postings file image in memory. Payload bytes are
/// appended as one logical stream; Finish() slices the stream into
/// checksummed pages behind a header page. The caller publishes the
/// image with WriteFileAtomic, so a half-written file can never be
/// observed (crash leaves only a ".tmp", which recovery sweeps).
class PageFileWriter {
 public:
  /// Appends payload bytes; returns the logical offset they start at.
  uint64_t Append(std::string_view bytes);

  uint64_t payload_size() const { return payload_.size(); }

  /// Assembles the final paged image (header page + data pages).
  std::string Finish() const;

 private:
  std::string payload_;
};

/// Read side of the paged postings file. Pages are read on demand and
/// CRC-verified individually, so one flipped bit surfaces as
/// kCorruption on exactly the queries that touch that page. Reads are
/// serialized on an internal mutex (one seek+read critical section);
/// callers cache decoded pages in the buffer pool above this layer.
class PageFile {
 public:
  static StatusOr<std::unique_ptr<PageFile>> Open(const std::string& path);
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  uint64_t payload_size() const { return payload_size_; }
  /// Number of data pages (excluding the header page).
  uint64_t page_count() const {
    return (payload_size_ + kPagePayloadBytes - 1) / kPagePayloadBytes;
  }

  /// Reads data page `page` (0-based, header page excluded), verifying
  /// its CRC, and returns the payload bytes stored in it.
  StatusOr<std::string> ReadPage(uint64_t page) const;

 private:
  PageFile(std::FILE* fp, uint64_t payload_size, std::string path)
      : fp_(fp), payload_size_(payload_size), path_(std::move(path)) {}

  mutable std::mutex mu_;
  std::FILE* fp_ = nullptr;
  uint64_t payload_size_ = 0;
  std::string path_;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_STORAGE_PAGE_FILE_H_
