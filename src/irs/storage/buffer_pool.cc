#include "irs/storage/buffer_pool.h"

#include <algorithm>

#include "common/obs/metrics.h"
#include "common/string_util.h"

namespace sdms::irs {

namespace {

obs::Counter& PoolHits() {
  static obs::Counter& c = obs::GetCounter("irs.bufferpool.hits");
  return c;
}

obs::Counter& PoolMisses() {
  static obs::Counter& c = obs::GetCounter("irs.bufferpool.misses");
  return c;
}

obs::Counter& PoolEvictions() {
  static obs::Counter& c = obs::GetCounter("irs.bufferpool.evictions");
  return c;
}

obs::Gauge& ResidentPages() {
  static obs::Gauge& g = obs::GetGauge("irs.bufferpool.resident_pages");
  return g;
}

}  // namespace

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    hit_ = other.hit_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

std::string_view PageRef::data() const {
  // The frame vector is sized once in the constructor and the frame is
  // pinned, so the payload cannot move or be evicted under us.
  return pool_->frames_[frame_].payload;
}

BufferPool::BufferPool(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  frames_.resize(capacity_);
}

BufferPool::~BufferPool() {
  std::lock_guard<std::mutex> lock(mu_);
  ResidentPages().Add(-static_cast<int64_t>(page_to_frame_.size()));
}

StatusOr<PageRef> BufferPool::Fetch(uint64_t page_id,
                                    const PageLoader& loader) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    f.tick = tick_;
    ++f.pins;
    ++hits_;
    PoolHits().Increment();
    return PageRef(this, it->second, /*hit=*/true);
  }

  // Miss: pick a victim frame — first an empty one, else the
  // least-recently-used unpinned one.
  size_t victim = capacity_;
  uint64_t best_tick = 0;
  for (size_t i = 0; i < capacity_; ++i) {
    const Frame& f = frames_[i];
    if (!f.valid) {
      victim = i;
      break;
    }
    if (f.pins == 0 && (victim == capacity_ || f.tick < best_tick)) {
      victim = i;
      best_tick = f.tick;
    }
  }
  if (victim == capacity_) {
    return Status::ResourceExhausted(StrFormat(
        "buffer pool exhausted: all %zu frames pinned", capacity_));
  }

  ++misses_;
  PoolMisses().Increment();
  SDMS_ASSIGN_OR_RETURN(std::string payload, loader(page_id));

  Frame& f = frames_[victim];
  if (f.valid) {
    page_to_frame_.erase(f.page_id);
    ++evictions_;
    PoolEvictions().Increment();
  } else {
    ResidentPages().Add(1);
  }
  f.page_id = page_id;
  f.payload = std::move(payload);
  f.pins = 1;
  f.tick = tick_;
  f.valid = true;
  page_to_frame_[page_id] = victim;
  return PageRef(this, victim, /*hit=*/false);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  if (f.pins > 0) --f.pins;
}

size_t BufferPool::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_to_frame_.size();
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t BufferPool::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t BufferPool::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.valid && f.pins > 0) ++n;
  }
  return n;
}

size_t BufferPool::ApproxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = sizeof(BufferPool) + capacity_ * sizeof(Frame);
  for (const Frame& f : frames_) bytes += f.payload.capacity();
  return bytes;
}

}  // namespace sdms::irs
