#ifndef SDMS_IRS_SHARD_MAP_H_
#define SDMS_IRS_SHARD_MAP_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace sdms::oodb {
class Encoder;
class Decoder;
}  // namespace sdms::oodb

namespace sdms::irs {

/// Document-wise shard routing for a collection: a stable hash of the
/// external document key modulo the shard count. The map is persisted
/// inside the collection snapshot, so the shard a document lives in is
/// a durable property of the collection — a later move to shards
/// behind RPC only swaps the transport, not the routing.
///
/// The hash is FNV-1a over the key bytes: deterministic across
/// processes, platforms, and restarts (no std::hash, whose result is
/// implementation-defined).
class ShardMap {
 public:
  /// Shard counts above this are clamped; fan-out width and metric
  /// cardinality both scale with it.
  static constexpr uint32_t kMaxShards = 64;

  explicit ShardMap(uint32_t num_shards = 1)
      : num_shards_(num_shards < 1          ? 1
                    : num_shards > kMaxShards ? kMaxShards
                                              : num_shards) {}

  uint32_t num_shards() const { return num_shards_; }

  /// Shard owning `key`, in [0, num_shards).
  uint32_t ShardOf(std::string_view key) const;

  /// Snapshot round-trip. The encoding carries a version byte so a
  /// later range-based or remote map extends it without a new magic.
  void EncodeTo(oodb::Encoder& enc) const;
  static StatusOr<ShardMap> DecodeFrom(oodb::Decoder& dec);

  bool operator==(const ShardMap& other) const {
    return num_shards_ == other.num_shards_;
  }

 private:
  uint32_t num_shards_;
};

/// Shard count from the environment: SDMS_SHARDS, clamped to
/// [1, ShardMap::kMaxShards]; 1 (unsharded) when unset or unparsable.
uint32_t ShardsFromEnv();

}  // namespace sdms::irs

#endif  // SDMS_IRS_SHARD_MAP_H_
