#include <algorithm>

#include "irs/index/postings_kernels.h"
#include "irs/index/proximity.h"
#include "irs/model/retrieval_model.h"

namespace sdms::irs {

namespace {

/// Set-based Boolean retrieval: a document either matches (score 1.0)
/// or does not. #sum/#max/#wsum degrade to OR; #and intersects; #not
/// complements against the live-document set. Sets are sorted DocId
/// vectors; all-term #and conjunctions run the block-cursor
/// intersection kernel directly over the compressed lists, skipping
/// blocks that cannot contain a common document.
class BooleanModel : public RetrievalModel {
 public:
  std::string name() const override { return "boolean"; }

  StatusOr<ScoreMap> Score(const InvertedIndex& index, const QueryNode& query,
                           const CorpusStats* corpus) const override {
    // Boolean matching is statistics-free; #not against the local live
    // set is already correct per shard (the shard-union of local
    // complements is the global complement).
    (void)corpus;
    SDMS_ASSIGN_OR_RETURN(std::vector<DocId> docs, EvalSet(index, query));
    ScoreMap out;
    for (DocId d : docs) {
      if (index.IsAlive(d)) out[d] = 1.0;
    }
    return out;
  }

 private:
  using DocSet = std::vector<DocId>;  // sorted ascending, unique

  static DocSet Intersect(const DocSet& a, const DocSet& b) {
    DocSet out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
  }

  static DocSet Union(const DocSet& a, const DocSet& b) {
    DocSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
  }

  StatusOr<DocSet> EvalSet(const InvertedIndex& index,
                           const QueryNode& node) const {
    switch (node.op) {
      case QueryOp::kTerm: {
        SDMS_ASSIGN_OR_RETURN(std::vector<Posting> postings,
                              index.DecodePostings(node.term));
        DocSet out;
        out.reserve(postings.size());
        for (const Posting& p : postings) out.push_back(p.doc);
        return out;
      }
      case QueryOp::kAnd: {
        // All-term conjunction: doc-at-a-time galloping intersection
        // straight over the postings lists, no per-child sets.
        bool all_terms = !node.children.empty();
        for (const auto& c : node.children) {
          if (c->op != QueryOp::kTerm) {
            all_terms = false;
            break;
          }
        }
        if (all_terms) {
          std::vector<PostingsCursor> cursors;
          cursors.reserve(node.children.size());
          for (const auto& c : node.children) {
            cursors.push_back(index.OpenCursor(c->term));
          }
          return IntersectCursors(std::move(cursors));
        }
        DocSet acc;
        bool first = true;
        for (const auto& c : node.children) {
          SDMS_ASSIGN_OR_RETURN(DocSet s, EvalSet(index, *c));
          if (first) {
            acc = std::move(s);
            first = false;
          } else {
            acc = Intersect(acc, s);
          }
          if (acc.empty()) break;
        }
        return acc;
      }
      case QueryOp::kOr:
      case QueryOp::kSum:
      case QueryOp::kWsum:
      case QueryOp::kMax: {
        DocSet acc;
        for (const auto& c : node.children) {
          SDMS_ASSIGN_OR_RETURN(DocSet s, EvalSet(index, *c));
          acc = acc.empty() ? std::move(s) : Union(acc, s);
        }
        return acc;
      }
      case QueryOp::kOdn:
      case QueryOp::kUwn: {
        std::vector<std::string> terms;
        node.CollectTerms(terms);
        SDMS_ASSIGN_OR_RETURN(
            auto freqs, WindowMatchFrequencies(index, terms,
                                               node.op == QueryOp::kOdn,
                                               node.window));
        DocSet out;
        for (const auto& [doc, tf] : freqs) {
          out.push_back(doc);  // map iteration is already ascending
        }
        return out;
      }
      case QueryOp::kNot: {
        if (node.children.size() != 1) {
          return Status::InvalidArgument("#not takes exactly one argument");
        }
        SDMS_ASSIGN_OR_RETURN(DocSet inner, EvalSet(index, *node.children[0]));
        DocSet out;
        index.ForEachDoc([&](DocId id, const DocInfo&) {
          if (!std::binary_search(inner.begin(), inner.end(), id)) {
            out.push_back(id);
          }
        });
        return out;
      }
    }
    return Status::Internal("unhandled boolean query node");
  }
};

}  // namespace

std::unique_ptr<RetrievalModel> MakeBooleanModel() {
  return std::make_unique<BooleanModel>();
}

}  // namespace sdms::irs
