#include <algorithm>
#include <set>

#include "irs/index/proximity.h"
#include "irs/model/retrieval_model.h"

namespace sdms::irs {

namespace {

/// Set-based Boolean retrieval: a document either matches (score 1.0)
/// or does not. #sum/#max/#wsum degrade to OR; #and intersects; #not
/// complements against the live-document set.
class BooleanModel : public RetrievalModel {
 public:
  std::string name() const override { return "boolean"; }

  StatusOr<ScoreMap> Score(const InvertedIndex& index,
                           const QueryNode& query) const override {
    SDMS_ASSIGN_OR_RETURN(std::set<DocId> docs, EvalSet(index, query));
    ScoreMap out;
    for (DocId d : docs) out[d] = 1.0;
    return out;
  }

 private:
  StatusOr<std::set<DocId>> EvalSet(const InvertedIndex& index,
                                    const QueryNode& node) const {
    switch (node.op) {
      case QueryOp::kTerm: {
        std::set<DocId> out;
        const std::vector<Posting>* postings = index.GetPostings(node.term);
        if (postings != nullptr) {
          for (const Posting& p : *postings) out.insert(p.doc);
        }
        return out;
      }
      case QueryOp::kAnd: {
        std::set<DocId> acc;
        bool first = true;
        for (const auto& c : node.children) {
          SDMS_ASSIGN_OR_RETURN(std::set<DocId> s, EvalSet(index, *c));
          if (first) {
            acc = std::move(s);
            first = false;
          } else {
            std::set<DocId> merged;
            std::set_intersection(acc.begin(), acc.end(), s.begin(), s.end(),
                                  std::inserter(merged, merged.begin()));
            acc = std::move(merged);
          }
          if (acc.empty()) break;
        }
        return acc;
      }
      case QueryOp::kOr:
      case QueryOp::kSum:
      case QueryOp::kWsum:
      case QueryOp::kMax: {
        std::set<DocId> acc;
        for (const auto& c : node.children) {
          SDMS_ASSIGN_OR_RETURN(std::set<DocId> s, EvalSet(index, *c));
          acc.insert(s.begin(), s.end());
        }
        return acc;
      }
      case QueryOp::kOdn:
      case QueryOp::kUwn: {
        std::vector<std::string> terms;
        node.CollectTerms(terms);
        std::set<DocId> out;
        for (const auto& [doc, tf] : WindowMatchFrequencies(
                 index, terms, node.op == QueryOp::kOdn, node.window)) {
          out.insert(doc);
        }
        return out;
      }
      case QueryOp::kNot: {
        if (node.children.size() != 1) {
          return Status::InvalidArgument("#not takes exactly one argument");
        }
        SDMS_ASSIGN_OR_RETURN(std::set<DocId> inner,
                              EvalSet(index, *node.children[0]));
        std::set<DocId> out;
        index.ForEachDoc([&](DocId id, const DocInfo&) {
          if (inner.count(id) == 0) out.insert(id);
        });
        return out;
      }
    }
    return Status::Internal("unhandled boolean query node");
  }
};

}  // namespace

std::unique_ptr<RetrievalModel> MakeBooleanModel() {
  return std::make_unique<BooleanModel>();
}

}  // namespace sdms::irs
