#ifndef SDMS_IRS_MODEL_RETRIEVAL_MODEL_H_
#define SDMS_IRS_MODEL_RETRIEVAL_MODEL_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "irs/index/inverted_index.h"
#include "irs/query/query_node.h"

namespace sdms::irs {

/// Scores of matching documents: internal doc id -> IRS value.
using ScoreMap = std::unordered_map<DocId, double>;

/// A retrieval paradigm. The paper's loose coupling explicitly allows
/// exchanging the retrieval machine ("boolean retrieval systems, vector
/// retrieval systems, and systems based on probability"); this
/// interface is that exchange point.
class RetrievalModel {
 public:
  virtual ~RetrievalModel() = default;

  /// Model name for diagnostics ("inquery", "bm25", ...).
  virtual std::string name() const = 0;

  /// Evaluates `query` over `index`, returning scores for matching
  /// documents. Scores are normalized to [0, 1] where the model
  /// supports it (boolean and inference-network models do; tf-idf and
  /// BM25 scores are positive but unbounded).
  virtual StatusOr<ScoreMap> Score(const InvertedIndex& index,
                                   const QueryNode& query) const = 0;

  /// Top-k-aware scoring: returns a *pruned* score map guaranteed to
  /// contain every live document that can appear in the final top `k`
  /// (ties included), each with exactly the score Score() would have
  /// produced — so the caller's (score desc, key asc) selection over
  /// the map yields rankings bit-identical to the exhaustive path.
  /// Models that can exploit block metadata (Block-Max-WAND-style
  /// skipping) override this; the default simply scores everything.
  /// `k` == 0 means unbounded (identical to Score()).
  virtual StatusOr<ScoreMap> ScoreTopK(const InvertedIndex& index,
                                       const QueryNode& query,
                                       size_t k) const {
    (void)k;
    return Score(index, query);
  }
};

/// Factories for the built-in models.
std::unique_ptr<RetrievalModel> MakeBooleanModel();
std::unique_ptr<RetrievalModel> MakeVectorSpaceModel();
std::unique_ptr<RetrievalModel> MakeBm25Model(double k1 = 1.2,
                                              double b = 0.75);
std::unique_ptr<RetrievalModel> MakeInferenceNetModel(
    double default_belief = 0.4);

/// Creates a model by name: "boolean", "vsm", "bm25", "inquery".
StatusOr<std::unique_ptr<RetrievalModel>> MakeModel(const std::string& name);

}  // namespace sdms::irs

#endif  // SDMS_IRS_MODEL_RETRIEVAL_MODEL_H_
