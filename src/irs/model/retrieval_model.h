#ifndef SDMS_IRS_MODEL_RETRIEVAL_MODEL_H_
#define SDMS_IRS_MODEL_RETRIEVAL_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "irs/index/inverted_index.h"
#include "irs/query/query_node.h"

namespace sdms::irs {

/// Scores of matching documents: internal doc id -> IRS value.
using ScoreMap = std::unordered_map<DocId, double>;

/// Corpus-wide statistics injected into a model when it scores one
/// shard of a sharded collection. Scores are otherwise a function of
/// doc-local evidence plus collection statistics (document count,
/// average document length, per-term document frequency); evaluating
/// them against the *global* statistics makes per-shard scoring
/// bit-identical to scoring the same document in one unsharded index —
/// which is what lets fan-out/merge return the exact single-shard
/// ranking. All fields are integer sums over shards, so there is no
/// floating-point accumulation-order hazard.
struct CorpusStats {
  /// Live documents across all shards.
  uint64_t doc_count = 0;
  /// Token occurrences in live documents across all shards.
  uint64_t total_tokens = 0;
  /// Per query term: document frequency summed over shards (including
  /// tombstones, matching InvertedIndex::DocFreq semantics).
  std::unordered_map<std::string, uint64_t> term_df;
  /// Per window (#odN/#uwN) node of the parsed query: matching
  /// documents summed over shards. Keyed by node pointer, so every
  /// shard must be scored against the same parsed tree.
  std::map<const QueryNode*, uint64_t> window_df;

  /// Same expression as InvertedIndex::avg_doc_length() so the value
  /// is bit-identical to the unsharded one.
  double avg_doc_length() const {
    if (doc_count == 0) return 0.0;
    return static_cast<double>(total_tokens) /
           static_cast<double>(doc_count);
  }

  uint64_t Df(const std::string& term) const {
    auto it = term_df.find(term);
    return it == term_df.end() ? 0 : it->second;
  }

  uint64_t WindowDf(const QueryNode* node) const {
    auto it = window_df.find(node);
    return it == window_df.end() ? 0 : it->second;
  }
};

/// A retrieval paradigm. The paper's loose coupling explicitly allows
/// exchanging the retrieval machine ("boolean retrieval systems, vector
/// retrieval systems, and systems based on probability"); this
/// interface is that exchange point.
class RetrievalModel {
 public:
  virtual ~RetrievalModel() = default;

  /// Model name for diagnostics ("inquery", "bm25", ...).
  virtual std::string name() const = 0;

  /// Evaluates `query` over `index`, returning scores for matching
  /// documents. Scores are normalized to [0, 1] where the model
  /// supports it (boolean and inference-network models do; tf-idf and
  /// BM25 scores are positive but unbounded). When `corpus` is
  /// non-null the model takes collection statistics from it instead of
  /// from `index` (sharded scoring, see CorpusStats); null preserves
  /// the single-index behavior exactly.
  virtual StatusOr<ScoreMap> Score(
      const InvertedIndex& index, const QueryNode& query,
      const CorpusStats* corpus = nullptr) const = 0;

  /// Top-k-aware scoring: returns a *pruned* score map guaranteed to
  /// contain every live document that can appear in the final top `k`
  /// (ties included), each with exactly the score Score() would have
  /// produced — so the caller's (score desc, key asc) selection over
  /// the map yields rankings bit-identical to the exhaustive path.
  /// Models that can exploit block metadata (Block-Max-WAND-style
  /// skipping) override this; the default simply scores everything.
  /// `k` == 0 means unbounded (identical to Score()).
  virtual StatusOr<ScoreMap> ScoreTopK(
      const InvertedIndex& index, const QueryNode& query, size_t k,
      const CorpusStats* corpus = nullptr) const {
    (void)k;
    return Score(index, query, corpus);
  }
};

/// Factories for the built-in models.
std::unique_ptr<RetrievalModel> MakeBooleanModel();
std::unique_ptr<RetrievalModel> MakeVectorSpaceModel();
std::unique_ptr<RetrievalModel> MakeBm25Model(double k1 = 1.2,
                                              double b = 0.75);
std::unique_ptr<RetrievalModel> MakeInferenceNetModel(
    double default_belief = 0.4);

/// Creates a model by name: "boolean", "vsm", "bm25", "inquery".
StatusOr<std::unique_ptr<RetrievalModel>> MakeModel(const std::string& name);

}  // namespace sdms::irs

#endif  // SDMS_IRS_MODEL_RETRIEVAL_MODEL_H_
