#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_map>

#include "common/query_context.h"
#include "irs/index/postings_kernels.h"
#include "irs/index/proximity.h"
#include "irs/model/retrieval_model.h"

namespace sdms::irs {

namespace {

/// INQUERY-style inference-network model (Turtle/Croft). Term beliefs
/// follow the INQUERY formula
///     bel(t, d) = db + (1 - db) * ntf * nidf
/// with ntf = tf / (tf + 0.5 + 1.5 * dl/avgdl) and
///      nidf = log((N + 0.5) / df) / log(N + 1),
/// and documents not containing a term contribute the default belief
/// `db` (0.4). Operator semantics match the INQUERY operators the
/// paper re-implements in the DBMS (Section 4.5.4): #and is the
/// product, #or the complement product, #not the complement, #sum the
/// mean, #wsum the weighted mean, #max the maximum.
class InferenceNetModel : public RetrievalModel {
 public:
  explicit InferenceNetModel(double default_belief)
      : default_belief_(default_belief) {}

  std::string name() const override { return "inquery"; }

  StatusOr<ScoreMap> Score(const InvertedIndex& index, const QueryNode& query,
                           const CorpusStats* corpus) const override {
    // Window (#odN/#uwN) nodes: precompute match frequencies once.
    WindowCache window_cache;
    SDMS_RETURN_IF_ERROR(CollectWindows(index, query, window_cache));

    // Candidate generation: every document providing evidence for some
    // evidence node — containing a plain query term, or matching a
    // window expression. Other documents keep the all-default belief,
    // which is constant across documents and rank-irrelevant. The
    // candidate set is a sorted-vector k-way union of the evidence
    // postings (doc-at-a-time), not a std::set accumulation. Each
    // unique query term is decoded exactly once; `decoded` owns the
    // lists (deque: growth never invalidates the pointers in
    // `term_lists`).
    TfCache tf_cache;
    std::deque<std::vector<Posting>> decoded;
    std::vector<const std::vector<Posting>*> term_lists;
    std::vector<DocId> window_docs;
    SDMS_RETURN_IF_ERROR(CollectEvidence(index, query, window_cache, decoded,
                                         term_lists, window_docs, tf_cache));
    std::vector<DocId> candidates = UnionPostings(term_lists);
    if (!window_docs.empty()) {
      std::sort(window_docs.begin(), window_docs.end());
      window_docs.erase(std::unique(window_docs.begin(), window_docs.end()),
                        window_docs.end());
      std::vector<DocId> merged;
      merged.reserve(candidates.size() + window_docs.size());
      std::set_union(candidates.begin(), candidates.end(), window_docs.begin(),
                     window_docs.end(), std::back_inserter(merged));
      candidates = std::move(merged);
    }

    ScoreMap out;
    out.reserve(candidates.size());
    const double n = std::max<double>(
        corpus != nullptr ? corpus->doc_count : index.doc_count(), 1.0);
    const double avgdl = std::max(corpus != nullptr ? corpus->avg_doc_length()
                                                    : index.avg_doc_length(),
                                  1e-9);
    size_t steps = 0;
    for (DocId d : candidates) {
      // The per-candidate belief walk is the scoring hot loop; stop
      // promptly once the query's deadline/cancellation fires.
      if (++steps % 256 == 0 && QueryShouldStop()) {
        return CurrentQueryStatus();
      }
      if (!index.IsAlive(d)) continue;  // tombstoned, awaiting compaction
      auto info = index.GetDoc(d);
      double dl = info.ok() ? static_cast<double>((*info)->length) : avgdl;
      out[d] = Belief(index, query, d, dl, n, avgdl, tf_cache, window_cache,
                      corpus);
    }
    return out;
  }

 private:
  using TfCache =
      std::unordered_map<std::string, std::unordered_map<DocId, uint32_t>>;
  using WindowCache = std::map<const QueryNode*, std::map<DocId, uint32_t>>;

  static Status CollectEvidence(const InvertedIndex& index,
                                const QueryNode& node,
                                const WindowCache& window_cache,
                                std::deque<std::vector<Posting>>& decoded,
                                std::vector<const std::vector<Posting>*>& lists,
                                std::vector<DocId>& window_docs,
                                TfCache& tf_cache) {
    if (node.op == QueryOp::kOdn || node.op == QueryOp::kUwn) {
      auto it = window_cache.find(&node);
      if (it != window_cache.end()) {
        for (const auto& [doc, tf] : it->second) window_docs.push_back(doc);
      }
      return Status::OK();  // Terms in a window contribute via matches.
    }
    if (node.op == QueryOp::kTerm) {
      if (tf_cache.count(node.term) > 0) {
        return Status::OK();  // repeated query term, already decoded
      }
      SDMS_ASSIGN_OR_RETURN(std::vector<Posting> postings,
                            index.DecodePostings(node.term));
      if (postings.empty()) return Status::OK();
      auto& per_doc = tf_cache[node.term];
      per_doc.reserve(postings.size());
      for (const Posting& p : postings) per_doc[p.doc] = p.tf;
      decoded.push_back(std::move(postings));
      lists.push_back(&decoded.back());
      return Status::OK();
    }
    for (const auto& c : node.children) {
      SDMS_RETURN_IF_ERROR(CollectEvidence(index, *c, window_cache, decoded,
                                           lists, window_docs, tf_cache));
    }
    return Status::OK();
  }

  static Status CollectWindows(const InvertedIndex& index,
                               const QueryNode& node, WindowCache& cache) {
    if (node.op == QueryOp::kOdn || node.op == QueryOp::kUwn) {
      std::vector<std::string> terms;
      node.CollectTerms(terms);
      SDMS_ASSIGN_OR_RETURN(
          cache[&node],
          WindowMatchFrequencies(index, terms, node.op == QueryOp::kOdn,
                                 node.window));
      return Status::OK();
    }
    for (const auto& c : node.children) {
      SDMS_RETURN_IF_ERROR(CollectWindows(index, *c, cache));
    }
    return Status::OK();
  }

  double TermBelief(const InvertedIndex& index, const std::string& term,
                    DocId doc, double dl, double n, double avgdl,
                    const TfCache& tf_cache,
                    const CorpusStats* corpus) const {
    auto it = tf_cache.find(term);
    uint32_t tf = 0;
    if (it != tf_cache.end()) {
      auto dit = it->second.find(doc);
      if (dit != it->second.end()) tf = dit->second;
    }
    if (tf == 0) return default_belief_;
    uint64_t df = corpus != nullptr ? corpus->Df(term) : index.DocFreq(term);
    double ntf = static_cast<double>(tf) /
                 (static_cast<double>(tf) + 0.5 + 1.5 * dl / avgdl);
    double nidf = std::log((n + 0.5) / std::max<double>(df, 1.0)) /
                  std::log(n + 1.0);
    nidf = std::max(0.0, std::min(1.0, nidf));
    return default_belief_ + (1.0 - default_belief_) * ntf * nidf;
  }

  double Belief(const InvertedIndex& index, const QueryNode& node, DocId doc,
                double dl, double n, double avgdl, const TfCache& tf_cache,
                const WindowCache& window_cache,
                const CorpusStats* corpus) const {
    if (node.op == QueryOp::kOdn || node.op == QueryOp::kUwn) {
      // Window belief: the matches behave like occurrences of a pseudo
      // term whose df is the number of matching documents — summed
      // over every shard when corpus statistics are injected (the
      // local cache only sees this shard's matches).
      auto it = window_cache.find(&node);
      if (it == window_cache.end()) return default_belief_;
      auto dit = it->second.find(doc);
      if (dit == it->second.end()) return default_belief_;
      double tf = static_cast<double>(dit->second);
      double df = corpus != nullptr
                      ? static_cast<double>(corpus->WindowDf(&node))
                      : static_cast<double>(it->second.size());
      double ntf = tf / (tf + 0.5 + 1.5 * dl / avgdl);
      double nidf =
          std::log((n + 0.5) / std::max(df, 1.0)) / std::log(n + 1.0);
      nidf = std::max(0.0, std::min(1.0, nidf));
      return default_belief_ + (1.0 - default_belief_) * ntf * nidf;
    }
    switch (node.op) {
      case QueryOp::kTerm:
        return TermBelief(index, node.term, doc, dl, n, avgdl, tf_cache,
                          corpus);
      case QueryOp::kAnd: {
        double b = 1.0;
        for (const auto& c : node.children) {
          b *= Belief(index, *c, doc, dl, n, avgdl, tf_cache, window_cache,
                      corpus);
        }
        return node.children.empty() ? default_belief_ : b;
      }
      case QueryOp::kOr: {
        double b = 1.0;
        for (const auto& c : node.children) {
          b *= 1.0 - Belief(index, *c, doc, dl, n, avgdl, tf_cache,
                            window_cache, corpus);
        }
        return node.children.empty() ? default_belief_ : 1.0 - b;
      }
      case QueryOp::kNot:
        return node.children.empty()
                   ? default_belief_
                   : 1.0 - Belief(index, *node.children[0], doc, dl, n, avgdl,
                                  tf_cache, window_cache, corpus);
      case QueryOp::kSum: {
        if (node.children.empty()) return 0.0;
        double sum = 0.0;
        for (const auto& c : node.children) {
          sum += Belief(index, *c, doc, dl, n, avgdl, tf_cache, window_cache,
                        corpus);
        }
        return sum / static_cast<double>(node.children.size());
      }
      case QueryOp::kWsum: {
        if (node.children.empty()) return 0.0;
        double sum = 0.0;
        double wsum = 0.0;
        for (size_t i = 0; i < node.children.size(); ++i) {
          double w = i < node.weights.size() ? node.weights[i] : 1.0;
          sum += w * Belief(index, *node.children[i], doc, dl, n, avgdl,
                            tf_cache, window_cache, corpus);
          wsum += w;
        }
        return wsum > 0.0 ? sum / wsum : 0.0;
      }
      case QueryOp::kMax: {
        double best = 0.0;
        for (const auto& c : node.children) {
          best = std::max(best, Belief(index, *c, doc, dl, n, avgdl, tf_cache,
                                       window_cache, corpus));
        }
        return best;
      }
      case QueryOp::kOdn:
      case QueryOp::kUwn:
        // Handled by the window branch above; unreachable here.
        return default_belief_;
    }
    return default_belief_;
  }

  double default_belief_;
};

}  // namespace

std::unique_ptr<RetrievalModel> MakeInferenceNetModel(double default_belief) {
  return std::make_unique<InferenceNetModel>(default_belief);
}

StatusOr<std::unique_ptr<RetrievalModel>> MakeModel(const std::string& name) {
  if (name == "boolean") return MakeBooleanModel();
  if (name == "vsm") return MakeVectorSpaceModel();
  if (name == "bm25") return MakeBm25Model();
  if (name == "inquery") return MakeInferenceNetModel();
  return Status::InvalidArgument("unknown retrieval model: " + name);
}

}  // namespace sdms::irs
