#include <cmath>
#include <map>

#include "irs/model/retrieval_model.h"

namespace sdms::irs {

namespace {

/// Classic tf·idf vector-space model with cosine normalization. The
/// structured operators are flattened to a bag of terms (vector models
/// have no operator semantics), which is exactly the degradation the
/// paper accepts when the retrieval machine is exchanged.
class VectorSpaceModel : public RetrievalModel {
 public:
  std::string name() const override { return "vsm"; }

  StatusOr<ScoreMap> Score(const InvertedIndex& index, const QueryNode& query,
                           const CorpusStats* corpus) const override {
    std::vector<std::string> terms;
    query.CollectTerms(terms);
    // Query term frequencies.
    std::map<std::string, uint32_t> qtf;
    for (const std::string& t : terms) ++qtf[t];

    const double n = std::max<double>(
        corpus != nullptr ? corpus->doc_count : index.doc_count(), 1.0);
    ScoreMap scores;
    double query_norm_sq = 0.0;
    for (const auto& [term, tf_q] : qtf) {
      // Under sharded scoring the query norm must accumulate over every
      // term with corpus-wide evidence — even one absent from this
      // shard — or shards would normalize by different query vectors.
      uint64_t df =
          corpus != nullptr ? corpus->Df(term) : index.DocFreq(term);
      if (df == 0) continue;
      double idf = std::log(n / static_cast<double>(df)) + 1.0;
      double wq = static_cast<double>(tf_q) * idf;
      query_norm_sq += wq * wq;
      SDMS_ASSIGN_OR_RETURN(std::vector<Posting> postings,
                            index.DecodePostings(term));
      for (const Posting& p : postings) {
        double wd = (1.0 + std::log(static_cast<double>(p.tf))) * idf;
        scores[p.doc] += wq * wd;
      }
    }
    if (scores.empty()) return scores;
    // Cosine: normalize by query norm and document length proxy.
    double qn = std::sqrt(std::max(query_norm_sq, 1e-12));
    for (auto& [doc, score] : scores) {
      auto info = index.GetDoc(doc);
      double dl = info.ok() ? std::max<double>((*info)->length, 1.0) : 1.0;
      score /= qn * std::sqrt(dl);
    }
    return scores;
  }
};

}  // namespace

std::unique_ptr<RetrievalModel> MakeVectorSpaceModel() {
  return std::make_unique<VectorSpaceModel>();
}

}  // namespace sdms::irs
