#include <cmath>
#include <map>

#include "irs/model/retrieval_model.h"

namespace sdms::irs {

namespace {

/// Okapi BM25 (probabilistic model). Like the vector-space model it
/// flattens structured queries to a term bag; it stands in for the
/// "systems based on probability" family the paper names.
class Bm25Model : public RetrievalModel {
 public:
  Bm25Model(double k1, double b) : k1_(k1), b_(b) {}

  std::string name() const override { return "bm25"; }

  StatusOr<ScoreMap> Score(const InvertedIndex& index,
                           const QueryNode& query) const override {
    std::vector<std::string> terms;
    query.CollectTerms(terms);
    std::map<std::string, uint32_t> qtf;
    for (const std::string& t : terms) ++qtf[t];

    const double n = std::max<double>(index.doc_count(), 1.0);
    const double avgdl = std::max(index.avg_doc_length(), 1e-9);
    ScoreMap scores;
    for (const auto& [term, tf_q] : qtf) {
      uint32_t df = index.DocFreq(term);
      if (df == 0) continue;
      // BM25+-style floor keeps idf positive for very common terms.
      double idf = std::log(
          1.0 + (n - static_cast<double>(df) + 0.5) /
                    (static_cast<double>(df) + 0.5));
      const std::vector<Posting>* postings = index.GetPostings(term);
      for (const Posting& p : *postings) {
        auto info = index.GetDoc(p.doc);
        double dl = info.ok() ? static_cast<double>((*info)->length) : avgdl;
        double tf = static_cast<double>(p.tf);
        double denom = tf + k1_ * (1.0 - b_ + b_ * dl / avgdl);
        scores[p.doc] +=
            static_cast<double>(tf_q) * idf * (tf * (k1_ + 1.0)) / denom;
      }
    }
    return scores;
  }

 private:
  double k1_;
  double b_;
};

}  // namespace

std::unique_ptr<RetrievalModel> MakeBm25Model(double k1, double b) {
  return std::make_unique<Bm25Model>(k1, b);
}

}  // namespace sdms::irs
