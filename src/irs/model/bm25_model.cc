#include <algorithm>
#include <cmath>
#include <map>

#include "common/query_context.h"
#include "irs/model/retrieval_model.h"

namespace sdms::irs {

namespace {

/// Safety margin on score upper bounds: block metadata bounds are
/// mathematically sound, but the exact per-doc sum and the bound are
/// computed through different floating-point expressions. Inflating
/// every bound by 1e-10 relative dwarfs any ulp-level divergence, so a
/// document is only pruned when it *provably* cannot enter the top k —
/// the block path stays bit-identical to exhaustive scoring.
constexpr double kBoundSlack = 1.0 + 1e-10;

/// Okapi BM25 (probabilistic model). Like the vector-space model it
/// flattens structured queries to a term bag; it stands in for the
/// "systems based on probability" family the paper names.
class Bm25Model : public RetrievalModel {
 public:
  Bm25Model(double k1, double b) : k1_(k1), b_(b) {}

  std::string name() const override { return "bm25"; }

  StatusOr<ScoreMap> Score(const InvertedIndex& index, const QueryNode& query,
                           const CorpusStats* corpus) const override {
    std::map<std::string, uint32_t> qtf = QueryTermFreqs(query);
    const double n = std::max<double>(
        corpus != nullptr ? corpus->doc_count : index.doc_count(), 1.0);
    const double avgdl = std::max(corpus != nullptr ? corpus->avg_doc_length()
                                                    : index.avg_doc_length(),
                                  1e-9);
    ScoreMap scores;
    for (const auto& [term, tf_q] : qtf) {
      uint64_t df =
          corpus != nullptr ? corpus->Df(term) : index.DocFreq(term);
      if (df == 0) continue;
      double idf = Idf(n, static_cast<double>(df));
      SDMS_ASSIGN_OR_RETURN(std::vector<Posting> postings,
                            index.DecodePostings(term));
      for (const Posting& p : postings) {
        auto info = index.GetDoc(p.doc);
        double dl = info.ok() ? static_cast<double>((*info)->length) : avgdl;
        scores[p.doc] += Contribution(tf_q, idf, p.tf, dl, avgdl);
      }
    }
    return scores;
  }

  /// Document-at-a-time MaxScore over the block cursors, tightened by
  /// per-block metadata (Block-Max-WAND-style): terms whose summed
  /// upper bounds cannot reach the current k-th score are never
  /// iterated, candidates are vetoed by block-level bounds before any
  /// block is decoded, and exact scoring abandons a document as soon
  /// as its remaining bound drops below the threshold. Every fully
  /// scored document lands in the returned map with a score produced
  /// by the same lexicographic-term-order summation as Score(), so
  /// surviving documents carry bit-identical values.
  StatusOr<ScoreMap> ScoreTopK(const InvertedIndex& index,
                               const QueryNode& query, size_t k,
                               const CorpusStats* corpus) const override {
    if (k == 0) return Score(index, query, corpus);
    std::map<std::string, uint32_t> qtf = QueryTermFreqs(query);
    const double n = std::max<double>(
        corpus != nullptr ? corpus->doc_count : index.doc_count(), 1.0);
    const double avgdl = std::max(corpus != nullptr ? corpus->avg_doc_length()
                                                    : index.avg_doc_length(),
                                  1e-9);

    // Term state in lexicographic order — the exact-scoring loop must
    // add contributions in the same order Score() does (std::map).
    struct TermState {
      uint32_t tf_q = 0;
      double idf = 0.0;
      double list_bound = 0.0;  // ub of any single contribution
      PostingsCursor cursor;
    };
    std::vector<TermState> terms;
    terms.reserve(qtf.size());
    for (const auto& [term, tf_q] : qtf) {
      const BlockPostingsList* list = index.GetPostingsList(term);
      if (list == nullptr || list->empty()) continue;
      TermState ts;
      ts.tf_q = tf_q;
      // The idf must match Score()'s: global df under sharded scoring,
      // this list's df (== DocFreq) otherwise. The block bounds below
      // stay local — they bound this shard's postings, which is all
      // this call iterates.
      ts.idf = Idf(n, corpus != nullptr
                          ? static_cast<double>(corpus->Df(term))
                          : static_cast<double>(list->size()));
      ts.list_bound = Bound(ts.tf_q, ts.idf, list->max_tf(),
                            list->min_doc_len(), avgdl);
      ts.cursor = PostingsCursor(list);
      terms.push_back(std::move(ts));
    }
    ScoreMap scores;
    if (terms.empty()) return scores;

    // MaxScore split: term indices ordered by ascending bound. The
    // prefix whose cumulative bound stays below the threshold is
    // "non-essential" — those lists are only probed via SkipTo, never
    // iterated, which is where whole blocks get skipped undecoded.
    std::vector<size_t> by_bound(terms.size());
    for (size_t i = 0; i < by_bound.size(); ++i) by_bound[i] = i;
    std::sort(by_bound.begin(), by_bound.end(), [&](size_t a, size_t b) {
      return terms[a].list_bound < terms[b].list_bound;
    });
    std::vector<double> bound_prefix(terms.size() + 1, 0.0);
    for (size_t i = 0; i < by_bound.size(); ++i) {
      bound_prefix[i + 1] =
          bound_prefix[i] + terms[by_bound[i]].list_bound;
    }
    // Suffix bounds in lex order for early abandoning during scoring.
    std::vector<double> lex_suffix(terms.size() + 1, 0.0);
    for (size_t i = terms.size(); i-- > 0;) {
      lex_suffix[i] = lex_suffix[i + 1] + terms[i].list_bound;
    }

    // Threshold: k-th best score among live docs so far (min-heap).
    std::vector<double> heap;  // min-heap of retained live scores
    double theta = -1.0;       // no pruning until k live docs scored
    auto offer = [&](double score) {
      if (heap.size() < k) {
        heap.push_back(score);
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
        if (heap.size() == k) theta = heap.front();
      } else if (score > heap.front()) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>());
        heap.back() = score;
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
        theta = heap.front();
      }
    };
    // First essential term (in by_bound order): lowest index e with
    // bound_prefix[e] * slack >= theta fails — i.e. the non-essential
    // prefix alone cannot reach theta.
    auto first_essential = [&]() {
      size_t e = 0;
      while (e < by_bound.size() &&
             theta >= 0.0 && bound_prefix[e + 1] * kBoundSlack < theta) {
        ++e;
      }
      return e;
    };

    // `floor` is the smallest doc id still eligible: processed
    // candidates never recur, even when a cursor probed only at block
    // granularity later rejoins the essential set behind the frontier.
    DocId floor = 0;
    size_t steps = 0;
    while (true) {
      if (++steps % 256 == 0 && QueryShouldStop()) {
        return CurrentQueryStatus();
      }
      size_t ess = first_essential();
      if (ess >= by_bound.size()) break;  // nothing can reach theta
      // Next candidate: minimum doc >= floor over essential cursors.
      DocId cand = 0;
      bool have = false;
      for (size_t i = ess; i < by_bound.size(); ++i) {
        PostingsCursor& c = terms[by_bound[i]].cursor;
        if (c.AtEnd() || !c.SkipTo(floor)) {
          SDMS_RETURN_IF_ERROR(c.status());
          continue;
        }
        DocId d = c.doc();
        if (c.AtEnd()) return c.status();  // decode failure latched
        if (!have || d < cand) {
          cand = d;
          have = true;
        }
      }
      if (!have) break;

      // Block-level veto (the Block-Max part): bound the candidate by
      // the metadata of the blocks that would contain it — no decode.
      double block_bound = 0.0;
      bool have_theta = theta >= 0.0;
      if (have_theta) {
        for (TermState& t : terms) {
          if (t.cursor.AtEnd()) continue;
          if (!t.cursor.AdvanceBlocksTo(cand)) {
            SDMS_RETURN_IF_ERROR(t.cursor.status());
            continue;
          }
          if (t.cursor.block_first_doc() > cand) continue;  // absent
          block_bound += Bound(t.tf_q, t.idf, t.cursor.block_max_tf(),
                               t.cursor.block_min_doc_len(), avgdl);
        }
      }
      bool prune = have_theta && block_bound * kBoundSlack < theta;
      if (!prune) {
        // Exact scoring in lex term order (bit-identical summation),
        // abandoning once even the remaining lex-suffix bound cannot
        // lift the document to theta.
        double score = 0.0;
        bool complete = true;
        auto info = index.GetDoc(cand);
        double dl = info.ok() ? static_cast<double>((*info)->length) : avgdl;
        for (size_t t = 0; t < terms.size(); ++t) {
          if (theta >= 0.0 &&
              (score + lex_suffix[t]) * kBoundSlack < theta) {
            complete = false;  // provably below the threshold
            break;
          }
          PostingsCursor& c = terms[t].cursor;
          if (c.AtEnd() || !c.SkipTo(cand)) {
            SDMS_RETURN_IF_ERROR(c.status());
            continue;
          }
          if (c.doc() != cand) continue;
          score += Contribution(terms[t].tf_q, terms[t].idf, c.tf(), dl,
                                avgdl);
        }
        if (complete) {
          scores[cand] = score;
          if (index.IsAlive(cand)) offer(score);
        }
      }
      if (cand == std::numeric_limits<DocId>::max()) break;
      floor = cand + 1;
    }
    return scores;
  }

 private:
  static std::map<std::string, uint32_t> QueryTermFreqs(
      const QueryNode& query) {
    std::vector<std::string> terms;
    query.CollectTerms(terms);
    std::map<std::string, uint32_t> qtf;
    for (const std::string& t : terms) ++qtf[t];
    return qtf;
  }

  static double Idf(double n, double df) {
    // BM25+-style floor keeps idf positive for very common terms.
    return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }

  double Contribution(uint32_t tf_q, double idf, uint32_t tf, double dl,
                      double avgdl) const {
    double tfd = static_cast<double>(tf);
    double denom = tfd + k1_ * (1.0 - b_ + b_ * dl / avgdl);
    return static_cast<double>(tf_q) * idf * (tfd * (k1_ + 1.0)) / denom;
  }

  /// Upper bound of Contribution over any posting with tf <= max_tf
  /// and dl >= min_dl: the term score is increasing in tf and
  /// decreasing in dl.
  double Bound(uint32_t tf_q, double idf, uint32_t max_tf, uint32_t min_dl,
               double avgdl) const {
    double dl = min_dl == 0xffffffffu ? 0.0 : static_cast<double>(min_dl);
    return Contribution(tf_q, idf, max_tf, dl, avgdl);
  }

  double k1_;
  double b_;
};

}  // namespace

std::unique_ptr<RetrievalModel> MakeBm25Model(double k1, double b) {
  return std::make_unique<Bm25Model>(k1, b);
}

}  // namespace sdms::irs
