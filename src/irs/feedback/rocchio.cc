#include "irs/feedback/rocchio.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"
#include "irs/query/query_node.h"

namespace sdms::irs {

StatusOr<std::string> ExpandQueryRocchio(
    IrsCollection& collection, const std::string& original_query,
    const std::vector<std::string>& relevant_keys,
    const FeedbackOptions& options) {
  // Resolve the relevant documents, routed to their shards — DocIds
  // are only meaningful within a shard.
  const size_t num_shards = collection.num_shards();
  std::vector<std::set<DocId>> relevant(num_shards);
  size_t total_relevant = 0;
  for (const std::string& key : relevant_keys) {
    uint32_t s = collection.ShardOfKey(key);
    SDMS_ASSIGN_OR_RETURN(DocId id, collection.shard(s).FindByKey(key));
    relevant[s].insert(id);
    ++total_relevant;
  }
  if (total_relevant == 0) {
    return Status::InvalidArgument("no relevant documents given");
  }

  // Original terms (analyzed) are never re-added as expansion terms.
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> original_tree,
                        ParseIrsQuery(original_query, collection.analyzer()));
  std::vector<std::string> original_terms;
  original_tree->CollectTerms(original_terms);
  std::set<std::string> original_set(original_terms.begin(),
                                     original_terms.end());

  // Corpus-wide statistics: idf must be computed from the global df,
  // not any one shard's list, or expansion weights would depend on the
  // shard layout.
  const double n = std::max<double>(collection.doc_count(), 1.0);
  std::map<std::string, uint64_t> global_df;
  for (size_t s = 0; s < num_shards; ++s) {
    collection.shard(s).ForEachTerm(
        [&](const std::string& term, const BlockPostingsList& list) {
          if (original_set.count(term) > 0) return;
          global_df[term] += list.size();
        });
  }

  // Rocchio centroid over the relevant documents: summed tf·idf. A
  // cursor probes each term's list for just the shard's relevant
  // documents (ascending set iteration), so only blocks that can
  // contain a relevant doc are decoded.
  std::map<std::string, double> weight;
  Status decode_error;
  for (size_t s = 0; s < num_shards; ++s) {
    if (relevant[s].empty()) continue;
    collection.shard(s).ForEachTerm([&](const std::string& term,
                                        const BlockPostingsList& list) {
      if (!decode_error.ok()) return;
      if (original_set.count(term) > 0) return;
      double idf =
          std::log(n / static_cast<double>(global_df[term]));
      if (idf <= 0.0) return;  // Terms in (almost) every document carry
                               // no feedback signal.
      PostingsCursor cursor(&list);
      for (DocId d : relevant[s]) {
        if (!cursor.SkipTo(d)) break;
        if (cursor.doc() == d) {
          weight[term] += static_cast<double>(cursor.tf()) * idf;
        }
      }
      if (!cursor.status().ok()) decode_error = cursor.status();
    });
  }
  SDMS_RETURN_IF_ERROR(decode_error);

  std::vector<std::pair<double, std::string>> ranked;
  ranked.reserve(weight.size());
  for (const auto& [term, w] : weight) ranked.emplace_back(w, term);
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() > options.expansion_terms) {
    ranked.resize(options.expansion_terms);
  }

  // Assemble: #wsum(alpha <original> beta e1 beta e2 ...).
  std::string out = StrFormat("#wsum(%g ", options.alpha);
  out += original_tree->ToString();
  for (const auto& [w, term] : ranked) {
    out += StrFormat(" %g ", options.beta) + term;
  }
  out += ")";
  return out;
}

}  // namespace sdms::irs
