#ifndef SDMS_IRS_FEEDBACK_ROCCHIO_H_
#define SDMS_IRS_FEEDBACK_ROCCHIO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "irs/collection.h"

namespace sdms::irs {

/// Rocchio-style relevance feedback: expands a query with the most
/// discriminative terms of documents the user marked relevant. The
/// paper names relevance feedback an open application-independent
/// facet (Section 6); this implements the classic variant on top of
/// the index statistics.
struct FeedbackOptions {
  /// Number of expansion terms taken from the relevant documents.
  size_t expansion_terms = 5;
  /// Weight of the original query terms in the expanded #wsum.
  double alpha = 1.0;
  /// Weight of the expansion terms.
  double beta = 0.5;
};

/// Builds an expanded query from `original_query` and the documents
/// with keys `relevant_keys`. Expansion terms are ranked by summed
/// tf·idf over the relevant documents; original terms are not
/// re-added. Returns an IRS query in #wsum syntax, e.g.
///   #wsum(1 www 1 nii 0.5 browser 0.5 mosaic ...).
StatusOr<std::string> ExpandQueryRocchio(
    IrsCollection& collection, const std::string& original_query,
    const std::vector<std::string>& relevant_keys,
    const FeedbackOptions& options = FeedbackOptions());

}  // namespace sdms::irs

#endif  // SDMS_IRS_FEEDBACK_ROCCHIO_H_
