#ifndef SDMS_IRS_ENGINE_H_
#define SDMS_IRS_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "irs/collection.h"

namespace sdms::irs {

/// The standalone retrieval system: a registry of named collections
/// with optional directory persistence. This is the component the
/// OODBMS is loosely coupled *to*; it has no knowledge of the database.
class IrsEngine {
 public:
  IrsEngine() = default;
  IrsEngine(const IrsEngine&) = delete;
  IrsEngine& operator=(const IrsEngine&) = delete;

  /// Creates a collection with the given analyzer and retrieval model
  /// ("boolean" | "vsm" | "bm25" | "inquery").
  StatusOr<IrsCollection*> CreateCollection(const std::string& name,
                                            AnalyzerOptions analyzer_options,
                                            const std::string& model_name);

  StatusOr<IrsCollection*> GetCollection(const std::string& name);

  Status DropCollection(const std::string& name);

  std::vector<std::string> CollectionNames() const;

  size_t collection_count() const { return collections_.size(); }

  /// Persists every collection's index into `dir` (one file each plus a
  /// small manifest recording the model names). Also seals each
  /// collection's block postings into a paged `.postings` store served
  /// through the buffer pool — a derived cache next to the durable
  /// `.idx` snapshot, which is why SaveTo is not const. A seal failure
  /// degrades to memory-resident postings and does not fail the save.
  Status SaveTo(const std::string& dir);

  /// Restores collections saved by SaveTo and re-seals their postings
  /// stores (same degradation as SaveTo when sealing fails).
  Status LoadFrom(const std::string& dir);

  // --- File-exchange interface -------------------------------------
  // The paper's implementation had the IRS "write the result to a file
  // which is parsed afterwards"; this pair reproduces that exchange
  // path so the architecture bench can measure its overhead against
  // the in-process API.

  /// Runs `query` on `collection` and writes "key<TAB>score" lines.
  Status SearchToFile(const std::string& collection, const std::string& query,
                      const std::string& path);

  /// Parses a result file produced by SearchToFile.
  static StatusOr<std::vector<SearchHit>> ParseResultFile(
      const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<IrsCollection>> collections_;
  // Model names per collection (for the persistence manifest).
  std::map<std::string, std::string> model_names_;
};

}  // namespace sdms::irs

#endif  // SDMS_IRS_ENGINE_H_
