#include "server/protocol.h"

#include <utility>

#include "oodb/storage/serializer.h"

namespace sdms::server {

using oodb::Decoder;
using oodb::Encoder;

namespace {

/// Hard sanity caps applied while decoding: a malformed length byte
/// must not turn into a multi-gigabyte allocation before the frame-
/// level size cap would have caught it.
constexpr uint64_t kMaxWireRows = 16u << 20;
constexpr uint64_t kMaxWireColumns = 4096;
constexpr uint64_t kMaxWireShardEntries = 65536;

StatusCode CodeFromWire(uint8_t raw) {
  if (raw > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return StatusCode::kInternal;  // future peer; keep the message
  }
  return static_cast<StatusCode>(raw);
}

coupling::ShedCause ShedCauseFromWire(uint8_t raw) {
  if (raw > static_cast<uint8_t>(coupling::ShedCause::kDraining)) {
    return coupling::ShedCause::kNone;
  }
  return static_cast<coupling::ShedCause>(raw);
}

}  // namespace

// --- Hello ----------------------------------------------------------------

std::string EncodeHello(const Hello& h) {
  Encoder enc;
  enc.PutU32(h.protocol_version);
  enc.PutString(h.peer);
  return enc.Release();
}

StatusOr<Hello> DecodeHello(const std::string& payload) {
  Decoder dec(payload);
  Hello h;
  SDMS_ASSIGN_OR_RETURN(h.protocol_version, dec.GetU32());
  SDMS_ASSIGN_OR_RETURN(h.peer, dec.GetString());
  return h;
}

// --- Query request --------------------------------------------------------

std::string EncodeQueryRequest(const QueryRequest& q) {
  Encoder enc;
  enc.PutU64(q.request_id);
  enc.PutString(q.vql);
  enc.PutU8(q.strategy);
  enc.PutI64(q.deadline_ms);
  enc.PutU64(q.max_rows);
  enc.PutU64(q.max_result_bytes);
  enc.PutU8(q.want_profile ? 1 : 0);
  return enc.Release();
}

StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload) {
  Decoder dec(payload);
  QueryRequest q;
  SDMS_ASSIGN_OR_RETURN(q.request_id, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(q.vql, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(q.strategy, dec.GetU8());
  SDMS_ASSIGN_OR_RETURN(q.deadline_ms, dec.GetI64());
  SDMS_ASSIGN_OR_RETURN(q.max_rows, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(q.max_result_bytes, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint8_t want_profile, dec.GetU8());
  q.want_profile = want_profile != 0;
  if (q.request_id == 0) {
    return Status::InvalidArgument("query request_id must be nonzero");
  }
  if (q.strategy > 1) {
    return Status::InvalidArgument("unknown query strategy " +
                                   std::to_string(q.strategy));
  }
  return q;
}

// --- Cancel ---------------------------------------------------------------

std::string EncodeCancelRequest(const CancelRequest& c) {
  Encoder enc;
  enc.PutU64(c.request_id);
  return enc.Release();
}

StatusOr<CancelRequest> DecodeCancelRequest(const std::string& payload) {
  Decoder dec(payload);
  CancelRequest c;
  SDMS_ASSIGN_OR_RETURN(c.request_id, dec.GetU64());
  return c;
}

// --- Query response -------------------------------------------------------

WireRunInfo ToWire(const coupling::MixedQueryEvaluator::RunInfo& info,
                   bool include_profile) {
  WireRunInfo w;
  w.strategy =
      info.strategy == coupling::MixedQueryEvaluator::Strategy::kIrsFirst ? 1
                                                                          : 0;
  w.irs_restrictions = info.irs_restrictions;
  w.irs_candidates = info.irs_candidates;
  w.degraded = info.degraded;
  w.query_id = info.query_id;
  w.queue_wait_micros = info.queue_wait_micros;
  w.total_micros = info.total_micros;
  if (include_profile && info.profile != nullptr) {
    w.profile_json = info.profile->ToJson();
  }
  w.shard_status = info.shard_status;
  return w;
}

std::string EncodeQueryResponse(const QueryResponse& r) {
  Encoder enc;
  enc.PutU64(r.request_id);
  enc.PutU64(r.result.columns.size());
  for (const std::string& col : r.result.columns) enc.PutString(col);
  enc.PutU64(r.result.rows.size());
  for (const auto& row : r.result.rows) {
    enc.PutU64(row.size());
    for (const oodb::Value& v : row) enc.PutValue(v);
  }
  enc.PutU8(r.result.degraded ? 1 : 0);
  enc.PutString(r.result.degraded_reason);
  enc.PutU8(r.info.strategy);
  enc.PutU64(r.info.irs_restrictions);
  enc.PutU64(r.info.irs_candidates);
  enc.PutU8(r.info.degraded ? 1 : 0);
  enc.PutU64(r.info.query_id);
  enc.PutI64(r.info.queue_wait_micros);
  enc.PutI64(r.info.total_micros);
  enc.PutString(r.info.profile_json);
  enc.PutU32(static_cast<uint32_t>(r.info.shard_status.size()));
  for (const ShardStatusEntry& e : r.info.shard_status) {
    enc.PutString(e.collection);
    enc.PutU32(e.shard);
    enc.PutU8(static_cast<uint8_t>(e.state));
    enc.PutString(e.detail);
    enc.PutI64(e.micros);
  }
  return enc.Release();
}

StatusOr<QueryResponse> DecodeQueryResponse(const std::string& payload) {
  Decoder dec(payload);
  QueryResponse r;
  SDMS_ASSIGN_OR_RETURN(r.request_id, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint64_t n_cols, dec.GetU64());
  if (n_cols > kMaxWireColumns) {
    return Status::Corruption("response column count " +
                              std::to_string(n_cols) + " exceeds cap");
  }
  r.result.columns.reserve(n_cols);
  for (uint64_t i = 0; i < n_cols; ++i) {
    SDMS_ASSIGN_OR_RETURN(std::string col, dec.GetString());
    r.result.columns.push_back(std::move(col));
  }
  SDMS_ASSIGN_OR_RETURN(uint64_t n_rows, dec.GetU64());
  if (n_rows > kMaxWireRows) {
    return Status::Corruption("response row count " + std::to_string(n_rows) +
                              " exceeds cap");
  }
  r.result.rows.reserve(n_rows);
  for (uint64_t i = 0; i < n_rows; ++i) {
    SDMS_ASSIGN_OR_RETURN(uint64_t n_vals, dec.GetU64());
    if (n_vals > kMaxWireColumns) {
      return Status::Corruption("row width " + std::to_string(n_vals) +
                                " exceeds cap");
    }
    std::vector<oodb::Value> row;
    row.reserve(n_vals);
    for (uint64_t j = 0; j < n_vals; ++j) {
      SDMS_ASSIGN_OR_RETURN(oodb::Value v, dec.GetValue());
      row.push_back(std::move(v));
    }
    r.result.rows.push_back(std::move(row));
  }
  SDMS_ASSIGN_OR_RETURN(uint8_t degraded, dec.GetU8());
  r.result.degraded = degraded != 0;
  SDMS_ASSIGN_OR_RETURN(r.result.degraded_reason, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(r.info.strategy, dec.GetU8());
  SDMS_ASSIGN_OR_RETURN(r.info.irs_restrictions, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(r.info.irs_candidates, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint8_t info_degraded, dec.GetU8());
  r.info.degraded = info_degraded != 0;
  SDMS_ASSIGN_OR_RETURN(r.info.query_id, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(r.info.queue_wait_micros, dec.GetI64());
  SDMS_ASSIGN_OR_RETURN(r.info.total_micros, dec.GetI64());
  SDMS_ASSIGN_OR_RETURN(r.info.profile_json, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(uint32_t n_shards, dec.GetU32());
  if (n_shards > kMaxWireShardEntries) {
    return Status::Corruption("shard-status count " +
                              std::to_string(n_shards) + " exceeds cap");
  }
  r.info.shard_status.reserve(n_shards);
  for (uint32_t i = 0; i < n_shards; ++i) {
    ShardStatusEntry e;
    SDMS_ASSIGN_OR_RETURN(e.collection, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(e.shard, dec.GetU32());
    SDMS_ASSIGN_OR_RETURN(uint8_t state, dec.GetU8());
    // Unknown future states degrade to kFailed (the conservative
    // reading: the shard did not answer normally) instead of failing
    // the whole frame.
    e.state = state > static_cast<uint8_t>(ShardState::kSkipped)
                  ? ShardState::kFailed
                  : static_cast<ShardState>(state);
    SDMS_ASSIGN_OR_RETURN(e.detail, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(e.micros, dec.GetI64());
    r.info.shard_status.push_back(std::move(e));
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after query response");
  }
  return r;
}

// --- Error response -------------------------------------------------------

std::string EncodeErrorResponse(const ErrorResponse& e) {
  Encoder enc;
  enc.PutU64(e.request_id);
  enc.PutU8(static_cast<uint8_t>(e.code));
  enc.PutString(e.message);
  enc.PutU8(static_cast<uint8_t>(e.shed_cause));
  return enc.Release();
}

StatusOr<ErrorResponse> DecodeErrorResponse(const std::string& payload) {
  Decoder dec(payload);
  ErrorResponse e;
  SDMS_ASSIGN_OR_RETURN(e.request_id, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint8_t code, dec.GetU8());
  e.code = CodeFromWire(code);
  SDMS_ASSIGN_OR_RETURN(e.message, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(uint8_t cause, dec.GetU8());
  e.shed_cause = ShedCauseFromWire(cause);
  return e;
}

Status AsStatus(const ErrorResponse& e) {
  if (e.code == StatusCode::kOk) return Status::OK();
  std::string msg = e.message;
  if (e.shed_cause != coupling::ShedCause::kNone) {
    msg += " (shed_cause=";
    msg += coupling::ShedCauseName(e.shed_cause);
    msg += ")";
  }
  switch (e.code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound: return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kCorruption: return Status::Corruption(std::move(msg));
    case StatusCode::kIoError: return Status::IoError(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kParseError: return Status::ParseError(std::move(msg));
    case StatusCode::kTypeError: return Status::TypeError(std::move(msg));
    case StatusCode::kLockConflict:
      return Status::LockConflict(std::move(msg));
    case StatusCode::kAborted: return Status::Aborted(std::move(msg));
    case StatusCode::kInternal: return Status::Internal(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kCancelled: return Status::Cancelled(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

}  // namespace sdms::server
