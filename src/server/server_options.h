#ifndef SDMS_SERVER_SERVER_OPTIONS_H_
#define SDMS_SERVER_SERVER_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/net/frame.h"

namespace sdms::server {

/// Tunables of the network front-end. Defaults are production-shaped;
/// tests shrink the timeouts.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (tests); Server::port() reports it.
  uint16_t port = 0;
  int backlog = 64;
  /// Hard cap on a single frame in either direction. An incoming
  /// length word above this is a protocol violation; an outgoing
  /// result that would exceed it is answered with kResourceExhausted.
  uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Drop a connection that sends no frame for this long.
  int idle_timeout_ms = 60'000;
  /// Per-chunk I/O bound: a peer that stalls a read or write chunk
  /// longer than this is dropped (the slow-client bound — a stalled
  /// reader cannot pin a server thread or grow its write buffer).
  int io_timeout_ms = 5'000;
  /// Graceful drain: after SIGTERM, in-flight queries get this long to
  /// finish before they are cancelled (cancelled, not crashed).
  int drain_deadline_ms = 5'000;
  /// Connection cap; accepts beyond it are closed immediately after a
  /// typed kError(kResourceExhausted) frame.
  size_t max_sessions = 256;
};

/// Environment overrides: SDMS_HOST, SDMS_PORT, SDMS_MAX_FRAME_BYTES,
/// SDMS_IDLE_TIMEOUT_MS, SDMS_IO_TIMEOUT_MS, SDMS_DRAIN_DEADLINE_MS,
/// SDMS_MAX_SESSIONS. Unset/unparsable values keep the defaults.
ServerOptions ServerOptionsFromEnv();

}  // namespace sdms::server

#endif  // SDMS_SERVER_SERVER_OPTIONS_H_
