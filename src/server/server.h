#ifndef SDMS_SERVER_SERVER_H_
#define SDMS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "coupling/coupling.h"
#include "server/server_options.h"
#include "server/session.h"

namespace sdms::server {

/// The multi-client TCP front-end of the coupled system. Owns the
/// listening socket, an accept loop, and one Session per connection;
/// query execution funnels through one exec mutex (the QueryEngine is
/// externally synchronized) while the coupling's AdmissionController
/// governs concurrency/queueing/shedding *before* that mutex, so
/// overload answers stay prompt.
///
/// Lifecycle: Start() -> serve -> BeginDrain() -> Shutdown().
/// Graceful drain (SIGTERM path): stop accepting, notify sessions
/// (kGoodbye; new queries shed with ShedCause::kDraining), give
/// in-flight queries drain_deadline_ms to finish, then cancel the
/// stragglers — every accepted request is answered (result or typed
/// kCancelled error), nothing crashes, and Shutdown() returns with
/// all threads joined so the process can exit 0.
///
/// Fault point: "net.accept" (accepted connections dropped at the
/// door, exercising client connect-retry).
class Server {
 public:
  Server(coupling::Coupling* coupling, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop.
  Status Start();

  /// The bound port (resolves port-0 binds). Valid after Start().
  uint16_t port() const { return port_; }

  /// Stops accepting and sheds new queries; in-flight queries keep
  /// running. Idempotent; safe from any thread (not a signal handler —
  /// handlers should set a flag the main loop polls, see server_main).
  void BeginDrain();

  /// Full graceful stop: BeginDrain, wait for in-flight work up to
  /// options.drain_deadline_ms, cancel stragglers, join everything.
  /// Returns the number of queries that had to be cancelled.
  size_t Shutdown();

  /// Sessions currently alive (draining sessions included).
  size_t active_sessions();

 private:
  void AcceptLoop();
  /// Drops sessions whose reader thread has exited.
  void ReapFinishedSessions();

  coupling::Coupling* const coupling_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> draining_{false};
  bool shut_down_ = false;

  /// Serializes all QueryEngine access across sessions.
  std::mutex exec_mu_;

  std::mutex sessions_mu_;
  std::list<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
};

}  // namespace sdms::server

#endif  // SDMS_SERVER_SERVER_H_
