#ifndef SDMS_SERVER_PROTOCOL_H_
#define SDMS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "coupling/admission.h"
#include "coupling/mixed_query.h"
#include "oodb/query/executor.h"

namespace sdms::server {

/// Message bodies of the sdms network protocol (docs/protocol.md).
/// Frames carry these as payloads, encoded with the same
/// oodb::Encoder/Decoder binary format the WAL and snapshots use
/// (LEB128 varints, length-prefixed strings, raw 8-byte doubles — so
/// scores round-trip bit-identically, like the %.17g exchange files).
/// Every Decode* rejects malformed payloads with a Status instead of
/// crashing; the session layer answers those with an error frame.

/// Bumped on every incompatible wire change; exchanged in Hello.
/// v2: QueryResponse carries the per-shard status list after the
/// profile JSON (fault-isolated fan-out searches name their failure
/// domain on the wire).
/// v3: shard serving mode — the kShardHello/kShardSearch/kShardOps/
/// kShardInstall/kShardStatus frames (coupling/shard_protocol.h) let a
/// router drive per-shard sdms_server processes; kShardSearch carries
/// router-computed global corpus statistics so remote rankings stay
/// bit-identical to local ones. A version mismatch in either direction
/// is answered with a typed kFailedPrecondition, never a parse crash.
inline constexpr uint32_t kProtocolVersion = 3;

// --- Hello ----------------------------------------------------------------

struct Hello {
  uint32_t protocol_version = kProtocolVersion;
  /// Free-form peer label ("sdms_shell", "bench_server", ...).
  std::string peer;
};

std::string EncodeHello(const Hello& h);
StatusOr<Hello> DecodeHello(const std::string& payload);

// --- Query request --------------------------------------------------------

struct QueryRequest {
  /// Client-chosen correlation id; echoed in the response and used by
  /// kCancel. Must be nonzero.
  uint64_t request_id = 0;
  std::string vql;
  /// 0 = independent, 1 = irs_first (MixedQueryEvaluator::Strategy).
  uint8_t strategy = 0;
  /// Relative per-request deadline; 0 = none (the server may still
  /// apply its default). Mapped onto the request's QueryContext.
  int64_t deadline_ms = 0;
  /// Row/byte budgets mapped onto the QueryContext (0 = unbounded; the
  /// server caps result bytes at its frame limit regardless).
  uint64_t max_rows = 0;
  uint64_t max_result_bytes = 0;
  /// Attach the profile (as JSON) to the response's RunInfo — the wire
  /// form of EXPLAIN ANALYZE.
  bool want_profile = false;
};

std::string EncodeQueryRequest(const QueryRequest& q);
StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload);

// --- Cancel ---------------------------------------------------------------

struct CancelRequest {
  uint64_t request_id = 0;
};

std::string EncodeCancelRequest(const CancelRequest& c);
StatusOr<CancelRequest> DecodeCancelRequest(const std::string& payload);

// --- Query response -------------------------------------------------------

/// The wire form of MixedQueryEvaluator::RunInfo: everything the
/// client-side degraded-display and EXPLAIN ANALYZE paths need,
/// including the profile stage tree serialized as its JSON line.
struct WireRunInfo {
  uint8_t strategy = 0;
  uint64_t irs_restrictions = 0;
  uint64_t irs_candidates = 0;
  bool degraded = false;
  uint64_t query_id = 0;
  int64_t queue_wait_micros = 0;
  int64_t total_micros = 0;
  /// QueryProfile::ToJson() of the run, empty when not requested or
  /// not profiled. Opaque to the protocol — compared bit-identically
  /// in round-trip tests.
  std::string profile_json;
  /// Per-shard outcomes of the run's fan-out IRS searches (one entry
  /// per shard per search); empty when no fan-out happened. Decoded
  /// states beyond the known range surface as kFailed rather than
  /// rejecting the frame, so a newer server can add states.
  std::vector<ShardStatusEntry> shard_status;
};

/// Flattens a RunInfo for the wire. Serializes the profile only when
/// `include_profile` (it can be large).
WireRunInfo ToWire(const coupling::MixedQueryEvaluator::RunInfo& info,
                   bool include_profile);

struct QueryResponse {
  uint64_t request_id = 0;
  oodb::vql::QueryResult result;  // columns, rows, degraded(+reason)
  WireRunInfo info;
};

std::string EncodeQueryResponse(const QueryResponse& r);
StatusOr<QueryResponse> DecodeQueryResponse(const std::string& payload);

// --- Error response -------------------------------------------------------

struct ErrorResponse {
  /// The request this error answers; 0 for session-level errors
  /// (malformed frame, unknown type, handshake violation).
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  /// Populated when code == kResourceExhausted came from shedding.
  coupling::ShedCause shed_cause = coupling::ShedCause::kNone;
};

std::string EncodeErrorResponse(const ErrorResponse& e);
StatusOr<ErrorResponse> DecodeErrorResponse(const std::string& payload);

/// The Status a client surfaces for a received error frame (code and
/// message preserved; the shed cause is appended to the message).
Status AsStatus(const ErrorResponse& e);

}  // namespace sdms::server

#endif  // SDMS_SERVER_PROTOCOL_H_
