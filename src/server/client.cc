#include "server/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/net/socket.h"
#include "common/obs/log.h"
#include "common/query_context.h"

namespace sdms::server {

namespace {

/// Response-wait poll tick: bounds how long a Ctrl-C waits before the
/// kCancel frame goes out.
constexpr int kPollTickMs = 50;

/// A transport-level failure: the connection is suspect, the guard may
/// retry on a fresh one. Typed server answers are not in this class.
bool IsTransportError(const Status& s) {
  return s.code() == StatusCode::kIoError || s.IsNotFound();
}

}  // namespace

SdmsClient::SdmsClient(ClientOptions options)
    : options_(std::move(options)),
      guard_(std::make_unique<coupling::CallGuard>(options_.guard,
                                                   "sdms_client")) {}

SdmsClient::~SdmsClient() { Close(); }

void SdmsClient::Close() {
  if (fd_ >= 0) {
    // Best-effort goodbye so the server logs a clean close, not a
    // truncation.
    net::WriteFrame(fd_, net::FrameType::kGoodbye, "",
                    /*io_timeout_ms=*/100, options_.max_frame_bytes)
        .ok();
    net::CloseFd(fd_);
    fd_ = -1;
  }
  draining_.store(false, std::memory_order_release);
}

Status SdmsClient::ConnectOnce() {
  Close();
  SDMS_ASSIGN_OR_RETURN(
      fd_, net::ConnectTcp(options_.host, options_.port,
                           options_.connect_timeout_ms));
  Hello hello;
  hello.peer = options_.peer_label;
  Status s = net::WriteFrame(fd_, net::FrameType::kHello, EncodeHello(hello),
                             options_.io_timeout_ms,
                             options_.max_frame_bytes);
  if (!s.ok()) {
    Close();
    return s;
  }
  StatusOr<net::Frame> reply =
      net::ReadFrame(fd_, options_.io_timeout_ms, options_.io_timeout_ms,
                     options_.max_frame_bytes);
  if (!reply.ok()) {
    Close();
    // A server that dropped us mid-handshake (accept fault, restart)
    // reads as an I/O error so the guard retries.
    return IsTransportError(reply.status())
               ? Status::IoError("handshake failed: " +
                                 reply.status().ToString())
               : reply.status();
  }
  if (reply->type == net::FrameType::kError) {
    Close();
    StatusOr<ErrorResponse> err = DecodeErrorResponse(reply->payload);
    return err.ok() ? AsStatus(*err)
                    : Status::IoError("handshake rejected");
  }
  if (reply->type != net::FrameType::kHello) {
    Close();
    return Status::IoError(std::string("handshake: expected hello, got ") +
                           net::FrameTypeName(reply->type));
  }
  StatusOr<Hello> server_hello = DecodeHello(reply->payload);
  if (!server_hello.ok()) {
    Close();
    return server_hello.status();
  }
  if (server_hello->protocol_version != kProtocolVersion) {
    Close();
    return Status::FailedPrecondition(
        "protocol version mismatch: client speaks " +
        std::to_string(kProtocolVersion) + ", server sent " +
        std::to_string(server_hello->protocol_version));
  }
  return Status::OK();
}

Status SdmsClient::Connect() {
  return guard_->Run("connect", [this] {
    Status s = ConnectOnce();
    // Connection refused while the server boots is the prime retry
    // case; surface it in the retriable class.
    if (!s.ok() && IsTransportError(s)) {
      return Status::IoError("connect to " + options_.host + ":" +
                             std::to_string(options_.port) +
                             " failed: " + s.ToString());
    }
    return s;
  });
}

Status SdmsClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  return ConnectOnce();
}

StatusOr<net::Frame> SdmsClient::AwaitResponse(uint64_t request_id,
                                               int64_t deadline_ms) {
  // Overall wait bound: the request's own deadline plus I/O slack
  // (the server answers an expired deadline with a typed error), else
  // the configured response bound, else unbounded.
  int64_t budget_ms = deadline_ms > 0
                          ? deadline_ms + 2 * options_.io_timeout_ms
                          : options_.response_timeout_ms;
  const int64_t start = QueryContext::NowMicros();
  bool cancel_sent = false;
  for (;;) {
    QueryContext* ctx = QueryContext::Current();
    if (!cancel_sent && ctx != nullptr && ctx->ShouldStop()) {
      // Forward the local stop (Ctrl-C, deadline) to the server once,
      // then keep waiting — the server answers with a typed error and
      // the connection stays usable.
      cancel_sent = true;
      CancelRequest cancel;
      cancel.request_id = request_id;
      net::WriteFrame(fd_, net::FrameType::kCancel,
                      EncodeCancelRequest(cancel), options_.io_timeout_ms,
                      options_.max_frame_bytes)
          .ok();
      // The server's cancel answer should be prompt.
      int64_t elapsed_ms = (QueryContext::NowMicros() - start) / 1000;
      budget_ms = elapsed_ms + 2 * options_.io_timeout_ms;
    }
    Status readable = net::WaitReadable(fd_, kPollTickMs);
    if (readable.IsDeadlineExceeded()) {
      if (budget_ms > 0 &&
          (QueryContext::NowMicros() - start) / 1000 >= budget_ms) {
        return Status::IoError("no response within " +
                               std::to_string(budget_ms) + "ms");
      }
      continue;
    }
    SDMS_RETURN_IF_ERROR(readable);
    SDMS_ASSIGN_OR_RETURN(
        net::Frame frame,
        net::ReadFrame(fd_, options_.io_timeout_ms, options_.io_timeout_ms,
                       options_.max_frame_bytes));
    switch (frame.type) {
      case net::FrameType::kGoodbye:
        draining_.store(true, std::memory_order_release);
        continue;  // informational; the in-flight query still answers
      case net::FrameType::kPong:
        continue;  // stale ping answer
      case net::FrameType::kResult:
      case net::FrameType::kError:
        return frame;
      default:
        return Status::IoError(std::string("unexpected frame ") +
                               net::FrameTypeName(frame.type) +
                               " while awaiting response");
    }
  }
}

StatusOr<SdmsClient::Response> SdmsClient::QueryOnce(
    const QueryRequest& req, bool* request_sent) {
  SDMS_RETURN_IF_ERROR(EnsureConnected());
  // A failed write may still have delivered bytes (partial write, reset
  // racing the kernel buffers), so the request counts as sent the
  // moment the write is attempted on a live connection.
  *request_sent = true;
  SDMS_RETURN_IF_ERROR(net::WriteFrame(
      fd_, net::FrameType::kQuery, EncodeQueryRequest(req),
      options_.io_timeout_ms, options_.max_frame_bytes));
  for (;;) {
    SDMS_ASSIGN_OR_RETURN(net::Frame frame,
                          AwaitResponse(req.request_id, req.deadline_ms));
    if (frame.type == net::FrameType::kError) {
      SDMS_ASSIGN_OR_RETURN(ErrorResponse err,
                            DecodeErrorResponse(frame.payload));
      if (err.request_id != 0 && err.request_id != req.request_id) {
        continue;  // stale answer to an abandoned request
      }
      return AsStatus(err);
    }
    SDMS_ASSIGN_OR_RETURN(QueryResponse resp,
                          DecodeQueryResponse(frame.payload));
    if (resp.request_id != req.request_id) continue;
    Response out;
    out.result = std::move(resp.result);
    out.info = std::move(resp.info);
    return out;
  }
}

StatusOr<SdmsClient::Response> SdmsClient::Query(QueryRequest req,
                                                 bool idempotent) {
  if (req.request_id == 0) req.request_id = next_request_id_++;
  StatusOr<Response> out = Status::Internal("query never attempted");
  Status s = guard_->Run("query", [&] {
    bool request_sent = false;
    out = QueryOnce(req, &request_sent);
    if (out.ok()) return Status::OK();
    Status attempt = out.status();
    if (IsTransportError(attempt)) {
      // The connection is suspect; the next attempt reconnects.
      Close();
      if (request_sent && !idempotent) {
        // Mid-stream disconnect after the request went out: the server
        // may have executed it, so a silent re-send could apply it
        // twice. Surface the ambiguity as a typed, non-retriable error
        // and let the caller decide.
        Status typed = Status::FailedPrecondition(
            "connection lost after request was sent; result unknown — "
            "not retried (non-idempotent request): " +
            std::string(attempt.message()));
        out = typed;
        return typed;
      }
      // Connection refused / handshake drop (request never sent), or a
      // read-only request: replaying on a fresh connection is safe.
      return Status::IoError(attempt.message());
    }
    return attempt;
  });
  if (!s.ok()) return s;
  return out;
}

Status SdmsClient::Ping() {
  return guard_->Run("ping", [&]() -> Status {
    Status s = [&]() -> Status {
      SDMS_RETURN_IF_ERROR(EnsureConnected());
      SDMS_RETURN_IF_ERROR(net::WriteFrame(
          fd_, net::FrameType::kPing, "ping", options_.io_timeout_ms,
          options_.max_frame_bytes));
      for (;;) {
        SDMS_ASSIGN_OR_RETURN(
            net::Frame frame,
            net::ReadFrame(fd_, options_.io_timeout_ms,
                           options_.io_timeout_ms,
                           options_.max_frame_bytes));
        if (frame.type == net::FrameType::kPong) return Status::OK();
        if (frame.type == net::FrameType::kGoodbye) {
          draining_.store(true, std::memory_order_release);
          continue;
        }
        if (frame.type == net::FrameType::kError) {
          SDMS_ASSIGN_OR_RETURN(ErrorResponse err,
                                DecodeErrorResponse(frame.payload));
          return AsStatus(err);
        }
        return Status::IoError(std::string("unexpected frame ") +
                               net::FrameTypeName(frame.type) +
                               " while awaiting pong");
      }
    }();
    if (!s.ok() && IsTransportError(s)) {
      Close();
      return Status::IoError(s.message());
    }
    return s;
  });
}

}  // namespace sdms::server
