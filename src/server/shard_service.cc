#include "server/shard_service.h"

#include <utility>
#include <vector>

#include "common/net/socket.h"
#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/query_context.h"
#include "irs/model/retrieval_model.h"
#include "server/protocol.h"

namespace sdms::server {

// The shard protocol is part of protocol v3; the channel-side mirror
// must never drift from the negotiated version.
static_assert(coupling::kShardProtocolVersion == kProtocolVersion,
              "shard protocol version out of step with kProtocolVersion");

namespace {

struct ShardServerMetrics {
  obs::Counter& connections = obs::GetCounter("shard_server.connections");
  obs::Counter& searches = obs::GetCounter("shard_server.searches");
  obs::Counter& ops_applied = obs::GetCounter("shard_server.ops_applied");
  obs::Counter& ops_skipped = obs::GetCounter("shard_server.ops_skipped");
  obs::Counter& installs = obs::GetCounter("shard_server.installs");
  obs::Counter& protocol_errors =
      obs::GetCounter("shard_server.protocol_errors");
};

ShardServerMetrics& Metrics() {
  static ShardServerMetrics* m = new ShardServerMetrics();
  return *m;
}

}  // namespace

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)) {}

ShardServer::~ShardServer() { Shutdown(); }

Status ShardServer::Start() {
  SDMS_ASSIGN_OR_RETURN(
      listen_fd_, net::ListenTcp(options_.host, options_.port, /*backlog=*/16));
  SDMS_ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  SDMS_LOG(INFO) << "shard server listening on " << options_.host << ":"
                 << port_
                 << (options_.collection.empty()
                         ? std::string()
                         : " for " + options_.collection + "/" +
                               std::to_string(options_.shard));
  return Status::OK();
}

void ShardServer::Shutdown() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  std::list<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    net::ShutdownFd(conn->fd);
    if (conn->thread.joinable()) conn->thread.join();
    net::CloseFd(conn->fd);
  }
}

uint64_t ShardServer::applied_seq() {
  std::lock_guard<std::mutex> lock(state_mu_);
  return collection_ == nullptr ? 0 : collection_->shard_applied_seq(shard_);
}

uint64_t ShardServer::doc_count() {
  std::lock_guard<std::mutex> lock(state_mu_);
  return collection_ == nullptr ? 0 : collection_->shard(shard_).doc_count();
}

void ShardServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<int> conn = net::AcceptConn(listen_fd_, /*timeout_ms=*/100);
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) {
        // Poll tick; also reap finished connection threads.
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
          if ((*it)->finished.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable()) (*it)->thread.join();
            net::CloseFd((*it)->fd);
            it = conns_.erase(it);
          } else {
            ++it;
          }
        }
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      SDMS_LOG(WARN) << "shard server accept failed: "
                     << conn.status().ToString();
      continue;
    }
    Metrics().connections.Increment();
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto c = std::make_unique<Conn>();
    c->fd = *conn;
    Conn* raw = c.get();
    c->thread = std::thread([this, raw] {
      ServeConnection(raw->fd);
      raw->finished.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(c));
  }
}

void ShardServer::ServeConnection(int fd) {
  bool handshaken = false;
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<net::Frame> frame =
        net::ReadFrame(fd, options_.idle_timeout_ms, options_.io_timeout_ms,
                       options_.max_frame_bytes);
    if (!frame.ok()) {
      // Clean EOF / timeout / reset: nothing to answer. A frame-length
      // violation gets a typed protocol error before the close.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        Metrics().protocol_errors.Increment();
        SendError(fd, 0, frame.status());
      }
      break;
    }
    if (!HandleFrame(fd, *frame, &handshaken)) break;
  }
  net::ShutdownFd(fd);
}

bool ShardServer::HandleFrame(int fd, const net::Frame& frame,
                              bool* handshaken) {
  if (!*handshaken) {
    if (frame.type != net::FrameType::kShardHello) {
      // Includes a main-protocol kHello from a mismatched client:
      // answered typed, never parsed as something else.
      Metrics().protocol_errors.Increment();
      SendError(fd, 0,
                Status::FailedPrecondition(
                    "shard server expects shard hello first, got " +
                    std::string(net::FrameTypeName(frame.type))));
      return false;
    }
    Status s = HandleHello(fd, frame.payload);
    if (!s.ok()) {
      Metrics().protocol_errors.Increment();
      SendError(fd, 0, s);
      return false;
    }
    *handshaken = true;
    return true;
  }
  switch (frame.type) {
    case net::FrameType::kShardSearch: {
      Status s = HandleSearch(fd, frame.payload);
      if (!s.ok()) {
        // Transport failure writing the answer: drop the connection.
        return false;
      }
      return true;
    }
    case net::FrameType::kShardOps: {
      Status s = HandleOps(fd, frame.payload);
      return s.ok();
    }
    case net::FrameType::kShardInstall: {
      Status s = HandleInstall(fd, frame.payload);
      return s.ok();
    }
    case net::FrameType::kShardHello:
      // Re-hello on a live connection: re-verify and re-answer status
      // (a reconnecting router may reuse the stream).
      return HandleHello(fd, frame.payload).ok();
    case net::FrameType::kPing:
      return net::WriteFrame(fd, net::FrameType::kPong, frame.payload,
                             options_.io_timeout_ms, options_.max_frame_bytes)
          .ok();
    case net::FrameType::kGoodbye:
      return false;
    default:
      Metrics().protocol_errors.Increment();
      SendError(fd, 0,
                Status::InvalidArgument(std::string("unexpected frame type ") +
                                        net::FrameTypeName(frame.type) +
                                        " on shard connection"));
      return false;
  }
}

Status ShardServer::SendError(int fd, uint64_t request_id,
                              const Status& error) {
  return net::WriteFrame(fd, net::FrameType::kError,
                         coupling::EncodeShardError(request_id, error),
                         options_.io_timeout_ms, options_.max_frame_bytes);
}

coupling::ShardStatusMsg ShardServer::StatusLocked() const {
  coupling::ShardStatusMsg msg;
  if (collection_ != nullptr) {
    msg.applied_seq = collection_->shard_applied_seq(shard_);
    msg.doc_count = collection_->shard(shard_).doc_count();
    msg.doc_table_size = collection_->shard(shard_).doc_table_size();
  }
  return msg;
}

Status ShardServer::SendStatus(int fd) {
  coupling::ShardStatusMsg msg;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    msg = StatusLocked();
  }
  return net::WriteFrame(fd, net::FrameType::kShardStatus,
                         coupling::EncodeShardStatusMsg(msg),
                         options_.io_timeout_ms, options_.max_frame_bytes);
}

Status ShardServer::HandleHello(int fd, const std::string& payload) {
  SDMS_ASSIGN_OR_RETURN(coupling::ShardHello hello,
                        coupling::DecodeShardHello(payload));
  if (hello.protocol_version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: shard server speaks " +
        std::to_string(kProtocolVersion) + ", router sent " +
        std::to_string(hello.protocol_version));
  }
  if (!options_.collection.empty() &&
      (hello.collection != options_.collection ||
       (options_.shard >= 0 &&
        hello.shard != static_cast<uint32_t>(options_.shard)))) {
    return Status::FailedPrecondition(
        "shard server serves " + options_.collection + "/" +
        std::to_string(options_.shard) + ", hello declared " +
        hello.collection + "/" + std::to_string(hello.shard));
  }
  if (hello.num_shards == 0 || hello.shard >= hello.num_shards) {
    return Status::InvalidArgument(
        "hello shard " + std::to_string(hello.shard) + " out of range for " +
        std::to_string(hello.num_shards) + " shards");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (collection_ == nullptr) {
      SDMS_ASSIGN_OR_RETURN(auto model, irs::MakeModel(hello.model_name));
      collection_ = std::make_unique<irs::IrsCollection>(
          hello.collection, hello.analyzer, std::move(model),
          hello.num_shards);
      collection_name_ = hello.collection;
      shard_ = hello.shard;
      num_shards_ = hello.num_shards;
      model_name_ = hello.model_name;
      analyzer_options_ = hello.analyzer;
      SDMS_LOG(INFO) << "shard server configured as " << collection_name_
                     << "/" << shard_ << " of " << num_shards_ << " ("
                     << model_name_ << ")";
    } else if (hello.collection != collection_name_ || hello.shard != shard_ ||
               hello.num_shards != num_shards_ ||
               hello.model_name != model_name_ ||
               hello.analyzer.remove_stopwords !=
                   analyzer_options_.remove_stopwords ||
               hello.analyzer.stem != analyzer_options_.stem ||
               hello.analyzer.min_token_length !=
                   analyzer_options_.min_token_length) {
      // Identity and configuration are sticky for the process lifetime —
      // a hello that disagrees is a deployment error, not a reset.
      return Status::FailedPrecondition(
          "shard server already serves " + collection_name_ + "/" +
          std::to_string(shard_) + " of " + std::to_string(num_shards_) +
          " with model " + model_name_ + "; hello declared " +
          hello.collection + "/" + std::to_string(hello.shard) + " of " +
          std::to_string(hello.num_shards) + " with model " +
          hello.model_name);
    }
  }
  return SendStatus(fd);
}

Status ShardServer::HandleSearch(int fd, const std::string& payload) {
  StatusOr<coupling::ShardSearchRequest> req =
      coupling::DecodeShardSearchRequest(payload);
  if (!req.ok()) {
    Metrics().protocol_errors.Increment();
    SendError(fd, 0, req.status());
    return req.status();
  }
  Metrics().searches.Increment();
  coupling::ShardSearchResponse resp;
  resp.request_id = req->request_id;
  Status result = Status::OK();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    QueryContext ctx;
    if (req->deadline_ms > 0) ctx.SetDeadlineAfterMs(req->deadline_ms);
    QueryContext::Scope scope(&ctx);
    auto plan = collection_->PrepareSearchWithStats(
        req->query, static_cast<size_t>(req->k), req->stats);
    if (!plan.ok()) {
      result = plan.status();
    } else {
      auto hits = collection_->SearchShard(*plan, shard_);
      if (!hits.ok()) {
        result = hits.status();
      } else {
        resp.hits.reserve(hits->size());
        for (irs::SearchHit& h : *hits) {
          resp.hits.push_back(coupling::ShardHit{std::move(h.key), h.score});
        }
      }
    }
  }
  if (!result.ok()) {
    // Typed answer; the connection stays usable (the router decides
    // whether the error is retriable).
    return SendError(fd, req->request_id, result);
  }
  return net::WriteFrame(fd, net::FrameType::kShardHits,
                         coupling::EncodeShardSearchResponse(resp),
                         options_.io_timeout_ms, options_.max_frame_bytes);
}

Status ShardServer::HandleOps(int fd, const std::string& payload) {
  StatusOr<coupling::ShardOpsBatch> batch =
      coupling::DecodeShardOpsBatch(payload);
  if (!batch.ok()) {
    Metrics().protocol_errors.Increment();
    SendError(fd, 0, batch.status());
    return batch.status();
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const uint64_t floor = collection_->shard_applied_seq(shard_);
    for (const coupling::ShardOp& op : batch->ops) {
      // Exactly-once: sequenced ops at or below the floor were already
      // applied (unsequenced ops can't be deduped; their reconciling
      // application converges because the batch preserves apply order).
      if (op.seq != 0 && op.seq <= floor) {
        Metrics().ops_skipped.Increment();
        continue;
      }
      Status s;
      if (op.is_delete) {
        s = collection_->RemoveDocument(op.key);
        if (s.IsNotFound()) s = Status::OK();  // reconciling delete
      } else if (collection_->HasDocument(op.key)) {
        s = collection_->UpdateDocument(op.key, op.text);
      } else {
        s = collection_->AddDocument(op.key, op.text);
      }
      if (!s.ok()) {
        SendError(fd, 0, s);
        return s;
      }
      Metrics().ops_applied.Increment();
    }
    collection_->set_shard_applied_seq(shard_, batch->high);
  }
  return SendStatus(fd);
}

Status ShardServer::HandleInstall(int fd, const std::string& payload) {
  StatusOr<coupling::ShardInstall> install =
      coupling::DecodeShardInstall(payload);
  if (!install.ok()) {
    Metrics().protocol_errors.Increment();
    SendError(fd, 0, install.status());
    return install.status();
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    Status s = collection_->InstallShard(shard_, install->index_bytes,
                                         install->applied_seq);
    if (!s.ok()) {
      SendError(fd, 0, s);
      return s;
    }
    Metrics().installs.Increment();
    SDMS_LOG(INFO) << "shard server installed " << collection_name_ << "/"
                   << shard_ << ": " << install->index_bytes.size()
                   << " bytes at seq " << install->applied_seq;
  }
  return SendStatus(fd);
}

}  // namespace sdms::server
