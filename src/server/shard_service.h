#ifndef SDMS_SERVER_SHARD_SERVICE_H_
#define SDMS_SERVER_SHARD_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/net/frame.h"
#include "common/status.h"
#include "coupling/shard_protocol.h"
#include "irs/collection.h"

namespace sdms::server {

struct ShardServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral
  /// Wait for the next request on an established connection; a router
  /// holds connections open between queries, so this is generous.
  int idle_timeout_ms = 120000;
  int io_timeout_ms = 5000;
  uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Pin the served identity ("--shard <coll>/<i>"). Empty collection
  /// accepts whatever the first hello declares; a nonempty pin rejects
  /// mismatched hellos with kFailedPrecondition.
  std::string collection;
  int64_t shard = -1;  // -1 = accept any
};

/// The serving tier of a multi-node collection: one process per
/// remote shard (`sdms_server --shard <coll>/<i>`). It holds exactly
/// one shard's InvertedIndex, built entirely from what the router
/// ships — a ShardHello declares the collection configuration, a
/// ShardInstall or replayed ShardOps populate the index, and every
/// ShardSearch carries the router-computed global corpus statistics —
/// so its rankings are bit-identical to the router's own SearchShard.
///
/// The server is deliberately stateless across restarts (no disk): the
/// router is the durability tier, and a restarted shard server simply
/// reports applied_seq 0 in the hello handshake and is caught up by
/// replay or install. Update application is exactly-once: sequenced
/// ops at or below the applied floor are skipped, everything else is
/// applied reconcilingly (upsert/delete by key), mirroring the
/// propagation journal's recovery semantics.
///
/// Protocol: hello-first. Any frame before ShardHello — including a
/// main-protocol kHello from a v2 client — is answered with a typed
/// kFailedPrecondition error frame, never a parse crash; a version or
/// identity mismatch in the hello likewise.
class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds, listens, and spawns the accept loop.
  Status Start();

  /// The bound port (resolves port-0 binds). Valid after Start().
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection, joins all threads.
  void Shutdown();

  // --- Introspection (tests) ---------------------------------------------
  uint64_t applied_seq();
  uint64_t doc_count();
  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Dispatches one frame; returns false to close the connection.
  bool HandleFrame(int fd, const net::Frame& frame, bool* handshaken);
  Status SendError(int fd, uint64_t request_id, const Status& error);
  Status SendStatus(int fd);
  /// Hello processing under state_mu_: creates or verifies the served
  /// collection, answers ShardStatus.
  Status HandleHello(int fd, const std::string& payload);
  Status HandleSearch(int fd, const std::string& payload);
  Status HandleOps(int fd, const std::string& payload);
  Status HandleInstall(int fd, const std::string& payload);
  coupling::ShardStatusMsg StatusLocked() const;

  const ShardServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> connections_{0};

  std::mutex conns_mu_;
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };
  std::list<std::unique_ptr<Conn>> conns_;

  /// Serializes all collection access across connections (IrsCollection
  /// is externally synchronized).
  std::mutex state_mu_;
  std::unique_ptr<irs::IrsCollection> collection_;
  std::string collection_name_;
  uint32_t shard_ = 0;
  uint32_t num_shards_ = 1;
  std::string model_name_;
  irs::AnalyzerOptions analyzer_options_;
};

}  // namespace sdms::server

#endif  // SDMS_SERVER_SHARD_SERVICE_H_
