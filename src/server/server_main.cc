// sdms_server: the network front-end of the coupled system.
//
//   $ ./sdms_server --demo --port 4646
//   listening on port 4646
//
// Loads a corpus (--demo: the Figure 4 corpus; --gen N [seed]: a
// generated one) with an indexed 'paras' collection, then serves the
// sdms protocol (docs/protocol.md) until SIGTERM/SIGINT triggers a
// graceful drain: accepting stops, in-flight queries finish (or are
// cancelled at the drain deadline), stats and the slow-query log are
// flushed, and the process exits 0.

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/obs/stats.h"
#include "coupling/coupling.h"
#include "irs/engine.h"
#include "oodb/database.h"
#include "server/server.h"
#include "server/shard_service.h"
#include "sgml/corpus/generator.h"
#include "sgml/mmf_dtd.h"

using namespace sdms;

namespace {

/// SIGTERM/SIGINT set a flag the main loop polls; the drain itself
/// (threads, mutexes, I/O) must not run inside a signal handler.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int) { g_shutdown = 1; }

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --host <addr>        bind address (default 127.0.0.1)\n"
      "  --port <n>           port (default 0 = ephemeral, printed)\n"
      "  --demo               preload the Figure 4 corpus + 'paras'\n"
      "  --gen <n> [seed]     generate+store n documents + 'paras'\n"
      "  --snapshot-dir <d>   persist IRS indexes + stats there on exit\n"
      "  --drain-ms <n>       graceful-drain deadline (default 5000)\n"
      "  --stats-file <f>     write the statistics service there on exit\n"
      "  --shard <coll>/<i>   serve as the remote shard server for one\n"
      "                       shard (protocol v3; no corpus is loaded —\n"
      "                       the router installs the index)\n"
      "  --shard-endpoints <coll>=<h:p,h:p,...>\n"
      "                       route this router's fan-out searches for\n"
      "                       <coll> to remote shard servers (one\n"
      "                       endpoint per shard, in shard order; empty\n"
      "                       element = keep that shard in-process)\n"
      "Environment: SDMS_HOST, SDMS_PORT, SDMS_MAX_FRAME_BYTES,\n"
      "SDMS_IDLE_TIMEOUT_MS, SDMS_IO_TIMEOUT_MS, SDMS_DRAIN_DEADLINE_MS,\n"
      "SDMS_MAX_SESSIONS, SDMS_MAX_CONCURRENT_QUERIES, SDMS_MAX_QUEUE,\n"
      "SDMS_DEFAULT_DEADLINE_MS, SDMS_FAULTS, SDMS_SLOW_QUERY_MS,\n"
      "SDMS_SHARDS, SDMS_SHARD_ENDPOINTS (same syntax as\n"
      "--shard-endpoints), SDMS_DISABLE_BUFFERING (=1 makes every\n"
      "query pay a fresh IRS fan-out — smoke tests of the shard\n"
      "transport need the real search path, not a buffer hit).\n",
      argv0);
}

Status LoadDemo(coupling::Coupling& coupling) {
  sgml::Corpus corpus = sgml::MakeFigure4Corpus();
  for (const auto& doc : corpus.documents) {
    SDMS_RETURN_IF_ERROR(coupling.StoreDocument(doc).status());
  }
  SDMS_ASSIGN_OR_RETURN(coupling::Collection * coll,
                        coupling.CreateCollection("paras", "inquery"));
  SDMS_RETURN_IF_ERROR(coll->IndexObjects("ACCESS p FROM p IN PARA",
                                          coupling::kTextModeSubtree));
  std::fprintf(stderr,
               "demo corpus loaded; collection 'paras' over %zu paragraphs\n",
               coll->represented_count());
  return Status::OK();
}

Status LoadGenerated(coupling::Coupling& coupling, size_t num_docs,
                     uint64_t seed) {
  sgml::CorpusOptions opts;
  opts.num_docs = num_docs;
  opts.seed = seed;
  sgml::Corpus corpus = sgml::CorpusGenerator(opts).Generate();
  for (const auto& doc : corpus.documents) {
    SDMS_RETURN_IF_ERROR(coupling.StoreDocument(doc).status());
  }
  SDMS_ASSIGN_OR_RETURN(coupling::Collection * coll,
                        coupling.CreateCollection("paras", "inquery"));
  SDMS_RETURN_IF_ERROR(coll->IndexObjects("ACCESS p FROM p IN PARA",
                                          coupling::kTextModeSubtree));
  std::fprintf(stderr,
               "generated %zu documents; collection 'paras' over %zu "
               "paragraphs\n",
               corpus.documents.size(), coll->represented_count());
  return Status::OK();
}

/// `--shard <coll>/<i>` serving mode: no database, no corpus — just a
/// ShardServer waiting for a router to install its slice. Shares the
/// readiness line and signal-driven shutdown with the main mode so
/// scripts drive both identically.
int RunShardServer(const std::string& host, uint16_t port,
                   const std::string& spec) {
  server::ShardServerOptions options;
  options.host = host;
  options.port = port;
  size_t slash = spec.rfind('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == spec.size()) {
    std::fprintf(stderr, "malformed --shard spec '%s' (want <coll>/<i>)\n",
                 spec.c_str());
    return 2;
  }
  options.collection = spec.substr(0, slash);
  options.shard = std::strtoll(spec.c_str() + slash + 1, nullptr, 10);
  server::ShardServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "shard server start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutdown signal received\n");
  server.Shutdown();
  std::fprintf(stderr, "exit 0\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options = server::ServerOptionsFromEnv();
  bool demo = false;
  size_t gen_docs = 0;
  uint64_t gen_seed = 42;
  std::string snapshot_dir;
  std::string stats_file;
  std::string shard_spec;
  std::string shard_endpoints;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--host") {
      if (const char* v = next()) options.host = v;
    } else if (arg == "--port") {
      if (const char* v = next()) {
        options.port = static_cast<uint16_t>(std::atoi(v));
      }
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--gen") {
      if (const char* v = next()) gen_docs = std::strtoull(v, nullptr, 10);
      if (i + 1 < argc && std::isdigit(argv[i + 1][0])) {
        gen_seed = std::strtoull(argv[++i], nullptr, 10);
      }
    } else if (arg == "--snapshot-dir") {
      if (const char* v = next()) snapshot_dir = v;
    } else if (arg == "--drain-ms") {
      if (const char* v = next()) options.drain_deadline_ms = std::atoi(v);
    } else if (arg == "--stats-file") {
      if (const char* v = next()) stats_file = v;
    } else if (arg == "--shard") {
      if (const char* v = next()) shard_spec = v;
    } else if (arg == "--shard-endpoints") {
      if (const char* v = next()) shard_endpoints = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  if (!shard_spec.empty()) {
    return RunShardServer(options.host, options.port, shard_spec);
  }

  auto die = [](const Status& s, const char* what) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
      std::exit(1);
    }
  };

  auto db = oodb::Database::Open({});
  die(db.status(), "db open");
  irs::IrsEngine irs_engine;
  coupling::CouplingOptions coupling_options;
  coupling_options.irs_snapshot_dir = snapshot_dir;
  if (const char* env = std::getenv("SDMS_DISABLE_BUFFERING");
      env != nullptr && *env != '\0' && *env != '0') {
    coupling_options.disable_buffering = true;
  }
  coupling::Coupling coupling(db->get(), &irs_engine, coupling_options);
  die(coupling.Initialize(), "coupling init");
  auto dtd = sgml::LoadMmfDtd();
  die(dtd.status(), "dtd");
  die(coupling.RegisterDtdClasses(*dtd), "schema");
  if (demo) die(LoadDemo(coupling), "demo corpus");
  if (gen_docs > 0) die(LoadGenerated(coupling, gen_docs, gen_seed), "corpus");

  if (shard_endpoints.empty()) {
    if (const char* env = std::getenv("SDMS_SHARD_ENDPOINTS");
        env != nullptr && *env != '\0') {
      shard_endpoints = env;
    }
  }
  if (!shard_endpoints.empty()) {
    // "<collection>=<host:port,host:port,...>" — attach remote shard
    // channels. A shard server that is not up yet only warns: it gets
    // caught up by the first search that finds it alive.
    size_t eq = shard_endpoints.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "malformed shard endpoints '%s' (want <coll>=<h:p,...>)\n",
                   shard_endpoints.c_str());
      return 2;
    }
    Status connected = coupling.ConnectRemoteShards(
        shard_endpoints.substr(0, eq), shard_endpoints.substr(eq + 1));
    if (!connected.ok()) {
      std::fprintf(stderr, "remote shards not yet synced: %s\n",
                   connected.ToString().c_str());
    }
  }

  server::Server server(&coupling, options);
  die(server.Start(), "server start");

  // Machine-readable readiness line for scripts/CI (port 0 resolves to
  // the ephemeral port here). stderr carries the human log.
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  // A client that vanishes mid-write must be a Status, not a process
  // kill (send uses MSG_NOSIGNAL, this covers any stray path).
  std::signal(SIGPIPE, SIG_IGN);

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "shutdown signal received, draining...\n");
  size_t cancelled = server.Shutdown();
  std::fprintf(stderr, "drained (%zu query(ies) cancelled)\n", cancelled);

  // Flush durable state: the statistics service (strategy latencies,
  // DF caches) and, when configured, the IRS snapshot. The slow-query
  // log appends at record time and needs no flush.
  if (!stats_file.empty()) {
    Status s = obs::StatisticsService::Instance().SaveToFile(stats_file);
    if (!s.ok()) {
      std::fprintf(stderr, "stats flush failed: %s\n", s.ToString().c_str());
    }
  }
  if (!snapshot_dir.empty()) {
    Status s = coupling.PersistIrs();
    if (!s.ok()) {
      std::fprintf(stderr, "irs persist failed: %s\n", s.ToString().c_str());
    }
  }
  std::fprintf(stderr, "exit 0\n");
  return 0;
}
