#include "server/server.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault/fault.h"
#include "common/net/frame.h"
#include "common/net/socket.h"
#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "server/protocol.h"

namespace sdms::server {

namespace {

struct ServerMetrics {
  obs::Counter& accepted = obs::GetCounter("server.connections_accepted");
  obs::Counter& rejected = obs::GetCounter("server.connections_rejected");
  obs::Counter& accept_faults = obs::GetCounter("server.accept_faults");
  obs::Counter& drains = obs::GetCounter("server.drains");
  obs::Counter& drain_cancelled =
      obs::GetCounter("server.drain_cancelled_queries");
  obs::Gauge& active = obs::GetGauge("server.active_sessions");
};

ServerMetrics& Metrics() {
  static ServerMetrics* m = new ServerMetrics();
  return *m;
}

bool ParseEnvInt(const char* name, int64_t* out) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

ServerOptions ServerOptionsFromEnv() {
  ServerOptions opts;
  if (const char* host = std::getenv("SDMS_HOST");
      host != nullptr && *host != '\0') {
    opts.host = host;
  }
  int64_t v = 0;
  if (ParseEnvInt("SDMS_PORT", &v) && v >= 0 && v <= 65535) {
    opts.port = static_cast<uint16_t>(v);
  }
  if (ParseEnvInt("SDMS_MAX_FRAME_BYTES", &v) && v > 0 &&
      v <= (1ll << 31) - 1) {
    opts.max_frame_bytes = static_cast<uint32_t>(v);
  }
  if (ParseEnvInt("SDMS_IDLE_TIMEOUT_MS", &v) && v > 0) {
    opts.idle_timeout_ms = static_cast<int>(v);
  }
  if (ParseEnvInt("SDMS_IO_TIMEOUT_MS", &v) && v > 0) {
    opts.io_timeout_ms = static_cast<int>(v);
  }
  if (ParseEnvInt("SDMS_DRAIN_DEADLINE_MS", &v) && v >= 0) {
    opts.drain_deadline_ms = static_cast<int>(v);
  }
  if (ParseEnvInt("SDMS_MAX_SESSIONS", &v) && v > 0) {
    opts.max_sessions = static_cast<size_t>(v);
  }
  return opts;
}

Server::Server(coupling::Coupling* coupling, ServerOptions options)
    : coupling_(coupling), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  SDMS_ASSIGN_OR_RETURN(listen_fd_, net::ListenTcp(options_.host,
                                                   options_.port,
                                                   options_.backlog));
  SDMS_ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  SDMS_LOG(INFO) << "server listening on " << options_.host << ":" << port_;
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    StatusOr<int> conn = net::AcceptConn(listen_fd_, /*timeout_ms=*/100);
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) {
        ReapFinishedSessions();
        continue;  // poll tick; re-check stop_accepting_
      }
      if (stop_accepting_.load(std::memory_order_acquire)) break;
      SDMS_LOG(WARN) << "accept failed: " << conn.status().ToString();
      continue;
    }
    // Fault point: drop freshly accepted connections at the door
    // (clients must survive via connect retry with backoff).
    if (!fault::InjectFault("net.accept").ok()) {
      Metrics().accept_faults.Increment();
      net::CloseFd(*conn);
      continue;
    }
    ReapFinishedSessions();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      Metrics().rejected.Increment();
      // Best-effort typed rejection before close, so the client sees
      // RESOURCE_EXHAUSTED instead of a bare reset.
      ErrorResponse err;
      err.code = StatusCode::kResourceExhausted;
      err.message = "session limit reached (" +
                    std::to_string(options_.max_sessions) + ")";
      net::WriteFrame(*conn, net::FrameType::kError,
                      EncodeErrorResponse(err), options_.io_timeout_ms,
                      options_.max_frame_bytes)
          .ok();
      net::CloseFd(*conn);
      continue;
    }
    Metrics().accepted.Increment();
    Session::Host host;
    host.coupling = coupling_;
    host.exec_mu = &exec_mu_;
    host.options = &options_;
    host.draining = &draining_;
    auto session =
        std::make_unique<Session>(*conn, next_session_id_++, host);
    session->Start();
    sessions_.push_back(std::move(session));
    Metrics().active.Set(static_cast<int64_t>(sessions_.size()));
  }
}

void Server::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      (*it)->Join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  Metrics().active.Set(static_cast<int64_t>(sessions_.size()));
}

size_t Server::active_sessions() {
  ReapFinishedSessions();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void Server::BeginDrain() {
  bool was_draining = draining_.exchange(true, std::memory_order_acq_rel);
  stop_accepting_.store(true, std::memory_order_release);
  if (!was_draining) {
    Metrics().drains.Increment();
    SDMS_LOG(INFO) << "drain started: accepting stopped, "
                   << active_sessions() << " session(s) alive";
  }
}

size_t Server::Shutdown() {
  if (shut_down_) return 0;
  shut_down_ = true;
  BeginDrain();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }

  // Phase 1: let in-flight queries finish within the drain deadline.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_deadline_ms);
  for (;;) {
    bool any_busy = false;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const auto& s : sessions_) {
        if (s->busy()) {
          any_busy = true;
          break;
        }
      }
    }
    if (!any_busy || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Phase 2: cancel stragglers — they answer with a typed kCancelled
  // error (cancelled, not crashed), then the sessions are stopped and
  // joined. Cancellation is cooperative, so the join below also waits
  // for the cancel to take effect.
  size_t cancelled = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& s : sessions_) {
      if (s->busy()) {
        ++cancelled;
        s->CancelInFlight();
      }
    }
  }
  if (cancelled > 0) {
    Metrics().drain_cancelled.Add(cancelled);
    SDMS_LOG(INFO) << "drain deadline reached: cancelled " << cancelled
                   << " in-flight query(ies)";
    // Grace for the cancelled workers to emit their error responses
    // before the sockets are shut down under them.
    const auto grace = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(500);
    for (;;) {
      bool any_busy = false;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        for (const auto& s : sessions_) {
          if (s->busy()) {
            any_busy = true;
            break;
          }
        }
      }
      if (!any_busy || std::chrono::steady_clock::now() >= grace) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::list<std::unique_ptr<Session>> doomed;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    doomed.swap(sessions_);
  }
  for (auto& s : doomed) s->RequestStop();
  for (auto& s : doomed) s->Join();
  doomed.clear();
  Metrics().active.Set(0);
  SDMS_LOG(INFO) << "server stopped";
  return cancelled;
}

}  // namespace sdms::server
