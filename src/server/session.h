#ifndef SDMS_SERVER_SESSION_H_
#define SDMS_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "common/net/frame.h"
#include "common/query_context.h"
#include "common/status.h"
#include "coupling/mixed_query.h"
#include "server/protocol.h"
#include "server/server_options.h"

namespace sdms::server {

/// One client connection: a reader thread that enforces the handshake
/// and frame validation, plus at most one executor thread for the
/// in-flight query. The hardening contract:
///
///  - The first frame must be a compatible kHello; anything else is a
///    protocol error (typed kError frame, then close). Malformed,
///    truncated, oversized or unknown frames never crash the session —
///    they are answered with an error frame where the transport still
///    allows it, and the connection is closed.
///  - One query in flight per connection; a second kQuery is refused
///    with kFailedPrecondition (the response still names the offending
///    request id, so a pipelining client can tell which call lost).
///  - The reader keeps reading *while* a query executes, so kCancel
///    and peer disconnect turn into QueryContext cancellation of the
///    running query instead of waiting for it.
///  - Idle connections (no frame within idle_timeout_ms) and slow
///    clients (a write chunk stalled past io_timeout_ms) are dropped.
///  - During drain the session sends kGoodbye once and sheds new
///    queries with kResourceExhausted / ShedCause::kDraining; the
///    in-flight query keeps running until the server's drain deadline
///    cancels it.
class Session {
 public:
  /// Server-owned state shared by every session. `exec_mu` serializes
  /// all QueryEngine access (the engine is externally synchronized);
  /// admission happens *before* the mutex so shedding stays prompt
  /// under overload.
  struct Host {
    coupling::Coupling* coupling = nullptr;
    std::mutex* exec_mu = nullptr;
    const ServerOptions* options = nullptr;
    std::atomic<bool>* draining = nullptr;
  };

  Session(int fd, uint64_t id, Host host);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the reader thread. Call exactly once.
  void Start();

  /// Asks the session to exit: wakes the reader via socket shutdown.
  /// The in-flight query (if any) is cancelled. Idempotent.
  void RequestStop();

  /// Cancels the in-flight query (drain-deadline enforcement); the
  /// executor answers it with a typed kCancelled error, not a crash.
  void CancelInFlight();

  /// True when the reader thread has exited (the session can be
  /// reaped with Join()).
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// True while a query executes on this session.
  bool busy();

  /// Joins reader and executor threads. Call only after Start().
  void Join();

  uint64_t id() const { return id_; }

 private:
  /// One executing query: its context lives here so the reader can
  /// cancel it while the executor thread runs.
  struct InFlight {
    uint64_t request_id = 0;
    QueryContext ctx;
    std::thread worker;
    std::atomic<bool> done{false};
  };

  void ReaderLoop();
  /// Dispatches one validated frame. Returns false when the session
  /// must close (goodbye, protocol violation, transport failure).
  bool HandleFrame(const net::Frame& frame);
  bool HandleQuery(const std::string& payload);
  bool HandleCancel(const std::string& payload);
  /// Executor thread body: admission, evaluation, response.
  void RunQuery(QueryRequest req, InFlight* in_flight);
  /// Joins a finished executor; false while one is still running.
  bool ReapInFlight(bool force_join);

  Status SendFrame(net::FrameType type, std::string_view payload);
  void SendError(uint64_t request_id, const Status& status,
                 coupling::ShedCause shed_cause = coupling::ShedCause::kNone);

  const int fd_;
  const uint64_t id_;
  const Host host_;

  std::thread reader_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  bool said_goodbye_ = false;
  bool handshaken_ = false;

  /// Serializes frame writes: the reader (pong, errors, goodbye) and
  /// the executor (result) share the socket.
  std::mutex write_mu_;

  std::mutex inflight_mu_;
  std::unique_ptr<InFlight> inflight_;
};

}  // namespace sdms::server

#endif  // SDMS_SERVER_SESSION_H_
