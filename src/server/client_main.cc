// sdms_client: one-shot command-line client of sdms_server.
//
//   $ ./sdms_client --port 4646 "ACCESS p FROM p IN PARA"
//
// Exit codes (scripts/CI branch on them):
//   0  success (degraded results included — they are answers)
//   1  transport/internal failure
//   3  shed (RESOURCE_EXHAUSTED)
//   4  deadline exceeded
//   5  cancelled

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/query_context.h"
#include "server/client.h"

using namespace sdms;

namespace {

/// Ctrl-C cancels the in-flight request over the wire (kCancel frame)
/// instead of killing the client.
CancelToken g_sigint_cancel;
void HandleSigint(int) { g_sigint_cancel.Cancel(); }

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options] \"<VQL query>\"\n"
      "  --host <addr>       server address (default 127.0.0.1)\n"
      "  --port <n>          server port (required)\n"
      "  --deadline-ms <n>   per-request deadline\n"
      "  --strategy <s>      independent | irs_first (default independent)\n"
      "  --count <n>         repeat the query n times (default 1)\n"
      "  --profile           request the profile JSON\n"
      "  --ping              health-check instead of a query\n"
      "  --quiet             suppress the row table\n",
      argv0);
}

int ExitCodeFor(const Status& s) {
  switch (s.code()) {
    case StatusCode::kResourceExhausted: return 3;
    case StatusCode::kDeadlineExceeded: return 4;
    case StatusCode::kCancelled: return 5;
    default: return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  server::ClientOptions options;
  server::QueryRequest req;
  std::string vql;
  int count = 1;
  bool ping = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--host") {
      if (const char* v = next()) options.host = v;
    } else if (arg == "--port") {
      if (const char* v = next()) {
        options.port = static_cast<uint16_t>(std::atoi(v));
      }
    } else if (arg == "--deadline-ms") {
      if (const char* v = next()) req.deadline_ms = std::atoll(v);
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "irs_first") == 0) {
        req.strategy = 1;
      } else if (v != nullptr && std::strcmp(v, "independent") == 0) {
        req.strategy = 0;
      } else {
        std::fprintf(stderr, "unknown strategy\n");
        return 2;
      }
    } else if (arg == "--count") {
      if (const char* v = next()) count = std::atoi(v);
    } else if (arg == "--profile") {
      req.want_profile = true;
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    } else {
      vql = arg;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }
  if (!ping && vql.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }

  std::signal(SIGINT, HandleSigint);
  std::signal(SIGPIPE, SIG_IGN);

  server::SdmsClient client(options);
  if (Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return ExitCodeFor(s);
  }
  if (ping) {
    Status s = client.Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", s.ToString().c_str());
      return ExitCodeFor(s);
    }
    std::printf("pong\n");
    return 0;
  }

  req.vql = vql;
  int rc = 0;
  for (int i = 0; i < count; ++i) {
    // Fresh context per request: deadline armed client-side too, and
    // the SIGINT token is observed while waiting for the response.
    QueryContext ctx;
    ctx.set_cancel_token(&g_sigint_cancel);
    if (req.deadline_ms > 0) ctx.SetDeadlineAfterMs(req.deadline_ms);
    QueryContext::Scope scope(&ctx);
    req.request_id = 0;  // reassigned per call
    StatusOr<server::SdmsClient::Response> resp = client.Query(req);
    if (!resp.ok()) {
      std::fprintf(stderr, "error: %s\n", resp.status().ToString().c_str());
      rc = ExitCodeFor(resp.status());
      if (g_sigint_cancel.cancelled()) break;
      continue;
    }
    if (!quiet) {
      std::printf("%s", resp->result.ToTable().c_str());
    }
    std::string degraded_note =
        resp->result.degraded
            ? " DEGRADED(" + resp->result.degraded_reason + ")"
            : "";
    std::printf("rows=%zu strategy=%s%s query_id=%llu wait_us=%lld "
                "total_us=%lld\n",
                resp->result.rows.size(),
                resp->info.strategy == 1 ? "irs_first" : "independent",
                degraded_note.c_str(),
                static_cast<unsigned long long>(resp->info.query_id),
                static_cast<long long>(resp->info.queue_wait_micros),
                static_cast<long long>(resp->info.total_micros));
    // Per-shard outcomes of the run's fan-out searches. Degraded
    // answers stay exit code 0 — the failed shard is named here, not
    // escalated to a failure.
    for (const ShardStatusEntry& e : resp->info.shard_status) {
      if (e.state == ShardState::kOk) continue;
      std::printf("shard %s/%u %s (%lld us)%s%s\n", e.collection.c_str(),
                  e.shard, ShardStateName(e.state),
                  static_cast<long long>(e.micros),
                  e.detail.empty() ? "" : ": ",
                  e.detail.c_str());
    }
    if (req.want_profile && !resp->info.profile_json.empty()) {
      std::printf("profile: %s\n", resp->info.profile_json.c_str());
    }
    if (client.server_draining()) {
      std::fprintf(stderr, "server draining\n");
    }
  }
  return rc;
}
