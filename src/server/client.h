#ifndef SDMS_SERVER_CLIENT_H_
#define SDMS_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/net/frame.h"
#include "common/status.h"
#include "coupling/call_guard.h"
#include "server/protocol.h"

namespace sdms::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2'000;
  /// Per-chunk I/O bound for frame reads/writes.
  int io_timeout_ms = 5'000;
  /// Bound on the wait for a response when the request carries no
  /// deadline (0 = wait until cancelled). Requests with a deadline
  /// wait deadline + 2 * io_timeout_ms for the server's answer.
  int response_timeout_ms = 0;
  uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Retry/backoff policy for connect and request transport failures.
  /// The default seed (0) is entropy-derived, so a fleet of clients
  /// retrying against a recovering server desynchronizes; deadlines
  /// cap the whole retry budget.
  coupling::CallGuardOptions guard;
  std::string peer_label = "sdms_client";
};

/// Synchronous client of the sdms network protocol. Transport
/// failures (connect refused, connection reset, truncated frame) are
/// retried through a CallGuard — jittered exponential backoff, budget
/// capped by the guard's deadline and the calling QueryContext — with
/// a fresh connection per attempt. Retry distinguishes *where* the
/// transport failed: before the request frame went out (connect
/// refused, handshake drop), replaying is always safe; after it went
/// out (mid-stream disconnect), replaying is safe only for idempotent
/// requests — plain queries are read-only, so they re-send, but a
/// request declared non-idempotent surfaces a typed
/// kFailedPrecondition ("result unknown") instead of silently
/// re-sending a request the server may already have executed. Typed
/// server answers (shed, deadline, cancelled, parse errors) are
/// returned as-is, not retried.
///
/// Cancellation: while waiting for a response, the installed
/// QueryContext is polled; on cancellation/deadline a kCancel frame is
/// sent once and the wait continues (briefly) for the server's typed
/// answer, so the shell's Ctrl-C semantics work over the wire.
class SdmsClient {
 public:
  explicit SdmsClient(ClientOptions options);
  ~SdmsClient();

  SdmsClient(const SdmsClient&) = delete;
  SdmsClient& operator=(const SdmsClient&) = delete;

  /// Connects and completes the hello handshake (retried per guard).
  Status Connect();

  /// Closes the connection (Query()/Ping() reconnect on demand).
  void Close();

  bool connected() const { return fd_ >= 0; }

  struct Response {
    oodb::vql::QueryResult result;
    WireRunInfo info;
  };

  /// Runs one query. `req.request_id` is assigned internally when 0.
  /// `idempotent` declares whether the request may be transparently
  /// re-sent after a mid-stream disconnect (default: yes — reads).
  /// Pass false for requests with side effects: a connection that died
  /// *after* the request frame went out then yields a typed
  /// kFailedPrecondition (outcome unknown) instead of a silent replay;
  /// connection-refused and handshake failures still retry either way,
  /// since the server never saw the request.
  StatusOr<Response> Query(QueryRequest req, bool idempotent = true);

  /// Round-trips a kPing.
  Status Ping();

  /// True once the server announced drain (kGoodbye seen). New queries
  /// on this connection will be shed; callers should reconnect
  /// elsewhere or stop.
  bool server_draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  const coupling::CallGuardStats& guard_stats() const {
    return guard_->stats();
  }

 private:
  Status EnsureConnected();
  Status ConnectOnce();
  /// One request/response exchange on the current connection.
  /// `*request_sent` is set once the request frame write was
  /// *attempted* on a live connection — from that point on the server
  /// may have received (and executed) the request even if the write
  /// reported an error, so the conservative mark is before the write,
  /// not after it.
  StatusOr<Response> QueryOnce(const QueryRequest& req, bool* request_sent);
  /// Waits for the response to `request_id`, handling pong/goodbye
  /// frames and QueryContext cancellation along the way.
  StatusOr<net::Frame> AwaitResponse(uint64_t request_id,
                                     int64_t deadline_ms);

  const ClientOptions options_;
  std::unique_ptr<coupling::CallGuard> guard_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::atomic<bool> draining_{false};
};

}  // namespace sdms::server

#endif  // SDMS_SERVER_CLIENT_H_
