#include "server/session.h"

#include <algorithm>
#include <utility>

#include "common/fault/fault.h"
#include "common/net/socket.h"
#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "coupling/admission.h"
#include "coupling/coupling.h"

namespace sdms::server {

namespace {

struct SessionMetrics {
  obs::Counter& queries = obs::GetCounter("server.queries");
  obs::Counter& queries_ok = obs::GetCounter("server.queries_ok");
  obs::Counter& queries_error = obs::GetCounter("server.queries_error");
  obs::Counter& queries_shed = obs::GetCounter("server.queries_shed");
  obs::Counter& queries_cancelled =
      obs::GetCounter("server.queries_cancelled");
  obs::Counter& protocol_errors = obs::GetCounter("server.protocol_errors");
  obs::Counter& idle_drops = obs::GetCounter("server.idle_drops");
  obs::Counter& slow_client_drops =
      obs::GetCounter("server.slow_client_drops");
  obs::Histogram& latency =
      obs::GetHistogram("server.query_micros");
};

SessionMetrics& Metrics() {
  static SessionMetrics* m = new SessionMetrics();
  return *m;
}

/// Reader-loop poll tick: bounds how long stop/drain notices wait.
constexpr int kPollTickMs = 50;

}  // namespace

Session::Session(int fd, uint64_t id, Host host)
    : fd_(fd), id_(id), host_(host) {}

Session::~Session() {
  Join();
  net::CloseFd(fd_);
}

void Session::Start() {
  reader_ = std::thread([this] { ReaderLoop(); });
}

void Session::RequestStop() {
  stop_.store(true, std::memory_order_release);
  CancelInFlight();
  // Wakes a reader blocked in poll; the fd stays open (owned by the
  // destructor) so late writers fail with a Status, not EBADF reuse.
  net::ShutdownFd(fd_);
}

void Session::CancelInFlight() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (inflight_ != nullptr && !inflight_->done.load()) {
    inflight_->ctx.RequestCancel();
  }
}

bool Session::busy() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_ != nullptr && !inflight_->done.load();
}

void Session::Join() {
  if (reader_.joinable()) reader_.join();
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (inflight_ != nullptr && inflight_->worker.joinable()) {
    inflight_->worker.join();
  }
}

bool Session::ReapInFlight(bool force_join) {
  std::unique_ptr<InFlight> reaped;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (inflight_ == nullptr) return true;
    if (!inflight_->done.load(std::memory_order_acquire) && !force_join) {
      return false;
    }
    reaped = std::move(inflight_);
  }
  if (reaped->worker.joinable()) reaped->worker.join();
  return true;
}

Status Session::SendFrame(net::FrameType type, std::string_view payload) {
  std::lock_guard<std::mutex> lock(write_mu_);
  Status s = net::WriteFrame(fd_, type, payload, host_.options->io_timeout_ms,
                             host_.options->max_frame_bytes);
  if (s.IsDeadlineExceeded()) {
    // The slow-client bound fired: this peer cannot keep its write
    // buffer draining, so the session ends rather than queueing
    // unbounded output behind it.
    Metrics().slow_client_drops.Increment();
    stop_.store(true, std::memory_order_release);
  }
  return s;
}

void Session::SendError(uint64_t request_id, const Status& status,
                        coupling::ShedCause shed_cause) {
  ErrorResponse err;
  err.request_id = request_id;
  err.code = status.code();
  err.message = status.message();
  err.shed_cause = shed_cause;
  // Best effort: the peer may already be gone; RequestStop/close
  // handles the rest.
  SendFrame(net::FrameType::kError, EncodeErrorResponse(err)).ok();
}

void Session::ReaderLoop() {
  SDMS_LOG(DEBUG) << "[session " << id_ << "] start";
  int idle_ms = 0;
  bool close_now = false;
  while (!close_now && !stop_.load(std::memory_order_acquire)) {
    // Drain notice: tell the client once that no new requests will be
    // accepted, but keep serving the in-flight one and keep the
    // connection readable (the client may still cancel).
    if (!said_goodbye_ && host_.draining->load(std::memory_order_acquire)) {
      said_goodbye_ = true;
      SendFrame(net::FrameType::kGoodbye, "");
    }
    Status readable = net::WaitReadable(fd_, kPollTickMs);
    if (readable.IsDeadlineExceeded()) {
      idle_ms += kPollTickMs;
      if (idle_ms >= host_.options->idle_timeout_ms && !busy()) {
        Metrics().idle_drops.Increment();
        SendError(0, Status::DeadlineExceeded("idle timeout"));
        break;
      }
      continue;
    }
    if (!readable.ok()) break;
    idle_ms = 0;
    StatusOr<net::Frame> frame =
        net::ReadFrame(fd_, host_.options->io_timeout_ms,
                       host_.options->io_timeout_ms,
                       host_.options->max_frame_bytes);
    if (!frame.ok()) {
      if (net::IsConnClosed(frame.status())) break;  // clean EOF
      // Truncated, oversized, unknown-typed or otherwise garbage
      // input: answer a typed protocol error where possible, then
      // close. Never crash.
      Metrics().protocol_errors.Increment();
      SDMS_LOG(DEBUG) << "[session " << id_
                      << "] protocol error: " << frame.status().ToString();
      if (frame.status().IsInvalidArgument()) {
        SendError(0, frame.status());
      }
      break;
    }
    close_now = !HandleFrame(*frame);
  }
  // The peer is gone (or the session is closing): a still-running
  // query must not keep burning a slot for a client that cannot
  // receive the answer.
  CancelInFlight();
  ReapInFlight(/*force_join=*/true);
  net::ShutdownFd(fd_);
  finished_.store(true, std::memory_order_release);
  SDMS_LOG(DEBUG) << "[session " << id_ << "] end";
}

bool Session::HandleFrame(const net::Frame& frame) {
  if (!handshaken_) {
    if (frame.type != net::FrameType::kHello) {
      Metrics().protocol_errors.Increment();
      SendError(0, Status::FailedPrecondition(
                       "expected hello, got " +
                       std::string(net::FrameTypeName(frame.type))));
      return false;
    }
    StatusOr<Hello> hello = DecodeHello(frame.payload);
    if (!hello.ok()) {
      Metrics().protocol_errors.Increment();
      SendError(0, hello.status());
      return false;
    }
    if (hello->protocol_version != kProtocolVersion) {
      SendError(0, Status::FailedPrecondition(
                       "protocol version mismatch: server speaks " +
                       std::to_string(kProtocolVersion) + ", client sent " +
                       std::to_string(hello->protocol_version)));
      return false;
    }
    handshaken_ = true;
    Hello reply;
    reply.peer = "sdms_server";
    return SendFrame(net::FrameType::kHello, EncodeHello(reply)).ok();
  }
  switch (frame.type) {
    case net::FrameType::kQuery:
      return HandleQuery(frame.payload);
    case net::FrameType::kCancel:
      return HandleCancel(frame.payload);
    case net::FrameType::kPing:
      return SendFrame(net::FrameType::kPong, frame.payload).ok();
    case net::FrameType::kGoodbye:
      return false;  // client-initiated close
    case net::FrameType::kHello:
      Metrics().protocol_errors.Increment();
      SendError(0, Status::FailedPrecondition("duplicate hello"));
      return false;
    default:
      // kResult/kError/kPong are server->client only.
      Metrics().protocol_errors.Increment();
      SendError(0, Status::InvalidArgument(
                       std::string("unexpected frame type ") +
                       net::FrameTypeName(frame.type)));
      return false;
  }
}

bool Session::HandleQuery(const std::string& payload) {
  StatusOr<QueryRequest> req = DecodeQueryRequest(payload);
  if (!req.ok()) {
    Metrics().protocol_errors.Increment();
    SendError(0, req.status());
    return false;
  }
  if (host_.draining->load(std::memory_order_acquire)) {
    Metrics().queries_shed.Increment();
    SendError(req->request_id,
              Status::ResourceExhausted("server draining, no new queries"),
              coupling::ShedCause::kDraining);
    return true;  // the connection stays usable for the in-flight query
  }
  if (!ReapInFlight(/*force_join=*/false)) {
    SendError(req->request_id,
              Status::FailedPrecondition(
                  "a query is already in flight on this connection"));
    return true;
  }
  auto in_flight = std::make_unique<InFlight>();
  InFlight* raw = in_flight.get();
  raw->request_id = req->request_id;
  if (req->deadline_ms > 0) raw->ctx.SetDeadlineAfterMs(req->deadline_ms);
  if (req->max_rows > 0) raw->ctx.set_max_rows(req->max_rows);
  // The byte budget can never exceed what one result frame can carry.
  uint64_t byte_budget = host_.options->max_frame_bytes;
  if (req->max_result_bytes > 0) {
    byte_budget = std::min<uint64_t>(byte_budget, req->max_result_bytes);
  }
  raw->ctx.set_max_result_bytes(byte_budget);
  // The wire form of EXPLAIN ANALYZE: attach a profile up front (the
  // same pattern the shell uses) so the evaluator fills it even when
  // global profiling is off, and ToWire ships it as JSON.
  if (req->want_profile) {
    raw->ctx.set_profile(
        std::make_shared<obs::QueryProfile>(raw->ctx.query_id()));
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_ = std::move(in_flight);
  }
  raw->worker = std::thread(
      [this, raw, request = std::move(*req)]() mutable {
        RunQuery(std::move(request), raw);
      });
  return true;
}

bool Session::HandleCancel(const std::string& payload) {
  StatusOr<CancelRequest> cancel = DecodeCancelRequest(payload);
  if (!cancel.ok()) {
    Metrics().protocol_errors.Increment();
    SendError(0, cancel.status());
    return false;
  }
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (inflight_ != nullptr && !inflight_->done.load() &&
      inflight_->request_id == cancel->request_id) {
    SDMS_LOG(DEBUG) << "[session " << id_ << "] cancel request "
                    << cancel->request_id;
    inflight_->ctx.RequestCancel();
  }
  // Cancelling an unknown/finished request is a no-op, not an error:
  // the cancel raced the response.
  return true;
}

void Session::RunQuery(QueryRequest req, InFlight* in_flight) {
  Metrics().queries.Increment();
  const int64_t start = QueryContext::NowMicros();
  QueryContext::Scope scope(&in_flight->ctx);

  // `done` must be set BEFORE the final frame goes out: the client may
  // send its next query the instant it has the response, and the
  // reader must then see this request as reapable (ReapInFlight joins
  // the worker, so the send still completes before the slot is
  // reused). A sticky guard covers every exit path.
  struct DoneGuard {
    InFlight* in_flight;
    int64_t start;
    void Arm() {
      if (armed) return;
      armed = true;
      Metrics().latency.Record(
          static_cast<double>(QueryContext::NowMicros() - start));
      in_flight->done.store(true, std::memory_order_release);
    }
    ~DoneGuard() { Arm(); }
    bool armed = false;
  } done_guard{in_flight, start};
  auto finish = [&done_guard] { done_guard.Arm(); };

  // Admission runs *before* the exec mutex: under overload the typed
  // shed answer (RESOURCE_EXHAUSTED + cause) must not wait for the
  // queries ahead of it to finish.
  coupling::ShedCause shed_cause = coupling::ShedCause::kNone;
  StatusOr<coupling::AdmissionController::Ticket> ticket =
      host_.coupling->admission().Admit(&in_flight->ctx, &shed_cause);
  Status result_status;
  if (!ticket.ok()) {
    result_status = ticket.status();
    if (result_status.IsResourceExhausted()) {
      Metrics().queries_shed.Increment();
    }
    finish();
    SendError(req.request_id, result_status, shed_cause);
  } else {
    // Fault point for tests/CI: holds the admission slot (latency) or
    // fails the dispatch (io_error) after admission, before execution.
    Status fault = fault::InjectFault("server.dispatch");
    if (!fault.ok()) {
      finish();
      SendError(req.request_id, fault);
    } else {
      coupling::MixedQueryEvaluator eval(host_.coupling);
      StatusOr<oodb::vql::QueryResult> result = [&] {
        // The QueryEngine is externally synchronized; every session
        // funnels execution through the server's exec mutex. The
        // admission ticket (concurrency/queue accounting) is adopted
        // by Run and released when it finishes.
        std::lock_guard<std::mutex> exec_lock(*host_.exec_mu);
        return eval.Run(req.vql,
                        req.strategy == 1
                            ? coupling::MixedQueryEvaluator::Strategy::kIrsFirst
                            : coupling::MixedQueryEvaluator::Strategy::
                                  kIndependent,
                        &*ticket);
      }();
      if (!result.ok()) {
        result_status = result.status();
        if (result_status.IsCancelled()) {
          Metrics().queries_cancelled.Increment();
        } else {
          Metrics().queries_error.Increment();
        }
        finish();
        SendError(req.request_id, result_status);
      } else {
        QueryResponse resp;
        resp.request_id = req.request_id;
        resp.result = std::move(*result);
        resp.info = ToWire(eval.last_run(), req.want_profile);
        std::string payload = EncodeQueryResponse(resp);
        if (payload.size() + 1 > host_.options->max_frame_bytes) {
          Metrics().queries_error.Increment();
          finish();
          SendError(req.request_id,
                    Status::ResourceExhausted(
                        "result (" + std::to_string(payload.size()) +
                        " bytes) exceeds the frame cap; lower max_rows"));
        } else {
          Metrics().queries_ok.Increment();
          finish();
          SendFrame(net::FrameType::kResult, payload);
        }
      }
    }
  }
}

}  // namespace sdms::server
