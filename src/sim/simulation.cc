#include "sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault/fault.h"
#include "common/file_util.h"
#include "common/obs/log.h"
#include "coupling/remote_shard.h"
#include "irs/model/retrieval_model.h"
#include "server/shard_service.h"

namespace sdms::sim {

namespace {

/// Small closed vocabulary so queries actually hit documents and the
/// cancelling update log sees real overwrite patterns.
constexpr const char* kVocab[] = {
    "hypertext", "retrieval", "coupling",  "document",  "structure",
    "query",     "index",     "object",    "database",  "sgml",
    "paragraph", "section",   "relevance", "inference", "network",
    "update",    "snapshot",  "journal",   "recovery",  "propagation",
    "buffer",    "collection","schema",    "vodak",
};
constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

/// Points a simulated process death may be positioned at. Includes the
/// database WAL, the IRS maintenance calls, index persistence, and the
/// atomic-write protocol (death before/after the rename).
constexpr const char* kCrashPoints[] = {
    "wal.append",
    "wal.sync",
    "irs.add",
    "irs.update",
    "irs.remove",
    "irs.batch_add",
    "irs.save",
    "coupling.irs_call",
    "file.atomic_write",
    "file.atomic_write.before_rename",
    "file.atomic_write.after_rename",
};
constexpr size_t kCrashPointCount = sizeof(kCrashPoints) / sizeof(kCrashPoints[0]);

/// Points an IO-error storm may target. Deliberately IRS-side only:
/// a transient database-WAL write error leaves the in-memory store
/// ahead of the log, which is a database-atomicity concern, not an
/// update-propagation one — crash bursts cover the WAL points instead.
constexpr const char* kIoPoints[] = {
    "coupling.irs_call",
    "irs.add",
    "irs.update",
    "irs.remove",
    "irs.batch_add",
    "irs.search",
    "irs.save",
    "irs.exchange.write",
    "irs.exchange.read",
};
constexpr size_t kIoPointCount = sizeof(kIoPoints) / sizeof(kIoPoints[0]);

constexpr char kCollectionName[] = "paras";
constexpr char kSpecQuery[] = "ACCESS p FROM p IN PARA";

Status SimFailure(const std::string& where, const std::string& what) {
  return Status::Internal("sim invariant violated at " + where + ": " + what);
}

}  // namespace

Simulation::Simulation(SimOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  report_.seed = options_.seed;
}

Simulation::~Simulation() {
  // Tear down in dependency order; the coupling unhooks its update
  // listener and checkpoint hook from the database it still points at.
  collection_ = nullptr;
  coupling_.reset();
  db_.reset();
  engine_.reset();
  fault::FaultRegistry::Instance().Clear();
  if (!options_.keep_work_dir && !options_.work_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(options_.work_dir, ec);
  }
}

Status Simulation::Run() {
  Status result = RunImpl();
  report_.clock_micros = clock_.now_micros;
  return result;
}

Status Simulation::RunImpl() {
  if (options_.work_dir.empty()) {
    return Status::InvalidArgument("SimOptions::work_dir is required");
  }
  SDMS_RETURN_IF_ERROR(MakeDirs(options_.work_dir));

  // Schedule-wide configuration drawn once, before any system exists,
  // so it is identical across the restarts within the schedule.
  coupling_options_.journal_path = options_.work_dir + "/journal.wal";
  coupling_options_.irs_snapshot_dir = options_.work_dir + "/irs";
  coupling_options_.exchange_dir = options_.work_dir + "/exchange";
  coupling_options_.file_exchange = rng_.Bernoulli(0.3);
  coupling_options_.serve_stale = true;
  // Determinism: no retries (a retry count depends on how often a
  // probabilistic fault fires) and a breaker that never opens (the
  // open->half-open transition reads the wall clock).
  coupling_options_.call_guard.retry.max_attempts = 1;
  coupling_options_.call_guard.retry.deadline_micros = 0;
  coupling_options_.call_guard.breaker.failure_threshold = 1 << 20;
  policy_ = rng_.Bernoulli(0.5) ? coupling::PropagationPolicy::kOnQuery
                                : coupling::PropagationPolicy::kManual;
  // Seeded shard count 1..4: schedules exercise the unsharded layout
  // and real fan-outs alike; the snapshot's layout survives restarts.
  num_shards_ = 1 + static_cast<uint32_t>(rng_.Uniform(4));
  report_.num_shards = num_shards_;
  // Remote mode serves every shard of a multi-shard schedule from its
  // own in-process ShardServer; a 1-shard schedule stays local (there
  // is no fan-out to distribute).
  remote_shards_ = options_.enable_remote_shards && num_shards_ > 1;
  report_.remote_shards = remote_shards_;
  SDMS_RETURN_IF_ERROR(MakeDirs(coupling_options_.exchange_dir));

  SDMS_RETURN_IF_ERROR(Boot(/*fresh=*/true));

  for (size_t step = 0; step < options_.steps; ++step) {
    uint32_t roll = static_cast<uint32_t>(rng_.Uniform(100));
    if (roll >= 90 && options_.enable_faults) {
      if (roll < 93) {
        SDMS_RETURN_IF_ERROR(DoIoBurst());
      } else if (roll < 96) {
        SDMS_RETURN_IF_ERROR(DoShardBurst());
      } else {
        SDMS_RETURN_IF_ERROR(DoCrashBurst());
      }
    } else {
      SDMS_RETURN_IF_ERROR(DoWorkAction(roll % 90));
    }
    clock_.Advance(100 + rng_.Uniform(900));
    ++report_.steps_executed;
  }

  // Final convergence: a full fault-free propagate must land the index
  // bit-identical to the oracle.
  SDMS_RETURN_IF_ERROR(CheckInvariants("end-of-schedule"));
  auto coll = engine_->GetCollection(kCollectionName);
  if (coll.ok()) report_.final_digest = (*coll)->CanonicalDigest();
  HarvestRemoteStats();
  return Status::OK();
}

Status Simulation::Boot(bool fresh) {
  engine_ = std::make_unique<irs::IrsEngine>();
  if (!fresh) {
    SDMS_RETURN_IF_ERROR(engine_->LoadFrom(coupling_options_.irs_snapshot_dir));
  }
  oodb::Database::Options db_options;
  db_options.data_dir = options_.work_dir + "/db";
  db_options.sync_commits = true;
  SDMS_ASSIGN_OR_RETURN(db_, oodb::Database::Open(db_options));
  coupling_ = std::make_unique<coupling::Coupling>(db_.get(), engine_.get(),
                                                   coupling_options_);
  SDMS_RETURN_IF_ERROR(coupling_->Initialize());
  SDMS_RETURN_IF_ERROR(DefineParaClass());

  if (fresh) {
    SDMS_ASSIGN_OR_RETURN(
        collection_, coupling_->CreateCollection(kCollectionName, "inquery"));
    SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * irs_coll,
                          engine_->GetCollection(kCollectionName));
    SDMS_RETURN_IF_ERROR(irs_coll->SetNumShards(num_shards_));
    for (size_t i = 0; i < options_.initial_objects; ++i) {
      SDMS_RETURN_IF_ERROR(DoInsert());
    }
    SDMS_RETURN_IF_ERROR(
        collection_->IndexObjects(kSpecQuery, coupling::kTextModeSubtree));
    // Persisted baseline: every schedule starts from a durable index
    // snapshot plus a checkpointed database, so recovery always has a
    // snapshot pair to load.
    SDMS_RETURN_IF_ERROR(coupling_->PersistIrs());
    SDMS_RETURN_IF_ERROR(db_->Checkpoint());
  } else {
    SDMS_RETURN_IF_ERROR(coupling_->RestoreCollections().status());
    SDMS_RETURN_IF_ERROR(coupling_->RecoverPropagation());
    SDMS_ASSIGN_OR_RETURN(collection_,
                          coupling_->GetCollectionByName(kCollectionName));
  }
  collection_->set_propagation_policy(policy_);
  if (remote_shards_) {
    SDMS_RETURN_IF_ERROR(AttachRemoteShards());
  }
  return Status::OK();
}

Status Simulation::AttachRemoteShards() {
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        engine_->GetCollection(kCollectionName));
  for (uint32_t s = 0; s < coll->num_shards(); ++s) {
    if (shard_servers_.size() <= s) {
      // First boot: spawn the serving "process" for this shard. It
      // deliberately outlives router restarts — a simulated router
      // crash kills the channels, not the servers, so every recovery
      // exercises the applied-seq catch-up handshake.
      server::ShardServerOptions so;
      so.port = 0;  // ephemeral loopback port
      so.io_timeout_ms = 2000;
      auto srv = std::make_unique<server::ShardServer>(so);
      SDMS_RETURN_IF_ERROR(srv->Start());
      shard_servers_.push_back(std::move(srv));
    }
    coupling::RemoteShardOptions ro;
    ro.port = shard_servers_[s]->port();
    ro.collection = kCollectionName;
    ro.shard = s;
    ro.num_shards = static_cast<uint32_t>(coll->num_shards());
    ro.model_name = coll->model().name();
    ro.analyzer = coll->analyzer().options();
    ro.connect_timeout_ms = 1000;
    ro.io_timeout_ms = 2000;
    ro.search_deadline_ms = 2000;
    // Tight, seeded backoff: bursts clear within the settle loop's
    // budget, and the jitter draw is a pure function of the schedule.
    ro.backoff_min_ms = 1;
    ro.backoff_max_ms = 10;
    ro.jitter_seed = options_.seed * 1000003ull + s + 1;
    Status attached = collection_->AttachRemoteShard(
        s, std::make_shared<coupling::RemoteShardChannel>(ro));
    if (!attached.ok()) {
      // Attach runs fault-free (fresh boot or post-crash recovery), so
      // a failed initial sync is an invariant violation, not weather.
      return SimFailure("attach remote shard " + std::to_string(s),
                        attached.ToString());
    }
  }
  return Status::OK();
}

void Simulation::HarvestRemoteStats() {
  if (!remote_shards_ || collection_ == nullptr) return;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    coupling::RemoteShardChannel* ch = collection_->remote_shard_channel(s);
    if (ch == nullptr) continue;
    coupling::RemoteShardChannelStats stats = ch->stats();
    report_.remote_catchup_installs += stats.catchup_installs;
    report_.remote_catchup_replays += stats.catchup_replays;
  }
}

Status Simulation::SettleRemoteShards(const std::string& where) {
  // Reconnect backoff is bounded at 10ms (AttachRemoteShards), so a
  // cleared burst heals within a few probe rounds; 400 x 5ms is a
  // generous ceiling before calling it an invariant violation.
  Status last = Status::OK();
  for (int attempt = 0; attempt < 400; ++attempt) {
    collection_->buffer().Clear();
    bool stale = false;
    auto result = collection_->GetIrsResult(kVocab[0], &stale);
    if (result.ok() && !stale) {
      bool all_ok = true;
      for (const ShardStatusEntry& e : collection_->last_shard_report()) {
        if (e.state != ShardState::kOk) {
          all_ok = false;
          last = Status::IoError("shard " + std::to_string(e.shard) +
                                 " still " +
                                 std::string(ShardStateName(e.state)) + ": " +
                                 e.detail);
        }
      }
      if (all_ok) return Status::OK();
    } else if (!result.ok()) {
      last = result.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return SimFailure(where, "remote shards failed to heal after the fault "
                           "was cleared: " + last.ToString());
}

Status Simulation::DefineParaClass() {
  if (db_->schema().HasClass("PARA")) return Status::OK();
  oodb::ClassDef def;
  def.name = "PARA";
  def.super = "IRSObject";
  return db_->schema().DefineClass(std::move(def));
}

Status Simulation::Restart() {
  // Recovery itself runs fault-free: the simulated process is dead,
  // and the next incarnation starts with a clean fault registry.
  fault::FaultRegistry::Instance().Clear();
  faults_armed_ = false;
  // Channels die with the router incarnation (the servers live on);
  // bank their catch-up counters before the teardown loses them.
  HarvestRemoteStats();
  collection_ = nullptr;
  coupling_.reset();
  db_.reset();
  engine_.reset();
  ++report_.crash_restarts;
  Trace("X");
  return Boot(/*fresh=*/false);
}

Status Simulation::DoWorkAction(uint32_t roll) {
  if (roll < 22) return DoInsert();
  if (roll < 42) return DoModify();
  if (roll < 52) return DoDelete();
  if (roll < 70) return DoQuery();
  if (roll < 80) return DoPropagate();
  if (roll < 86) return DoPersist();
  return DoCheckpoint();
}

Status Simulation::DoInsert() {
  oodb::TxnId txn = db_->Begin();
  auto oid = db_->CreateObject("PARA", txn);
  Status status = oid.status();
  if (status.ok()) status = db_->SetAttribute(*oid, "GI", "PARA", txn);
  if (status.ok()) {
    std::string text = RandomText();
    SDMS_LOG(DEBUG) << "workload insert " << oid->ToString() << " text '"
                    << text << "'";
    status = db_->SetAttribute(*oid, "TEXT", text, txn);
  }
  if (status.ok()) status = db_->Commit(txn);
  if (!status.ok()) {
    // A failed commit (e.g. a WAL fault) leaves the transaction open
    // with its in-memory effects applied; roll them back so memory
    // stays consistent with the log.
    (void)db_->Abort(txn);
    Trace("i");
    return Status::OK();
  }
  ++report_.inserts;
  Trace("I" + std::to_string(oid->raw()));
  return Status::OK();
}

Status Simulation::DoModify() {
  Oid target = PickLiveOid();
  if (!target.valid()) return DoInsert();
  std::string text = RandomText();
  SDMS_LOG(DEBUG) << "workload modify " << target.ToString() << " text '"
                  << text << "'";
  Status status = db_->SetAttribute(target, "TEXT", text);
  if (!status.ok()) {
    Trace("m");
    return Status::OK();
  }
  ++report_.modifies;
  Trace("M" + std::to_string(target.raw()));
  return Status::OK();
}

Status Simulation::DoDelete() {
  Oid target = PickLiveOid();
  if (!target.valid()) return Status::OK();
  Status status = db_->DeleteObject(target);
  if (!status.ok()) {
    Trace("d");
    return Status::OK();
  }
  ++report_.deletes;
  Trace("D" + std::to_string(target.raw()));
  return Status::OK();
}

Status Simulation::DoQuery() {
  std::string term = kVocab[rng_.Uniform(kVocabSize)];
  bool stale = false;
  // Distinguish a fresh fan-out from a buffer hit: only a fresh one
  // refreshed last_shard_report(), so only then is it inspectable.
  uint64_t searches_before = collection_->stats().irs_queries;
  auto result = collection_->GetIrsResult(term, &stale);
  bool fresh_search = collection_->stats().irs_queries > searches_before;
  ++report_.queries;
  if (!result.ok()) {
    if (!faults_armed_) {
      return SimFailure("query", "IRS query failed outside a fault burst: " +
                                     result.status().ToString());
    }
    Trace("q");
    return Status::OK();
  }
  if (stale) {
    // The paper's degraded mode: buffered (possibly stale) results are
    // legal only while the IRS is actually unreachable.
    if (!faults_armed_) {
      return SimFailure("query", "stale result served with no fault armed");
    }
    ++report_.stale_serves;
    Trace("S");
    return Status::OK();
  }
  if (fresh_search && !faults_armed_) {
    // Fan-out invariant, healthy half: with no fault armed, a fresh
    // answer must be complete — no shard may report a non-ok state.
    for (const ShardStatusEntry& e : collection_->last_shard_report()) {
      if (e.state != ShardState::kOk) {
        return SimFailure(
            "query", "shard " + std::to_string(e.shard) + " reported " +
                         std::string(ShardStateName(e.state)) +
                         " with no fault armed: " + e.detail);
      }
    }
  }
  Trace("Q");
  return Status::OK();
}

Status Simulation::DoPropagate() {
  Status status = collection_->PropagateUpdates();
  ++report_.propagates;
  if (!status.ok() && !faults_armed_) {
    return SimFailure("propagate",
                      "propagation failed outside a fault burst: " +
                          status.ToString());
  }
  Trace(status.ok() ? "P" : "p");
  return Status::OK();
}

Status Simulation::DoPersist() {
  Status status = coupling_->PersistIrs();
  ++report_.persists;
  if (!status.ok() && !faults_armed_) {
    return SimFailure("persist", "PersistIrs failed outside a fault burst: " +
                                     status.ToString());
  }
  Trace(status.ok() ? "F" : "f");
  return Status::OK();
}

Status Simulation::DoCheckpoint() {
  Status status = db_->Checkpoint();
  ++report_.checkpoints;
  if (!status.ok() && !faults_armed_) {
    return SimFailure("checkpoint",
                      "checkpoint failed outside a fault burst: " +
                          status.ToString());
  }
  Trace(status.ok() ? "C" : "c");
  return Status::OK();
}

Status Simulation::DoIoBurst() {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  const char* point = kIoPoints[rng_.Uniform(kIoPointCount)];
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kIoError;
  rule.probability = 0.6;
  rule.max_fires = 1 + rng_.Uniform(3);
  rule.skip = rng_.Uniform(2);
  registry.SetSeed(rng_.Next());
  registry.Arm(point, rule);
  faults_armed_ = true;
  ++report_.io_bursts;
  Trace("B(" + std::string(point) + ")");

  size_t actions = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < actions; ++i) {
    SDMS_RETURN_IF_ERROR(DoWorkAction(static_cast<uint32_t>(rng_.Uniform(90))));
  }
  report_.faults_fired += registry.fires(point);
  registry.Clear();
  faults_armed_ = false;
  // Transient unavailability over: requeued work must drain and the
  // index must converge without a restart (and without Repair).
  return CheckInvariants("after io burst @" + std::string(point));
}

Status Simulation::DoCrashBurst() {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  const char* point = kCrashPoints[rng_.Uniform(kCrashPointCount)];
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kCrash;
  rule.probability = 1.0;
  rule.max_fires = 1;
  rule.skip = rng_.Uniform(3);
  registry.SetSeed(rng_.Next());
  registry.Arm(point, rule);
  faults_armed_ = true;
  Trace("B(" + std::string(point) + "!)");

  // The process is notionally dead the instant the crash fault fires;
  // stop the workload there. Actions the fault never reached run
  // normally (the armed point may simply not be on their path).
  size_t actions = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < actions && registry.fires(point) == 0; ++i) {
    SDMS_RETURN_IF_ERROR(DoWorkAction(static_cast<uint32_t>(rng_.Uniform(90))));
  }
  report_.faults_fired += registry.fires(point);

  // Hard restart either way: a fired fault makes this a mid-operation
  // crash, an unfired one a plain stop-and-recover.
  SDMS_RETURN_IF_ERROR(Restart());
  SDMS_RETURN_IF_ERROR(
      CheckInvariants("after crash @" + std::string(point)));
  Trace("R");
  return Status::OK();
}

Status Simulation::DoShardBurst() {
  auto coll_or = engine_->GetCollection(kCollectionName);
  if (!coll_or.ok()) return coll_or.status();
  const uint32_t shard_count = static_cast<uint32_t>((*coll_or)->num_shards());
  const uint32_t target = static_cast<uint32_t>(rng_.Uniform(shard_count));
  // Kill (IO error) or stall (latency) exactly this shard's search
  // path. A stalled shard still answers, so its burst exercises the
  // complete-but-slow side of the invariant. In remote mode the burst
  // lands on the network instead: a seeded draw over the four fault
  // classes of the shard's transport (connect only bites on a closed
  // connection, but a prior read/partition fire closes it, and the
  // reconnect then pays the connect gauntlet too).
  const bool stall = rng_.Bernoulli(0.34);
  const char* point;
  if (remote_shards_) {
    if (stall) {
      point = coupling::ShardNetStallFaultPoint(target);
    } else {
      switch (rng_.Uniform(3)) {
        case 0: point = coupling::ShardNetConnectFaultPoint(target); break;
        case 1: point = coupling::ShardNetReadFaultPoint(target); break;
        default: point = coupling::ShardNetPartitionFaultPoint(target); break;
      }
    }
  } else {
    point = irs::ShardSearchFaultPoint(target);
  }
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  fault::FaultRule rule;
  rule.kind = stall ? fault::FaultKind::kLatency : fault::FaultKind::kIoError;
  rule.latency_micros = 200 + rng_.Uniform(800);
  rule.probability = 1.0;
  rule.max_fires = 1 + rng_.Uniform(3);
  registry.SetSeed(rng_.Next());
  registry.Arm(point, rule);
  faults_armed_ = true;
  ++report_.shard_bursts;
  Trace("B(" + std::string(point) + (stall ? "~)" : ")"));

  // Fan-out invariant, faulted half: while exactly one shard is down,
  // every fresh merged answer is either complete (no shard reported
  // failed — the fault budget ran out or the hedge re-issue landed) or
  // explicitly degraded with the failed shard named — and the named
  // shard must be the armed one. A healthy shard reported failed is an
  // invariant violation, not bad luck.
  size_t queries = 1 + rng_.Uniform(3);
  for (size_t i = 0; i < queries; ++i) {
    std::string term = kVocab[rng_.Uniform(kVocabSize)];
    bool stale = false;
    uint64_t searches_before = collection_->stats().irs_queries;
    auto result = collection_->GetIrsResult(term, &stale);
    bool fresh_search = collection_->stats().irs_queries > searches_before;
    ++report_.queries;
    if (!result.ok()) {
      // All shards failed (a 1-shard collection under a kill burst)
      // with nothing buffered: a clean error is the legal outcome.
      Trace("q");
      continue;
    }
    if (stale) {
      ++report_.stale_serves;
      Trace("S");
      continue;
    }
    if (!fresh_search) {
      Trace("Q");  // buffer hit: a complete earlier answer
      continue;
    }
    bool any_failed = false;
    for (const ShardStatusEntry& e : collection_->last_shard_report()) {
      if (e.state != ShardState::kFailed && e.state != ShardState::kSkipped) {
        continue;
      }
      any_failed = true;
      if (e.shard != target) {
        return SimFailure(
            "shard burst @" + std::string(point),
            "healthy shard " + std::to_string(e.shard) + " reported " +
                std::string(ShardStateName(e.state)) + " while only shard " +
                std::to_string(target) + " was faulted: " + e.detail);
      }
    }
    if (any_failed) {
      ++report_.shard_degraded;
      Trace("G");
    } else {
      Trace("Q");
    }
  }
  report_.faults_fired += registry.fires(point);
  registry.Clear();
  faults_armed_ = false;
  // The shard is back: the next fresh fan-out must be complete again
  // and the index bit-identical to the oracle (searches never touch
  // the index, so this doubles as a no-corruption check). In remote
  // mode "back" also means reconnected — give the channel its backoff
  // window before demanding complete answers.
  if (remote_shards_) {
    SDMS_RETURN_IF_ERROR(
        SettleRemoteShards("after shard burst @" + std::string(point)));
  }
  return CheckInvariants("after shard burst @" + std::string(point));
}

Status Simulation::CheckInvariants(const std::string& where) {
  // 1. Fault-free propagation must succeed and drain everything.
  Status propagated = collection_->PropagateUpdates();
  if (!propagated.ok()) {
    return SimFailure(where, "PropagateUpdates: " + propagated.ToString());
  }
  if (collection_->pending_updates() != 0) {
    return SimFailure(where, "update log not drained after propagation");
  }

  // 2. Exactly-once: spec membership matches the index WITHOUT Repair.
  auto consistency = collection_->VerifyConsistency();
  if (!consistency.ok()) {
    return SimFailure(where,
                      "VerifyConsistency: " + consistency.status().ToString());
  }
  if (!consistency->consistent()) {
    std::string detail = "inconsistent:";
    for (Oid oid : consistency->missing_in_irs) {
      detail += " missing " + oid.ToString();
    }
    for (Oid oid : consistency->orphaned_in_irs) {
      detail += " orphaned " + oid.ToString();
    }
    return SimFailure(where, detail);
  }

  // 3. Bit-identical convergence against the fault-free oracle.
  SDMS_ASSIGN_OR_RETURN(std::string oracle, OracleDigest());
  auto coll = engine_->GetCollection(kCollectionName);
  if (!coll.ok()) {
    return SimFailure(where, "IRS collection vanished: " +
                                 coll.status().ToString());
  }
  std::string actual = (*coll)->CanonicalDigest();
  if (actual != oracle) {
    return SimFailure(where, "index digest " + actual +
                                 " != oracle digest " + oracle +
                                 IndexDiff(**coll));
  }

  // 4. Structural invariants of every shard plus key-routing.
  std::string broken = (*coll)->CheckInvariants();
  if (!broken.empty()) {
    return SimFailure(where, "index invariants: " + broken);
  }

  // 5. No stray files: recovery swept crash leftovers, and successful
  // exchange queries removed their result files.
  auto stray_tmp = RemoveMatchingFiles(coupling_options_.irs_snapshot_dir, "",
                                       ".tmp");
  if (stray_tmp.ok() && *stray_tmp != 0) {
    return SimFailure(where, std::to_string(*stray_tmp) +
                                 " stray .tmp file(s) in the IRS snapshot dir");
  }
  auto stray_exchange =
      RemoveMatchingFiles(coupling_options_.exchange_dir, "irs_result_", "");
  if (stray_exchange.ok() && *stray_exchange != 0) {
    return SimFailure(where, std::to_string(*stray_exchange) +
                                 " stray exchange file(s)");
  }
  return Status::OK();
}

std::string Simulation::IndexDiff(const irs::IrsCollection& coll) {
  // Post-mortem detail for a digest mismatch: per-document term/tf
  // maps of the surviving collection (all shards merged — keys are
  // disjoint across shards) vs a freshly built oracle, printed only
  // for documents whose contents differ.
  auto term_map = [](const irs::IrsCollection& c) {
    std::map<std::string, std::map<std::string, uint32_t>> by_key;
    for (size_t s = 0; s < c.num_shards(); ++s) {
      const irs::InvertedIndex& idx = c.shard(s);
      idx.ForEachDoc(
          [&](irs::DocId, const irs::DocInfo& info) { by_key[info.key]; });
      idx.ForEachTerm([&](const std::string& term,
                          const irs::BlockPostingsList& list) {
        auto postings = list.DecodeAll();
        if (!postings.ok()) return;  // best-effort post-mortem detail
        for (const irs::Posting& p : *postings) {
          if (!idx.IsAlive(p.doc)) continue;
          auto doc = idx.GetDoc(p.doc);
          if (doc.ok()) by_key[(*doc)->key][term] = p.tf;
        }
      });
    }
    return by_key;
  };
  auto model = irs::MakeModel("inquery");
  if (!model.ok()) return "";
  irs::IrsCollection oracle("oracle-diff", irs::AnalyzerOptions{},
                            std::move(*model));
  std::vector<Oid> members = db_->Extent("PARA");
  std::sort(members.begin(), members.end());
  for (Oid oid : members) {
    auto text = coupling_->GetText(oid, coupling::kTextModeSubtree);
    if (!text.ok()) return "";
    if (!oracle.AddDocument(oid.ToString(), *text).ok()) return "";
  }
  auto lhs = term_map(coll);
  auto rhs = term_map(oracle);
  std::string out;
  auto describe = [](const std::map<std::string, uint32_t>& terms) {
    std::string s = "{";
    for (const auto& [term, tf] : terms) {
      if (s.size() > 1) s += ' ';
      s += term + ":" + std::to_string(tf);
    }
    return s + "}";
  };
  for (const auto& [key, terms] : lhs) {
    auto it = rhs.find(key);
    if (it == rhs.end()) {
      out += "; doc " + key + " only in index " + describe(terms);
    } else if (it->second != terms) {
      out += "; doc " + key + " index=" + describe(terms) +
             " oracle=" + describe(it->second);
    }
  }
  for (const auto& [key, terms] : rhs) {
    if (lhs.count(key) == 0) {
      out += "; doc " + key + " only in oracle " + describe(terms);
    }
  }
  return out;
}

StatusOr<std::string> Simulation::OracleDigest() {
  // The oracle is what a sequential, fault-free indexer would build
  // from the current database ground truth: one document per live
  // spec-query member, keyed and analyzed exactly like the real
  // collection. DocId assignment and tombstone history differ wildly
  // from the survivor's — CanonicalDigest is independent of both.
  SDMS_ASSIGN_OR_RETURN(auto model, irs::MakeModel("inquery"));
  irs::IrsCollection oracle("oracle", irs::AnalyzerOptions{},
                            std::move(model));
  std::vector<Oid> members = db_->Extent("PARA");
  std::sort(members.begin(), members.end());
  for (Oid oid : members) {
    SDMS_ASSIGN_OR_RETURN(std::string text,
                          coupling_->GetText(oid, coupling::kTextModeSubtree));
    SDMS_RETURN_IF_ERROR(oracle.AddDocument(oid.ToString(), text));
  }
  return oracle.CanonicalDigest();
}

std::string Simulation::RandomText() {
  size_t words = 3 + rng_.Uniform(6);
  std::string text;
  for (size_t i = 0; i < words; ++i) {
    if (!text.empty()) text += ' ';
    text += kVocab[rng_.Uniform(kVocabSize)];
  }
  return text;
}

Oid Simulation::PickLiveOid() {
  std::vector<Oid> members = db_->Extent("PARA");
  if (members.empty()) return Oid();
  std::sort(members.begin(), members.end());
  return members[rng_.Uniform(members.size())];
}

void Simulation::Trace(const std::string& token) {
  if (!report_.trace.empty()) report_.trace += ' ';
  report_.trace += token;
}

StatusOr<SimReport> RunSchedule(const SimOptions& options) {
  Simulation sim(options);
  Status status = sim.Run();
  if (!status.ok()) {
    SDMS_LOG(ERROR) << "schedule seed=" << options.seed
                    << " failed: " << status.ToString()
                    << " trace: " << sim.report().trace;
    return status;
  }
  return sim.report();
}

}  // namespace sdms::sim
