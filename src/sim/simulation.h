#ifndef SDMS_SIM_SIMULATION_H_
#define SDMS_SIM_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <string>

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "coupling/coupling.h"
#include "irs/engine.h"
#include "oodb/database.h"

namespace sdms::server {
class ShardServer;
}  // namespace sdms::server

namespace sdms::sim {

/// Deterministic virtual time: the simulation never reads the wall
/// clock; every action advances this counter by a seeded amount, so a
/// schedule's timeline is a pure function of its seed.
struct VirtualClock {
  uint64_t now_micros = 0;
  void Advance(uint64_t micros) { now_micros += micros; }
};

/// Configuration of one simulated schedule.
struct SimOptions {
  /// Seed of the whole schedule: workload, fault positions, and fault
  /// draws all derive from it. Same seed + same options = same trace.
  uint64_t seed = 1;
  /// Scratch directory for this schedule (database, WAL, propagation
  /// journal, IRS snapshots, exchange files). Created on Run(),
  /// removed afterwards unless `keep_work_dir` is set.
  std::string work_dir;
  /// Workload actions per schedule (bursts count as one action).
  size_t steps = 48;
  /// Objects inserted before the first persisted baseline.
  size_t initial_objects = 6;
  /// Arms fault bursts (IO-error storms and crash-restarts). Off =
  /// fault-free baseline schedule.
  bool enable_faults = true;
  /// Serves every shard of a multi-shard schedule from its own
  /// in-process ShardServer over a loopback RemoteShardChannel, with
  /// shard bursts armed at the network fault points instead of the
  /// in-process search points. Opt-in: the remote transport reads the
  /// wall clock (deadlines, reconnect backoff), so while every
  /// invariant still holds, the action trace of two runs of the same
  /// seed is no longer guaranteed to be identical.
  bool enable_remote_shards = false;
  /// Leaves the scratch directory behind for post-mortem debugging.
  bool keep_work_dir = false;
};

/// Outcome and counters of one schedule.
struct SimReport {
  uint64_t seed = 0;
  size_t steps_executed = 0;
  size_t inserts = 0;
  size_t modifies = 0;
  size_t deletes = 0;
  size_t queries = 0;
  size_t propagates = 0;
  size_t persists = 0;
  size_t checkpoints = 0;
  size_t io_bursts = 0;
  /// Bursts that killed or stalled exactly one shard's search path.
  size_t shard_bursts = 0;
  /// Fresh fan-out answers during a shard burst that were explicitly
  /// degraded (the armed shard reported failed/skipped).
  size_t shard_degraded = 0;
  /// Seeded shard count of the schedule's collection (1..4).
  uint32_t num_shards = 1;
  /// True when the schedule served its shards from in-process
  /// ShardServers over loopback channels (enable_remote_shards and
  /// num_shards > 1).
  bool remote_shards = false;
  /// Remote catch-ups observed across every router incarnation: full
  /// shard installs and retained-op replays (crash recoveries and
  /// failed tees both land here).
  size_t remote_catchup_installs = 0;
  size_t remote_catchup_replays = 0;
  size_t crash_restarts = 0;
  /// Fault firings observed across all bursts.
  size_t faults_fired = 0;
  /// Queries answered from the persistent buffer while the IRS was
  /// unreachable (must be 0 outside fault bursts — checked).
  size_t stale_serves = 0;
  uint64_t clock_micros = 0;
  /// Canonical digest of the surviving index after the final
  /// convergence check (equals the fault-free oracle's digest).
  std::string final_digest;
  /// Compact deterministic action trace ("I12 M12 Q B(wal.sync) X R
  /// ..."): two runs of the same seed must produce identical traces.
  std::string trace;
};

/// One deterministic schedule against a real coupled system on disk:
/// seeded workload (insert / modify / delete / query / propagate /
/// persist / checkpoint) interleaved with fault bursts injected
/// through the src/common/fault/ points, including simulated process
/// death (kCrash) followed by a full restart and crash recovery.
///
/// After every recovery — and once more at the end — the invariants of
/// the exactly-once protocol are checked:
///   1. PropagateUpdates succeeds (fault-free drain of requeued work);
///   2. VerifyConsistency passes WITHOUT Repair — no lost updates, no
///      orphans, spec-query membership matches the index;
///   3. the index digest is bit-identical to an oracle index built
///      sequentially from the recovered database with no faults;
///   4. InvertedIndex::CheckInvariants reports nothing;
///   5. no stray temp/exchange files survive the recovery sweep;
/// plus, during the live workload: a query result is flagged stale
/// only while a fault burst has the IRS unreachable, and — the fan-out
/// invariant — every fresh merged search answer is either complete
/// (no shard reported failed) or explicitly degraded with the failed
/// shard named in the per-shard report; a shard that was not faulted
/// must never be the one reported failed.
class Simulation {
 public:
  explicit Simulation(SimOptions options);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs the schedule. OK iff every invariant held at every recovery
  /// point; the first violation is returned as an error naming the
  /// failing invariant and the trace position.
  Status Run();

  const SimReport& report() const { return report_; }

 private:
  Status RunImpl();
  /// Builds (fresh) or recovers (restart) the full coupled system.
  Status Boot(bool fresh);
  /// Tears the system down and recovers it from disk, as after a
  /// process crash. Fault registry is cleared first: recovery itself
  /// runs fault-free.
  Status Restart();
  Status DefineParaClass();

  /// One workload action, `roll` in [0, 100).
  Status DoWorkAction(uint32_t roll);
  Status DoInsert();
  Status DoModify();
  Status DoDelete();
  Status DoQuery();
  Status DoPropagate();
  Status DoPersist();
  Status DoCheckpoint();
  /// Transient IRS unavailability: arms kIoError at an IRS-side fault
  /// point, runs a few actions against it, disarms, then checks
  /// convergence in place (no restart).
  Status DoIoBurst();
  /// Simulated process death: arms kCrash at a seeded fault point,
  /// runs actions until it fires (or the burst ends), then restarts
  /// and checks all recovery invariants.
  Status DoCrashBurst();
  /// Kills (kIoError) or stalls (kLatency) exactly one shard's search
  /// path — in-process ("irs.search.shard<i>") or, in remote mode,
  /// one of the network fault classes ("net.shard<i>.connect/read/
  /// stall/partition") — and runs queries against the surviving
  /// fan-out, checking the fan-out invariant on every fresh answer
  /// (class comment above).
  Status DoShardBurst();

  /// Starts one in-process ShardServer per shard (first boot only —
  /// the "processes" survive simulated router crashes) and attaches a
  /// loopback RemoteShardChannel for each, syncing them from the
  /// local index (full install on first contact, applied-seq catch-up
  /// after a restart).
  Status AttachRemoteShards();
  /// Bounded wait after a cleared network burst: fresh fan-outs must
  /// return to fully-complete answers once reconnect backoff expires.
  Status SettleRemoteShards(const std::string& where);
  /// Accumulates the current channels' catch-up counters into the
  /// report (channels die with each router incarnation).
  void HarvestRemoteStats();

  /// The post-recovery / final invariant suite (class comment above).
  Status CheckInvariants(const std::string& where);
  /// Digest of a fault-free oracle index built sequentially from the
  /// current database state.
  StatusOr<std::string> OracleDigest();
  /// Per-document term diff between `coll` (all shards) and a fresh
  /// oracle, for digest-mismatch post-mortems ("" when it cannot be
  /// computed).
  std::string IndexDiff(const irs::IrsCollection& coll);

  std::string RandomText();
  /// A live PARA object drawn from the extent, or kNullOid when empty.
  Oid PickLiveOid();
  void Trace(const std::string& token);

  SimOptions options_;
  SimReport report_;
  Rng rng_;
  VirtualClock clock_;

  coupling::CouplingOptions coupling_options_;
  std::unique_ptr<oodb::Database> db_;
  std::unique_ptr<irs::IrsEngine> engine_;
  std::unique_ptr<coupling::Coupling> coupling_;
  coupling::Collection* collection_ = nullptr;
  coupling::PropagationPolicy policy_ = coupling::PropagationPolicy::kOnQuery;
  /// Seeded once per schedule, applied on the fresh boot (a restored
  /// snapshot's shard layout wins over it, which is the same value).
  uint32_t num_shards_ = 1;
  /// True while a burst has faults armed — the only time a stale serve
  /// is legal.
  bool faults_armed_ = false;
  /// Remote-shard serving tier (enable_remote_shards): one in-process
  /// ShardServer per shard, started lazily on the first boot and kept
  /// across simulated router crashes.
  bool remote_shards_ = false;
  std::vector<std::unique_ptr<server::ShardServer>> shard_servers_;
};

/// Convenience wrapper: runs one schedule and returns its report.
StatusOr<SimReport> RunSchedule(const SimOptions& options);

}  // namespace sdms::sim

#endif  // SDMS_SIM_SIMULATION_H_
