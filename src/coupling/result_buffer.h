#ifndef SDMS_COUPLING_RESULT_BUFFER_H_
#define SDMS_COUPLING_RESULT_BUFFER_H_

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/obs/metrics.h"
#include "common/status.h"
#include "coupling/types.h"

namespace sdms::coupling {

/// The persistent IRS-result buffer of Section 4.2: a dictionary
/// ||STRING --> ||IRSObject --> REAL|| || keyed by IRS query strings.
/// It serves both intra-query optimization (many objects probed against
/// one query during a single VQL evaluation) and inter-query
/// optimization (the same IRS query across separate VQL queries). The
/// buffer is invalidated when update propagation changes the IRS index.
///
/// Thread safety: all operations (Get/Put/InsertValue/Clear/Erase/
/// Serialize/Restore/size) are internally synchronized by a single
/// mutex, so concurrent callers — e.g. query evaluation on one thread
/// while update propagation invalidates on another — never corrupt the
/// LRU structures. The pointer returned by Get() aliases buffer-owned
/// storage and is only guaranteed valid until the next mutating call
/// (Put/InsertValue/Clear/Erase/Restore) on this buffer; callers that
/// hold results across mutations must copy the map.
class ResultBuffer {
 public:
  /// `capacity` bounds the number of buffered queries and `max_bytes`
  /// their (approximate) memory footprint; exceeding either evicts in
  /// LRU order. 0 = unbounded. The most recently stored entry is never
  /// evicted, so one oversized result may transiently exceed
  /// `max_bytes` — the budget is a soft cap, not an allocator limit.
  explicit ResultBuffer(size_t capacity = 0, size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  /// Clear() keeps the global entries gauge honest on teardown.
  ~ResultBuffer() { Clear(); }

  /// Returns the buffered result for `query`, or nullptr. Refreshes
  /// LRU order.
  const OidScoreMap* Get(const std::string& query);

  /// Stores (replacing) the result for `query`.
  void Put(const std::string& query, OidScoreMap result);

  /// Adds one (object, value) pair into the buffered result of `query`
  /// (used to cache derived IRS values per Figure 3); creates the
  /// entry when absent.
  void InsertValue(const std::string& query, Oid oid, double score);

  /// Drops everything (called after index-changing update propagation).
  void Clear();

  /// Drops only `query`.
  void Erase(const std::string& query);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  /// Approximate bytes held (see ApproxEntryBytes).
  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  /// The accounting model of the byte budget: query string + map nodes
  /// + LRU/hash bookkeeping, in rough allocator terms.
  static size_t ApproxEntryBytes(const std::string& query,
                                 const OidScoreMap& result) {
    return query.size() + result.size() * kBytesPerScore + kEntryOverhead;
  }

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

  /// Serializes the buffer (persistence across sessions — the paper
  /// buffers results "persistently").
  std::string Serialize() const;
  Status Restore(std::string_view data);

 private:
  /// Rough cost of one (Oid, double) map node incl. allocator overhead.
  static constexpr size_t kBytesPerScore = 64;
  /// Rough fixed cost per buffered query (hash node + LRU node).
  static constexpr size_t kEntryOverhead = 96;

  struct Entry {
    OidScoreMap result;
    std::list<std::string>::iterator lru_it;
    /// Cached ApproxEntryBytes of this entry (kept in sync by every
    /// mutation so bytes_ stays an O(1) aggregate).
    size_t bytes = 0;
  };

  void Touch(const std::string& query, Entry& e);
  /// Lock-free bodies shared by the public methods (Restore composes
  /// them under one critical section).
  void PutLocked(const std::string& query, OidScoreMap result);
  void ClearLocked();
  /// Evicts LRU entries (never the MRU head) while over either budget.
  void EnforceBudgetLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  size_t max_bytes_;
  size_t bytes_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  /// Most-recent first.
  std::list<std::string> lru_;
  /// Per-instance counters; every increment is mirrored into the
  /// process-wide `coupling.result_buffer.*` registry metrics.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_RESULT_BUFFER_H_
