#ifndef SDMS_COUPLING_HYPERTEXT_H_
#define SDMS_COUPLING_HYPERTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "coupling/coupling.h"
#include "coupling/derivation.h"

namespace sdms::coupling {

/// Name of the binary-link class defined by RegisterHypertext.
inline constexpr char kLinkClass[] = "LINK";
/// The link type discussed in Section 5.
inline constexpr char kImpliesLinkType[] = "implies";

/// Installs the hypertext extension of Section 5 on a coupling:
///  * defines the database class LINK (SOURCE, TARGET, LTYPE) with an
///    index on TARGET;
///  * registers text mode kTextModeWithLinks: a node's IRS document is
///    its own subtree text *plus* the text of every node from which an
///    implies-link points to it;
///  * registers IRSObject methods linksFrom(type) and linksTo(type).
Status RegisterHypertext(Coupling& coupling);

/// Creates a typed binary link object.
StatusOr<Oid> CreateLink(Coupling& coupling, Oid source, Oid target,
                         const std::string& type = kImpliesLinkType);

/// Sources of links of `type` pointing at `target`.
StatusOr<std::vector<Oid>> LinkSources(Coupling& coupling, Oid target,
                                       const std::string& type);

/// Targets of links of `type` leaving `source`.
StatusOr<std::vector<Oid>> LinkTargets(Coupling& coupling, Oid source,
                                       const std::string& type);

/// Materializes the HYPERLINK elements of stored documents into LINK
/// objects (HyTime-style: the markup *declares* links, the database
/// represents them as first-class objects). For every HYPERLINK
/// element under `root` whose TARGET attribute names another
/// document's DOCID, a LINK is created from the hyperlink's containing
/// paragraph (or, when it has none, the hyperlink element itself) to
/// that document's root, typed by the LINKTYPE attribute. Returns the
/// number of links created; unresolvable targets are skipped.
StatusOr<size_t> MaterializeHyperlinks(Coupling& coupling, Oid root);

/// Looks up a document root by its DOCID attribute (linear scan of the
/// MMFDOC extent unless an index on DOCID exists).
StatusOr<Oid> FindDocumentById(Coupling& coupling, const std::string& docid);

/// Derivation scheme using link semantics (Section 5: "deriveIRSValue
/// can be used to calculate IRS values for hypertext nodes which are
/// not represented in the IRS collection, using the link semantics"):
/// the node's value is the maximum of (a) the component maximum over
/// its children and (b) `damping` times the best value among nodes
/// that imply it.
std::unique_ptr<DerivationScheme> MakeLinkDerivationScheme(
    Coupling* coupling, std::string link_type = kImpliesLinkType,
    double damping = 0.8);

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_HYPERTEXT_H_
