#ifndef SDMS_COUPLING_MIXED_QUERY_H_
#define SDMS_COUPLING_MIXED_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/obs/profile.h"
#include "common/query_context.h"
#include "common/status.h"
#include "coupling/coupling.h"

namespace sdms::coupling {

/// Evaluates mixed (structure + content) queries with the two
/// strategies of Section 4.5.3:
///
///  (1) kIndependent — the query portions are processed independently
///      by the corresponding system and the results are combined: the
///      DBMS enumerates its extents, and every content conjunct
///      (`getIRSValue`) is answered from the buffered IRS result (the
///      prepare hook warms the buffer with one IRS call per distinct
///      query). "Restrictions on the search space by the IRS cannot be
///      used by the OODBMS."
///
///  (2) kIrsFirst — "the IRS selects all IRS documents fulfilling the
///      conditions on the content. The structure conditions are only
///      verified for the text objects identified in this first step":
///      content conjuncts of the form
///          var -> getIRSValue(coll, 'q') > threshold
///      are evaluated via getIRSResult first; the qualifying OIDs
///      become the candidate set of `var` in the database evaluation.
///      Two soundness rules apply: a restriction whose threshold is at
///      or below the query's null score is skipped (objects without
///      evidence would qualify too), and the strategy presumes `var`
///      ranges over objects represented in the collection — values of
///      non-represented objects are derived, which only the
///      independent strategy evaluates.
class MixedQueryEvaluator {
 public:
  enum class Strategy { kIndependent, kIrsFirst };

  /// Diagnostics of the most recent Run.
  struct RunInfo {
    Strategy strategy = Strategy::kIndependent;
    /// Content conjuncts converted to candidate restrictions.
    size_t irs_restrictions = 0;
    /// Total candidates injected by the IRS-first step.
    size_t irs_candidates = 0;
    /// True when the answer is degraded: the IRS side missed the
    /// query's deadline (or was unavailable) and the statement fell
    /// back to partial/derived evidence instead of failing (mirrors
    /// QueryResult::degraded).
    bool degraded = false;
    /// Process-unique id of the run's QueryContext — correlates this
    /// run with its [qN]-stamped log lines and trace spans.
    uint64_t query_id = 0;
    /// Time spent queued in the AdmissionController.
    int64_t queue_wait_micros = 0;
    /// Wall time of the whole run (admission included).
    int64_t total_micros = 0;
    /// The run's stage/counter profile; null when profiling was off and
    /// the slow-query log unarmed. Shared so EXPLAIN ANALYZE can render
    /// it after the context is gone.
    std::shared_ptr<obs::QueryProfile> profile;
    /// Per-shard outcomes of every fan-out IRS search the run issued
    /// (one entry per shard per search). Names the failure domain when
    /// `degraded`: which collection's shard failed, was skipped by its
    /// breaker, or only answered on the hedged retry. Empty when every
    /// IRS answer came from the buffer or a single healthy shard path.
    std::vector<ShardStatusEntry> shard_status;
  };

  explicit MixedQueryEvaluator(Coupling* coupling) : coupling_(coupling) {}

  /// Parses and runs `vql` under `strategy`. Both strategies return
  /// identical rows; they differ in evaluation cost.
  ///
  /// Overload behavior: the run is admitted through the coupling's
  /// AdmissionController (kResourceExhausted when shed) and executes
  /// under the caller's QueryContext (or a fresh one) with
  /// allow_partial set — an IRS-side deadline expiry degrades the
  /// statement to a partial result flagged QueryResult::degraded
  /// rather than failing it. Explicit cancellation still errors.
  ///
  /// `preadmitted`: a held Ticket from the *same* controller when the
  /// caller already performed admission (the network service admits on
  /// the dispatch path so it can answer a typed shed response before
  /// any parsing). The ticket is adopted — moved into the run and
  /// released when it finishes — and the internal Admit is skipped;
  /// admitting twice would consume two concurrency slots per query.
  StatusOr<oodb::vql::QueryResult> Run(
      const std::string& vql, Strategy strategy,
      AdmissionController::Ticket* preadmitted = nullptr);

  const RunInfo& last_run() const { return info_; }

 private:
  Status ApplyIrsFirst(const oodb::vql::ParsedQuery& query);

  Coupling* coupling_;
  RunInfo info_;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_MIXED_QUERY_H_
