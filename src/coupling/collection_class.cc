#include "coupling/collection_class.h"

#include <algorithm>
#include <iterator>

#include "common/fault/fault.h"
#include "common/file_util.h"
#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/obs/stats.h"
#include "common/obs/trace.h"
#include "common/query_context.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "coupling/coupling.h"
#include "coupling/remote_shard.h"
#include "coupling/shard_protocol.h"
#include "irs/query/query_node.h"
#include "oodb/query/parser.h"

namespace sdms::coupling {

using oodb::UpdateKind;
using oodb::vql::ParsedQuery;

namespace {

struct CollectionMetrics {
  obs::Counter& irs_queries = obs::GetCounter("coupling.collection.irs_queries");
  obs::Counter& derive_calls =
      obs::GetCounter("coupling.collection.derive_calls");
  obs::Counter& reindex_ops = obs::GetCounter("coupling.collection.reindex_ops");
  obs::Counter& bytes_exchanged =
      obs::GetCounter("coupling.collection.bytes_exchanged");
  obs::Histogram& index_objects_us =
      obs::GetHistogram("coupling.collection.index_objects_micros");
  obs::Histogram& irs_query_us =
      obs::GetHistogram("coupling.collection.irs_query_micros");
  obs::Histogram& derive_us =
      obs::GetHistogram("coupling.collection.derive_micros");
  obs::Counter& stale_serves = obs::GetCounter("coupling.result.stale_serves");
  obs::Counter& degraded_reads =
      obs::GetCounter("coupling.result.degraded_reads");
  obs::Counter& repairs = obs::GetCounter("coupling.collection.repairs");
  // Exactly-once propagation bookkeeping.
  obs::Counter& propagate_batches =
      obs::GetCounter("coupling.propagate.batches");
  obs::Counter& propagate_ops =
      obs::GetCounter("coupling.propagate.ops_applied");
  obs::Counter& duplicates_skipped =
      obs::GetCounter("coupling.propagate.duplicates_skipped");
  obs::Counter& requeued = obs::GetCounter("coupling.propagate.requeued");
  obs::Gauge& requeued_pending =
      obs::GetGauge("coupling.propagate.requeued_pending");
  obs::Gauge& high_water = obs::GetGauge("coupling.propagate.high_water");
  obs::Counter& exchange_cleaned =
      obs::GetCounter("coupling.files.exchange_cleaned");
  // Fan-out search over shards.
  obs::Counter& shard_degraded =
      obs::GetCounter("coupling.shard.degraded_queries");
  obs::Counter& shard_hedges = obs::GetCounter("coupling.shard.hedges");
  obs::Counter& shard_failures = obs::GetCounter("coupling.shard.failures");
};

CollectionMetrics& Metrics() {
  static CollectionMetrics* m = new CollectionMetrics();
  return *m;
}

}  // namespace

Collection::Collection(Coupling* coupling, Oid self,
                       std::string irs_collection_name, double missing_value)
    : coupling_(coupling),
      self_(self),
      irs_name_(std::move(irs_collection_name)),
      missing_value_(missing_value),
      buffer_(coupling->options().buffer_capacity,
              coupling->options().buffer_max_bytes),
      guard_(coupling->options().call_guard, irs_name_),
      // The paper's own tests used the component-maximum derivation
      // ("iterating through the elements components and determining the
      // maximal IRS value", Section 4.5.2).
      scheme_(MakeMaxScheme()) {}

Collection::~Collection() = default;

// ---------------------------------------------------------------------------
// indexObjects
// ---------------------------------------------------------------------------

Status Collection::IndexObjects(const std::string& spec_query, int text_mode) {
  obs::TraceSpan span("coupling.index_objects");
  SDMS_ASSIGN_OR_RETURN(ParsedQuery parsed,
                        oodb::vql::ParseQuery(spec_query));
  if (parsed.select.size() != 1) {
    return Status::InvalidArgument(
        "specification query must select exactly one column of IRSObjects");
  }
  SDMS_ASSIGN_OR_RETURN(oodb::vql::QueryResult result,
                        coupling_->query_engine().Run(parsed));
  spec_query_ = spec_query;
  parsed_spec_ = std::move(parsed);
  text_mode_ = text_mode;
  // Persist the indexing configuration on the COLLECTION database
  // object so Coupling::RestoreCollections can reattach it after a
  // restart.
  SDMS_RETURN_IF_ERROR(coupling_->db().SetAttribute(
      self_, "SPECQUERY", oodb::Value(spec_query)));
  SDMS_RETURN_IF_ERROR(coupling_->db().SetAttribute(
      self_, "TEXTMODE", oodb::Value(static_cast<int64_t>(text_mode))));

  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  // Bulk representation: gather the objects' texts, then hand the whole
  // batch to the IRS so analysis and postings construction can fan out
  // across the thread pool.
  std::vector<irs::BatchDocument> batch;
  std::set<Oid> batch_oids;
  batch.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    if (!row[0].is_oid()) {
      return Status::TypeError(
          "specification query yielded a non-object value: " +
          row[0].ToString());
    }
    Oid oid = row[0].as_oid();
    if (Represents(oid)) continue;
    if (!batch_oids.insert(oid).second) continue;  // spec yielded it twice
    SDMS_ASSIGN_OR_RETURN(std::string text,
                          coupling_->GetText(oid, text_mode_));
    batch.push_back(irs::BatchDocument{oid.ToString(), std::move(text)});
  }
  SDMS_RETURN_IF_ERROR(guard_.Run("index_objects", [&]() -> Status {
    SDMS_RETURN_IF_ERROR(fault::InjectFault("coupling.irs_call"));
    return coll->AddDocumentsBatch(batch);
  }));
  represented_.insert(batch_oids.begin(), batch_oids.end());
  // The index now reflects the database state as of the latest
  // committed update event, so the exactly-once high-water mark jumps
  // there — unless updates are still queued, in which case their
  // propagation will advance it.
  if (update_log_.empty()) {
    uint64_t seq = coupling_->db().last_update_seq();
    NoteRoutedSeq(seq);
    coll->set_applied_seq(seq);
  }
  // The index was rebuilt outside the propagation path: any remote
  // serving copies are stale until re-synced (install).
  MarkRemoteShardsUnsynced();
  Metrics().index_objects_us.Record(static_cast<double>(span.ElapsedMicros()));
  SDMS_LOG(DEBUG) << "indexObjects(" << irs_name_ << "): " << spec_query
                  << " -> " << represented_.size() << " represented objects";
  return Status::OK();
}

bool Collection::IsSpecCandidate(Oid oid) const {
  if (!parsed_spec_.has_value()) return false;
  auto cls_or = coupling_->db().ClassOf(oid);
  if (!cls_or.ok()) return false;
  // Find the binding of the selected variable (spec queries select a
  // single range variable or an expression over one).
  const ParsedQuery& q = *parsed_spec_;
  std::string var;
  if (q.select[0]->kind == oodb::vql::ExprKind::kVarRef) {
    var = q.select[0]->name;
  }
  for (const auto& b : q.bindings) {
    if (var.empty() || b.var == var) {
      if (coupling_->db().schema().IsSubclassOf(*cls_or, b.class_name)) {
        return true;
      }
    }
  }
  return false;
}

StatusOr<bool> Collection::SatisfiesSpec(Oid oid) {
  if (!parsed_spec_.has_value()) return false;
  const ParsedQuery& q = *parsed_spec_;
  std::string var;
  if (q.select[0]->kind == oodb::vql::ExprKind::kVarRef) {
    var = q.select[0]->name;
  } else if (!q.bindings.empty()) {
    var = q.bindings[0].var;
  }
  coupling_->query_engine().SetCandidateOverride(var, {oid});
  SDMS_ASSIGN_OR_RETURN(oodb::vql::QueryResult result,
                        coupling_->query_engine().Run(q));
  for (const auto& row : result.rows) {
    if (row[0].is_oid() && row[0].as_oid() == oid) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Query path (Figure 3)
// ---------------------------------------------------------------------------

namespace {

/// Maps IRS hits (keys "oid:<n>") back to database objects.
Status HitsToOidMap(const std::vector<irs::SearchHit>& hits,
                    OidScoreMap* out) {
  for (const irs::SearchHit& h : hits) {
    // Keys are "oid:<n>" (the OID stored as IRS document meta data).
    if (!StartsWith(h.key, "oid:")) {
      return Status::Corruption("IRS document key without OID: " + h.key);
    }
    uint64_t raw = 0;
    try {
      raw = std::stoull(h.key.substr(4));
    } catch (...) {
      return Status::Corruption("malformed OID key: " + h.key);
    }
    out->emplace(Oid(raw), h.score);
  }
  return Status::OK();
}

}  // namespace

void Collection::EnsureShardGuards(size_t num_shards) {
  while (shard_guards_.size() < num_shards) {
    size_t s = shard_guards_.size();
    shard_guards_.push_back(std::make_unique<CallGuard>(
        coupling_->options().call_guard,
        irs_name_ + "/shard" + std::to_string(s)));
  }
}

CallGuard& Collection::shard_guard(size_t s) {
  EnsureShardGuards(s + 1);
  return *shard_guards_[s];
}

Status Collection::AttachRemoteShard(size_t shard,
                                     std::shared_ptr<RemoteShardChannel> channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("null remote shard channel");
  }
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  if (shard >= coll->num_shards()) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " out of range for " +
        std::to_string(coll->num_shards()) + " shards");
  }
  if (remote_channels_.size() < coll->num_shards()) {
    remote_channels_.resize(coll->num_shards());
  }
  EnsureShardGuards(coll->num_shards());
  remote_channels_[shard] = std::move(channel);
  // Initial sync (full install on a fresh server). A failure leaves
  // the channel attached but unsynced: the shard serves degraded until
  // the server appears, exactly like any other remote outage.
  return remote_channels_[shard]->EnsureSynced(coll);
}

void Collection::DetachRemoteShards() { remote_channels_.clear(); }

RemoteShardChannel* Collection::remote_shard_channel(size_t shard) {
  return shard < remote_channels_.size() ? remote_channels_[shard].get()
                                         : nullptr;
}

bool Collection::has_remote_shards() const {
  for (const auto& ch : remote_channels_) {
    if (ch != nullptr) return true;
  }
  return false;
}

Status Collection::ReshardIrs(uint32_t m) {
  if (has_remote_shards()) {
    return Status::FailedPrecondition(
        "collection '" + irs_name_ +
        "' has remote shard channels attached; rebalancing is detach -> "
        "reshard -> relaunch shard servers -> reattach");
  }
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  SDMS_RETURN_IF_ERROR(coll->Reshard(m));
  // Per-shard state keyed by the old layout is stale now.
  last_shard_report_.clear();
  EnsureShardGuards(coll->num_shards());
  SDMS_LOG(INFO) << "resharded '" << irs_name_ << "' to " << m
                 << " shard(s), " << coll->doc_count() << " documents";
  return Status::OK();
}

void Collection::MarkRemoteShardsUnsynced() {
  for (const auto& ch : remote_channels_) {
    if (ch != nullptr) ch->MarkUnsynced();
  }
}

void Collection::TeeOpsToRemote(irs::IrsCollection* coll, size_t shard,
                                const std::vector<PendingOp>& shard_ops,
                                uint64_t high) {
  RemoteShardChannel* ch = remote_shard_channel(shard);
  if (ch == nullptr) return;
  std::vector<ShardOp> ops;
  ops.reserve(shard_ops.size());
  for (const PendingOp& op : shard_ops) {
    ShardOp out;
    out.key = op.oid.ToString();
    out.seq = op.seq;
    // Materialize against the post-apply local index: what the local
    // shard ended up with is exactly what the server must converge to
    // (an insert reconciled away — spec miss, later delete in the same
    // batch — tees as a delete, which the server no-ops if absent).
    if (op.kind == UpdateKind::kDelete || !coll->HasDocument(out.key)) {
      out.is_delete = true;
    } else {
      StatusOr<std::string> text = coupling_->GetText(op.oid, text_mode_);
      if (!text.ok()) {
        ch->MarkUnsynced();
        SDMS_LOG(WARN) << "remote tee for '" << irs_name_ << "' shard "
                       << shard << " could not materialize "
                       << out.key << ": " << text.status().ToString()
                       << " (channel marked unsynced)";
        return;
      }
      out.text = std::move(*text);
    }
    ops.push_back(std::move(out));
  }
  Status pushed = ch->PushOps(ops, high, coll);
  if (!pushed.ok()) {
    // Local apply already committed — remote catch-up is deferred to
    // the next search/sync, never a propagation failure.
    SDMS_LOG(WARN) << "remote tee for '" << irs_name_ << "' shard " << shard
                   << " failed (" << ops.size()
                   << " op(s), server will be caught up by replay/install): "
                   << pushed.ToString();
  }
}

StatusOr<OidScoreMap> Collection::RunIrsQuerySharded(
    irs::IrsCollection* coll, const std::string& irs_query, bool* partial) {
  // Parse once and snapshot the corpus-wide statistics every shard
  // scores against — this is what keeps an N-shard merged ranking
  // bit-identical to the single-shard one.
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection::SearchPlan plan,
                        coll->PrepareSearch(irs_query, 0));
  const size_t n = coll->num_shards();
  EnsureShardGuards(n);

  struct ShardRun {
    std::vector<irs::SearchHit> hits;
    Status status = Status::OK();
    bool breaker_rejected = false;
    bool hedged = false;
    int64_t micros = 0;
  };
  std::vector<ShardRun> runs(n);
  // One guarded search per shard. Each shard is its own failure
  // domain: its guard retries/trips independently, and the
  // "coupling.irs_call" + "irs.search.shard<i>" fault points fire per
  // shard, so an injected fault takes out one shard's call, not the
  // whole query.
  auto attempt_shard = [&](size_t s) {
    ShardRun& r = runs[s];
    const int64_t start = QueryContext::NowMicros();
    obs::ProfileStageScope shard_stage(irs::ShardSearchStageName(s));
    // A shard with an attached remote channel is served over the wire
    // — never silently from the local copy: the remote server is the
    // serving tier, and masking its outage would hide a dead node
    // behind bit-identical answers. Remote transport failures surface
    // as kIoError/kDeadlineExceeded, the same retriable/hedgeable
    // classes the in-process fault points produce, so the guard,
    // hedge, and partial-merge machinery below applies unchanged.
    RemoteShardChannel* remote =
        s < remote_channels_.size() ? remote_channels_[s].get() : nullptr;
    r.status = shard_guards_[s]->Run(
        "irs_query",
        [&]() -> Status {
          SDMS_RETURN_IF_ERROR(fault::InjectFault("coupling.irs_call"));
          if (remote != nullptr) {
            SDMS_ASSIGN_OR_RETURN(r.hits,
                                  remote->Search(irs_query, plan, coll));
            return Status::OK();
          }
          SDMS_ASSIGN_OR_RETURN(r.hits, coll->SearchShard(plan, s));
          return Status::OK();
        },
        &r.breaker_rejected);
    r.micros += QueryContext::NowMicros() - start;
  };
  if (n > 1) {
    if (ThreadPool* pool = DefaultThreadPool()) {
      pool->ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) attempt_shard(s);
      });
    } else {
      for (size_t s = 0; s < n; ++s) attempt_shard(s);
    }
  } else {
    attempt_shard(0);
  }

  QueryContext* ctx = QueryContext::Current();
  // Explicit cancellation is never degradable — propagate it.
  if (ctx != nullptr &&
      ctx->stop_reason() == QueryContext::StopReason::kCancelled) {
    return ctx->StopStatus();
  }
  // Hedged re-issue: a shard that failed transiently gets one more
  // chance while the healthy shards' results are already in hand.
  // Breaker-rejected shards are not hedged (the breaker said stop),
  // and neither is anything once the caller's own budget expired.
  for (size_t s = 0; s < n; ++s) {
    ShardRun& r = runs[s];
    if (r.status.ok() || r.breaker_rejected || !IsUnavailable(r.status)) {
      continue;
    }
    if (ctx != nullptr && !ctx->CheckStatus().ok()) break;
    r.hedged = true;
    ++stats_.shard_hedges;
    Metrics().shard_hedges.Increment();
    attempt_shard(s);
  }

  std::vector<ShardStatusEntry> report(n);
  std::vector<std::vector<irs::SearchHit>> per_shard;
  per_shard.reserve(n);
  size_t ok_shards = 0;
  Status first_failure = Status::OK();
  std::string failed_names;
  for (size_t s = 0; s < n; ++s) {
    ShardRun& r = runs[s];
    ShardStatusEntry& e = report[s];
    e.collection = irs_name_;
    e.shard = static_cast<uint32_t>(s);
    e.micros = r.micros;
    if (r.status.ok()) {
      e.state = r.hedged ? ShardState::kDegraded : ShardState::kOk;
      ++ok_shards;
      per_shard.push_back(std::move(r.hits));
    } else {
      e.state = r.breaker_rejected ? ShardState::kSkipped : ShardState::kFailed;
      e.detail = r.status.ToString();
      if (first_failure.ok()) first_failure = r.status;
      if (!failed_names.empty()) failed_names += ",";
      failed_names += "shard" + std::to_string(s);
      Metrics().shard_failures.Increment();
    }
  }
  last_shard_report_ = report;
  if (ctx != nullptr) ctx->AddShardStatus(report);
  if (ok_shards == 0) {
    // Every shard failed: the collection as a whole is unavailable —
    // the caller's stale-serve / derivation fallbacks take over.
    return first_failure;
  }
  if (ok_shards < n) {
    // Partial result: merged ranking over the surviving shards,
    // explicitly flagged. Never buffered (the buffer must only hold
    // complete answers).
    if (partial != nullptr) *partial = true;
    ++stats_.shard_degraded_queries;
    Metrics().shard_degraded.Increment();
    obs::ProfileCount("shard_degraded");
    obs::ProfileAnnotate("degradation_reason",
                         "shard(s) " + failed_names + " of '" + irs_name_ +
                             "' unavailable: " + first_failure.ToString());
    if (ctx != nullptr) ctx->NoteDegraded();
    SDMS_LOG(WARN) << "degraded fan-out search on '" << irs_name_ << "': "
                   << failed_names << " failed (" << ok_shards << "/" << n
                   << " shards answered): " << first_failure.ToString();
  }
  OidScoreMap out;
  SDMS_RETURN_IF_ERROR(HitsToOidMap(
      irs::IrsCollection::MergeShardHits(std::move(per_shard), plan.k), &out));
  return out;
}

StatusOr<OidScoreMap> Collection::RunIrsQuery(const std::string& irs_query,
                                              bool* partial) {
  obs::TraceSpan span("coupling.irs_query");
  obs::ProfileStageScope stage("irs_query");
  if (partial != nullptr) *partial = false;
  ++stats_.irs_queries;
  Metrics().irs_queries.Increment();
  last_shard_report_.clear();
  if (!coupling_->options().file_exchange) {
    SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                          coupling_->irs().GetCollection(irs_name_));
    StatusOr<OidScoreMap> out = RunIrsQuerySharded(coll, irs_query, partial);
    if (out.ok()) {
      Metrics().irs_query_us.Record(static_cast<double>(span.ElapsedMicros()));
    }
    return out;
  }
  // File-exchange mode stays a single stream: the result file carries
  // one merged ranking with no per-shard framing, so shard statuses
  // are not reported and any failure fails the whole exchange (see
  // docs/robustness.md, "Shard failure domains").
  OidScoreMap out;
  // The whole submit (including the exchange-file round trip) runs
  // under the guard: a transient failure is retried from scratch, so a
  // retry always parses a freshly written result file.
  Status submit = guard_.Run("irs_query", [&]() -> Status {
    out.clear();
    SDMS_RETURN_IF_ERROR(fault::InjectFault("coupling.irs_call"));
    std::vector<irs::SearchHit> hits;
    // The paper's original mechanism: "the IRS writes the result to a
    // file which is parsed afterwards".
    std::string path = coupling_->options().exchange_dir + "/irs_result_" +
                       irs_name_ + "_" +
                       std::to_string(coupling_->exchange_file_counter_++) +
                       ".txt";
    SDMS_RETURN_IF_ERROR(
        coupling_->irs().SearchToFile(irs_name_, irs_query, path));
    // The result file is transient: remove it whether or not it
    // parses, so a corrupt result (or an injected fault) doesn't
    // strand exchange files in the directory.
    StatusOr<std::vector<irs::SearchHit>> hits_or =
        irs::IrsEngine::ParseResultFile(path);
    auto size = FileSize(path);
    if (size.ok()) {
      stats_.bytes_exchanged += static_cast<uint64_t>(*size);
      Metrics().bytes_exchanged.Add(static_cast<uint64_t>(*size));
    }
    ++stats_.files_exchanged;
    if (RemoveFile(path).ok()) Metrics().exchange_cleaned.Increment();
    SDMS_ASSIGN_OR_RETURN(hits, std::move(hits_or));
    return HitsToOidMap(hits, &out);
  });
  SDMS_RETURN_IF_ERROR(submit);
  Metrics().irs_query_us.Record(static_cast<double>(span.ElapsedMicros()));
  return out;
}

StatusOr<const OidScoreMap*> Collection::GetIrsResult(
    const std::string& irs_query, bool* served_stale) {
  if (served_stale != nullptr) *served_stale = false;
  // Explicit cancellation stops the query outright — no buffer hit, no
  // stale serve. (An expired deadline is NOT short-circuited here: the
  // guarded IRS call fails fast with kDeadlineExceeded and the
  // degradation paths below turn that into a stale/derived answer.)
  if (QueryContext* qctx = QueryContext::Current();
      qctx != nullptr && qctx->ShouldStop() &&
      qctx->stop_reason() == QueryContext::StopReason::kCancelled) {
    return qctx->StopStatus();
  }
  // Serves the buffered result when the IRS is unavailable: pending
  // updates stay queued, the caller sees an explicitly flagged stale
  // answer instead of an error. Only transient failures degrade this
  // way — logic errors propagate.
  auto maybe_serve_stale =
      [&](const Status& failure) -> const OidScoreMap* {
    if (!IsUnavailable(failure)) return nullptr;
    if (!coupling_->options().serve_stale ||
        coupling_->options().disable_buffering) {
      return nullptr;
    }
    const OidScoreMap* buffered = buffer_.Get(irs_query);
    if (buffered == nullptr) return nullptr;
    ++stats_.stale_serves;
    Metrics().stale_serves.Increment();
    obs::ProfileCount("stale_serves");
    obs::ProfileAnnotate("degradation_reason",
                         "stale buffer serve: " + failure.ToString());
    if (served_stale != nullptr) *served_stale = true;
    SDMS_LOG(WARN) << "serving stale buffered result for '" << irs_query
                   << "' on '" << irs_name_ << "': " << failure.ToString();
    return buffered;
  };
  Status propagated = MaybePropagate();
  if (!propagated.ok()) {
    if (const OidScoreMap* stale = maybe_serve_stale(propagated)) return stale;
    return propagated;
  }
  if (!coupling_->options().disable_buffering) {
    obs::ProfileStageScope lookup_stage("buffer_lookup");
    const OidScoreMap* buffered = buffer_.Get(irs_query);
    if (buffered != nullptr) {
      ++stats_.buffer_hits;
      obs::ProfileCount("buffer_hits");
      obs::StatisticsService::Instance().RecordBufferLookup(irs_name_, true);
      return buffered;
    }
    ++stats_.buffer_misses;
    obs::ProfileCount("buffer_misses");
    obs::StatisticsService::Instance().RecordBufferLookup(irs_name_, false);
    bool partial = false;
    SDMS_ASSIGN_OR_RETURN(OidScoreMap result, RunIrsQuery(irs_query, &partial));
    if (partial) {
      // A degraded partial result never enters the persistent buffer:
      // once the failed shard recovers, the next query must see the
      // complete ranking, not a cached partial one presented as fresh.
      unbuffered_result_ = std::move(result);
      return &unbuffered_result_;
    }
    buffer_.Put(irs_query, std::move(result));
    return buffer_.Get(irs_query);
  }
  ++stats_.buffer_misses;
  obs::ProfileCount("buffer_misses");
  obs::StatisticsService::Instance().RecordBufferLookup(irs_name_, false);
  SDMS_ASSIGN_OR_RETURN(unbuffered_result_, RunIrsQuery(irs_query));
  return &unbuffered_result_;
}

StatusOr<double> Collection::FindIrsValue(const std::string& irs_query,
                                          Oid obj, bool* degraded) {
  if (degraded != nullptr) *degraded = false;
  bool stale = false;
  StatusOr<const OidScoreMap*> result_or = GetIrsResult(irs_query, &stale);
  if (result_or.ok()) {
    if (stale && degraded != nullptr) *degraded = true;
    const OidScoreMap* result = *result_or;
    auto it = result->find(obj);
    if (it != result->end()) return it->second;
    if (Represents(obj)) {
      // Represented but not retrieved: the IRS assigned no evidence;
      // the object scores the query's null belief.
      return NullScore(irs_query);
    }
    // Not represented: force the object to derive its value and insert
    // the result into the buffer (Figure 3). Stale results are left
    // untouched — they are invalidated wholesale once the IRS is back.
    SDMS_ASSIGN_OR_RETURN(double derived, DeriveIrsValue(irs_query, obj));
    if (!coupling_->options().disable_buffering && !stale) {
      buffer_.InsertValue(irs_query, obj, derived);
    }
    return derived;
  }
  if (!IsUnavailable(result_or.status())) return result_or.status();
  // IRS unavailable with nothing buffered: fall back to local
  // knowledge. NullScore and derivation evaluate the query tree inside
  // the DBMS, so represented objects get the query's null belief and
  // unrepresented ones aggregate their components' (equally degraded)
  // values — never a wrong score presented as fresh.
  ++stats_.degraded_reads;
  Metrics().degraded_reads.Increment();
  obs::ProfileCount("degraded_reads");
  obs::ProfileAnnotate("degradation_reason",
                       "IRS unavailable: " + result_or.status().ToString());
  if (degraded != nullptr) *degraded = true;
  SDMS_LOG(WARN) << "findIRSValue degraded for '" << irs_query << "' on '"
                 << irs_name_ << "': " << result_or.status().ToString();
  if (Represents(obj)) return NullScore(irs_query);
  StatusOr<double> derived = DeriveIrsValue(irs_query, obj);
  if (derived.ok()) return derived;
  if (IsUnavailable(derived.status())) return NullScore(irs_query);
  return derived.status();
}

StatusOr<double> Collection::DeriveIrsValue(const std::string& irs_query,
                                            Oid obj) {
  constexpr int kMaxDepth = 64;
  if (derive_depth_ >= kMaxDepth) {
    return Status::FailedPrecondition(
        "deriveIRSValue recursion depth exceeded");
  }
  // Cyclic related-object structures (e.g. mutual implies-links): a
  // derivation already on the stack contributes its null score rather
  // than recursing forever.
  auto key = std::make_pair(irs_query, obj.raw());
  if (derive_in_progress_.count(key) > 0) return NullScore(irs_query);
  obs::TraceSpan span("coupling.derive");
  obs::ProfileStageScope stage("derive");
  ++stats_.derive_calls;
  Metrics().derive_calls.Increment();
  obs::ProfileCount("derive_calls");
  DerivationContext ctx;
  ctx.object = obj;
  ctx.irs_query = irs_query;
  // The floor for derived values is the query's null belief, so an
  // object without components never outranks one with weak evidence.
  SDMS_ASSIGN_OR_RETURN(ctx.default_value, NullScore(irs_query));
  ctx.component_value = [this](Oid component,
                               const std::string& query) -> StatusOr<double> {
    return FindIrsValue(query, component);
  };
  ctx.components_of = [this](Oid o) { return coupling_->ChildrenOf(o); };
  ctx.class_of = [this](Oid o) { return coupling_->db().ClassOf(o); };
  ctx.length_of = [this](Oid o) -> StatusOr<double> {
    SDMS_ASSIGN_OR_RETURN(std::string text, coupling_->SubtreeText(o));
    return static_cast<double>(SplitWhitespace(text).size());
  };
  ctx.parse_query =
      [this](const std::string& q)
      -> StatusOr<std::unique_ptr<irs::QueryNode>> {
    SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                          coupling_->irs().GetCollection(irs_name_));
    return irs::ParseIrsQuery(q, coll->analyzer());
  };
  ++derive_depth_;
  derive_in_progress_.insert(key);
  auto result = scheme_->Derive(ctx);
  derive_in_progress_.erase(key);
  --derive_depth_;
  Metrics().derive_us.Record(static_cast<double>(span.ElapsedMicros()));
  return result;
}

namespace {

/// Evaluates a query tree with every term belief pinned to `term_null`.
double TreeNullScore(const irs::QueryNode& node, double term_null) {
  switch (node.op) {
    case irs::QueryOp::kTerm:
    case irs::QueryOp::kOdn:
    case irs::QueryOp::kUwn:
      return term_null;
    case irs::QueryOp::kAnd: {
      double b = 1.0;
      for (const auto& c : node.children) b *= TreeNullScore(*c, term_null);
      return node.children.empty() ? term_null : b;
    }
    case irs::QueryOp::kOr: {
      double b = 1.0;
      for (const auto& c : node.children) {
        b *= 1.0 - TreeNullScore(*c, term_null);
      }
      return node.children.empty() ? term_null : 1.0 - b;
    }
    case irs::QueryOp::kNot:
      return node.children.empty()
                 ? term_null
                 : 1.0 - TreeNullScore(*node.children[0], term_null);
    case irs::QueryOp::kSum: {
      if (node.children.empty()) return 0.0;
      double sum = 0.0;
      for (const auto& c : node.children) sum += TreeNullScore(*c, term_null);
      return sum / static_cast<double>(node.children.size());
    }
    case irs::QueryOp::kWsum: {
      if (node.children.empty()) return 0.0;
      double sum = 0.0;
      double wsum = 0.0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        double w = i < node.weights.size() ? node.weights[i] : 1.0;
        sum += w * TreeNullScore(*node.children[i], term_null);
        wsum += w;
      }
      return wsum > 0.0 ? sum / wsum : 0.0;
    }
    case irs::QueryOp::kMax: {
      double best = 0.0;
      for (const auto& c : node.children) {
        best = std::max(best, TreeNullScore(*c, term_null));
      }
      return node.children.empty() ? term_null : best;
    }
  }
  return term_null;
}

}  // namespace

StatusOr<double> Collection::NullScore(const std::string& irs_query) {
  // Models without default beliefs score no-evidence documents zero.
  if (missing_value_ == 0.0) return 0.0;
  auto cached = null_score_cache_.find(irs_query);
  if (cached != null_score_cache_.end()) return cached->second;
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<irs::QueryNode> tree,
                        irs::ParseIrsQuery(irs_query, coll->analyzer()));
  double score = TreeNullScore(*tree, missing_value_);
  null_score_cache_[irs_query] = score;
  return score;
}

Status Collection::SetDerivationScheme(const std::string& name) {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<DerivationScheme> scheme,
                        MakeScheme(name));
  scheme_ = std::move(scheme);
  return Status::OK();
}

void Collection::SetDerivationScheme(std::unique_ptr<DerivationScheme> scheme) {
  scheme_ = std::move(scheme);
}

// ---------------------------------------------------------------------------
// Update propagation (Section 4.6)
// ---------------------------------------------------------------------------

Status Collection::OnInsert(Oid oid, uint64_t seq) {
  if (!parsed_spec_.has_value() || !IsSpecCandidate(oid)) return Status::OK();
  update_log_.Record(UpdateKind::kInsert, oid, seq);
  if (policy_ == PropagationPolicy::kEager) return PropagateUpdates();
  return Status::OK();
}

Status Collection::OnModify(Oid oid, uint64_t seq) {
  if (Represents(oid)) {
    update_log_.Record(UpdateKind::kModify, oid, seq);
  } else if (parsed_spec_.has_value() && IsSpecCandidate(oid)) {
    // A modification may have made the object satisfy the spec query.
    update_log_.Record(UpdateKind::kInsert, oid, seq);
  } else {
    return Status::OK();
  }
  if (policy_ == PropagationPolicy::kEager) return PropagateUpdates();
  return Status::OK();
}

Status Collection::OnDelete(Oid oid, uint64_t seq) {
  // Relevant only for represented objects or ones with a pending
  // insert (which the log then cancels out).
  if (!Represents(oid) && !update_log_.Has(oid)) return Status::OK();
  update_log_.Record(UpdateKind::kDelete, oid, seq);
  if (policy_ == PropagationPolicy::kEager) return PropagateUpdates();
  return Status::OK();
}

Status Collection::MaybePropagate() {
  if (policy_ == PropagationPolicy::kManual) return Status::OK();
  if (update_log_.empty()) return Status::OK();
  // "If an information-need query is issued with update propagation
  // pending, propagation is enforced."
  return PropagateUpdates();
}

Status Collection::PropagateUpdates() {
  obs::TraceSpan span("coupling.propagate");
  // High-water mark this batch advances the index to: every sequenced
  // event routed so far is either already applied, cancelled out in
  // the log, or part of this drain. Snapshot it before draining —
  // last_seq() survives the drain, but the invariant is what holds
  // *now*.
  uint64_t high = std::max(last_routed_seq_, update_log_.last_seq());
  std::vector<PendingOp> ops = update_log_.Drain();
  stats_.cancelled_ops = update_log_.cancelled();
  if (ops.empty()) return Status::OK();
  Metrics().propagate_batches.Increment();
  auto requeue_all = [&](const std::vector<PendingOp>& batch,
                         const Status& why, const char* what) {
    for (const PendingOp& op : batch) update_log_.Requeue(op);
    stats_.requeued_ops += batch.size();
    Metrics().requeued.Add(batch.size());
    Metrics().requeued_pending.Set(static_cast<int64_t>(update_log_.size()));
    SDMS_LOG(WARN) << what << " for '" << irs_name_ << "' failed, "
                   << update_log_.size()
                   << " net update(s) requeued: " << why.ToString();
  };
  auto coll_or = coupling_->irs().GetCollection(irs_name_);
  if (!coll_or.ok()) {
    requeue_all(ops, coll_or.status(), "propagation");
    return coll_or.status();
  }
  irs::IrsCollection* coll = *coll_or;
  // Propagation is shard-isolated: the drained batch is partitioned by
  // the documents' shards, journaled and applied per shard under that
  // shard's guard. A faulting shard requeues only its own sub-batch
  // and leaves its applied_seq floor behind; the healthy shards
  // commit, advance their floors, and keep serving.
  const size_t n = coll->num_shards();
  EnsureShardGuards(n);
  std::vector<std::vector<PendingOp>> per_shard(n);
  for (const PendingOp& op : ops) {
    per_shard[coll->ShardOfKey(op.oid.ToString())].push_back(op);
  }
  // Phase 1: force every shard's prepare record (collection, shard,
  // high-water, sub-batch) to the propagation journal before the first
  // IRS call. A crash anywhere past this point leaves journaled
  // batches that recovery requeues against the per-shard floors; a
  // journal failure here has touched nothing, so the whole batch goes
  // back into the log.
  for (size_t s = 0; s < n; ++s) {
    if (per_shard[s].empty()) continue;
    Status prepared = coupling_->JournalPrepare(
        self_, static_cast<uint32_t>(s), high, per_shard[s]);
    if (!prepared.ok()) {
      requeue_all(ops, prepared, "propagation journal prepare");
      return prepared;
    }
  }
  // Phase 2: apply per shard. Net operations are per-object
  // independent, so replay is free to group them: deletes and modifies
  // apply individually, while inserts are collected and fed to the
  // batch indexing pipeline in one call per shard.
  //
  // Failure contract per shard: on the first error every unapplied
  // operation of THAT shard — its deferred inserts plus the failed op
  // and everything after it — goes back into the update log, so the
  // sub-batch is never lost and the next propagation replays exactly
  // the remaining work. Other shards are unaffected.
  Status first_failure = Status::OK();
  bool any_changed = false;
  size_t applied_total = 0;
  for (size_t s = 0; s < n; ++s) {
    if (per_shard[s].empty()) {
      // No ops routed to this shard in the drain, so it already
      // reflects every sequenced event up to `high` (pending work
      // would have drained into this batch). Advancing its floor too
      // keeps the floors uniform, which keeps the restored routing
      // dedup tight after a crash.
      coll->set_shard_applied_seq(s, high);
      TeeOpsToRemote(coll, s, {}, high);
      continue;
    }
    const std::vector<PendingOp>& shard_ops = per_shard[s];
    CallGuard& sguard = *shard_guards_[s];
    std::vector<PendingOp> inserts;
    bool changed = false;
    Status failure = Status::OK();
    size_t failed_at = shard_ops.size();
    for (size_t i = 0; i < shard_ops.size(); ++i) {
      const PendingOp& op = shard_ops[i];
      if (op.kind == UpdateKind::kInsert) {
        inserts.push_back(op);
        continue;
      }
      Status st = sguard.Run(
          op.kind == UpdateKind::kDelete ? "remove_document"
                                         : "update_document",
          [&]() -> Status {
            SDMS_RETURN_IF_ERROR(fault::InjectFault("coupling.irs_call"));
            return ApplyOp(op);
          });
      if (!st.ok()) {
        failure = st;
        failed_at = i;
        break;
      }
      changed = true;
    }
    if (failure.ok() && !inserts.empty()) {
      std::vector<irs::BatchDocument> batch;
      std::vector<Oid> batch_oids;
      batch.reserve(inserts.size());
      for (const PendingOp& op : inserts) {
        if (Represents(op.oid)) {
          // Redelivered insert whose document already exists — the
          // usual shape of a duplicate delivery after crash recovery.
          // A net insert can carry a folded modify (insert + modify
          // collapse to an insert in the update log), so the duplicate
          // reconciles as an update instead of being dropped: the
          // re-derived text converges to the current database state
          // whether or not a content change was folded in.
          if (op.seq != 0) Metrics().duplicates_skipped.Increment();
          Status st = sguard.Run("update_document", [&]() -> Status {
            SDMS_RETURN_IF_ERROR(fault::InjectFault("coupling.irs_call"));
            return ApplyOp(PendingOp{UpdateKind::kModify, op.oid, op.seq});
          });
          if (!st.ok()) {
            failure = st;
            break;
          }
          changed = true;
          continue;
        }
        StatusOr<bool> ok = SatisfiesSpec(op.oid);
        if (!ok.ok()) {
          failure = ok.status();
          break;
        }
        if (!*ok) continue;
        StatusOr<std::string> text = coupling_->GetText(op.oid, text_mode_);
        if (!text.ok()) {
          failure = text.status();
          break;
        }
        SDMS_LOG(DEBUG) << "batch insert " << op.oid.ToString() << " seq "
                        << op.seq << " text '" << *text << "'";
        batch.push_back(
            irs::BatchDocument{op.oid.ToString(), std::move(*text)});
        batch_oids.push_back(op.oid);
      }
      if (failure.ok() && !batch.empty()) {
        failure = sguard.Run("batch_add", [&]() -> Status {
          SDMS_RETURN_IF_ERROR(fault::InjectFault("coupling.irs_call"));
          // AddDocumentsBatch fails without side effects, so a failed
          // batch can be requeued and replayed wholesale.
          return coll->AddDocumentsBatch(batch);
        });
        if (failure.ok()) {
          represented_.insert(batch_oids.begin(), batch_oids.end());
          stats_.reindex_ops += batch.size();
          Metrics().reindex_ops.Add(batch.size());
          changed = true;
        }
      }
    }
    any_changed = any_changed || changed;
    if (!failure.ok()) {
      if (first_failure.ok()) first_failure = failure;
      size_t requeued = inserts.size() + (shard_ops.size() - failed_at);
      for (const PendingOp& op : inserts) update_log_.Requeue(op);
      for (size_t j = failed_at; j < shard_ops.size(); ++j) {
        update_log_.Requeue(shard_ops[j]);
      }
      stats_.requeued_ops += requeued;
      Metrics().requeued.Add(requeued);
      Metrics().requeued_pending.Set(
          static_cast<int64_t>(update_log_.size()));
      SDMS_LOG(WARN) << "propagation into '" << irs_name_ << "' shard " << s
                     << " failed, " << requeued
                     << " net update(s) requeued: " << failure.ToString();
      continue;
    }
    // This shard's whole sub-batch applied: it now reflects every
    // sequenced event routed to it up to `high`. Advance only this
    // shard's high-water mark — never per op — so a crash mid-batch
    // replays the full remaining work instead of skipping requeued
    // lower-seq ops.
    coll->set_shard_applied_seq(s, high);
    applied_total += shard_ops.size();
    TeeOpsToRemote(coll, s, shard_ops, high);
    // The commit record marks the shard's batch complete in memory.
    // Recovery treats it as advisory (only the persisted snapshot's
    // high-water marks prove durability) and the reconciling replay is
    // idempotent, so failing to write it only warns.
    Status committed =
        coupling_->JournalCommit(self_, static_cast<uint32_t>(s), high);
    if (!committed.ok()) {
      SDMS_LOG(WARN) << "propagation journal commit for '" << irs_name_
                     << "' shard " << s
                     << " failed (batch stays replayable): "
                     << committed.ToString();
    }
  }
  Metrics().high_water.Set(static_cast<int64_t>(coll->applied_seq()));
  if (!first_failure.ok()) {
    // IRS index structures may have changed on the healthy shards, but
    // on a partial failure the buffer intentionally survives —
    // degraded reads serve it flagged stale until propagation
    // succeeds end to end.
    return first_failure;
  }
  if (any_changed) buffer_.Clear();
  Metrics().propagate_ops.Add(applied_total);
  Metrics().requeued_pending.Set(static_cast<int64_t>(update_log_.size()));
  SDMS_LOG(DEBUG) << "propagated " << ops.size() << " net update(s) into '"
                  << irs_name_ << "' (high-water " << high << ")";
  return Status::OK();
}

Status Collection::ApplyOp(const PendingOp& op) {
  // Replay is *reconciling*, which makes it idempotent: inserts whose
  // document already exists and deletes whose document is already gone
  // are skipped, and modifies re-derive the text from the current
  // database state, so applying the same sequenced op twice (duplicate
  // delivery after a crash) converges to the same index.
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  switch (op.kind) {
    case UpdateKind::kInsert: {
      if (Represents(op.oid)) {
        if (op.seq != 0) Metrics().duplicates_skipped.Increment();
        break;
      }
      // A replayed insert whose object was deleted later is a no-op:
      // the delete either folded with it or is pending behind it.
      if (!coupling_->db().store().Contains(op.oid)) break;
      SDMS_ASSIGN_OR_RETURN(bool ok, SatisfiesSpec(op.oid));
      if (!ok) break;
      SDMS_ASSIGN_OR_RETURN(std::string text,
                            coupling_->GetText(op.oid, text_mode_));
      SDMS_LOG(DEBUG) << "apply insert " << op.oid.ToString() << " seq "
                      << op.seq << " text '" << text << "'";
      SDMS_RETURN_IF_ERROR(coll->AddDocument(op.oid.ToString(), text));
      represented_.insert(op.oid);
      ++stats_.reindex_ops;
      Metrics().reindex_ops.Increment();
      break;
    }
    case UpdateKind::kModify: {
      if (!coupling_->db().store().Contains(op.oid)) {
        // Vanished since recording: treat as a delete.
        if (Represents(op.oid)) {
          SDMS_RETURN_IF_ERROR(coll->RemoveDocument(op.oid.ToString()));
          represented_.erase(op.oid);
          ++stats_.reindex_ops;
          Metrics().reindex_ops.Increment();
        }
        break;
      }
      if (!Represents(op.oid)) {
        // Crash recovery can fold a journal-requeued modify with the
        // re-routed insert of the same object into one modify while
        // the restored index predates both (its snapshot was taken
        // before the insert was ever applied). The net op then has to
        // *create* the document, not update it: reconcile against the
        // database ground truth and degenerate to an insert.
        SDMS_ASSIGN_OR_RETURN(bool ok, SatisfiesSpec(op.oid));
        if (!ok) break;
        SDMS_ASSIGN_OR_RETURN(std::string added_text,
                              coupling_->GetText(op.oid, text_mode_));
        SDMS_LOG(DEBUG) << "apply modify-as-insert " << op.oid.ToString()
                        << " seq " << op.seq << " text '" << added_text << "'";
        SDMS_RETURN_IF_ERROR(
            coll->AddDocument(op.oid.ToString(), added_text));
        represented_.insert(op.oid);
        ++stats_.reindex_ops;
        Metrics().reindex_ops.Increment();
        break;
      }
      SDMS_ASSIGN_OR_RETURN(std::string text,
                            coupling_->GetText(op.oid, text_mode_));
      SDMS_LOG(DEBUG) << "apply modify " << op.oid.ToString() << " seq "
                      << op.seq << " text '" << text << "'";
      if (!coll->HasDocument(op.oid.ToString())) {
        // A previous update faulted between its remove and its re-add:
        // the replayed modify degenerates to a plain add.
        SDMS_RETURN_IF_ERROR(coll->AddDocument(op.oid.ToString(), text));
      } else {
        SDMS_RETURN_IF_ERROR(coll->UpdateDocument(op.oid.ToString(), text));
      }
      ++stats_.reindex_ops;
      Metrics().reindex_ops.Increment();
      break;
    }
    case UpdateKind::kDelete: {
      if (!Represents(op.oid)) {
        if (op.seq != 0) Metrics().duplicates_skipped.Increment();
        break;
      }
      SDMS_LOG(DEBUG) << "apply delete " << op.oid.ToString() << " seq "
                      << op.seq;
      if (coll->HasDocument(op.oid.ToString())) {
        SDMS_RETURN_IF_ERROR(coll->RemoveDocument(op.oid.ToString()));
      }
      // else: a previous update faulted between its remove and its
      // re-add — the document is already gone, which is exactly this
      // delete's goal state.
      represented_.erase(op.oid);
      ++stats_.reindex_ops;
      Metrics().reindex_ops.Increment();
      break;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Consistency verification and repair
// ---------------------------------------------------------------------------

StatusOr<ConsistencyReport> Collection::VerifyConsistency() {
  if (!parsed_spec_.has_value()) {
    return Status::FailedPrecondition(
        "collection '" + irs_name_ +
        "' has no specification query; run IndexObjects first");
  }
  if (!update_log_.empty()) {
    return Status::FailedPrecondition(
        "collection '" + irs_name_ + "' has " +
        std::to_string(update_log_.size()) +
        " pending update(s); call PropagateUpdates() first");
  }
  // Ground truth: the specification query evaluated now.
  SDMS_ASSIGN_OR_RETURN(oodb::vql::QueryResult result,
                        coupling_->query_engine().Run(*parsed_spec_));
  std::set<Oid> expected;
  for (const auto& row : result.rows) {
    if (row[0].is_oid()) expected.insert(row[0].as_oid());
  }
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  std::set<Oid> indexed;
  std::string bad_key;
  coll->ForEachDoc([&](size_t, irs::DocId, const irs::DocInfo& info) {
    if (!StartsWith(info.key, "oid:")) {
      bad_key = info.key;
      return;
    }
    try {
      indexed.insert(Oid(std::stoull(info.key.substr(4))));
    } catch (...) {
      bad_key = info.key;
    }
  });
  if (!bad_key.empty()) {
    return Status::Corruption("IRS document key without OID: " + bad_key);
  }
  ConsistencyReport report;
  std::set_difference(expected.begin(), expected.end(), indexed.begin(),
                      indexed.end(),
                      std::back_inserter(report.missing_in_irs));
  std::set_difference(indexed.begin(), indexed.end(), expected.begin(),
                      expected.end(),
                      std::back_inserter(report.orphaned_in_irs));
  return report;
}

Status Collection::Repair() {
  // Queued work first: most post-fault divergence is just unapplied
  // updates, and replaying them may already restore consistency.
  SDMS_RETURN_IF_ERROR(PropagateUpdates());
  SDMS_ASSIGN_OR_RETURN(ConsistencyReport report, VerifyConsistency());
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  for (Oid oid : report.missing_in_irs) {
    SDMS_ASSIGN_OR_RETURN(std::string text,
                          coupling_->GetText(oid, text_mode_));
    SDMS_RETURN_IF_ERROR(coll->AddDocument(oid.ToString(), text));
    represented_.insert(oid);
    ++stats_.reindex_ops;
    Metrics().reindex_ops.Increment();
  }
  for (Oid oid : report.orphaned_in_irs) {
    SDMS_RETURN_IF_ERROR(coll->RemoveDocument(oid.ToString()));
    represented_.erase(oid);
    ++stats_.reindex_ops;
    Metrics().reindex_ops.Increment();
  }
  // Resync the represented set with what the IRS index now holds (it
  // can drift when a crash interrupted IndexObjects or a batch).
  represented_.clear();
  coll->ForEachDoc([&](size_t, irs::DocId, const irs::DocInfo& info) {
    if (!StartsWith(info.key, "oid:")) return;
    try {
      represented_.insert(Oid(std::stoull(info.key.substr(4))));
    } catch (...) {
    }
  });
  if (!report.consistent()) {
    buffer_.Clear();
    Metrics().repairs.Increment();
    SDMS_LOG(INFO) << "repaired '" << irs_name_ << "': "
                   << report.missing_in_irs.size() << " re-indexed, "
                   << report.orphaned_in_irs.size() << " orphan(s) removed";
  }
  // Consistency is restored, so the failure bookkeeping that led here
  // must not linger: the requeued-op counter and gauge go back to
  // zero, and the breaker reset force-publishes its state gauges (a
  // breaker recreated after a restart starts closed, so without the
  // forced publish the previous incarnation's "open" gauge would
  // survive the repair).
  stats_.requeued_ops = 0;
  Metrics().requeued_pending.Set(0);
  // A successful repair is positive proof the IRS is reachable again —
  // for every failure domain, so the per-shard breakers close too.
  guard_.breaker().Reset();
  for (auto& g : shard_guards_) g->breaker().Reset();
  // Repair may have rewritten index entries outside the propagation
  // path; remote serving copies must re-sync before the next search.
  MarkRemoteShardsUnsynced();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Duplicated IRS operators (Section 4.5.4)
// ---------------------------------------------------------------------------

namespace {

/// Combines operand score maps with the INQUERY operator semantics,
/// using `missing` as the belief of a document absent from an operand.
OidScoreMap CombineMaps(irs::QueryOp op,
                        const std::vector<OidScoreMap>& operands,
                        const std::vector<double>& weights, double missing) {
  OidScoreMap out;
  // Candidate union.
  for (const OidScoreMap& m : operands) {
    for (const auto& [oid, score] : m) out[oid] = 0.0;
  }
  auto value_of = [missing](const OidScoreMap& m, Oid oid) {
    auto it = m.find(oid);
    return it == m.end() ? missing : it->second;
  };
  for (auto& [oid, score] : out) {
    switch (op) {
      case irs::QueryOp::kAnd: {
        double b = 1.0;
        for (const OidScoreMap& m : operands) b *= value_of(m, oid);
        score = b;
        break;
      }
      case irs::QueryOp::kOr: {
        double b = 1.0;
        for (const OidScoreMap& m : operands) b *= 1.0 - value_of(m, oid);
        score = 1.0 - b;
        break;
      }
      case irs::QueryOp::kSum: {
        double sum = 0.0;
        for (const OidScoreMap& m : operands) sum += value_of(m, oid);
        score = operands.empty()
                    ? 0.0
                    : sum / static_cast<double>(operands.size());
        break;
      }
      case irs::QueryOp::kWsum: {
        double sum = 0.0;
        double wsum = 0.0;
        for (size_t i = 0; i < operands.size(); ++i) {
          double w = i < weights.size() ? weights[i] : 1.0;
          sum += w * value_of(operands[i], oid);
          wsum += w;
        }
        score = wsum > 0.0 ? sum / wsum : 0.0;
        break;
      }
      case irs::QueryOp::kMax: {
        double best = 0.0;
        for (const OidScoreMap& m : operands) {
          best = std::max(best, value_of(m, oid));
        }
        score = best;
        break;
      }
      default:
        score = 0.0;
        break;
    }
  }
  return out;
}

}  // namespace

StatusOr<OidScoreMap> Collection::EvalOperatorsInDbms(
    const std::string& irs_query) {
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        coupling_->irs().GetCollection(irs_name_));
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<irs::QueryNode> tree,
                        irs::ParseIrsQuery(irs_query, coll->analyzer()));

  // Recursive evaluation: leaves hit the (buffered) IRS, inner nodes
  // are computed here, inside the DBMS.
  std::function<StatusOr<OidScoreMap>(const irs::QueryNode&)> eval =
      [&](const irs::QueryNode& node) -> StatusOr<OidScoreMap> {
    if (node.op == irs::QueryOp::kTerm) {
      SDMS_ASSIGN_OR_RETURN(const OidScoreMap* m, GetIrsResult(node.term));
      return *m;
    }
    if (node.op == irs::QueryOp::kOdn || node.op == irs::QueryOp::kUwn) {
      // Proximity nodes cannot be recombined from term results (they
      // need positions); they are submitted to the IRS as a unit.
      SDMS_ASSIGN_OR_RETURN(const OidScoreMap* m,
                            GetIrsResult(node.ToString()));
      return *m;
    }
    if (node.op == irs::QueryOp::kNot) {
      if (node.children.size() != 1) {
        return Status::InvalidArgument("#not takes exactly one argument");
      }
      SDMS_ASSIGN_OR_RETURN(OidScoreMap inner, eval(*node.children[0]));
      // Complement over the represented set.
      OidScoreMap out;
      for (Oid oid : represented_) {
        auto it = inner.find(oid);
        double b = it == inner.end() ? missing_value_ : it->second;
        out[oid] = 1.0 - b;
      }
      return out;
    }
    std::vector<OidScoreMap> operands;
    operands.reserve(node.children.size());
    for (const auto& c : node.children) {
      SDMS_ASSIGN_OR_RETURN(OidScoreMap m, eval(*c));
      operands.push_back(std::move(m));
    }
    return CombineMaps(node.op, operands, node.weights, missing_value_);
  };
  return eval(*tree);
}

}  // namespace sdms::coupling
