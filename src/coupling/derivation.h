#ifndef SDMS_COUPLING_DERIVATION_H_
#define SDMS_COUPLING_DERIVATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/oid.h"
#include "common/status.h"
#include "irs/query/query_node.h"

namespace sdms::coupling {

/// Environment handed to a derivation scheme when an object's IRS
/// value must be computed from related objects (deriveIRSValue,
/// Section 4.5.2). Callbacks keep schemes decoupled from Collection.
struct DerivationContext {
  /// The object whose value is being derived.
  Oid object;
  /// The full IRS query (raw syntax).
  std::string irs_query;

  /// IRS value of a component for `query`: buffered IRS lookup when the
  /// component is represented, recursive derivation otherwise.
  std::function<StatusOr<double>(Oid component, const std::string& query)>
      component_value;
  /// Components (child objects) in document order.
  std::function<StatusOr<std::vector<Oid>>(Oid object)> components_of;
  /// Database class of an object (element type).
  std::function<StatusOr<std::string>(Oid object)> class_of;
  /// Text length (tokens) of an object's subtree.
  std::function<StatusOr<double>(Oid object)> length_of;
  /// Parses the IRS query syntax into an operator tree.
  std::function<StatusOr<std::unique_ptr<irs::QueryNode>>(
      const std::string& query)>
      parse_query;

  /// Belief assigned when no component provides evidence (matches the
  /// IRS's default belief so derived and direct values are comparable).
  double default_value = 0.4;
};

/// Strategy for computing an object's IRS value from its components'
/// values. The paper leaves the computation to the application
/// (deriveIRSValue is application-provided); these are the schemes the
/// paper discusses: max / average [CST92], type-weighted [Wil94],
/// length-aware (INQUERY-style), and the subquery-aware combination
/// the Figure 4 discussion argues for.
class DerivationScheme {
 public:
  virtual ~DerivationScheme() = default;
  virtual std::string name() const = 0;
  virtual StatusOr<double> Derive(const DerivationContext& ctx) const = 0;
};

/// max over components ([CST92] first suggestion). Fails the Figure 4
/// M3-vs-M4 distinction for multi-term queries.
std::unique_ptr<DerivationScheme> MakeMaxScheme();

/// Arithmetic mean over components ([CST92] second suggestion).
std::unique_ptr<DerivationScheme> MakeAvgScheme();

/// Type-weighted mean ([Wil94]): components are weighted by their
/// element class (e.g. DOCTITLE counts double); unknown classes get
/// weight 1.
std::unique_ptr<DerivationScheme> MakeWeightedTypeScheme(
    std::map<std::string, double> class_weights);

/// Length-weighted mean: components weighted by their text length,
/// approximating what the IRS itself would compute for the
/// concatenated text (the paper notes INQUERY "takes into account the
/// IRS documents' length").
std::unique_ptr<DerivationScheme> MakeLengthWeightedScheme();

/// Subquery-aware combination: the IRS query is decomposed into its
/// subqueries (operator tree); each *leaf* subquery is scored as the
/// maximum over the components; the per-subquery scores are then
/// recombined with the operators' INQUERY semantics. Distinguishes M3
/// (one paragraph per term) from M4 (two paragraphs, same term) on
/// #and(WWW NII) — the paper's key example.
std::unique_ptr<DerivationScheme> MakeSubqueryAwareScheme();

/// Creates a scheme by name: "max", "avg", "wtype" (default weights:
/// DOCTITLE/SECTITLE 2.0), "length", "subquery".
StatusOr<std::unique_ptr<DerivationScheme>> MakeScheme(
    const std::string& name);

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_DERIVATION_H_
