#include "coupling/result_buffer.h"

#include "oodb/storage/serializer.h"

namespace sdms::coupling {

using oodb::Decoder;
using oodb::Encoder;

namespace {

// Process-wide aggregates over every buffer instance (each Collection
// owns one); the per-instance counters back the hits()/misses()
// accessors that tests and benches read per collection.
obs::Counter& GlobalHits() {
  static obs::Counter& c = obs::GetCounter("coupling.result_buffer.hits");
  return c;
}

obs::Counter& GlobalMisses() {
  static obs::Counter& c = obs::GetCounter("coupling.result_buffer.misses");
  return c;
}

obs::Counter& GlobalEvictions() {
  static obs::Counter& c = obs::GetCounter("coupling.result_buffer.evictions");
  return c;
}

obs::Gauge& GlobalEntries() {
  static obs::Gauge& g = obs::GetGauge("coupling.result_buffer.entries");
  return g;
}

obs::Gauge& GlobalBytes() {
  static obs::Gauge& g = obs::GetGauge("coupling.result_buffer.bytes");
  return g;
}

}  // namespace

const OidScoreMap* ResultBuffer::Get(const std::string& query) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query);
  if (it == entries_.end()) {
    misses_.Increment();
    GlobalMisses().Increment();
    return nullptr;
  }
  hits_.Increment();
  GlobalHits().Increment();
  Touch(query, it->second);
  return &it->second.result;
}

void ResultBuffer::Put(const std::string& query, OidScoreMap result) {
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(query, std::move(result));
}

void ResultBuffer::PutLocked(const std::string& query, OidScoreMap result) {
  size_t new_bytes = ApproxEntryBytes(query, result);
  auto it = entries_.find(query);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    bytes_ += new_bytes;
    GlobalBytes().Add(static_cast<int64_t>(new_bytes) -
                      static_cast<int64_t>(it->second.bytes));
    it->second.result = std::move(result);
    it->second.bytes = new_bytes;
    Touch(query, it->second);
    EnforceBudgetLocked();
    return;
  }
  lru_.push_front(query);
  Entry e;
  e.result = std::move(result);
  e.lru_it = lru_.begin();
  e.bytes = new_bytes;
  entries_.emplace(query, std::move(e));
  bytes_ += new_bytes;
  GlobalEntries().Add(1);
  GlobalBytes().Add(static_cast<int64_t>(new_bytes));
  EnforceBudgetLocked();
}

void ResultBuffer::EnforceBudgetLocked() {
  // The MRU head (the entry just stored/refreshed) is never evicted:
  // shedding what the current query needs would only force a re-fetch.
  while (entries_.size() > 1 &&
         ((capacity_ > 0 && entries_.size() > capacity_) ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    GlobalBytes().Add(-static_cast<int64_t>(it->second.bytes));
    entries_.erase(it);
    lru_.pop_back();
    evictions_.Increment();
    GlobalEvictions().Increment();
    GlobalEntries().Add(-1);
  }
}

void ResultBuffer::InsertValue(const std::string& query, Oid oid,
                               double score) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query);
  if (it == entries_.end()) {
    PutLocked(query, OidScoreMap{{oid, score}});
    return;
  }
  size_t before = it->second.result.size();
  it->second.result[oid] = score;
  if (it->second.result.size() != before) {
    it->second.bytes += kBytesPerScore;
    bytes_ += kBytesPerScore;
    GlobalBytes().Add(static_cast<int64_t>(kBytesPerScore));
    EnforceBudgetLocked();
  }
}

void ResultBuffer::Touch(const std::string& query, Entry& e) {
  lru_.erase(e.lru_it);
  lru_.push_front(query);
  e.lru_it = lru_.begin();
}

void ResultBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void ResultBuffer::ClearLocked() {
  GlobalEntries().Add(-static_cast<int64_t>(entries_.size()));
  GlobalBytes().Add(-static_cast<int64_t>(bytes_));
  bytes_ = 0;
  entries_.clear();
  lru_.clear();
}

void ResultBuffer::Erase(const std::string& query) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  GlobalBytes().Add(-static_cast<int64_t>(it->second.bytes));
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  GlobalEntries().Add(-1);
}

std::string ResultBuffer::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  Encoder enc;
  enc.PutU64(entries_.size());
  // Persist in LRU order so the order is restored too.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const Entry& e = entries_.at(*it);
    enc.PutString(*it);
    enc.PutU64(e.result.size());
    for (const auto& [oid, score] : e.result) {
      enc.PutU64(oid.raw());
      enc.PutDouble(score);
    }
  }
  return enc.Release();
}

Status ResultBuffer::Restore(std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
  Decoder dec(data);
  SDMS_ASSIGN_OR_RETURN(uint64_t n, dec.GetU64());
  for (uint64_t i = 0; i < n; ++i) {
    SDMS_ASSIGN_OR_RETURN(std::string query, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(uint64_t m, dec.GetU64());
    OidScoreMap result;
    for (uint64_t k = 0; k < m; ++k) {
      SDMS_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
      SDMS_ASSIGN_OR_RETURN(double score, dec.GetDouble());
      result.emplace(Oid(raw), score);
    }
    PutLocked(query, std::move(result));
  }
  return Status::OK();
}

}  // namespace sdms::coupling
