#include "coupling/coupling.h"

#include <algorithm>
#include <cstdlib>

#include "coupling/remote_shard.h"

#include "common/file_util.h"
#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/obs/stats.h"
#include "common/string_util.h"
#include "oodb/builtins.h"
#include "oodb/query/parser.h"
#include "oodb/storage/serializer.h"

namespace sdms::coupling {

using oodb::AttributeDef;
using oodb::ClassDef;
using oodb::Database;
using oodb::MethodContext;
using oodb::TxnId;
using oodb::UpdateKind;
using oodb::Value;
using oodb::ValueDict;
using oodb::ValueList;
using oodb::ValueType;
using oodb::vql::ExprKind;
using oodb::vql::ParsedQuery;

namespace {

constexpr char kIrsObjectClass[] = "IRSObject";
constexpr char kCollectionClass[] = "COLLECTION";

// Structural attributes every IRSObject carries.
constexpr char kAttrGi[] = "GI";
constexpr char kAttrText[] = "TEXT";
constexpr char kAttrChildren[] = "CHILDREN";
constexpr char kAttrParent[] = "PARENT";
constexpr char kAttrOrd[] = "ORD";

/// Events the dispatcher dropped because the target collection's
/// routed high-water mark already covered them (recovery re-delivery).
obs::Counter& RouteDuplicates() {
  static obs::Counter& c =
      obs::GetCounter("coupling.propagate.duplicates_skipped");
  return c;
}

obs::Counter& RecoveredInflight() {
  static obs::Counter& c =
      obs::GetCounter("coupling.propagate.recovered_inflight");
  return c;
}

}  // namespace

Coupling::Coupling(Database* db, irs::IrsEngine* engine, Options options)
    : db_(db), engine_(engine), options_(std::move(options)),
      query_engine_(db), admission_(options_.admission) {}

Coupling::~Coupling() {
  if (initialized_) {
    db_->RemoveUpdateListener(this);
    if (!options_.irs_snapshot_dir.empty()) db_->SetCheckpointHook(nullptr);
  }
}

Status Coupling::Initialize() {
  if (initialized_) return Status::FailedPrecondition("already initialized");
  SDMS_RETURN_IF_ERROR(oodb::RegisterBuiltins(*db_));
  SDMS_RETURN_IF_ERROR(RegisterCouplingSchema());
  SDMS_RETURN_IF_ERROR(RegisterIrsObjectMethods());
  SDMS_RETURN_IF_ERROR(RegisterCollectionMethods());
  SDMS_RETURN_IF_ERROR(RegisterBuiltinTextModes());
  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<oodb::Wal>();
    SDMS_RETURN_IF_ERROR(journal_->Open(options_.journal_path));
  }
  if (!options_.irs_snapshot_dir.empty()) {
    // The checkpoint hook persists the IRS (and parks pending ops in
    // the journal) before the database WAL is truncated, so no update
    // event disappears while its effect exists only in memory.
    db_->SetCheckpointHook([this]() { return PersistIrs(); });
    // Warm the statistics service from the previous run's checkpoint so
    // the optimizer has real term DFs and latencies from the start. A
    // missing file is the normal cold start, not an error.
    std::string stats_path = options_.irs_snapshot_dir + "/stats.sdms";
    if (FileSize(stats_path).ok()) {
      Status loaded =
          obs::StatisticsService::Instance().LoadFromFile(stats_path);
      if (loaded.ok()) {
        SDMS_LOG(INFO) << "restored query statistics from " << stats_path;
      } else {
        SDMS_LOG(WARN) << "ignoring unreadable stats file " << stats_path
                       << ": " << loaded.ToString();
      }
    }
  }
  db_->AddUpdateListener(this);
  db_->set_coupling_context(this);
  query_engine_.AddPrepareHook(
      [this](Database&, const ParsedQuery& query) {
        return PrepareIrsConjuncts(query);
      });
  initialized_ = true;
  return Status::OK();
}

Status Coupling::RegisterCouplingSchema() {
  if (!db_->schema().HasClass(kIrsObjectClass)) {
    ClassDef irs_object;
    irs_object.name = kIrsObjectClass;
    irs_object.super = oodb::kObjectClass;
    irs_object.abstract = true;
    irs_object.attributes = {
        AttributeDef{kAttrGi, ValueType::kString, Value()},
        AttributeDef{kAttrText, ValueType::kString, Value()},
        AttributeDef{kAttrChildren, ValueType::kList, Value()},
        AttributeDef{kAttrParent, ValueType::kOid, Value()},
        AttributeDef{kAttrOrd, ValueType::kInt, Value()},
    };
    SDMS_RETURN_IF_ERROR(db_->schema().DefineClass(std::move(irs_object)));
  }
  if (!db_->schema().HasClass(kCollectionClass)) {
    ClassDef collection;
    collection.name = kCollectionClass;
    collection.super = oodb::kObjectClass;
    collection.attributes = {
        AttributeDef{"NAME", ValueType::kString, Value()},
        AttributeDef{"SPECQUERY", ValueType::kString, Value()},
        AttributeDef{"TEXTMODE", ValueType::kInt, Value()},
        AttributeDef{"IRSMODEL", ValueType::kString, Value()},
    };
    SDMS_RETURN_IF_ERROR(db_->schema().DefineClass(std::move(collection)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

StatusOr<Collection*> Coupling::CreateCollection(
    const std::string& name, const std::string& model_name,
    irs::AnalyzerOptions analyzer_options) {
  if (collections_by_name_.count(name) > 0) {
    return Status::AlreadyExists("collection exists: " + name);
  }
  SDMS_RETURN_IF_ERROR(
      engine_->CreateCollection(name, analyzer_options, model_name).status());
  SDMS_ASSIGN_OR_RETURN(Oid oid, db_->CreateObject(kCollectionClass));
  SDMS_RETURN_IF_ERROR(db_->SetAttribute(oid, "NAME", Value(name)));
  SDMS_RETURN_IF_ERROR(db_->SetAttribute(oid, "IRSMODEL", Value(model_name)));
  // The inference-network model assigns the default belief to documents
  // without evidence; other models score them zero.
  double missing = model_name == "inquery" ? 0.4 : 0.0;
  auto collection = std::make_unique<Collection>(this, oid, name, missing);
  Collection* raw = collection.get();
  collections_.emplace(oid, std::move(collection));
  collections_by_name_.emplace(name, oid);
  return raw;
}

StatusOr<Collection*> Coupling::GetCollection(Oid oid) {
  auto it = collections_.find(oid);
  if (it == collections_.end()) {
    return Status::NotFound("no COLLECTION object " + oid.ToString());
  }
  return it->second.get();
}

StatusOr<Collection*> Coupling::GetCollectionByName(const std::string& name) {
  auto it = collections_by_name_.find(name);
  if (it == collections_by_name_.end()) {
    return Status::NotFound("no collection named " + name);
  }
  return GetCollection(it->second);
}

std::vector<Collection*> Coupling::collections() {
  std::vector<Collection*> out;
  out.reserve(collections_.size());
  for (auto& [oid, c] : collections_) out.push_back(c.get());
  return out;
}

Status Coupling::ConnectRemoteShards(const std::string& collection_name,
                                     const std::string& endpoints) {
  SDMS_ASSIGN_OR_RETURN(Collection * collection,
                        GetCollectionByName(collection_name));
  SDMS_ASSIGN_OR_RETURN(irs::IrsCollection * coll,
                        engine_->GetCollection(collection_name));
  std::vector<std::string> parts = Split(endpoints, ',');
  if (parts.size() > coll->num_shards()) {
    return Status::InvalidArgument(
        "endpoint list names " + std::to_string(parts.size()) +
        " shards, collection '" + collection_name + "' has " +
        std::to_string(coll->num_shards()));
  }
  Status first_failure = Status::OK();
  for (size_t s = 0; s < parts.size(); ++s) {
    const std::string& ep = parts[s];
    if (ep.empty()) continue;  // this shard stays in-process
    size_t colon = ep.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == ep.size()) {
      return Status::InvalidArgument("malformed shard endpoint '" + ep +
                                     "' (want host:port)");
    }
    char* end = nullptr;
    unsigned long port = std::strtoul(ep.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
      return Status::InvalidArgument("malformed shard endpoint port in '" +
                                     ep + "'");
    }
    RemoteShardOptions opts;
    opts.host = ep.substr(0, colon);
    opts.port = static_cast<uint16_t>(port);
    opts.collection = collection_name;
    opts.shard = static_cast<uint32_t>(s);
    opts.num_shards = static_cast<uint32_t>(coll->num_shards());
    opts.model_name = coll->model().name();
    opts.analyzer = coll->analyzer().options();
    Status attached = collection->AttachRemoteShard(
        s, std::make_shared<RemoteShardChannel>(opts));
    if (!attached.ok()) {
      SDMS_LOG(WARN) << "remote shard " << collection_name << "/" << s
                     << " at " << ep << " not yet synced: "
                     << attached.ToString();
      if (first_failure.ok()) first_failure = attached;
    }
  }
  return first_failure;
}

Status Coupling::DropCollection(const std::string& name) {
  auto it = collections_by_name_.find(name);
  if (it == collections_by_name_.end()) {
    return Status::NotFound("no collection named " + name);
  }
  Oid oid = it->second;
  SDMS_RETURN_IF_ERROR(engine_->DropCollection(name));
  collections_.erase(oid);
  collections_by_name_.erase(it);
  return db_->DeleteObject(oid);
}

StatusOr<size_t> Coupling::RestoreCollections() {
  size_t restored = 0;
  for (Oid oid : db_->Extent(kCollectionClass)) {
    if (collections_.count(oid) > 0) continue;
    auto name = db_->GetAttribute(oid, "NAME");
    if (!name.ok() || !name->is_string()) continue;
    if (collections_by_name_.count(name->as_string()) > 0) continue;
    // The IRS collection must have been restored already.
    auto irs_coll = engine_->GetCollection(name->as_string());
    if (!irs_coll.ok()) continue;

    auto model = db_->GetAttribute(oid, "IRSMODEL");
    std::string model_name =
        model.ok() && model->is_string() ? model->as_string() : "inquery";
    double missing = model_name == "inquery" ? 0.4 : 0.0;
    auto collection =
        std::make_unique<Collection>(this, oid, name->as_string(), missing);

    // Reattach the persisted indexing configuration.
    auto spec = db_->GetAttribute(oid, "SPECQUERY");
    if (spec.ok() && spec->is_string() && !spec->as_string().empty()) {
      auto parsed = oodb::vql::ParseQuery(spec->as_string());
      if (parsed.ok()) {
        collection->spec_query_ = spec->as_string();
        collection->parsed_spec_ = std::move(*parsed);
      }
    }
    auto mode = db_->GetAttribute(oid, "TEXTMODE");
    if (mode.ok() && mode->is_int()) {
      collection->text_mode_ = static_cast<int>(mode->as_int());
    }
    // The represented set is exactly the restored index's live keys,
    // gathered across every shard.
    (*irs_coll)->ForEachDoc(
        [&](size_t, irs::DocId, const irs::DocInfo& info) {
          if (StartsWith(info.key, "oid:")) {
            try {
              collection->represented_.insert(
                  Oid(std::stoull(info.key.substr(4))));
            } catch (...) {
              // Foreign key format: leave unrepresented.
            }
          }
        });
    // Exactly-once floor: every sequenced event at or below the
    // snapshot's high-water mark is already reflected in (or cancelled
    // out of) the restored index, so recovery must not re-route it.
    collection->last_routed_seq_ = (*irs_coll)->applied_seq();
    collections_by_name_.emplace(name->as_string(), oid);
    collections_.emplace(oid, std::move(collection));
    ++restored;
  }
  return restored;
}

Status Coupling::SetDefaultCollection(const std::string& name) {
  SDMS_RETURN_IF_ERROR(GetCollectionByName(name).status());
  default_collection_ = name;
  return Status::OK();
}

Status Coupling::SetClassCollection(const std::string& class_name,
                                    const std::string& collection_name) {
  if (!db_->schema().HasClass(class_name)) {
    return Status::NotFound("no class " + class_name);
  }
  SDMS_RETURN_IF_ERROR(GetCollectionByName(collection_name).status());
  class_collections_[class_name] = collection_name;
  return Status::OK();
}

StatusOr<Collection*> Coupling::ChooseCollectionFor(Oid obj) {
  // Most-derived class mapping first (alternative (3)).
  auto cls_or = db_->ClassOf(obj);
  if (cls_or.ok()) {
    std::string cur = *cls_or;
    while (!cur.empty()) {
      auto it = class_collections_.find(cur);
      if (it != class_collections_.end()) {
        return GetCollectionByName(it->second);
      }
      auto def = db_->schema().GetClass(cur);
      if (!def.ok()) break;
      cur = (*def)->super;
    }
  }
  // Fallback: the hard-wired default (alternative (1)).
  if (!default_collection_.empty()) {
    return GetCollectionByName(default_collection_);
  }
  return Status::FailedPrecondition(
      "no collection configured for " + obj.ToString() +
      " (pass one explicitly, or SetDefaultCollection / "
      "SetClassCollection first)");
}

StatusOr<Collection*> Coupling::ResolveCollectionArg(const Value& v) {
  if (v.is_oid()) return GetCollection(v.as_oid());
  if (v.is_string()) return GetCollectionByName(v.as_string());
  return Status::TypeError(
      "collection argument must be a COLLECTION object or name, got " +
      v.ToString());
}

// ---------------------------------------------------------------------------
// Text modes
// ---------------------------------------------------------------------------

void Coupling::RegisterTextProvider(int mode, TextProvider provider) {
  text_providers_[mode] = std::move(provider);
}

StatusOr<std::string> Coupling::GetText(Oid obj, int mode) {
  auto it = text_providers_.find(mode);
  if (it == text_providers_.end()) {
    return Status::NotFound("no text provider for mode " +
                            std::to_string(mode));
  }
  return it->second(*db_, obj);
}

Status Coupling::RegisterBuiltinTextModes() {
  // Mode 0: all leaf text of the subtree (the paper's SGML default:
  // "by inspecting the leaves of the subtree rooted at an element,
  // getText identifies its representation").
  RegisterTextProvider(kTextModeSubtree,
                       [this](Database&, Oid oid) -> StatusOr<std::string> {
                         return SubtreeText(oid);
                       });
  // Mode 1: the element's own text only.
  RegisterTextProvider(kTextModeDirect,
                       [](Database& db, Oid oid) -> StatusOr<std::string> {
                         SDMS_ASSIGN_OR_RETURN(Value text,
                                               db.GetAttribute(oid, kAttrText));
                         return text.is_string() ? text.as_string()
                                                 : std::string();
                       });
  // Mode 2: automatically generated abstract from the titles of all
  // subobjects (Section 4.3.1, alternative (1)).
  RegisterTextProvider(
      kTextModeTitles, [this](Database& db, Oid oid) -> StatusOr<std::string> {
        std::string out;
        std::vector<Oid> stack = {oid};
        while (!stack.empty()) {
          Oid cur = stack.back();
          stack.pop_back();
          SDMS_ASSIGN_OR_RETURN(std::string cls, db.ClassOf(cur));
          if (cls.find("TITLE") != std::string::npos) {
            SDMS_ASSIGN_OR_RETURN(std::string text, SubtreeText(cur));
            if (!out.empty()) out += " ";
            out += text;
          }
          SDMS_ASSIGN_OR_RETURN(std::vector<Oid> children, ChildrenOf(cur));
          for (auto it = children.rbegin(); it != children.rend(); ++it) {
            stack.push_back(*it);
          }
        }
        return out;
      });
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SGML document storage (Section 4.1)
// ---------------------------------------------------------------------------

Status Coupling::RegisterDtdClasses(const sgml::Dtd& dtd) {
  for (const std::string& name : dtd.element_names()) {
    if (db_->schema().HasClass(name)) continue;
    SDMS_ASSIGN_OR_RETURN(const sgml::ElementDecl* decl,
                          dtd.GetElement(name));
    ClassDef cls;
    cls.name = name;
    cls.super = kIrsObjectClass;
    for (const sgml::AttributeDecl& attr : decl->attributes) {
      AttributeDef def;
      def.name = attr.name;
      def.type = attr.type == sgml::AttrType::kNumber ? ValueType::kInt
                                                      : ValueType::kString;
      if (attr.has_default) def.default_value = Value(attr.default_value);
      cls.attributes.push_back(std::move(def));
    }
    SDMS_RETURN_IF_ERROR(db_->schema().DefineClass(std::move(cls)));
  }
  return Status::OK();
}

StatusOr<Oid> Coupling::StoreDocument(const sgml::Document& doc) {
  if (doc.root == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  TxnId txn = db_->Begin();
  auto root_or = StoreElement(*doc.root, kNullOid, 0, txn);
  if (!root_or.ok()) {
    (void)db_->Abort(txn);
    return root_or.status();
  }
  SDMS_RETURN_IF_ERROR(db_->Commit(txn));
  return *root_or;
}

StatusOr<Oid> Coupling::StoreElement(const sgml::ElementNode& element,
                                     Oid parent, int ord, TxnId txn) {
  if (!db_->schema().HasClass(element.gi())) {
    return Status::NotFound("no element-type class for " + element.gi() +
                            " (RegisterDtdClasses first)");
  }
  SDMS_ASSIGN_OR_RETURN(Oid oid, db_->CreateObject(element.gi(), txn));
  SDMS_RETURN_IF_ERROR(
      db_->SetAttribute(oid, kAttrGi, Value(element.gi()), txn));
  if (parent.valid()) {
    SDMS_RETURN_IF_ERROR(
        db_->SetAttribute(oid, kAttrParent, Value(parent), txn));
  }
  SDMS_RETURN_IF_ERROR(
      db_->SetAttribute(oid, kAttrOrd, Value(static_cast<int64_t>(ord)), txn));
  // SGML attributes (declared ones are schema-typed).
  for (const auto& [name, raw] : element.attributes()) {
    auto decl = db_->schema().FindAttribute(element.gi(), name);
    if (!decl.ok()) continue;  // Undeclared: dropped (validator reports).
    Value value;
    if ((*decl)->type == ValueType::kInt) {
      try {
        value = Value(static_cast<int64_t>(std::stoll(raw)));
      } catch (...) {
        return Status::TypeError("attribute " + name + " of " + element.gi() +
                                 " is not numeric: " + raw);
      }
    } else {
      value = Value(raw);
    }
    SDMS_RETURN_IF_ERROR(db_->SetAttribute(oid, name, value, txn));
  }
  SDMS_RETURN_IF_ERROR(
      db_->SetAttribute(oid, kAttrText, Value(element.DirectText()), txn));
  ValueList children;
  int child_ord = 0;
  for (const sgml::Node& n : element.children()) {
    if (n.kind != sgml::Node::Kind::kElement) continue;
    SDMS_ASSIGN_OR_RETURN(Oid child,
                          StoreElement(*n.element, oid, child_ord++, txn));
    children.push_back(Value(child));
  }
  SDMS_RETURN_IF_ERROR(
      db_->SetAttribute(oid, kAttrChildren, Value(std::move(children)), txn));
  return oid;
}

StatusOr<std::vector<Oid>> Coupling::ChildrenOf(Oid oid) const {
  SDMS_ASSIGN_OR_RETURN(Value children, db_->GetAttribute(oid, kAttrChildren));
  std::vector<Oid> out;
  if (!children.is_list()) return out;
  for (const Value& v : children.as_list()) {
    if (v.is_oid()) out.push_back(v.as_oid());
  }
  return out;
}

StatusOr<Oid> Coupling::ParentOf(Oid oid) const {
  SDMS_ASSIGN_OR_RETURN(Value parent, db_->GetAttribute(oid, kAttrParent));
  return parent.is_oid() ? parent.as_oid() : kNullOid;
}

StatusOr<Oid> Coupling::ContainingOf(Oid oid, const std::string& gi) const {
  Oid cur = oid;
  while (cur.valid()) {
    SDMS_ASSIGN_OR_RETURN(std::string cls, db_->ClassOf(cur));
    if (cls == gi) return cur;
    SDMS_ASSIGN_OR_RETURN(cur, ParentOf(cur));
  }
  return kNullOid;
}

StatusOr<Oid> Coupling::NextSiblingOf(Oid oid) const {
  SDMS_ASSIGN_OR_RETURN(Oid parent, ParentOf(oid));
  if (!parent.valid()) return kNullOid;
  SDMS_ASSIGN_OR_RETURN(std::vector<Oid> siblings, ChildrenOf(parent));
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i] == oid) {
      return i + 1 < siblings.size() ? siblings[i + 1] : kNullOid;
    }
  }
  return kNullOid;
}

StatusOr<std::string> Coupling::SubtreeText(Oid oid) const {
  SDMS_ASSIGN_OR_RETURN(Value text, db_->GetAttribute(oid, kAttrText));
  std::string out = text.is_string() ? text.as_string() : std::string();
  SDMS_ASSIGN_OR_RETURN(std::vector<Oid> children, ChildrenOf(oid));
  for (Oid child : children) {
    SDMS_ASSIGN_OR_RETURN(std::string part, SubtreeText(child));
    if (part.empty()) continue;
    if (!out.empty()) out += " ";
    out += part;
  }
  return out;
}

Status Coupling::DeleteSubtree(Oid oid) {
  SDMS_ASSIGN_OR_RETURN(Oid parent, ParentOf(oid));
  // Collect the subtree bottom-up.
  std::vector<Oid> order;
  std::vector<Oid> stack = {oid};
  while (!stack.empty()) {
    Oid cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    SDMS_ASSIGN_OR_RETURN(std::vector<Oid> children, ChildrenOf(cur));
    for (Oid c : children) stack.push_back(c);
  }
  TxnId txn = db_->Begin();
  // Unlink from the parent first: the CHILDREN update is a modify event
  // on the parent, which tells collections the ancestor text changed.
  if (parent.valid()) {
    auto children_or = db_->GetAttribute(parent, kAttrChildren);
    if (children_or.ok() && children_or->is_list()) {
      ValueList rest;
      for (const Value& v : children_or->as_list()) {
        if (!(v.is_oid() && v.as_oid() == oid)) rest.push_back(v);
      }
      Status s = db_->SetAttribute(parent, kAttrChildren,
                                   Value(std::move(rest)), txn);
      if (!s.ok()) {
        (void)db_->Abort(txn);
        return s;
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Status s = db_->DeleteObject(*it, txn);
    if (!s.ok()) {
      (void)db_->Abort(txn);
      return s;
    }
  }
  return db_->Commit(txn);
}

// ---------------------------------------------------------------------------
// Update dispatch (Section 4.6)
// ---------------------------------------------------------------------------

void Coupling::OnUpdate(UpdateKind kind, Oid oid,
                        const std::string& class_name,
                        const std::string& attr, uint64_t seq) {
  (void)attr;
  RouteUpdate(kind, oid, class_name, seq);
}

void Coupling::RouteUpdate(UpdateKind kind, Oid oid,
                           const std::string& class_name, uint64_t seq) {
  if (class_name == kCollectionClass || collections_.empty()) return;
  // Indirect effect: the text of every ancestor changed as well (its
  // getText covers the subtree). The ancestors are collected once;
  // their modifies share the event's seq, so a collection's routed
  // high-water mark only advances after the direct effect *and* every
  // ancestor modify are recorded — never in between.
  std::vector<Oid> ancestors;
  if (kind != UpdateKind::kDelete) {
    auto parent_or = ParentOf(oid);
    while (parent_or.ok() && parent_or->valid()) {
      ancestors.push_back(*parent_or);
      parent_or = ParentOf(*parent_or);
    }
  }
  for (auto& [coid, collection] : collections_) {
    // Exactly-once guard: recovery re-delivers WAL events from the
    // last checkpoint on; those already covered are duplicates. The
    // check is per shard: an event concerns exactly one shard (each
    // ancestor its own), and that shard's applied floor says exactly
    // whether the effect survives in the restored index. The
    // collection-wide routed mark alone undershoots after a restart
    // (it restores as the minimum across shards), and a re-delivered
    // durable insert is not merely wasted work — it folds with a
    // fresh modify of the same object into a net insert the duplicate
    // check then swallows, or with a fresh delete into annihilation.
    auto irs_coll = engine_->GetCollection(collection->irs_collection_name());
    auto floor_for = [&](Oid target) {
      uint64_t floor = collection->last_routed_seq();
      if (irs_coll.ok()) {
        floor = std::max(floor, (*irs_coll)->shard_applied_seq(
                                    (*irs_coll)->ShardOfKey(
                                        target.ToString())));
      }
      return floor;
    };
    if (seq != 0 && seq <= floor_for(oid)) {
      RouteDuplicates().Increment();
      continue;
    }
    Status s = Status::OK();
    switch (kind) {
      case UpdateKind::kInsert:
        s = collection->OnInsert(oid, seq);
        break;
      case UpdateKind::kModify:
        s = collection->OnModify(oid, seq);
        break;
      case UpdateKind::kDelete:
        s = collection->OnDelete(oid, seq);
        break;
    }
    (void)s;  // Propagation errors surface on the next query.
    for (Oid ancestor : ancestors) {
      if (collection->Represents(ancestor) &&
          (seq == 0 || seq > floor_for(ancestor))) {
        (void)collection->OnModify(ancestor, seq);
      }
    }
    collection->NoteRoutedSeq(seq);
  }
}

// ---------------------------------------------------------------------------
// Exactly-once propagation: journal, recovery, persistence
// ---------------------------------------------------------------------------

namespace {

std::string EncodePrepare(Oid collection, uint32_t shard, uint64_t high,
                          const std::vector<PendingOp>& ops) {
  oodb::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(oodb::WalRecordType::kPropagatePrepare));
  enc.PutU64(collection.raw());
  enc.PutU32(shard);
  enc.PutU64(high);
  enc.PutU32(static_cast<uint32_t>(ops.size()));
  for (const PendingOp& op : ops) {
    enc.PutU8(static_cast<uint8_t>(op.kind));
    enc.PutU64(op.oid.raw());
    enc.PutU64(op.seq);
  }
  return std::string(enc.data());
}

}  // namespace

Status Coupling::JournalPrepare(Oid collection, uint32_t shard, uint64_t high,
                                const std::vector<PendingOp>& ops) {
  if (journal_ == nullptr) return Status::OK();
  return journal_->AppendDurable(EncodePrepare(collection, shard, high, ops));
}

Status Coupling::JournalCommit(Oid collection, uint32_t shard, uint64_t high) {
  if (journal_ == nullptr) return Status::OK();
  oodb::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(oodb::WalRecordType::kPropagateCommit));
  enc.PutU64(collection.raw());
  enc.PutU32(shard);
  enc.PutU64(high);
  return journal_->AppendDurable(enc.data());
}

Status Coupling::RecoverPropagation() {
  // (1) Journal replay. A commit record only proves the batch was
  // applied to the *in-memory* index — if the process died before the
  // next SaveTo, those effects are gone, and for ops whose database
  // WAL events a checkpoint already truncated (the parked prepares)
  // the journal is the only durable record left. So commits are NOT
  // trusted to resolve prepares here; the one durable truth is the
  // restored snapshot's high-water mark, and every journaled batch
  // above that floor is folded back into the collection's update log.
  // The reconciling ApplyOp makes replay idempotent, so this
  // over-approximation (re-delivering batches that did apply and
  // commit but were never persisted) is safe — duplicates reconcile
  // to no-ops.
  struct PreparedBatch {
    uint32_t shard = 0;
    uint64_t high = 0;
    std::vector<PendingOp> ops;
  };
  if (!options_.journal_path.empty()) {
    std::map<Oid, std::vector<PreparedBatch>> prepared;
    SDMS_RETURN_IF_ERROR(oodb::Wal::Replay(
        options_.journal_path, [&](std::string_view payload) -> Status {
          oodb::Decoder dec(payload);
          SDMS_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
          if (type ==
              static_cast<uint8_t>(oodb::WalRecordType::kPropagatePrepare)) {
            SDMS_ASSIGN_OR_RETURN(uint64_t coll_raw, dec.GetU64());
            PreparedBatch batch;
            SDMS_ASSIGN_OR_RETURN(batch.shard, dec.GetU32());
            SDMS_ASSIGN_OR_RETURN(batch.high, dec.GetU64());
            SDMS_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
            for (uint32_t i = 0; i < count; ++i) {
              SDMS_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
              if (kind > static_cast<uint8_t>(UpdateKind::kDelete)) {
                return Status::Corruption("bad op kind in prepare record");
              }
              SDMS_ASSIGN_OR_RETURN(uint64_t oid_raw, dec.GetU64());
              SDMS_ASSIGN_OR_RETURN(uint64_t seq, dec.GetU64());
              batch.ops.push_back(PendingOp{static_cast<UpdateKind>(kind),
                                            Oid(oid_raw), seq});
            }
            prepared[Oid(coll_raw)].push_back(std::move(batch));
          } else if (type == static_cast<uint8_t>(
                                 oodb::WalRecordType::kPropagateCommit)) {
            // Advisory only (see above): the batch completed in memory
            // at the time, which says nothing about durability.
            SDMS_ASSIGN_OR_RETURN(uint64_t coll_raw, dec.GetU64());
            SDMS_ASSIGN_OR_RETURN(uint32_t shard, dec.GetU32());
            SDMS_ASSIGN_OR_RETURN(uint64_t high, dec.GetU64());
            (void)coll_raw;
            (void)shard;
            (void)high;
          } else {
            return Status::Corruption("unknown propagation-journal record");
          }
          return Status::OK();
        }));
    for (auto& [coid, batches] : prepared) {
      auto it = collections_.find(coid);
      if (it == collections_.end()) continue;
      // The durable floor: every sequenced effect at or below it is in
      // the restored index (the floor only ever advances on a fully
      // applied batch, and the snapshot persisted that index). Ops at
      // or below the floor must NOT be requeued — not just as an
      // optimization: re-delivering an already-durable insert would
      // fold with a later re-routed delete of the same object and
      // annihilate in the update log, silently dropping the delete.
      // Unsequenced ops (seq 0, direct API calls) are requeued
      // conservatively; their replay reconciles to a no-op.
      //
      // Floors are per shard: a prepare is scoped to one shard, and
      // that shard's restored applied_seq tells exactly whether its
      // sub-batch is in the snapshot — shard 2 may have committed high
      // while shard 0 faulted and stayed behind. When the record's
      // shard no longer exists (shard count changed across restarts,
      // e.g. a legacy single-shard snapshot), the collection-wide
      // minimum is the conservative floor.
      auto irs_coll = engine_->GetCollection(it->second->irs_collection_name());
      uint64_t min_floor = it->second->last_routed_seq();
      size_t requeued = 0;
      for (const PreparedBatch& batch : batches) {
        uint64_t floor = min_floor;
        if (irs_coll.ok() && batch.shard < (*irs_coll)->num_shards()) {
          floor = (*irs_coll)->shard_applied_seq(batch.shard);
        }
        if (batch.high < floor) continue;
        for (const PendingOp& op : batch.ops) {
          if (op.seq != 0 && op.seq <= floor) continue;
          it->second->update_log_.Requeue(op);
          ++requeued;
        }
      }
      if (requeued > 0) {
        RecoveredInflight().Add(requeued);
        SDMS_LOG(INFO) << "recovery: requeued " << requeued
                       << " in-flight op(s) for '"
                       << it->second->irs_collection_name()
                       << "' from the propagation journal";
      }
    }
  }
  // (2) Re-route the committed update events the database WAL
  // re-delivered. Per collection, the routing guard drops the ones its
  // restored high-water mark already covers.
  for (const oodb::RecoveredUpdate& ev : db_->TakeRecoveredUpdates()) {
    RouteUpdate(ev.kind, ev.oid, ev.cls, ev.seq);
  }
  // (3) Sweep stray files a crashed run left behind: half-written
  // snapshot temps, and (when this coupling owns a private exchange
  // directory) abandoned IRS result files. The shared /tmp default is
  // deliberately not swept — a concurrent process may be mid-exchange.
  size_t swept = 0;
  if (!options_.irs_snapshot_dir.empty()) {
    auto n = RemoveMatchingFiles(options_.irs_snapshot_dir, "", ".tmp");
    if (n.ok()) swept += *n;
  }
  if (options_.file_exchange && options_.exchange_dir != "/tmp") {
    auto n = RemoveMatchingFiles(options_.exchange_dir, "irs_result_", "");
    if (n.ok()) swept += *n;
  }
  obs::GetGauge("coupling.recovery.swept_files")
      .Set(static_cast<int64_t>(swept));
  if (swept > 0) {
    SDMS_LOG(INFO) << "recovery: swept " << swept << " stray file(s)";
  }
  return Status::OK();
}

Status Coupling::PersistIrs() {
  if (options_.irs_snapshot_dir.empty()) {
    return Status::FailedPrecondition("no irs_snapshot_dir configured");
  }
  SDMS_RETURN_IF_ERROR(engine_->SaveTo(options_.irs_snapshot_dir));
  // Statistics ride along with every checkpoint; losing them costs only
  // optimizer warmth, so a failure here degrades to a warning.
  Status stats_saved = obs::StatisticsService::Instance().SaveToFile(
      options_.irs_snapshot_dir + "/stats.sdms");
  if (!stats_saved.ok()) {
    SDMS_LOG(WARN) << "failed to persist query statistics: "
                   << stats_saved.ToString();
  }
  if (journal_ != nullptr) {
    // Everything applied is now durable (the snapshots carry their
    // high-water marks), so the journal's history is obsolete — except
    // for still-pending ops: once the database checkpoint this persist
    // precedes truncates the WAL, their update events are gone, making
    // the journal their only durable record. Park them as uncommitted
    // prepares; recovery requeues those unconditionally.
    //
    // The swap to parks-only MUST be atomic. A previous checkpoint may
    // have parked these same ops and truncated their WAL events, so if
    // the journal were truncated first and the parks appended after, a
    // crash between the two would destroy the ops' only durable copy —
    // a permanently lost update the reconciling replay cannot repair.
    std::vector<std::string> parked;
    for (auto& [coid, collection] : collections_) {
      std::vector<PendingOp> pending = collection->update_log_.Peek();
      if (pending.empty()) continue;
      uint64_t high = std::max(collection->last_routed_seq(),
                               collection->update_log_.last_seq());
      // Park one prepare per (collection, shard) so recovery can apply
      // its per-shard floors. Without a resolvable IRS collection the
      // ops park under shard 0; recovery then falls back to the
      // collection-wide floor, which is merely conservative.
      auto irs_coll = engine_->GetCollection(collection->irs_collection_name());
      std::map<uint32_t, std::vector<PendingOp>> by_shard;
      for (const PendingOp& op : pending) {
        uint32_t shard =
            irs_coll.ok() ? static_cast<uint32_t>(
                                (*irs_coll)->ShardOfKey(op.oid.ToString()))
                          : 0;
        by_shard[shard].push_back(op);
      }
      for (const auto& [shard, shard_ops] : by_shard) {
        parked.push_back(EncodePrepare(coid, shard, high, shard_ops));
      }
    }
    SDMS_RETURN_IF_ERROR(journal_->ReplaceAtomic(parked));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Semantic query optimization hook
// ---------------------------------------------------------------------------

Status Coupling::PrepareIrsConjuncts(const ParsedQuery& query) {
  if (query.where == nullptr) return Status::OK();
  // Walk the whole WHERE tree (not only top-level conjuncts): any
  // getIRSValue(collection-literal, query-literal) benefits from one
  // batched IRS call that warms the result buffer.
  std::vector<const oodb::vql::Expr*> stack = {query.where.get()};
  while (!stack.empty()) {
    const oodb::vql::Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == ExprKind::kMethodCall && e->name == "getIRSValue" &&
        e->args.size() == 2 && e->args[0]->kind == ExprKind::kLiteral &&
        e->args[0]->literal.is_string() &&
        e->args[1]->kind == ExprKind::kLiteral &&
        e->args[1]->literal.is_string()) {
      auto coll = GetCollectionByName(e->args[0]->literal.as_string());
      if (coll.ok()) {
        SDMS_RETURN_IF_ERROR(
            (*coll)->GetIrsResult(e->args[1]->literal.as_string()).status());
      }
    }
    if (e->child) stack.push_back(e->child.get());
    if (e->rhs) stack.push_back(e->rhs.get());
    for (const auto& a : e->args) stack.push_back(a.get());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VQL method registration
// ---------------------------------------------------------------------------

namespace {

Coupling* CouplingOf(const MethodContext& ctx) {
  return static_cast<Coupling*>(ctx.coupling);
}

}  // namespace

Status Coupling::RegisterIrsObjectMethods() {
  auto& methods = db_->methods();

  methods.Register(
      kIrsObjectClass, "getText",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        int mode = 0;
        if (args.size() == 1 && args[0].is_int()) {
          mode = static_cast<int>(args[0].as_int());
        } else if (!args.empty()) {
          return Status::InvalidArgument("getText takes an optional INT mode");
        }
        SDMS_ASSIGN_OR_RETURN(std::string text,
                              CouplingOf(ctx)->GetText(self, mode));
        return Value(std::move(text));
      });

  methods.Register(
      kIrsObjectClass, "getIRSValue",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        Collection* coll = nullptr;
        std::string query;
        if (args.size() == 2 && args[1].is_string()) {
          // Alternative (2) of Section 4.5.1: explicit collection.
          SDMS_ASSIGN_OR_RETURN(coll,
                                CouplingOf(ctx)->ResolveCollectionArg(args[0]));
          query = args[1].as_string();
        } else if (args.size() == 1 && args[0].is_string()) {
          // Alternatives (1)/(3): the coupling chooses the collection.
          SDMS_ASSIGN_OR_RETURN(coll,
                                CouplingOf(ctx)->ChooseCollectionFor(self));
          query = args[0].as_string();
        } else {
          return Status::InvalidArgument(
              "getIRSValue expects ([collection,] IRSQuery)");
        }
        SDMS_ASSIGN_OR_RETURN(double value, coll->FindIrsValue(query, self));
        return Value(value);
      });

  methods.Register(
      kIrsObjectClass, "deriveIRSValue",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 2 || !args[1].is_string()) {
          return Status::InvalidArgument(
              "deriveIRSValue expects (collection, IRSQuery)");
        }
        SDMS_ASSIGN_OR_RETURN(Collection * coll,
                              CouplingOf(ctx)->ResolveCollectionArg(args[0]));
        SDMS_ASSIGN_OR_RETURN(double value,
                              coll->DeriveIrsValue(args[1].as_string(), self));
        return Value(value);
      });

  methods.Register(
      kIrsObjectClass, "getChildren",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>&) -> StatusOr<Value> {
        SDMS_ASSIGN_OR_RETURN(std::vector<Oid> children,
                              CouplingOf(ctx)->ChildrenOf(self));
        ValueList out;
        out.reserve(children.size());
        for (Oid c : children) out.push_back(Value(c));
        return Value(std::move(out));
      });

  methods.Register(
      kIrsObjectClass, "getParent",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>&) -> StatusOr<Value> {
        SDMS_ASSIGN_OR_RETURN(Oid parent, CouplingOf(ctx)->ParentOf(self));
        return parent.valid() ? Value(parent) : Value();
      });

  methods.Register(
      kIrsObjectClass, "getNext",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>&) -> StatusOr<Value> {
        SDMS_ASSIGN_OR_RETURN(Oid next, CouplingOf(ctx)->NextSiblingOf(self));
        return next.valid() ? Value(next) : Value();
      });

  methods.Register(
      kIrsObjectClass, "getContaining",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 1 || !args[0].is_string()) {
          return Status::InvalidArgument(
              "getContaining expects an element-type name");
        }
        SDMS_ASSIGN_OR_RETURN(
            Oid found, CouplingOf(ctx)->ContainingOf(self, args[0].as_string()));
        return found.valid() ? Value(found) : Value();
      });

  methods.Register(
      kIrsObjectClass, "length",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>&) -> StatusOr<Value> {
        SDMS_ASSIGN_OR_RETURN(std::string text,
                              CouplingOf(ctx)->SubtreeText(self));
        return Value(static_cast<int64_t>(SplitWhitespace(text).size()));
      });

  methods.Register(
      kIrsObjectClass, "subtreeText",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>&) -> StatusOr<Value> {
        SDMS_ASSIGN_OR_RETURN(std::string text,
                              CouplingOf(ctx)->SubtreeText(self));
        return Value(std::move(text));
      });

  return Status::OK();
}

Status Coupling::RegisterCollectionMethods() {
  auto& methods = db_->methods();

  methods.Register(
      kCollectionClass, "indexObjects",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.empty() || !args[0].is_string()) {
          return Status::InvalidArgument(
              "indexObjects expects (specQuery [, textMode])");
        }
        int mode = 0;
        if (args.size() >= 2 && args[1].is_int()) {
          mode = static_cast<int>(args[1].as_int());
        }
        SDMS_ASSIGN_OR_RETURN(Collection * coll,
                              CouplingOf(ctx)->GetCollection(self));
        SDMS_RETURN_IF_ERROR(coll->IndexObjects(args[0].as_string(), mode));
        return Value(true);
      });

  methods.Register(
      kCollectionClass, "getIRSResult",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 1 || !args[0].is_string()) {
          return Status::InvalidArgument("getIRSResult expects (IRSQuery)");
        }
        SDMS_ASSIGN_OR_RETURN(Collection * coll,
                              CouplingOf(ctx)->GetCollection(self));
        SDMS_ASSIGN_OR_RETURN(const OidScoreMap* result,
                              coll->GetIrsResult(args[0].as_string()));
        ValueDict dict;
        for (const auto& [oid, score] : *result) {
          dict.emplace(oid.ToString(), Value(score));
        }
        return Value(std::move(dict));
      });

  methods.Register(
      kCollectionClass, "findIRSValue",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 2 || !args[0].is_string() || !args[1].is_oid()) {
          return Status::InvalidArgument(
              "findIRSValue expects (IRSQuery, IRSObject)");
        }
        SDMS_ASSIGN_OR_RETURN(Collection * coll,
                              CouplingOf(ctx)->GetCollection(self));
        SDMS_ASSIGN_OR_RETURN(
            double value,
            coll->FindIrsValue(args[0].as_string(), args[1].as_oid()));
        return Value(value);
      });

  methods.Register(
      kCollectionClass, "propagateUpdates",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>&) -> StatusOr<Value> {
        SDMS_ASSIGN_OR_RETURN(Collection * coll,
                              CouplingOf(ctx)->GetCollection(self));
        SDMS_RETURN_IF_ERROR(coll->PropagateUpdates());
        return Value(true);
      });

  methods.Register(
      kCollectionClass, "setDerivationScheme",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 1 || !args[0].is_string()) {
          return Status::InvalidArgument(
              "setDerivationScheme expects a scheme name");
        }
        SDMS_ASSIGN_OR_RETURN(Collection * coll,
                              CouplingOf(ctx)->GetCollection(self));
        SDMS_RETURN_IF_ERROR(coll->SetDerivationScheme(args[0].as_string()));
        return Value(true);
      });

  return Status::OK();
}

CouplingStats Coupling::AggregateStats() const {
  CouplingStats total;
  for (const auto& [oid, c] : collections_) {
    const CouplingStats& s = c->stats();
    total.irs_queries += s.irs_queries;
    total.buffer_hits += s.buffer_hits;
    total.buffer_misses += s.buffer_misses;
    total.derive_calls += s.derive_calls;
    total.reindex_ops += s.reindex_ops;
    total.cancelled_ops += s.cancelled_ops;
    total.bytes_exchanged += s.bytes_exchanged;
    total.files_exchanged += s.files_exchanged;
    total.stale_serves += s.stale_serves;
    total.degraded_reads += s.degraded_reads;
    total.shard_degraded_queries += s.shard_degraded_queries;
    total.shard_hedges += s.shard_hedges;
  }
  return total;
}

}  // namespace sdms::coupling
