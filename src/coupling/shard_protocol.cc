#include "coupling/shard_protocol.h"

#include "oodb/storage/serializer.h"

namespace sdms::coupling {

using oodb::Decoder;
using oodb::Encoder;

namespace {

StatusCode CodeFromWire(uint8_t raw) {
  if (raw > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return StatusCode::kInternal;  // future peer; keep the message
  }
  return static_cast<StatusCode>(raw);
}

Status RejectTrailing(const Decoder& dec) {
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after shard message");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeShardHello(const ShardHello& h) {
  Encoder enc;
  enc.PutU32(h.protocol_version);
  enc.PutString(h.collection);
  enc.PutU32(h.shard);
  enc.PutU32(h.num_shards);
  enc.PutString(h.model_name);
  enc.PutU8(h.analyzer.remove_stopwords ? 1 : 0);
  enc.PutU8(h.analyzer.stem ? 1 : 0);
  enc.PutU64(h.analyzer.min_token_length);
  enc.PutString(h.peer);
  return enc.Release();
}

StatusOr<ShardHello> DecodeShardHello(const std::string& payload) {
  Decoder dec(payload);
  ShardHello h;
  SDMS_ASSIGN_OR_RETURN(h.protocol_version, dec.GetU32());
  SDMS_ASSIGN_OR_RETURN(h.collection, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(h.shard, dec.GetU32());
  SDMS_ASSIGN_OR_RETURN(h.num_shards, dec.GetU32());
  SDMS_ASSIGN_OR_RETURN(h.model_name, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(uint8_t stopwords, dec.GetU8());
  h.analyzer.remove_stopwords = stopwords != 0;
  SDMS_ASSIGN_OR_RETURN(uint8_t stem, dec.GetU8());
  h.analyzer.stem = stem != 0;
  SDMS_ASSIGN_OR_RETURN(uint64_t min_len, dec.GetU64());
  h.analyzer.min_token_length = static_cast<size_t>(min_len);
  SDMS_ASSIGN_OR_RETURN(h.peer, dec.GetString());
  SDMS_RETURN_IF_ERROR(RejectTrailing(dec));
  return h;
}

std::string EncodeShardStatusMsg(const ShardStatusMsg& s) {
  Encoder enc;
  enc.PutU64(s.applied_seq);
  enc.PutU64(s.doc_count);
  enc.PutU64(s.doc_table_size);
  return enc.Release();
}

StatusOr<ShardStatusMsg> DecodeShardStatusMsg(const std::string& payload) {
  Decoder dec(payload);
  ShardStatusMsg s;
  SDMS_ASSIGN_OR_RETURN(s.applied_seq, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(s.doc_count, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(s.doc_table_size, dec.GetU64());
  SDMS_RETURN_IF_ERROR(RejectTrailing(dec));
  return s;
}

std::string EncodeShardSearchRequest(const ShardSearchRequest& r) {
  Encoder enc;
  enc.PutU64(r.request_id);
  enc.PutString(r.query);
  enc.PutU64(r.k);
  enc.PutI64(r.deadline_ms);
  enc.PutString(r.stats);
  return enc.Release();
}

StatusOr<ShardSearchRequest> DecodeShardSearchRequest(
    const std::string& payload) {
  Decoder dec(payload);
  ShardSearchRequest r;
  SDMS_ASSIGN_OR_RETURN(r.request_id, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(r.query, dec.GetString());
  SDMS_ASSIGN_OR_RETURN(r.k, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(r.deadline_ms, dec.GetI64());
  SDMS_ASSIGN_OR_RETURN(r.stats, dec.GetString());
  SDMS_RETURN_IF_ERROR(RejectTrailing(dec));
  return r;
}

std::string EncodeShardSearchResponse(const ShardSearchResponse& r) {
  Encoder enc;
  enc.PutU64(r.request_id);
  enc.PutU64(r.hits.size());
  for (const ShardHit& h : r.hits) {
    enc.PutString(h.key);
    enc.PutDouble(h.score);
  }
  return enc.Release();
}

StatusOr<ShardSearchResponse> DecodeShardSearchResponse(
    const std::string& payload) {
  Decoder dec(payload);
  ShardSearchResponse r;
  SDMS_ASSIGN_OR_RETURN(r.request_id, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint64_t n, dec.GetU64());
  if (n > kMaxWireShardHits) {
    return Status::Corruption("shard hit count " + std::to_string(n) +
                              " exceeds cap");
  }
  r.hits.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ShardHit h;
    SDMS_ASSIGN_OR_RETURN(h.key, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(h.score, dec.GetDouble());
    r.hits.push_back(std::move(h));
  }
  SDMS_RETURN_IF_ERROR(RejectTrailing(dec));
  return r;
}

std::string EncodeShardOpsBatch(const ShardOpsBatch& b) {
  Encoder enc;
  enc.PutU64(b.high);
  enc.PutU64(b.ops.size());
  for (const ShardOp& op : b.ops) {
    enc.PutU8(op.is_delete ? 1 : 0);
    enc.PutString(op.key);
    enc.PutString(op.text);
    enc.PutU64(op.seq);
  }
  return enc.Release();
}

StatusOr<ShardOpsBatch> DecodeShardOpsBatch(const std::string& payload) {
  Decoder dec(payload);
  ShardOpsBatch b;
  SDMS_ASSIGN_OR_RETURN(b.high, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(uint64_t n, dec.GetU64());
  if (n > kMaxWireShardOps) {
    return Status::Corruption("shard op count " + std::to_string(n) +
                              " exceeds cap");
  }
  b.ops.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ShardOp op;
    SDMS_ASSIGN_OR_RETURN(uint8_t is_delete, dec.GetU8());
    if (is_delete > 1) {
      return Status::Corruption("shard op kind " + std::to_string(is_delete) +
                                " unknown");
    }
    op.is_delete = is_delete != 0;
    SDMS_ASSIGN_OR_RETURN(op.key, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(op.text, dec.GetString());
    SDMS_ASSIGN_OR_RETURN(op.seq, dec.GetU64());
    b.ops.push_back(std::move(op));
  }
  SDMS_RETURN_IF_ERROR(RejectTrailing(dec));
  return b;
}

std::string EncodeShardInstall(const ShardInstall& i) {
  Encoder enc;
  enc.PutU64(i.applied_seq);
  enc.PutString(i.index_bytes);
  return enc.Release();
}

StatusOr<ShardInstall> DecodeShardInstall(const std::string& payload) {
  Decoder dec(payload);
  ShardInstall i;
  SDMS_ASSIGN_OR_RETURN(i.applied_seq, dec.GetU64());
  SDMS_ASSIGN_OR_RETURN(i.index_bytes, dec.GetString());
  SDMS_RETURN_IF_ERROR(RejectTrailing(dec));
  return i;
}

std::string EncodeShardError(uint64_t request_id, const Status& error) {
  Encoder enc;
  enc.PutU64(request_id);
  enc.PutU8(static_cast<uint8_t>(error.code()));
  enc.PutString(error.message());
  enc.PutU8(0);  // shed_cause slot of the main protocol's ErrorResponse
  return enc.Release();
}

Status DecodeShardError(const std::string& payload, uint64_t* request_id) {
  Decoder dec(payload);
  SDMS_ASSIGN_OR_RETURN(uint64_t id, dec.GetU64());
  if (request_id != nullptr) *request_id = id;
  SDMS_ASSIGN_OR_RETURN(uint8_t raw, dec.GetU8());
  SDMS_ASSIGN_OR_RETURN(std::string message, dec.GetString());
  // The shed-cause byte is tolerated but unused on the shard path.
  StatusCode code = CodeFromWire(raw);
  switch (code) {
    case StatusCode::kOk:
      return Status::Internal("shard error frame carried kOk");
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(message));
    case StatusCode::kTypeError:
      return Status::TypeError(std::move(message));
    case StatusCode::kLockConflict:
      return Status::LockConflict(std::move(message));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(message));
}

}  // namespace sdms::coupling
