#include "coupling/mixed_query.h"

#include <algorithm>
#include <optional>

#include "common/obs/profile.h"
#include "common/obs/stats.h"
#include "common/query_context.h"
#include "common/string_util.h"
#include "oodb/query/parser.h"

namespace sdms::coupling {

using oodb::vql::BinOp;
using oodb::vql::Expr;
using oodb::vql::ExprKind;
using oodb::vql::ParsedQuery;
using oodb::vql::QueryResult;
using oodb::vql::SplitConjuncts;

namespace {

/// A recognized content restriction: var -> getIRSValue(coll, 'q') > t.
struct ContentRestriction {
  std::string var;
  std::string collection;
  std::string irs_query;
  double threshold = 0.0;
  bool inclusive = false;  // >= vs >
};

bool AsContentRestriction(const Expr& e, ContentRestriction* out) {
  if (e.kind != ExprKind::kBinary) return false;
  const Expr* call = nullptr;
  const Expr* bound = nullptr;
  bool greater;   // call > bound vs bound < call etc.
  bool inclusive;
  switch (e.bin_op) {
    case BinOp::kGt:
      call = e.child.get();
      bound = e.rhs.get();
      greater = true;
      inclusive = false;
      break;
    case BinOp::kGe:
      call = e.child.get();
      bound = e.rhs.get();
      greater = true;
      inclusive = true;
      break;
    case BinOp::kLt:
      call = e.rhs.get();
      bound = e.child.get();
      greater = true;
      inclusive = false;
      break;
    case BinOp::kLe:
      call = e.rhs.get();
      bound = e.child.get();
      greater = true;
      inclusive = true;
      break;
    default:
      return false;
  }
  if (!greater) return false;
  if (call->kind != ExprKind::kMethodCall || call->name != "getIRSValue") {
    return false;
  }
  if (call->child->kind != ExprKind::kVarRef) return false;
  if (call->args.size() != 2 ||
      call->args[0]->kind != ExprKind::kLiteral ||
      !call->args[0]->literal.is_string() ||
      call->args[1]->kind != ExprKind::kLiteral ||
      !call->args[1]->literal.is_string()) {
    return false;
  }
  if (bound->kind != ExprKind::kLiteral || !bound->literal.is_numeric()) {
    return false;
  }
  out->var = call->child->name;
  out->collection = call->args[0]->literal.as_string();
  out->irs_query = call->args[1]->literal.as_string();
  out->threshold = bound->literal.AsNumber().value();
  out->inclusive = inclusive;
  return true;
}

}  // namespace

namespace {

const char* StrategyName(MixedQueryEvaluator::Strategy s) {
  return s == MixedQueryEvaluator::Strategy::kIrsFirst ? "irs_first"
                                                       : "independent";
}

/// Query-shape key for the statistics service: binding count and
/// content-conjunct count, e.g. "b2.c1".
std::string ShapeOf(const ParsedQuery& query) {
  size_t content = 0;
  for (const Expr* conjunct : SplitConjuncts(query.where.get())) {
    ContentRestriction r;
    if (AsContentRestriction(*conjunct, &r)) ++content;
  }
  return StrFormat("b%zu.c%zu", query.bindings.size(), content);
}

}  // namespace

StatusOr<QueryResult> MixedQueryEvaluator::Run(
    const std::string& vql, Strategy strategy,
    AdmissionController::Ticket* preadmitted) {
  info_ = RunInfo{};
  info_.strategy = strategy;

  // Adopt the caller's QueryContext (shell, bench, service layer) or
  // install a fresh one, so admission and degradation always have a
  // context to consult.
  QueryContext* ctx = QueryContext::Current();
  std::optional<QueryContext> local_ctx;
  if (ctx == nullptr) {
    local_ctx.emplace();
    ctx = &*local_ctx;
  }
  // Attach a profile when profiling is on or the slow-query log is
  // armed (a profile the caller attached is kept).
  std::shared_ptr<obs::QueryProfile> profile = ctx->profile();
  if (profile == nullptr &&
      (obs::ProfilingEnabled() || obs::SlowQueryLog::Instance().enabled())) {
    profile = std::make_shared<obs::QueryProfile>(ctx->query_id());
    ctx->set_profile(profile);
  }
  // Unconditional nested scope: (re-)installs the thread's binding so
  // it sees the just-attached profile even when the caller's Scope
  // predates it.
  QueryContext::Scope scope(ctx);
  info_.query_id = ctx->query_id();
  info_.profile = profile;

  // Mixed queries degrade to partial results on deadline/budget expiry
  // instead of failing the whole VQL statement (restored on exit).
  struct AllowPartialGuard {
    QueryContext* ctx;
    bool prev;
    ~AllowPartialGuard() { ctx->set_allow_partial(prev); }
  } partial_guard{ctx, ctx->allow_partial()};
  ctx->set_allow_partial(true);

  const int64_t run_start = QueryContext::NowMicros();
  // Finalization runs on every exit path (shed, parse error, success):
  // close the profile, log the query when it crossed the slow
  // threshold, and stamp the total into RunInfo.
  struct Finalizer {
    MixedQueryEvaluator* self;
    const std::string& vql;
    int64_t start;
    ~Finalizer() {
      RunInfo& info = self->info_;
      info.total_micros = QueryContext::NowMicros() - start;
      if (info.profile != nullptr) {
        info.profile->Annotate("strategy", StrategyName(info.strategy));
        info.profile->Finish();
      }
      obs::SlowQueryLog::Instance().MaybeRecord(
          info.query_id, vql, info.total_micros, info.profile.get());
    }
  } finalizer{this, vql, run_start};

  if (profile != nullptr) profile->Annotate("query", vql);

  AdmissionController::Ticket ticket;
  if (preadmitted != nullptr && preadmitted->held()) {
    ticket = std::move(*preadmitted);
  } else {
    obs::ProfileStageScope admission_stage("admission");
    SDMS_ASSIGN_OR_RETURN(ticket, coupling_->admission().Admit(ctx));
  }
  info_.queue_wait_micros = ticket.wait_micros();

  StatusOr<ParsedQuery> parsed = [&] {
    obs::ProfileStageScope parse_stage("parse");
    return oodb::vql::ParseQuery(vql);
  }();
  SDMS_ASSIGN_OR_RETURN(ParsedQuery query, std::move(parsed));
  if (strategy == Strategy::kIrsFirst) {
    obs::ProfileStageScope irs_first_stage("irs_first");
    SDMS_RETURN_IF_ERROR(ApplyIrsFirst(query));
    obs::ProfileCount("irs_restrictions", info_.irs_restrictions);
    obs::ProfileCount("irs_candidates", info_.irs_candidates);
  }
  SDMS_ASSIGN_OR_RETURN(QueryResult result,
                        coupling_->query_engine().Run(query));
  if (info_.degraded && !result.degraded) {
    result.degraded = true;
    result.degraded_reason = "content restrictions degraded (IRS deadline)";
  }
  info_.degraded = result.degraded;
  // Collect the per-shard outcomes every fan-out search parked in the
  // context, so callers (wire protocol, shell) can name the failure
  // domain behind a degraded answer.
  info_.shard_status = ctx->TakeShardStatus();
  if (info_.degraded && profile != nullptr) {
    profile->Annotate("degradation_reason", result.degraded_reason);
  }
  // Feed the strategy/shape latency histogram that the cost-based
  // optimizer will consult when choosing between the two strategies.
  obs::StatisticsService::Instance().RecordStrategyLatency(
      ShapeOf(query), StrategyName(strategy),
      static_cast<uint64_t>(
          std::max<int64_t>(QueryContext::NowMicros() - run_start, 0)));
  return result;
}

Status MixedQueryEvaluator::ApplyIrsFirst(const ParsedQuery& query) {
  // Candidate sets per variable; conjuncts on the same variable
  // intersect.
  std::map<std::string, std::set<Oid>> candidates;
  std::map<std::string, bool> seeded;
  for (const Expr* conjunct : SplitConjuncts(query.where.get())) {
    ContentRestriction r;
    if (!AsContentRestriction(*conjunct, &r)) continue;
    SDMS_ASSIGN_OR_RETURN(Collection * coll,
                          coupling_->GetCollectionByName(r.collection));
    // Soundness guard: objects absent from the IRS result still score
    // the query's null belief. If that already passes the threshold,
    // the content predicate cannot restrict the candidate set (every
    // represented object qualifies) — fall back to independent
    // evaluation for this conjunct.
    SDMS_ASSIGN_OR_RETURN(double null_score, coll->NullScore(r.irs_query));
    if (null_score > r.threshold ||
        (r.inclusive && null_score >= r.threshold)) {
      continue;
    }
    auto result_or = coll->GetIrsResult(r.irs_query);
    if (!result_or.ok()) {
      // The IRS side missed the deadline (or is unavailable): leave
      // this conjunct to independent evaluation, whose per-object
      // getIRSValue has its own degraded fallbacks. Cancellation is
      // not degradable and propagates.
      if (IsUnavailable(result_or.status())) {
        info_.degraded = true;
        if (QueryContext* ctx = QueryContext::Current()) ctx->NoteDegraded();
        continue;
      }
      return result_or.status();
    }
    const OidScoreMap* result = *result_or;
    std::set<Oid> qualifying;
    for (const auto& [oid, score] : *result) {
      if (score > r.threshold || (r.inclusive && score >= r.threshold)) {
        qualifying.insert(oid);
      }
    }
    ++info_.irs_restrictions;
    auto it = candidates.find(r.var);
    if (!seeded[r.var]) {
      candidates[r.var] = std::move(qualifying);
      seeded[r.var] = true;
    } else {
      std::set<Oid> merged;
      for (Oid oid : it->second) {
        if (qualifying.count(oid) > 0) merged.insert(oid);
      }
      it->second = std::move(merged);
    }
  }
  for (const auto& [var, oids] : candidates) {
    info_.irs_candidates += oids.size();
    coupling_->query_engine().SetCandidateOverride(
        var, std::vector<Oid>(oids.begin(), oids.end()));
  }
  return Status::OK();
}

}  // namespace sdms::coupling
