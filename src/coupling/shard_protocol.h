#ifndef SDMS_COUPLING_SHARD_PROTOCOL_H_
#define SDMS_COUPLING_SHARD_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "irs/analysis/analyzer.h"

namespace sdms::coupling {

/// Message bodies of the protocol-v3 shard serving mode
/// (docs/protocol.md, "Shard messages"). A router (the coupling
/// process) drives one `sdms_server --shard <coll>/<i>` process per
/// remote shard with these; payloads ride the same length-prefixed
/// frames as the main protocol (net::FrameType::kShard*), encoded with
/// oodb::Encoder (LEB128 varints, length-prefixed strings, raw 8-byte
/// doubles so scores round-trip bit-identically).
///
/// Every Decode* rejects malformed payloads with a typed Status —
/// truncation, trailing bytes, or cap violations never crash either
/// side. Errors travel as kError frames whose payload layout matches
/// the main protocol's ErrorResponse byte for byte.

/// Mirror of server::kProtocolVersion, re-declared here so the channel
/// (coupling layer) does not depend on the server library. A static
/// assert in shard_service.cc keeps them in lock step.
inline constexpr uint32_t kShardProtocolVersion = 3;

/// Caps mirroring the main protocol's hardening: a decoder refuses
/// counts beyond these before allocating.
inline constexpr uint64_t kMaxWireShardHits = 1u << 24;
inline constexpr uint64_t kMaxWireShardOps = 1u << 20;
inline constexpr uint64_t kMaxWireStatsTerms = 1u << 20;

// --- ShardHello (router -> shard, once per connection) --------------------

/// Declares which (collection, shard) this connection serves and the
/// configuration the shard-side IrsCollection must be built with. The
/// server answers with ShardStatus (its applied_seq/doc_count — the
/// catch-up handshake) or a typed error on version/config mismatch.
struct ShardHello {
  uint32_t protocol_version = kShardProtocolVersion;
  std::string collection;
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  /// Retrieval model ("boolean" | "vsm" | "bm25" | "inquery") and
  /// analyzer configuration — both sides must parse and score queries
  /// identically for rankings to stay bit-identical.
  std::string model_name;
  irs::AnalyzerOptions analyzer;
  /// Free-form peer label for logs.
  std::string peer;
};

std::string EncodeShardHello(const ShardHello& h);
StatusOr<ShardHello> DecodeShardHello(const std::string& payload);

// --- ShardStatus (shard -> router) ----------------------------------------

/// The shard server's applied state: answers ShardHello, ShardOps and
/// ShardInstall. The router compares applied_seq/doc_count against its
/// local copy of the shard to decide whether catch-up is needed
/// (op replay when the retained tail covers the gap, else a full
/// install).
struct ShardStatusMsg {
  uint64_t applied_seq = 0;
  uint64_t doc_count = 0;
  /// Doc-table size including tombstones; catches divergence that
  /// doc_count alone would miss (e.g. a lost delete + lost insert).
  uint64_t doc_table_size = 0;
};

std::string EncodeShardStatusMsg(const ShardStatusMsg& s);
StatusOr<ShardStatusMsg> DecodeShardStatusMsg(const std::string& payload);

// --- ShardSearch (router -> shard) ----------------------------------------

/// One shard search: the query string plus the router-computed global
/// corpus statistics (IrsCollection::EncodePlanStats). The shard
/// re-parses the query with its (identical) analyzer and scores its
/// local documents against the injected statistics, which is exactly
/// what keeps remote rankings bit-identical to local SearchShard.
struct ShardSearchRequest {
  uint64_t request_id = 0;
  std::string query;
  uint64_t k = 0;
  /// Relative deadline for the shard-side execution; 0 = none.
  int64_t deadline_ms = 0;
  /// Opaque stats blob (decoded by IrsCollection::PrepareSearchWithStats).
  std::string stats;
};

std::string EncodeShardSearchRequest(const ShardSearchRequest& r);
StatusOr<ShardSearchRequest> DecodeShardSearchRequest(
    const std::string& payload);

/// The shard's ranked hits. Scores are raw 8-byte doubles — the merge
/// on the router is bit-identical to an in-process merge.
struct ShardHit {
  std::string key;
  double score = 0.0;
};

struct ShardSearchResponse {
  uint64_t request_id = 0;
  std::vector<ShardHit> hits;
};

std::string EncodeShardSearchResponse(const ShardSearchResponse& r);
StatusOr<ShardSearchResponse> DecodeShardSearchResponse(
    const std::string& payload);

// --- ShardOps (router -> shard) -------------------------------------------

/// One sequenced update in shard-server terms: the router materializes
/// text at apply time (the shard server has no database to derive it
/// from), so an op is an upsert (key + text) or a delete (key).
struct ShardOp {
  bool is_delete = false;
  std::string key;
  std::string text;
  /// Database update-event seq folded into this op; 0 for unsequenced
  /// direct calls. The shard server skips ops at or below its floor
  /// (exactly-once) and applies the rest reconciling-idempotently.
  uint64_t seq = 0;
};

/// A batch of updates for the connection's shard. After applying, the
/// server advances its applied-seq floor to `high` and answers with
/// ShardStatus.
struct ShardOpsBatch {
  std::vector<ShardOp> ops;
  uint64_t high = 0;
};

std::string EncodeShardOpsBatch(const ShardOpsBatch& b);
StatusOr<ShardOpsBatch> DecodeShardOpsBatch(const std::string& payload);

// --- ShardInstall (router -> shard) ---------------------------------------

/// Full-state catch-up: a serialized shard index image
/// (IrsCollection::SerializeShard) plus the floor it reflects. Always
/// correct regardless of how far behind the server is; the answer is
/// ShardStatus.
struct ShardInstall {
  std::string index_bytes;
  uint64_t applied_seq = 0;
};

std::string EncodeShardInstall(const ShardInstall& i);
StatusOr<ShardInstall> DecodeShardInstall(const std::string& payload);

// --- Errors ---------------------------------------------------------------

/// Encodes a typed error answer (kError frame payload), byte-compatible
/// with the main protocol's ErrorResponse {request_id, code, message,
/// shed_cause=0}.
std::string EncodeShardError(uint64_t request_id, const Status& error);

/// Decodes an error frame back into the Status the channel surfaces.
/// Unknown future codes degrade to kInternal with the message kept; a
/// malformed payload decodes to the parser's own Corruption status
/// (either way the result is the error the caller propagates). An
/// error frame that claims kOk decodes to kInternal.
Status DecodeShardError(const std::string& payload,
                        uint64_t* request_id = nullptr);

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_SHARD_PROTOCOL_H_
