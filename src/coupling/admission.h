#ifndef SDMS_COUPLING_ADMISSION_H_
#define SDMS_COUPLING_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/query_context.h"
#include "common/status.h"

namespace sdms::coupling {

/// Configuration of the coupling-layer admission controller.
struct AdmissionOptions {
  /// Queries allowed to execute concurrently (0 = unlimited, which
  /// also disables queueing and shedding).
  size_t max_concurrent = 0;
  /// Queries allowed to wait for a slot before new arrivals are shed
  /// with kResourceExhausted.
  size_t max_queue = 64;
  /// Upper bound on the time a query may wait for a slot even without
  /// a deadline of its own (0 = wait forever).
  int64_t max_queue_wait_micros = 5'000'000;
  /// Deadline applied to admitted queries that carry none of their own
  /// (0 = none). Milliseconds in the knob, micros here.
  int64_t default_deadline_micros = 0;
};

/// Reads AdmissionOptions overrides from the environment:
/// SDMS_MAX_CONCURRENT_QUERIES, SDMS_MAX_QUEUE and
/// SDMS_DEFAULT_DEADLINE_MS.
AdmissionOptions AdmissionOptionsFromEnv();

/// Why an admission was shed. Reported per-call through Admit's out
/// parameter so callers (the network service layer) can answer a typed
/// RESOURCE_EXHAUSTED with the cause attached; also split into the
/// coupling.admission.shed_* counters. kDraining is never produced by
/// the controller itself — the server session layer uses it for
/// requests rejected during graceful drain.
enum class ShedCause : uint8_t {
  kNone = 0,
  kQueueFull = 1,        // arrivals beyond max_queue
  kDeadlineExpired = 2,  // ctx deadline expired at admission or in queue
  kQueueWait = 3,        // max_queue_wait bound elapsed
  kDraining = 4,         // server draining (session layer only)
};

const char* ShedCauseName(ShedCause cause);

/// Bounded-concurrency gate for the coupled query path. At most
/// `max_concurrent` queries run at once; up to `max_queue` more wait on
/// a condition variable. Arrivals beyond that — or waiters whose
/// QueryContext deadline would expire in the queue — are *shed* with
/// Status::kResourceExhausted instead of queueing past the deadline
/// (rejecting early is cheaper than timing out late).
///
/// Metrics: coupling.admission.{admitted,shed,expired_in_queue}
/// counters, the per-cause shed split
/// coupling.admission.shed_{queue_full,deadline_expired,queue_wait},
/// coupling.admission.{running,queue_depth} gauges and the
/// coupling.admission.queue_wait_micros histogram.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot; releasing it wakes the next waiter.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        wait_micros_ = other.wait_micros_;
        other.controller_ = nullptr;
      }
      return *this;
    }

    void Release();
    bool held() const { return controller_ != nullptr; }
    /// Time this admission spent queued waiting for a slot.
    int64_t wait_micros() const { return wait_micros_; }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* c, int64_t wait_micros = 0)
        : controller_(c), wait_micros_(wait_micros) {}
    AdmissionController* controller_ = nullptr;
    int64_t wait_micros_ = 0;
  };

  /// Blocks until a slot is free, then returns the held Ticket.
  /// Sheds with kResourceExhausted when the queue is full, when `ctx`'s
  /// deadline expires (or provably cannot be met) while queued, or when
  /// the queue-wait bound elapses. `ctx` may be null. On admission,
  /// applies options().default_deadline_micros to a deadline-less ctx.
  /// When `shed_cause` is non-null it receives why the call was shed
  /// (kNone on admission and on non-shed errors like cancellation).
  StatusOr<Ticket> Admit(QueryContext* ctx, ShedCause* shed_cause = nullptr);

  const AdmissionOptions& options() const { return options_; }

  size_t running() const;
  size_t queued() const;

 private:
  void Release();

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t queued_ = 0;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_ADMISSION_H_
