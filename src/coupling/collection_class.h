#ifndef SDMS_COUPLING_COLLECTION_CLASS_H_
#define SDMS_COUPLING_COLLECTION_CLASS_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/oid.h"
#include "common/query_context.h"
#include "common/status.h"
#include "coupling/call_guard.h"
#include "coupling/derivation.h"
#include "coupling/result_buffer.h"
#include "coupling/types.h"
#include "coupling/update_log.h"
#include "oodb/query/ast.h"

namespace sdms::irs {
class IrsCollection;
}  // namespace sdms::irs

namespace sdms::coupling {

class Coupling;
class RemoteShardChannel;

/// Outcome of Collection::VerifyConsistency: spec-query membership
/// reconciled against the IRS index after a crash or failed
/// propagation.
struct ConsistencyReport {
  /// Objects that satisfy the specification query but have no IRS
  /// document (lost inserts/updates).
  std::vector<Oid> missing_in_irs;
  /// IRS documents whose object vanished or no longer satisfies the
  /// specification query (lost deletes).
  std::vector<Oid> orphaned_in_irs;

  bool consistent() const {
    return missing_in_irs.empty() && orphaned_in_irs.empty();
  }
};

/// The database class COLLECTION (paper Section 4.2): encapsulates
/// exactly one IRS collection. Holds the specification query and text
/// mode that define which objects are represented and with which text;
/// buffers IRS results persistently; propagates updates; and derives
/// IRS values for objects that are not represented.
class Collection {
 public:
  Collection(Coupling* coupling, Oid self, std::string irs_collection_name,
             double missing_value);
  ~Collection();

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  /// OID of the COLLECTION database object.
  Oid oid() const { return self_; }
  /// Name of the encapsulated IRS collection.
  const std::string& irs_collection_name() const { return irs_name_; }

  // --- Paper interface ------------------------------------------------

  /// indexObjects(specQuery, textMode): evaluates the specification
  /// query (a VQL query whose single select column yields IRSObjects),
  /// fetches each object's getText(textMode) and indexes it in the IRS
  /// collection with the OID as document key. Objects already
  /// represented are skipped, so the method may be re-run after bulk
  /// loads.
  Status IndexObjects(const std::string& spec_query, int text_mode);

  /// getIRSResult(IRSQuery): submits the query to the IRS (unless
  /// buffered) and returns the dictionary ||IRSObject --> REAL||.
  /// Pending updates are propagated first unless the policy is kManual.
  ///
  /// Degraded mode: when the IRS is unavailable (guarded call failed,
  /// breaker open) and the buffer still holds the query, the buffered
  /// result is served with `*served_stale = true` — pending updates
  /// stay queued in the update log for later replay. Without a
  /// buffered result the unavailability status is returned.
  StatusOr<const OidScoreMap*> GetIrsResult(const std::string& irs_query,
                                            bool* served_stale = nullptr);

  /// findIRSValue(IRSQuery, obj): the Figure 3 flow — buffered result
  /// lookup, then the object's value; objects not represented derive
  /// their value (deriveIRSValue) and the derived value is inserted
  /// into the buffer.
  ///
  /// Degraded mode: when the IRS is unavailable and nothing is
  /// buffered, represented objects fall back to the query's null score
  /// and unrepresented ones to derivation over components (whose own
  /// lookups degrade the same way); `*degraded = true` flags the value
  /// as not IRS-fresh.
  StatusOr<double> FindIrsValue(const std::string& irs_query, Oid obj,
                                bool* degraded = nullptr);

  /// The three update methods (Section 4.2): invoked when a relevant
  /// database update occurred. Under kEager the IRS index is
  /// maintained immediately; otherwise the operation is recorded in
  /// the cancelling update log. `seq` is the database update-event
  /// sequence number driving the exactly-once bookkeeping (0 for
  /// direct calls outside the sequenced listener path).
  Status OnInsert(Oid oid, uint64_t seq = 0);
  Status OnModify(Oid oid, uint64_t seq = 0);
  Status OnDelete(Oid oid, uint64_t seq = 0);

  /// Applies all pending net operations to the IRS index and
  /// invalidates the result buffer when the index changed. The batch
  /// runs as a mini two-phase commit against the coupling's
  /// propagation journal: a prepare record (collection, high-water
  /// seq, the drained ops) is forced to the journal before the first
  /// IRS call, and a commit record after the last — so a crash at any
  /// point leaves either a journaled batch to replay or a resolved
  /// one to skip. On a mid-batch failure every unapplied operation
  /// (including the one that failed) is re-recorded in the update log
  /// and the error is returned, so no update is ever silently lost —
  /// a later call replays exactly the remaining work.
  Status PropagateUpdates();

  /// Highest update-event seq this collection has seen routed to it.
  /// Restored from the IRS snapshot's high-water mark after a crash;
  /// the coupling's dispatcher skips re-routing events at or below it.
  uint64_t last_routed_seq() const { return last_routed_seq_; }

  /// Called by the dispatcher after an event (direct effect plus
  /// ancestor modifies, which share its seq) is fully routed.
  void NoteRoutedSeq(uint64_t seq) {
    if (seq > last_routed_seq_) last_routed_seq_ = seq;
  }

  // --- Consistency (crash/fault recovery) -------------------------------

  /// Reconciles specification-query membership against the IRS index:
  /// which spec-satisfying objects lack an IRS document, which IRS
  /// documents lost their object. Requires an indexed collection
  /// (spec query set) and an empty update log — call
  /// PropagateUpdates() first.
  StatusOr<ConsistencyReport> VerifyConsistency();

  /// Restores exact consistency after faults: propagates pending
  /// updates, re-indexes objects missing from the IRS, removes
  /// orphaned IRS documents, resyncs the represented set, clears the
  /// (now stale) result buffer, and closes the circuit breaker.
  Status Repair();

  // --- deriveIRSValue ---------------------------------------------------

  /// Derives the IRS value of a non-represented object from its
  /// components via the installed derivation scheme.
  StatusOr<double> DeriveIrsValue(const std::string& irs_query, Oid obj);

  /// Installs a derivation scheme by name ("max", "avg", "wtype",
  /// "length", "subquery").
  Status SetDerivationScheme(const std::string& name);
  void SetDerivationScheme(std::unique_ptr<DerivationScheme> scheme);
  const DerivationScheme& derivation_scheme() const { return *scheme_; }

  // --- Duplicated IRS operators (Section 4.5.4) -------------------------

  /// Evaluates a structured IRS query *inside the DBMS*: term leaves
  /// are resolved with (buffered) single-term IRS calls, operator
  /// nodes are recombined with the INQUERY operator semantics. When
  /// the single-term results are already buffered this avoids calling
  /// the IRS at all.
  StatusOr<OidScoreMap> EvalOperatorsInDbms(const std::string& irs_query);

  // --- Configuration / introspection ------------------------------------

  void set_propagation_policy(PropagationPolicy policy) { policy_ = policy; }
  PropagationPolicy propagation_policy() const { return policy_; }

  bool Represents(Oid oid) const { return represented_.count(oid) > 0; }
  size_t represented_count() const { return represented_.size(); }
  const std::set<Oid>& represented() const { return represented_; }

  const std::string& spec_query() const { return spec_query_; }
  int text_mode() const { return text_mode_; }

  size_t pending_updates() const { return update_log_.size(); }
  const UpdateLog& update_log() const { return update_log_; }

  ResultBuffer& buffer() { return buffer_; }
  /// The retry/deadline/circuit-breaker guard around every IRS call
  /// this collection makes that is not scoped to a single shard
  /// (indexObjects, file exchange, batch inserts).
  CallGuard& guard() { return guard_; }
  /// The per-shard guard for shard `s` of the fan-out search path —
  /// one breaker per shard is the failure-domain boundary: shard 3
  /// faulting trips only shard 3's breaker, the other shards keep
  /// answering. Guards are (re)created on demand to match the IRS
  /// collection's current shard count.
  CallGuard& shard_guard(size_t s);
  /// Per-shard outcomes of the most recent fan-out search (empty when
  /// the last search was served from the buffer or file exchange).
  const std::vector<ShardStatusEntry>& last_shard_report() const {
    return last_shard_report_;
  }
  const CouplingStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CouplingStats{}; }

  // --- Remote shard serving (protocol v3) -------------------------------

  /// Routes shard `shard`'s fan-out searches through `channel` (a
  /// `sdms_server --shard` process) instead of the in-process index,
  /// and tees propagated updates to it. The local collection keeps
  /// the shard's full index — it is the indexing/durability tier; the
  /// remote server is the serving tier — so healthy remote rankings
  /// are bit-identical to local ones, and a dead server is caught up
  /// (replay or install) rather than rebuilt from source objects.
  ///
  /// Performs the initial sync; on failure the channel stays attached
  /// (searches on that shard degrade visibly until the server comes
  /// back — there is deliberately no silent local fallback) and the
  /// error is returned.
  Status AttachRemoteShard(size_t shard,
                           std::shared_ptr<RemoteShardChannel> channel);

  /// Detaches every remote channel; searches revert to in-process.
  void DetachRemoteShards();

  /// The channel attached to `shard`, or null.
  RemoteShardChannel* remote_shard_channel(size_t shard);
  bool has_remote_shards() const;

  /// Re-partitions the IRS collection into `m` shards (verify-before-
  /// swap, see IrsCollection::Reshard). Refused while remote channels
  /// are attached: the remote topology is one process per shard, so
  /// rebalancing is detach -> reshard -> relaunch -> reattach.
  Status ReshardIrs(uint32_t m);

  /// Per-*term* belief assigned when a document provides no evidence
  /// (0.4 for the inference-network model, 0.0 otherwise).
  double missing_value() const { return missing_value_; }

  /// Score the IRS would assign to a represented document with no
  /// evidence for any term of `irs_query`: the query tree evaluated
  /// with every term belief at the default (e.g. 0.4 * 0.4 for
  /// #and(a b) under the inference-network model). Used when a
  /// represented object is absent from the IRS result, so that
  /// no-evidence documents rank below partial-evidence ones.
  StatusOr<double> NullScore(const std::string& irs_query);

  /// True if `oid`'s class matches the specification query's range
  /// class (candidate for representation on insert).
  bool IsSpecCandidate(Oid oid) const;

  /// Persists buffer contents (the paper's buffer is persistent).
  std::string SerializeBuffer() const { return buffer_.Serialize(); }
  Status RestoreBuffer(std::string_view data) {
    return buffer_.Restore(data);
  }

 private:
  friend class Coupling;

  /// Actually submits to the IRS (in-process or file exchange). The
  /// in-process path fans the search out across the collection's
  /// shards, each under its own guard; when some (but not all) shards
  /// fail, the merged partial result is returned with `*partial` set —
  /// the caller must not buffer it. `last_shard_report_` and the
  /// current QueryContext receive the per-shard statuses.
  StatusOr<OidScoreMap> RunIrsQuery(const std::string& irs_query,
                                    bool* partial = nullptr);

  /// Fan-out core of RunIrsQuery (in-process mode only).
  StatusOr<OidScoreMap> RunIrsQuerySharded(irs::IrsCollection* coll,
                                           const std::string& irs_query,
                                           bool* partial);

  /// Sizes shard_guards_ to the IRS collection's shard count.
  void EnsureShardGuards(size_t num_shards);

  /// Forwards one applied (or empty floor-advancing) propagation
  /// sub-batch to shard `shard`'s remote channel, materialized into
  /// wire ops (key + current text). Failures never fail propagation —
  /// the local apply already succeeded; the channel marks itself
  /// unsynced and the next search catches the server up.
  void TeeOpsToRemote(irs::IrsCollection* coll, size_t shard,
                      const std::vector<PendingOp>& shard_ops, uint64_t high);

  /// Invalidates every channel's sync mark after an out-of-band index
  /// rebuild (IndexObjects, Repair).
  void MarkRemoteShardsUnsynced();

  /// Ensures pending updates are applied according to the policy.
  Status MaybePropagate();

  /// (Re)indexes one object per the net update operation.
  Status ApplyOp(const PendingOp& op);

  /// Evaluates whether `oid` currently satisfies the spec query.
  StatusOr<bool> SatisfiesSpec(Oid oid);

  Coupling* coupling_;
  Oid self_;
  std::string irs_name_;
  std::string spec_query_;
  std::optional<oodb::vql::ParsedQuery> parsed_spec_;
  int text_mode_ = 0;
  double missing_value_ = 0.0;

  std::set<Oid> represented_;
  ResultBuffer buffer_;
  CallGuard guard_;
  /// One guard per shard (named "<irs_name>/shard<i>"); see
  /// shard_guard().
  std::vector<std::unique_ptr<CallGuard>> shard_guards_;
  /// Remote serving channels, indexed by shard; null = in-process.
  std::vector<std::shared_ptr<RemoteShardChannel>> remote_channels_;
  /// Per-shard outcomes of the most recent fan-out search.
  std::vector<ShardStatusEntry> last_shard_report_;
  /// Result storage when buffering is disabled (ablation mode).
  OidScoreMap unbuffered_result_;
  UpdateLog update_log_;
  PropagationPolicy policy_ = PropagationPolicy::kOnQuery;
  std::unique_ptr<DerivationScheme> scheme_;
  CouplingStats stats_;
  /// Exactly-once routing floor: highest event seq fully dispatched to
  /// this collection. Survives restarts via the IRS snapshot's
  /// applied_seq (RestoreCollections copies it back), so recovery can
  /// tell replayed WAL events already covered by the persisted index
  /// from genuinely undelivered ones.
  uint64_t last_routed_seq_ = 0;
  int derive_depth_ = 0;
  /// (query, object) derivations currently on the stack; re-entry
  /// (cyclic structures, e.g. implies-link cycles) returns the null
  /// score instead of recursing forever.
  std::set<std::pair<std::string, uint64_t>> derive_in_progress_;
  /// Cache of NullScore per query string.
  std::map<std::string, double> null_score_cache_;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_COLLECTION_CLASS_H_
