#include "coupling/call_guard.h"

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>

#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/query_context.h"

namespace sdms::coupling {

namespace {

struct GuardMetrics {
  obs::Counter& calls = obs::GetCounter("coupling.irs.calls");
  obs::Counter& retries = obs::GetCounter("coupling.irs.retries");
  obs::Counter& failures = obs::GetCounter("coupling.irs.failures");
  obs::Counter& deadline_exceeded =
      obs::GetCounter("coupling.irs.deadline_exceeded");
  obs::Counter& breaker_opens = obs::GetCounter("coupling.irs.breaker_opens");
  obs::Counter& breaker_rejections =
      obs::GetCounter("coupling.irs.breaker_rejections");
  obs::Gauge& breaker_state = obs::GetGauge("coupling.irs.breaker_state");
};

GuardMetrics& Metrics() {
  static GuardMetrics* m = new GuardMetrics();
  return *m;
}

uint64_t SplitMix64(uint64_t& z) {
  z += 0x9e3779b97f4a7c15ULL;
  uint64_t t = z;
  t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
  t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
  return t ^ (t >> 31);
}

}  // namespace

/// Per-name labeled mirrors of the process-global counters. With one
/// guard per shard ("paras/shard3"), these are what make a fault
/// attributable: `coupling.callguard.failures.paras/shard3` moves while
/// the other shards' counters stay flat.
struct CallGuard::NamedMetrics {
  explicit NamedMetrics(const std::string& name)
      : calls(obs::GetCounter("coupling.callguard.calls." + name)),
        retries(obs::GetCounter("coupling.callguard.retries." + name)),
        failures(obs::GetCounter("coupling.callguard.failures." + name)),
        deadline_exceeded(
            obs::GetCounter("coupling.callguard.deadline_exceeded." + name)),
        breaker_rejections(
            obs::GetCounter("coupling.callguard.breaker_rejections." + name)) {}
  obs::Counter& calls;
  obs::Counter& retries;
  obs::Counter& failures;
  obs::Counter& deadline_exceeded;
  obs::Counter& breaker_rejections;
};

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half-open";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

bool IsRetriable(const Status& s) {
  return s.code() == StatusCode::kIoError || s.code() == StatusCode::kAborted;
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

CircuitBreaker::CircuitBreaker(BreakerOptions options, std::string name)
    : options_(options), name_(std::move(name)) {}

void CircuitBreaker::SetState(BreakerState next) {
  if (state_ == next) return;
  SDMS_LOG(DEBUG) << "breaker '" << name_ << "': " << BreakerStateName(state_)
                  << " -> " << BreakerStateName(next);
  state_ = next;
  PublishState();
}

void CircuitBreaker::PublishState() {
  Metrics().breaker_state.Set(static_cast<int64_t>(state_));
  obs::GetGauge("coupling.irs.breaker_state." + name_)
      .Set(static_cast<int64_t>(state_));
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // One probe is already in flight this window; further calls wait
      // for its verdict.
      return false;
    case BreakerState::kOpen:
      if (std::chrono::steady_clock::now() >= open_until_) {
        SetState(BreakerState::kHalfOpen);
        return true;  // This caller is the probe.
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  SetState(BreakerState::kClosed);
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    SetState(BreakerState::kOpen);
    open_until_ = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(options_.open_micros);
    ++opens_;
    Metrics().breaker_opens.Increment();
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  SetState(BreakerState::kClosed);
  // SetState is a no-op when the state did not change, but a reset
  // must refresh the gauges regardless: a breaker recreated after a
  // restart starts closed while the gauges may still show the previous
  // incarnation's "open".
  PublishState();
}

// ---------------------------------------------------------------------------
// CallGuard
// ---------------------------------------------------------------------------

CallGuard::~CallGuard() = default;

CallGuard::CallGuard(CallGuardOptions options, std::string name)
    : options_(options),
      name_(std::move(name)),
      breaker_(options.breaker, name_),
      named_(std::make_unique<NamedMetrics>(name_)) {
  uint64_t z = options_.jitter_seed;
  if (z == 0) {
    // Per-instance entropy: guards created with the default seed must
    // not share a jitter sequence, or every client retries against a
    // recovering dependency at the same instants (synchronized retry
    // storms). random_device is mixed with a process-wide counter and
    // the instance address in case the platform's random_device is
    // weak or repeats across forks.
    static std::atomic<uint64_t> instance_counter{0};
    std::random_device rd;
    z = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    z ^= instance_counter.fetch_add(0x9e3779b97f4a7c15ULL) + 1;
    z ^= reinterpret_cast<uintptr_t>(this);
  }
  rng_state_[0] = SplitMix64(z);
  rng_state_[1] = SplitMix64(z);
  if (rng_state_[0] == 0 && rng_state_[1] == 0) rng_state_[0] = 1;
}

uint64_t CallGuard::NextBackoffMicros(int attempt) {
  double backoff = static_cast<double>(options_.retry.initial_backoff_micros);
  for (int i = 1; i < attempt; ++i) backoff *= options_.retry.backoff_multiplier;
  backoff = std::min(backoff,
                     static_cast<double>(options_.retry.max_backoff_micros));
  if (options_.retry.jitter > 0.0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    uint64_t s1 = rng_state_[0];
    const uint64_t s0 = rng_state_[1];
    rng_state_[0] = s0;
    s1 ^= s1 << 23;
    rng_state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    double u = static_cast<double>((rng_state_[1] + s0) >> 11) *
               (1.0 / 9007199254740992.0);
    // Uniform in [1 - jitter, 1 + jitter].
    backoff *= 1.0 + options_.retry.jitter * (2.0 * u - 1.0);
  }
  return backoff < 1.0 ? 1 : static_cast<uint64_t>(backoff);
}

Status CallGuard::Run(const char* op, const std::function<Status()>& fn,
                      bool* breaker_rejected) {
  if (breaker_rejected != nullptr) *breaker_rejected = false;
  ++stats_.calls;
  Metrics().calls.Increment();
  named_->calls.Increment();
  QueryContext* ctx = QueryContext::Current();
  if (ctx != nullptr) {
    Status caller = ctx->CheckStatus();
    if (!caller.ok()) {
      // The caller's own deadline/cancellation already fired: fail
      // fast before the first attempt instead of starting a fresh
      // retry/backoff cycle. No breaker penalty — the dependency is
      // not at fault for the caller's expired budget.
      if (caller.IsDeadlineExceeded()) {
        ++stats_.deadline_exceeded;
        Metrics().deadline_exceeded.Increment();
        named_->deadline_exceeded.Increment();
      }
      return caller;
    }
  }
  if (!breaker_.Allow()) {
    ++stats_.breaker_rejections;
    Metrics().breaker_rejections.Increment();
    named_->breaker_rejections.Increment();
    if (breaker_rejected != nullptr) *breaker_rejected = true;
    return Status::Aborted("circuit open for '" + name_ + "' (" + op + ")");
  }
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_micros = [&start]() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++stats_.attempts;
    last = fn();
    if (last.ok()) {
      breaker_.RecordSuccess();
      return last;
    }
    if (!IsRetriable(last)) {
      // Logic errors (NotFound, InvalidArgument, Corruption, ...) are
      // not the dependency's flakiness: report them without retry and
      // without tripping the breaker.
      return last;
    }
    const uint64_t deadline = options_.retry.deadline_micros;
    if (deadline > 0 && elapsed_micros() >= deadline) {
      ++stats_.deadline_exceeded;
      Metrics().deadline_exceeded.Increment();
      named_->deadline_exceeded.Increment();
      ++stats_.failures;
      Metrics().failures.Increment();
      named_->failures.Increment();
      breaker_.RecordFailure();
      return Status::Aborted("deadline exceeded after " +
                             std::to_string(elapsed_micros()) + "us in '" +
                             std::string(op) + "' on '" + name_ +
                             "': " + last.message());
    }
    if (ctx != nullptr && !ctx->CheckStatus().ok()) {
      // The caller's deadline expired (or it was cancelled) while this
      // attempt failed: report that instead of burning the remaining
      // retries. The attempt itself did fail, so the breaker learns.
      Status caller = ctx->StopStatus();
      if (caller.IsDeadlineExceeded()) {
        ++stats_.deadline_exceeded;
        Metrics().deadline_exceeded.Increment();
        named_->deadline_exceeded.Increment();
      }
      ++stats_.failures;
      Metrics().failures.Increment();
      named_->failures.Increment();
      breaker_.RecordFailure();
      return caller;
    }
    if (attempt == max_attempts) break;
    uint64_t backoff = NextBackoffMicros(attempt);
    if (deadline > 0) {
      uint64_t left = deadline - elapsed_micros();
      backoff = std::min(backoff, left);
    }
    if (ctx != nullptr && ctx->has_deadline()) {
      // Never sleep past the caller's deadline.
      int64_t left = ctx->RemainingMicros();
      backoff = std::min<uint64_t>(
          backoff, left > 1 ? static_cast<uint64_t>(left) : 1);
    }
    ++stats_.retries;
    Metrics().retries.Increment();
    named_->retries.Increment();
    SDMS_LOG(DEBUG) << "retry " << attempt << "/" << max_attempts - 1
                    << " of '" << op << "' on '" << name_ << "' in "
                    << backoff << "us: " << last.ToString();
    std::this_thread::sleep_for(std::chrono::microseconds(backoff));
  }
  ++stats_.failures;
  Metrics().failures.Increment();
  named_->failures.Increment();
  breaker_.RecordFailure();
  return last;
}

}  // namespace sdms::coupling
