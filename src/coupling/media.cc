#include "coupling/media.h"

namespace sdms::coupling {

namespace {

/// Media element types (raw data leaves whose content is not text).
bool IsMediaClass(const std::string& cls) {
  return cls == "FIGURE" || cls == "IMAGE" || cls == "AUDIO" ||
         cls == "VIDEO";
}

}  // namespace

Status RegisterMediaTextMode(Coupling& coupling) {
  Coupling* cp = &coupling;
  coupling.RegisterTextProvider(
      kTextModeMediaContext,
      [cp](oodb::Database& db, Oid oid) -> StatusOr<std::string> {
        SDMS_ASSIGN_OR_RETURN(std::string cls, db.ClassOf(oid));
        SDMS_ASSIGN_OR_RETURN(std::string own, cp->SubtreeText(oid));
        if (!IsMediaClass(cls)) return own;

        std::string text = own;  // The caption.
        auto append = [&text](const std::string& part) {
          if (part.empty()) return;
          if (!text.empty()) text += " ";
          text += part;
        };
        // Referencing fragments: the sibling elements around the media
        // object (typically the paragraphs discussing the figure).
        SDMS_ASSIGN_OR_RETURN(Oid parent, cp->ParentOf(oid));
        if (parent.valid()) {
          SDMS_ASSIGN_OR_RETURN(std::vector<Oid> siblings,
                                cp->ChildrenOf(parent));
          for (size_t i = 0; i < siblings.size(); ++i) {
            if (siblings[i] != oid) continue;
            if (i > 0) {
              SDMS_ASSIGN_OR_RETURN(std::string prev,
                                    cp->SubtreeText(siblings[i - 1]));
              append(prev);
            }
            if (i + 1 < siblings.size()) {
              SDMS_ASSIGN_OR_RETURN(std::string next,
                                    cp->SubtreeText(siblings[i + 1]));
              append(next);
            }
            break;
          }
        }
        // Section context: the title of the containing SECTION.
        SDMS_ASSIGN_OR_RETURN(Oid section, cp->ContainingOf(oid, "SECTION"));
        if (section.valid()) {
          SDMS_ASSIGN_OR_RETURN(std::vector<Oid> children,
                                cp->ChildrenOf(section));
          for (Oid child : children) {
            auto child_cls = db.ClassOf(child);
            if (child_cls.ok() && *child_cls == "SECTITLE") {
              SDMS_ASSIGN_OR_RETURN(std::string title,
                                    cp->SubtreeText(child));
              append(title);
              break;
            }
          }
        }
        return text;
      });
  return Status::OK();
}

}  // namespace sdms::coupling
