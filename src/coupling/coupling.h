#ifndef SDMS_COUPLING_COUPLING_H_
#define SDMS_COUPLING_COUPLING_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "coupling/admission.h"
#include "coupling/call_guard.h"
#include "coupling/collection_class.h"
#include "coupling/types.h"
#include "irs/engine.h"
#include "oodb/database.h"
#include "oodb/query/executor.h"
#include "oodb/storage/wal.h"
#include "sgml/document.h"
#include "sgml/dtd.h"

namespace sdms::coupling {

/// Produces an object's textual representation for one text mode — the
/// paper's parameterized getText(mode) (Section 4.2): "To provide
/// different representations of the same IRSObject in different
/// collections, the parameter textMode will be used".
using TextProvider =
    std::function<StatusOr<std::string>(oodb::Database&, Oid)>;

/// Well-known text modes registered by Initialize().
inline constexpr int kTextModeSubtree = 0;   // all leaf text under the element
inline constexpr int kTextModeDirect = 1;    // the element's own text only
inline constexpr int kTextModeTitles = 2;    // titles of all sub-elements
inline constexpr int kTextModeWithLinks = 3; // subtree + implies-link sources

/// Configuration of a Coupling (top-level so it can carry default
/// member initializers usable in default arguments).
struct CouplingOptions {
  /// Exchange IRS results through files (the paper's original
  /// mechanism) instead of the in-process API.
  bool file_exchange = false;
  /// Directory for exchange files.
  std::string exchange_dir = "/tmp";
  /// Result-buffer capacity per collection, in entries (0 = unbounded).
  size_t buffer_capacity = 0;
  /// Result-buffer byte budget per collection (approximate accounting
  /// of query strings + score maps; 0 = unbounded).
  size_t buffer_max_bytes = 0;
  /// Disables the persistent result buffer (ablation).
  bool disable_buffering = false;
  /// Retry/deadline/circuit-breaker policy for every IRS call a
  /// Collection makes on behalf of the database.
  CallGuardOptions call_guard;
  /// When the IRS is unavailable, getIRSResult may answer from the
  /// (possibly stale) persistent result buffer, flagging the result.
  bool serve_stale = true;
  /// Path of the propagation journal — the coupling-owned WAL holding
  /// the prepare/commit records of the exactly-once protocol. Empty
  /// disables journaling (propagation still works; crash recovery then
  /// relies on the database WAL alone).
  std::string journal_path;
  /// Directory the IRS indexes are persisted to by PersistIrs() and
  /// the database checkpoint hook. Empty disables both.
  std::string irs_snapshot_dir;
  /// Overload protection for the coupled query path: every mixed query
  /// passes through the coupling's AdmissionController. Defaults honor
  /// SDMS_MAX_CONCURRENT_QUERIES and SDMS_DEFAULT_DEADLINE_MS.
  AdmissionOptions admission = AdmissionOptionsFromEnv();
};

/// The loose OODBMS-IRS coupling with the DBMS as control component
/// (architecture (3) of Figure 1). Owns the coupling-specific part of
/// the database schema (classes IRSObject and COLLECTION plus their
/// methods), the Collection handles, the getText mode registry, the
/// SGML-to-objects mapping (Section 4.1) and the update listener that
/// drives propagation (Section 4.6).
class Coupling : public oodb::UpdateListener {
 public:
  using Options = CouplingOptions;

  Coupling(oodb::Database* db, irs::IrsEngine* engine,
           Options options = Options());
  ~Coupling() override;

  Coupling(const Coupling&) = delete;
  Coupling& operator=(const Coupling&) = delete;

  /// Defines the coupling schema (classes Object/IRSObject/COLLECTION),
  /// registers the coupling methods (getText, getIRSValue, structural
  /// navigation) and the built-in text modes, installs the update
  /// listener and the semantic-optimizer prepare hook.
  Status Initialize();

  // --- Collections ------------------------------------------------------

  /// Creates a COLLECTION database object encapsulating a fresh IRS
  /// collection using retrieval model `model_name`.
  StatusOr<Collection*> CreateCollection(
      const std::string& name, const std::string& model_name = "inquery",
      irs::AnalyzerOptions analyzer_options = {});

  StatusOr<Collection*> GetCollection(Oid oid);
  StatusOr<Collection*> GetCollectionByName(const std::string& name);
  std::vector<Collection*> collections();

  /// Attaches remote shard channels for `collection_name` from an
  /// endpoint list "host:port,host:port,..." — one element per shard
  /// in shard order; an empty element keeps that shard in-process.
  /// Fewer elements than shards leave the tail in-process. The
  /// channel configuration (model, analyzer, shard count) is derived
  /// from the local collection, so the shard servers build identical
  /// scorers. `SDMS_SHARD_ENDPOINTS` carries this list to sdms_server
  /// ("<collection>=<endpoints>"). Channels whose initial sync fails
  /// stay attached (they serve degraded until the server appears);
  /// the first such error is returned.
  Status ConnectRemoteShards(const std::string& collection_name,
                             const std::string& endpoints);

  /// Rebuilds the Collection handles after a restart: for every
  /// persisted COLLECTION database object whose IRS collection was
  /// restored (IrsEngine::LoadFrom), reattaches name, model,
  /// specification query, text mode, the represented set (taken from
  /// the restored IRS index's document keys), and the exactly-once
  /// routing floor (the snapshot's applied_seq). Returns the number
  /// of collections restored; COLLECTION objects without a matching
  /// IRS collection are skipped.
  StatusOr<size_t> RestoreCollections();

  // --- Exactly-once propagation (crash recovery) --------------------------

  /// Completes the exactly-once protocol after a restart. Call after
  /// RestoreCollections(). Three steps: (1) replays the propagation
  /// journal and requeues the ops of every prepared batch not covered
  /// by the restored index snapshot's high-water mark (commit records
  /// are advisory — they prove in-memory completion, not durability);
  /// (2) re-routes the committed update events the database WAL
  /// re-delivered (Database::TakeRecoveredUpdates), skipping per
  /// collection those at or below its restored high-water mark;
  /// (3) sweeps stray temp/exchange files a crashed run left behind.
  /// Replay is idempotent (ApplyOp reconciles against the current
  /// database state), so any crash point recovers to exactly-once.
  Status RecoverPropagation();

  /// Persists the IRS indexes (with their high-water marks) to
  /// options().irs_snapshot_dir, then truncates the propagation
  /// journal and re-parks any still-pending update-log ops in it — so
  /// the journal stays bounded while nothing pending ever exists only
  /// in memory once the database WAL is truncated. Installed as the
  /// database checkpoint hook (runs before WAL truncation; its failure
  /// aborts the checkpoint).
  Status PersistIrs();

  Status DropCollection(const std::string& name);

  // --- Collection choice (Section 4.5.1) --------------------------------
  // When getIRSValue is called with only the query, the coupling must
  // decide which COLLECTION to use. The paper's alternatives: (1) a
  // hard-wired collection, (2) an explicit argument (the 2-argument
  // getIRSValue), (3) a sophisticated choice by the object itself —
  // realized here as a per-element-type mapping resolved along the
  // isA chain.

  /// Alternative (1): the fallback collection for 1-argument
  /// getIRSValue calls.
  Status SetDefaultCollection(const std::string& name);

  /// Alternative (3): objects of `class_name` (and its subclasses,
  /// unless overridden) prefer `collection_name`.
  Status SetClassCollection(const std::string& class_name,
                            const std::string& collection_name);

  /// Resolves the collection for `obj`: class mapping (most-derived
  /// class first), then the default collection.
  StatusOr<Collection*> ChooseCollectionFor(Oid obj);

  // --- Text modes ---------------------------------------------------------

  void RegisterTextProvider(int mode, TextProvider provider);
  StatusOr<std::string> GetText(Oid obj, int mode);

  // --- SGML document storage (Section 4.1) --------------------------------

  /// Defines one element-type class per DTD element declaration, all
  /// subclasses of IRSObject, with the ATTLIST attributes.
  Status RegisterDtdClasses(const sgml::Dtd& dtd);

  /// Fragments `doc` into one database object per element (Section
  /// 4.1) inside a single transaction; returns the root element's OID.
  StatusOr<Oid> StoreDocument(const sgml::Document& doc);

  /// Deletes the subtree rooted at `oid` (recording ancestor text
  /// changes for update propagation before removal).
  Status DeleteSubtree(Oid oid);

  /// Concatenated leaf text of the subtree at `oid` (document order).
  StatusOr<std::string> SubtreeText(Oid oid) const;

  /// Child element OIDs in document order.
  StatusOr<std::vector<Oid>> ChildrenOf(Oid oid) const;

  /// Parent element, or kNullOid at the root.
  StatusOr<Oid> ParentOf(Oid oid) const;

  /// Nearest ancestor (or self) whose class is `gi`, or kNullOid.
  StatusOr<Oid> ContainingOf(Oid oid, const std::string& gi) const;

  /// Next sibling, or kNullOid.
  StatusOr<Oid> NextSiblingOf(Oid oid) const;

  // --- Access ---------------------------------------------------------------

  oodb::Database& db() { return *db_; }
  irs::IrsEngine& irs() { return *engine_; }
  oodb::vql::QueryEngine& query_engine() { return query_engine_; }
  AdmissionController& admission() { return admission_; }
  Options& options() { return options_; }

  /// Aggregated stats across all collections.
  CouplingStats AggregateStats() const;

  // --- UpdateListener -----------------------------------------------------

  /// Dispatches committed database updates to the collections'
  /// update methods, including text-bearing ancestors of the changed
  /// object (a paragraph edit changes the document's getText too).
  /// `seq` is the event's global sequence number; per collection,
  /// events at or below the routed high-water mark are dropped as
  /// duplicates (exactly-once re-delivery guard).
  void OnUpdate(oodb::UpdateKind kind, Oid oid, const std::string& class_name,
                const std::string& attr, uint64_t seq) override;

 private:
  friend class Collection;

  /// Shared routing core of OnUpdate and recovery re-delivery.
  void RouteUpdate(oodb::UpdateKind kind, Oid oid,
                   const std::string& class_name, uint64_t seq);

  /// Writes a prepare/commit record of the mini two-phase commit to
  /// the propagation journal (durably). Records carry the target shard
  /// so recovery can honor per-shard high-water floors — shards fail
  /// (and replay) independently. No-ops without a journal.
  Status JournalPrepare(Oid collection, uint32_t shard, uint64_t high,
                        const std::vector<PendingOp>& ops);
  Status JournalCommit(Oid collection, uint32_t shard, uint64_t high);

  /// Semantic query optimization [AbF95]: before evaluating a VQL
  /// query, warm the result buffer of every collection referenced by a
  /// getIRSValue conjunct with one batched IRS call.
  Status PrepareIrsConjuncts(const oodb::vql::ParsedQuery& query);

  Status RegisterCouplingSchema();
  Status RegisterIrsObjectMethods();
  Status RegisterCollectionMethods();
  Status RegisterBuiltinTextModes();

  StatusOr<Oid> StoreElement(const sgml::ElementNode& element, Oid parent,
                             int ord, oodb::TxnId txn);

  /// Resolves a VQL method argument naming a collection (OID value or
  /// collection-name string).
  StatusOr<Collection*> ResolveCollectionArg(const oodb::Value& v);

  oodb::Database* db_;
  irs::IrsEngine* engine_;
  Options options_;
  oodb::vql::QueryEngine query_engine_;
  AdmissionController admission_;

  std::map<Oid, std::unique_ptr<Collection>> collections_;
  std::map<std::string, Oid> collections_by_name_;
  std::map<int, TextProvider> text_providers_;
  /// Collection-choice state (Section 4.5.1).
  std::string default_collection_;
  std::map<std::string, std::string> class_collections_;
  bool initialized_ = false;
  uint64_t exchange_file_counter_ = 0;
  /// The propagation journal (see CouplingOptions::journal_path).
  std::unique_ptr<oodb::Wal> journal_;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_COUPLING_H_
