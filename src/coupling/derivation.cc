#include "coupling/derivation.h"

#include <algorithm>
#include <cmath>

namespace sdms::coupling {

namespace {

using irs::QueryNode;
using irs::QueryOp;

/// Fetches component values for the full query, shared by the simple
/// (query-agnostic) schemes.
StatusOr<std::vector<std::pair<Oid, double>>> ComponentValues(
    const DerivationContext& ctx) {
  SDMS_ASSIGN_OR_RETURN(std::vector<Oid> components,
                        ctx.components_of(ctx.object));
  std::vector<std::pair<Oid, double>> out;
  out.reserve(components.size());
  for (Oid c : components) {
    SDMS_ASSIGN_OR_RETURN(double v, ctx.component_value(c, ctx.irs_query));
    out.emplace_back(c, v);
  }
  return out;
}

class MaxScheme : public DerivationScheme {
 public:
  std::string name() const override { return "max"; }

  StatusOr<double> Derive(const DerivationContext& ctx) const override {
    SDMS_ASSIGN_OR_RETURN(auto values, ComponentValues(ctx));
    double best = ctx.default_value;
    for (const auto& [oid, v] : values) best = std::max(best, v);
    return best;
  }
};

class AvgScheme : public DerivationScheme {
 public:
  std::string name() const override { return "avg"; }

  StatusOr<double> Derive(const DerivationContext& ctx) const override {
    SDMS_ASSIGN_OR_RETURN(auto values, ComponentValues(ctx));
    if (values.empty()) return ctx.default_value;
    double sum = 0.0;
    for (const auto& [oid, v] : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
};

class WeightedTypeScheme : public DerivationScheme {
 public:
  explicit WeightedTypeScheme(std::map<std::string, double> weights)
      : weights_(std::move(weights)) {}

  std::string name() const override { return "wtype"; }

  StatusOr<double> Derive(const DerivationContext& ctx) const override {
    SDMS_ASSIGN_OR_RETURN(auto values, ComponentValues(ctx));
    if (values.empty()) return ctx.default_value;
    double sum = 0.0;
    double wsum = 0.0;
    for (const auto& [oid, v] : values) {
      SDMS_ASSIGN_OR_RETURN(std::string cls, ctx.class_of(oid));
      auto it = weights_.find(cls);
      double w = it == weights_.end() ? 1.0 : it->second;
      sum += w * v;
      wsum += w;
    }
    return wsum > 0.0 ? sum / wsum : ctx.default_value;
  }

 private:
  std::map<std::string, double> weights_;
};

class LengthWeightedScheme : public DerivationScheme {
 public:
  std::string name() const override { return "length"; }

  StatusOr<double> Derive(const DerivationContext& ctx) const override {
    SDMS_ASSIGN_OR_RETURN(auto values, ComponentValues(ctx));
    if (values.empty()) return ctx.default_value;
    double sum = 0.0;
    double wsum = 0.0;
    for (const auto& [oid, v] : values) {
      SDMS_ASSIGN_OR_RETURN(double len, ctx.length_of(oid));
      double w = std::max(len, 1.0);
      sum += w * v;
      wsum += w;
    }
    return sum / wsum;
  }
};

class SubqueryAwareScheme : public DerivationScheme {
 public:
  std::string name() const override { return "subquery"; }

  StatusOr<double> Derive(const DerivationContext& ctx) const override {
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> tree,
                          ctx.parse_query(ctx.irs_query));
    SDMS_ASSIGN_OR_RETURN(std::vector<Oid> components,
                          ctx.components_of(ctx.object));
    if (components.empty()) return ctx.default_value;
    return Combine(ctx, *tree, components);
  }

 private:
  /// Evaluates the operator tree; leaves are scored as max over
  /// components, inner nodes recombine with INQUERY semantics.
  StatusOr<double> Combine(const DerivationContext& ctx,
                           const QueryNode& node,
                           const std::vector<Oid>& components) const {
    switch (node.op) {
      case QueryOp::kTerm: {
        double best = ctx.default_value;
        for (Oid c : components) {
          SDMS_ASSIGN_OR_RETURN(double v, ctx.component_value(c, node.term));
          best = std::max(best, v);
        }
        return best;
      }
      case QueryOp::kAnd: {
        double b = 1.0;
        for (const auto& child : node.children) {
          SDMS_ASSIGN_OR_RETURN(double v, Combine(ctx, *child, components));
          b *= v;
        }
        return node.children.empty() ? ctx.default_value : b;
      }
      case QueryOp::kOr: {
        double b = 1.0;
        for (const auto& child : node.children) {
          SDMS_ASSIGN_OR_RETURN(double v, Combine(ctx, *child, components));
          b *= 1.0 - v;
        }
        return node.children.empty() ? ctx.default_value : 1.0 - b;
      }
      case QueryOp::kNot: {
        if (node.children.empty()) return ctx.default_value;
        SDMS_ASSIGN_OR_RETURN(double v,
                              Combine(ctx, *node.children[0], components));
        return 1.0 - v;
      }
      case QueryOp::kSum: {
        if (node.children.empty()) return ctx.default_value;
        double sum = 0.0;
        for (const auto& child : node.children) {
          SDMS_ASSIGN_OR_RETURN(double v, Combine(ctx, *child, components));
          sum += v;
        }
        return sum / static_cast<double>(node.children.size());
      }
      case QueryOp::kWsum: {
        if (node.children.empty()) return ctx.default_value;
        double sum = 0.0;
        double wsum = 0.0;
        for (size_t i = 0; i < node.children.size(); ++i) {
          double w = i < node.weights.size() ? node.weights[i] : 1.0;
          SDMS_ASSIGN_OR_RETURN(double v,
                                Combine(ctx, *node.children[i], components));
          sum += w * v;
          wsum += w;
        }
        return wsum > 0.0 ? sum / wsum : ctx.default_value;
      }
      case QueryOp::kMax: {
        double best = 0.0;
        for (const auto& child : node.children) {
          SDMS_ASSIGN_OR_RETURN(double v, Combine(ctx, *child, components));
          best = std::max(best, v);
        }
        return node.children.empty() ? ctx.default_value : best;
      }
      case QueryOp::kOdn:
      case QueryOp::kUwn: {
        // Proximity subqueries are atomic: evaluate the whole window
        // expression per component (a window match cannot span two
        // components' texts).
        std::string window_query = node.ToString();
        double best = ctx.default_value;
        for (Oid c : components) {
          SDMS_ASSIGN_OR_RETURN(double v,
                                ctx.component_value(c, window_query));
          best = std::max(best, v);
        }
        return best;
      }
    }
    return ctx.default_value;
  }
};

}  // namespace

std::unique_ptr<DerivationScheme> MakeMaxScheme() {
  return std::make_unique<MaxScheme>();
}

std::unique_ptr<DerivationScheme> MakeAvgScheme() {
  return std::make_unique<AvgScheme>();
}

std::unique_ptr<DerivationScheme> MakeWeightedTypeScheme(
    std::map<std::string, double> class_weights) {
  return std::make_unique<WeightedTypeScheme>(std::move(class_weights));
}

std::unique_ptr<DerivationScheme> MakeLengthWeightedScheme() {
  return std::make_unique<LengthWeightedScheme>();
}

std::unique_ptr<DerivationScheme> MakeSubqueryAwareScheme() {
  return std::make_unique<SubqueryAwareScheme>();
}

StatusOr<std::unique_ptr<DerivationScheme>> MakeScheme(
    const std::string& name) {
  if (name == "max") return MakeMaxScheme();
  if (name == "avg") return MakeAvgScheme();
  if (name == "length") return MakeLengthWeightedScheme();
  if (name == "subquery") return MakeSubqueryAwareScheme();
  if (name == "wtype") {
    return MakeWeightedTypeScheme({{"DOCTITLE", 2.0}, {"SECTITLE", 2.0}});
  }
  return Status::InvalidArgument("unknown derivation scheme: " + name);
}

}  // namespace sdms::coupling
