#ifndef SDMS_COUPLING_UPDATE_LOG_H_
#define SDMS_COUPLING_UPDATE_LOG_H_

#include <map>
#include <vector>

#include "common/oid.h"
#include "oodb/database.h"

namespace sdms::coupling {

/// When IRS index structures are brought up to date (Section 4.6):
///   kEager   — after every committed database update;
///   kOnQuery — deferred; enforced before the next IRS query
///              ("if an information-need query is issued with update
///               propagation pending, propagation is enforced");
///   kManual  — only when the application calls PropagateUpdates()
///              (e.g., in detected low-load periods). Queries *do not*
///              flush; results may be stale. Exposed mainly so the
///              update bench can quantify the trade-off.
enum class PropagationPolicy { kEager, kOnQuery, kManual };

/// One net effect to apply to the IRS. `seq` is the highest database
/// update-event sequence number folded into this net op (0 for ops
/// recorded outside the sequenced listener path); the exactly-once
/// replay guard compares it against the IRS snapshot's high-water
/// mark.
struct PendingOp {
  oodb::UpdateKind kind;
  Oid oid;
  uint64_t seq = 0;
};

/// Records database operations relevant to a collection, cancelling
/// sequences whose effects annihilate ("database operations are
/// recorded to avoid unnecessary update propagations, i.e. rebuilding
/// the IRS index structures even though they will not change").
/// Net-effect rules per object:
///   insert + delete            -> nothing
///   insert + modify*           -> insert
///   modify + modify*           -> one modify
///   modify + delete            -> delete
///   delete + insert (re-use)   -> modify (conservative)
class UpdateLog {
 public:
  /// Records one operation, folding it into the object's net effect.
  /// The net op keeps the highest seq folded into it.
  void Record(oodb::UpdateKind kind, Oid oid, uint64_t seq = 0);

  /// Puts a drained-but-unapplied operation back (propagation failed
  /// mid-batch). Folds like Record but does not count as a newly
  /// recorded operation, so recorded()/cancelled() stay meaningful
  /// across retries.
  void Requeue(const PendingOp& op);

  /// Returns the net operations (in first-touched order) and empties
  /// the log.
  std::vector<PendingOp> Drain();

  /// Copies the net operations without draining. Used to park pending
  /// work in the propagation journal before a checkpoint truncates the
  /// WAL that would otherwise re-deliver the underlying events.
  std::vector<PendingOp> Peek() const;

  size_t size() const { return net_.size(); }
  bool empty() const { return net_.empty(); }

  /// True if a net operation is pending for `oid`.
  bool Has(Oid oid) const { return net_.count(oid) > 0; }

  /// Raw operations recorded (before cancellation).
  uint64_t recorded() const { return recorded_; }
  /// Operations eliminated by cancellation (recorded - net effects
  /// still pending or drained).
  uint64_t cancelled() const { return cancelled_; }

  /// Highest sequence number ever recorded (survives Drain/Clear —
  /// cancelled ops count toward the high-water mark: their effects are
  /// resolved, so an IRS snapshot taken after the drain covers them).
  uint64_t last_seq() const { return last_seq_; }

  void Clear();

 private:
  enum class NetState { kInsert, kModify, kDelete };

  struct Entry {
    NetState state;
    uint64_t seq = 0;
  };

  /// Shared folding core of Record/Requeue.
  void Fold(oodb::UpdateKind kind, Oid oid, uint64_t seq);

  // Net effect per object plus arrival order for deterministic drains.
  std::map<Oid, Entry> net_;
  std::vector<Oid> order_;
  uint64_t recorded_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t last_seq_ = 0;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_UPDATE_LOG_H_
