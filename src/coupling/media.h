#ifndef SDMS_COUPLING_MEDIA_H_
#define SDMS_COUPLING_MEDIA_H_

#include "common/status.h"
#include "coupling/coupling.h"

namespace sdms::coupling {

/// Text mode registered by RegisterMediaTextMode.
inline constexpr int kTextModeMediaContext = 4;

/// Installs the non-textual-media handling of Section 5: "a
/// practicable approach to facilitate information retrieval from
/// images or other multimedia data in documents is having the text
/// fragments as IRS documents that reference the image [CrT91, DuR93].
/// The method getText for image objects would return exactly this
/// text."
///
/// Mode kTextModeMediaContext produces, for a media element (e.g.
/// FIGURE), the concatenation of
///   * its own subtree text (the CAPTION),
///   * the text of its preceding and following sibling elements
///     (the fragments that reference the image), and
///   * the title of the containing section, if any.
/// For non-media elements the mode falls back to the subtree text.
Status RegisterMediaTextMode(Coupling& coupling);

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_MEDIA_H_
