#ifndef SDMS_COUPLING_TYPES_H_
#define SDMS_COUPLING_TYPES_H_

#include <cstdint>
#include <map>

#include "common/oid.h"

namespace sdms::coupling {

/// An IRS result mapped back to database objects: the paper's
/// dictionary ||IRSObject --> REAL|| (Section 4.2).
using OidScoreMap = std::map<Oid, double>;

/// Counters describing coupling behaviour; read by tests and benches.
struct CouplingStats {
  /// Queries actually submitted to the IRS machine.
  uint64_t irs_queries = 0;
  /// findIRSValue served from the persistent result buffer.
  uint64_t buffer_hits = 0;
  /// findIRSValue that had to call the IRS.
  uint64_t buffer_misses = 0;
  /// deriveIRSValue invocations (objects not represented in the IRS).
  uint64_t derive_calls = 0;
  /// Documents (re)indexed in the IRS due to update propagation.
  uint64_t reindex_ops = 0;
  /// Update operations suppressed by operation-log cancellation.
  uint64_t cancelled_ops = 0;
  /// Bytes moved across the system boundary in file-exchange mode.
  uint64_t bytes_exchanged = 0;
  /// Result files written/parsed (file-exchange mode).
  uint64_t files_exchanged = 0;
  /// getIRSResult calls answered from the buffer while the IRS was
  /// unavailable (result flagged stale).
  uint64_t stale_serves = 0;
  /// findIRSValue calls that fell back to derivation/missing_value
  /// because the IRS was unavailable.
  uint64_t degraded_reads = 0;
  /// Net operations put back into the update log by failed
  /// propagations. Repair() resets this once consistency is restored.
  uint64_t requeued_ops = 0;
  /// Fan-out searches answered partially: at least one shard failed or
  /// was skipped while the others produced the (degraded) result.
  uint64_t shard_degraded_queries = 0;
  /// Straggler/failed shards re-issued once after the fan-out joined.
  uint64_t shard_hedges = 0;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_TYPES_H_
