#ifndef SDMS_COUPLING_REMOTE_SHARD_H_
#define SDMS_COUPLING_REMOTE_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/net/frame.h"
#include "common/status.h"
#include "coupling/call_guard.h"
#include "coupling/shard_protocol.h"
#include "irs/collection.h"

namespace sdms::coupling {

/// Network fault injection points of the remote shard transport.
/// The unsuffixed points hit every channel; the per-shard variants
/// (ShardNet*FaultPoint) hit only the channel serving that shard, so
/// the sim harness and tests can partition exactly one failure domain.
///   net.shard.connect   — TCP connect / hello handshake fails
///   net.shard.read      — response read drops mid-stream (kIoError)
///   net.shard.stall     — latency before a request (arm kLatency
///                         above the deadline to simulate a stalled
///                         peer; the per-request deadline then fires)
///   net.shard.partition — both directions dead: every send *and*
///                         receive on the channel fails
inline constexpr char kShardConnectFaultPoint[] = "net.shard.connect";
inline constexpr char kShardReadFaultPoint[] = "net.shard.read";
inline constexpr char kShardStallFaultPoint[] = "net.shard.stall";
inline constexpr char kShardPartitionFaultPoint[] = "net.shard.partition";

/// Per-shard variants ("net.shard<i>.connect" etc.); pointers are
/// stable for the process lifetime.
const char* ShardNetConnectFaultPoint(size_t shard);
const char* ShardNetReadFaultPoint(size_t shard);
const char* ShardNetStallFaultPoint(size_t shard);
const char* ShardNetPartitionFaultPoint(size_t shard);

/// Configuration of one router -> shard-server channel.
struct RemoteShardOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Identity and configuration shipped in ShardHello — the shard
  /// server builds its IrsCollection from these, which is why they
  /// must match the router's collection exactly.
  std::string collection;
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  std::string model_name = "inquery";
  irs::AnalyzerOptions analyzer;

  int connect_timeout_ms = 1000;
  /// Bounds every chunk of a frame read/write.
  int io_timeout_ms = 2000;
  /// Per-request deadline applied to a shard search when the calling
  /// QueryContext carries none.
  int64_t search_deadline_ms = 2000;
  /// Wait bound for catch-up answers (installs ship whole indexes).
  int io_catchup_timeout_ms = 10000;

  /// Reconnect backoff window: after a failed connect the channel
  /// refuses further attempts for an exponentially growing, jittered
  /// delay — a crashed shard server is not hammered in lockstep by
  /// every router thread.
  int backoff_min_ms = 20;
  int backoff_max_ms = 2000;
  /// 0 derives a seed from the shard/port (deterministic enough for
  /// tests that pin it explicitly).
  uint64_t jitter_seed = 0;

  /// Update ops retained for replay catch-up. A reconnecting server
  /// whose applied-seq gap is covered by this tail is caught up by
  /// replay; anything older falls back to a full install.
  size_t retained_ops = 4096;

  uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
};

/// Counters of one channel (tests read these; the process-wide
/// `coupling.remote_shard.*` metrics mirror them).
struct RemoteShardChannelStats {
  uint64_t connects = 0;
  uint64_t connect_failures = 0;
  uint64_t backoff_skips = 0;
  uint64_t searches = 0;
  uint64_t search_failures = 0;
  uint64_t catchup_replays = 0;
  uint64_t catchup_installs = 0;
  uint64_t ops_pushed = 0;
  uint64_t push_failures = 0;
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
};

/// A scatter-gather client for one remote shard: the network twin of
/// an in-process SearchShard call, slotted behind the same per-shard
/// CallGuard so the fan-out/hedge/partial-merge machinery treats a
/// remote shard exactly like a local one.
///
/// The router keeps the full local collection (it is the indexing and
/// durability tier); the channel mirrors one shard of it to a
/// `sdms_server --shard` process and routes that shard's searches over
/// the wire. Search failures surface as kIoError (retriable — the
/// guard's retry reconnects and re-issues; searches are idempotent) or
/// kDeadlineExceeded (hedge-eligible); they are never silently served
/// from the local copy, so a dead remote shard degrades the query
/// visibly instead of masking the outage.
///
/// Catch-up: every connection starts with a ShardHello / ShardStatus
/// handshake comparing the server's applied_seq + doc_count against
/// the local shard. A behind server is caught up by replaying the
/// retained op tail when it covers the gap, else by a full index
/// install (SerializeShard) — either way exactly-once with respect to
/// the propagation journal's seq floors.
///
/// Thread safety: all methods are serialized on an internal mutex (a
/// probe thread and a query thread may share a channel). Calls that
/// take the local collection must not race with writers to it — the
/// same external discipline IrsCollection itself requires.
class RemoteShardChannel {
 public:
  explicit RemoteShardChannel(RemoteShardOptions options);
  ~RemoteShardChannel();

  RemoteShardChannel(const RemoteShardChannel&) = delete;
  RemoteShardChannel& operator=(const RemoteShardChannel&) = delete;

  /// Ensures the server is connected and synced, then executes one
  /// shard search: ships the router-prepared plan's query + global
  /// statistics (EncodePlanStats), returns the shard's ranked hits —
  /// bit-identical to `local->SearchShard(plan, shard)` on a healthy
  /// channel.
  StatusOr<std::vector<irs::SearchHit>> Search(
      const std::string& query, const irs::IrsCollection::SearchPlan& plan,
      irs::IrsCollection* local);

  /// Forwards applied update ops (materialized text) to the server and
  /// advances its floor to `high`. Ops are retained for replay
  /// catch-up whether or not the push succeeds; a failed push leaves
  /// the channel unsynced, to be caught up by the next Search/
  /// EnsureSynced. When `local` is given, the server's post-apply
  /// doc_count is verified against it.
  Status PushOps(const std::vector<ShardOp>& ops, uint64_t high,
                 const irs::IrsCollection* local);

  /// Connection-only health probe (ping/pong; reconnects through the
  /// backoff gate when down). Never touches the local collection, so a
  /// monitor thread can run it concurrently with queries and updates.
  Status Probe();

  /// Connects and catches the server up to the local shard.
  Status EnsureSynced(irs::IrsCollection* local);

  /// Marks the mirrored state stale: the next Search/EnsureSynced
  /// redoes the status handshake and catch-up.
  void MarkUnsynced();

  /// Drops the connection (and the synced mark).
  void Close();

  bool connected() const;
  bool synced() const;
  RemoteShardChannelStats stats() const;
  /// Last ShardStatus answer received from the server.
  ShardStatusMsg last_peer_status() const;
  const RemoteShardOptions& options() const { return options_; }

 private:
  Status CheckNetFaultLocked(const char* global_point,
                             const char* shard_point);
  /// Partition rule check applied to every network operation.
  Status CheckPartitionLocked();
  Status ConnectLocked();
  void CloseLocked();
  void ScheduleBackoffLocked();
  /// Writes one frame and reads the answer, bounded by `wait_ms`;
  /// kError answers are decoded into their typed Status. Closes the
  /// connection on transport failure.
  StatusOr<net::Frame> RoundTripLocked(net::FrameType type,
                                       const std::string& payload,
                                       int64_t wait_ms);
  Status EnsureSyncedLocked(irs::IrsCollection* local);
  /// Sends ops/install and folds the ShardStatus answer into
  /// peer_status_.
  Status SendCatchUpLocked(net::FrameType type, const std::string& payload);
  void RetainOpLocked(const ShardOp& op);

  const RemoteShardOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool synced_ = false;
  ShardStatusMsg peer_status_;
  bool have_peer_status_ = false;
  uint64_t next_request_id_ = 0;

  /// Replay ring: ops applied locally after ring_base_seq_, in apply
  /// order. `ring_usable_` drops to false when an unsequenced op falls
  /// off the ring (the gap can no longer be proven covered); a full
  /// install resets the ring.
  std::deque<ShardOp> ring_;
  uint64_t ring_base_seq_ = 0;
  bool ring_usable_ = true;

  /// Reconnect backoff state (steady-clock micros).
  int64_t next_connect_micros_ = 0;
  int consecutive_connect_failures_ = 0;
  uint64_t jitter_state_ = 0;

  RemoteShardChannelStats stats_;
};

/// Periodically probes a set of channels and feeds the outcomes into
/// the corresponding per-shard CallGuard breakers: a dead shard server
/// opens its breaker between queries (fan-out skips it instantly), and
/// a recovered one closes it again without waiting for a query-path
/// probe.
class ShardHealthMonitor {
 public:
  struct Target {
    RemoteShardChannel* channel = nullptr;
    CallGuard* guard = nullptr;
  };

  ShardHealthMonitor(std::vector<Target> targets, int interval_ms);
  ~ShardHealthMonitor();

  /// Stops the probe thread (idempotent).
  void Stop();

  /// One synchronous probe round (tests drive this directly).
  void ProbeRound();

  uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const std::vector<Target> targets_;
  const int interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> rounds_{0};
  std::thread thread_;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_REMOTE_SHARD_H_
