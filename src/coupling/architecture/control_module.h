#ifndef SDMS_COUPLING_ARCHITECTURE_CONTROL_MODULE_H_
#define SDMS_COUPLING_ARCHITECTURE_CONTROL_MODULE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "coupling/types.h"
#include "irs/engine.h"
#include "oodb/database.h"
#include "oodb/query/executor.h"

namespace sdms::coupling {

/// Baseline reproduction of the *control module* architecture
/// (Figure 1, alternative (1) — COINS [CST92], HYDRA [GTZ93]): a third
/// component coordinates OODBMS and IRS. The application cannot phrase
/// one mixed query; it must split it into a structure part (a database
/// query) and a content part (an IRS query with threshold), which the
/// module runs against the two systems and then joins itself. Data is
/// interchanged through files / temporary tables (HYDRA stored the IRS
/// result in a temporary SYBASE table).
///
/// The paper argues architecture (3) — the DBMS as control component —
/// avoids this; the E1 bench quantifies the difference.
class ControlModule {
 public:
  /// One split mixed query.
  struct MixedQuery {
    /// Structure part: a VQL query selecting a single OID column.
    std::string structure_vql;
    /// Content part.
    std::string irs_collection;
    std::string irs_query;
    double threshold = 0.0;
  };

  /// A joined result row.
  struct ResultRow {
    Oid oid;
    double score = 0.0;
  };

  ControlModule(oodb::Database* db, irs::IrsEngine* engine,
                std::string exchange_dir)
      : db_(db),
        engine_(engine),
        exchange_dir_(std::move(exchange_dir)),
        query_engine_(db) {}

  /// Runs both parts and intersects: objects satisfying the structure
  /// part whose IRS value exceeds the threshold, with their values.
  StatusOr<std::vector<ResultRow>> Run(const MixedQuery& query);

  /// Cross-system round trips performed (1 DB + 1 IRS per Run).
  uint64_t round_trips() const { return round_trips_; }
  const CouplingStats& stats() const { return stats_; }

 private:
  oodb::Database* db_;
  irs::IrsEngine* engine_;
  std::string exchange_dir_;
  oodb::vql::QueryEngine query_engine_;
  uint64_t round_trips_ = 0;
  uint64_t file_counter_ = 0;
  CouplingStats stats_;
};

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_ARCHITECTURE_CONTROL_MODULE_H_
