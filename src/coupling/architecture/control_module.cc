#include "coupling/architecture/control_module.h"

#include <map>

#include "common/file_util.h"
#include "common/string_util.h"

namespace sdms::coupling {

StatusOr<std::vector<ControlModule::ResultRow>> ControlModule::Run(
    const MixedQuery& query) {
  // (1) Content part: submit to the IRS; the result crosses the system
  // boundary through a file (the temporary-table analogue).
  std::string path = exchange_dir_ + "/ctrl_result_" +
                     std::to_string(file_counter_++) + ".txt";
  SDMS_RETURN_IF_ERROR(
      engine_->SearchToFile(query.irs_collection, query.irs_query, path));
  ++round_trips_;
  ++stats_.irs_queries;
  ++stats_.files_exchanged;
  auto size = FileSize(path);
  if (size.ok()) stats_.bytes_exchanged += static_cast<uint64_t>(*size);
  SDMS_ASSIGN_OR_RETURN(std::vector<irs::SearchHit> hits,
                        irs::IrsEngine::ParseResultFile(path));
  (void)RemoveFile(path);
  // Build the "temporary table": OID -> score above threshold.
  std::map<Oid, double> temp_table;
  for (const irs::SearchHit& h : hits) {
    if (h.score <= query.threshold) continue;
    if (!StartsWith(h.key, "oid:")) continue;
    try {
      temp_table.emplace(Oid(std::stoull(h.key.substr(4))), h.score);
    } catch (...) {
      return Status::Corruption("malformed OID key: " + h.key);
    }
  }

  // (2) Structure part: run against the DBMS.
  SDMS_ASSIGN_OR_RETURN(oodb::vql::QueryResult structural,
                        query_engine_.Run(query.structure_vql));
  ++round_trips_;

  // (3) Join in the control module.
  std::vector<ResultRow> out;
  for (const auto& row : structural.rows) {
    if (row.empty() || !row[0].is_oid()) continue;
    auto it = temp_table.find(row[0].as_oid());
    if (it != temp_table.end()) {
      out.push_back(ResultRow{it->first, it->second});
    }
  }
  return out;
}

}  // namespace sdms::coupling
