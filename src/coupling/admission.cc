#include "coupling/admission.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "common/obs/metrics.h"
#include "common/obs/profile.h"

namespace sdms::coupling {

namespace {

struct AdmissionMetrics {
  obs::Counter& admitted = obs::GetCounter("coupling.admission.admitted");
  obs::Counter& shed = obs::GetCounter("coupling.admission.shed");
  /// Per-cause split of `shed` (shed == queue_full + deadline_expired +
  /// queue_wait): the server maps these onto typed shed responses.
  obs::Counter& shed_queue_full =
      obs::GetCounter("coupling.admission.shed_queue_full");
  obs::Counter& shed_deadline_expired =
      obs::GetCounter("coupling.admission.shed_deadline_expired");
  obs::Counter& shed_queue_wait =
      obs::GetCounter("coupling.admission.shed_queue_wait");
  obs::Counter& expired_in_queue =
      obs::GetCounter("coupling.admission.expired_in_queue");
  obs::Gauge& running = obs::GetGauge("coupling.admission.running");
  obs::Gauge& queue_depth = obs::GetGauge("coupling.admission.queue_depth");
  obs::Histogram& queue_wait_us =
      obs::GetHistogram("coupling.admission.queue_wait_micros");
};

AdmissionMetrics& Metrics() {
  static AdmissionMetrics* m = new AdmissionMetrics();
  return *m;
}

}  // namespace

AdmissionOptions AdmissionOptionsFromEnv() {
  AdmissionOptions o;
  if (const char* env = std::getenv("SDMS_MAX_CONCURRENT_QUERIES")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) o.max_concurrent = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("SDMS_MAX_QUEUE")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) o.max_queue = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("SDMS_DEFAULT_DEADLINE_MS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) o.default_deadline_micros = v * 1000;
  }
  return o;
}

const char* ShedCauseName(ShedCause cause) {
  switch (cause) {
    case ShedCause::kNone: return "none";
    case ShedCause::kQueueFull: return "queue_full";
    case ShedCause::kDeadlineExpired: return "deadline_expired";
    case ShedCause::kQueueWait: return "queue_wait";
    case ShedCause::kDraining: return "draining";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    QueryContext* ctx, ShedCause* shed_cause) {
  if (shed_cause != nullptr) *shed_cause = ShedCause::kNone;
  if (ctx != nullptr && options_.default_deadline_micros > 0 &&
      !ctx->has_deadline()) {
    ctx->set_deadline_micros(QueryContext::NowMicros() +
                             options_.default_deadline_micros);
  }
  if (options_.max_concurrent == 0) {
    Metrics().admitted.Increment();
    return Ticket(this);
  }

  const int64_t arrived = QueryContext::NowMicros();
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < options_.max_concurrent) {
    ++running_;
    Metrics().running.Set(static_cast<int64_t>(running_));
    Metrics().admitted.Increment();
    Metrics().queue_wait_us.Record(0.0);
    return Ticket(this);
  }

  // No free slot. Shed instead of queueing when the queue is full or
  // the caller's deadline cannot survive any wait at all.
  if (queued_ >= options_.max_queue) {
    Metrics().shed.Increment();
    Metrics().shed_queue_full.Increment();
    if (shed_cause != nullptr) *shed_cause = ShedCause::kQueueFull;
    return Status::ResourceExhausted("admission queue full (" +
                                     std::to_string(queued_) + " waiting)");
  }
  if (ctx != nullptr && ctx->has_deadline() && ctx->RemainingMicros() <= 0) {
    Metrics().shed.Increment();
    Metrics().shed_deadline_expired.Increment();
    if (shed_cause != nullptr) *shed_cause = ShedCause::kDeadlineExpired;
    return Status::ResourceExhausted(
        "deadline already expired at admission; not queueing");
  }

  ++queued_;
  Metrics().queue_depth.Set(static_cast<int64_t>(queued_));
  for (;;) {
    // Wake-up horizon: the caller's deadline and the queue-wait bound,
    // whichever comes first.
    int64_t wait_us = options_.max_queue_wait_micros > 0
                          ? options_.max_queue_wait_micros
                          : std::numeric_limits<int64_t>::max();
    if (ctx != nullptr && ctx->has_deadline()) {
      wait_us = std::min(wait_us, ctx->RemainingMicros());
    }
    if (wait_us <= 0) break;  // nothing left to wait with — shed below
    // Bounded slices so cancellation is noticed even when no slot
    // frees up (cv notifications only fire on Release).
    cv_.wait_for(lock,
                 std::chrono::microseconds(std::min<int64_t>(wait_us, 100'000)),
                 [this] { return running_ < options_.max_concurrent; });
    if (ctx != nullptr && ctx->cancel_token().cancelled()) break;
    if (running_ < options_.max_concurrent) {
      --queued_;
      ++running_;
      Metrics().queue_depth.Set(static_cast<int64_t>(queued_));
      Metrics().running.Set(static_cast<int64_t>(running_));
      Metrics().admitted.Increment();
      int64_t waited = QueryContext::NowMicros() - arrived;
      Metrics().queue_wait_us.Record(static_cast<double>(waited));
      obs::ProfileCount("admission_wait_micros",
                        static_cast<uint64_t>(std::max<int64_t>(waited, 0)));
      return Ticket(this, waited);
    }
    if (ctx != nullptr && ctx->has_deadline() && ctx->RemainingMicros() <= 0) {
      break;  // deadline expired while queued
    }
    if (options_.max_queue_wait_micros > 0 &&
        QueryContext::NowMicros() - arrived >= options_.max_queue_wait_micros) {
      break;  // queue-wait bound elapsed
    }
  }

  --queued_;
  Metrics().queue_depth.Set(static_cast<int64_t>(queued_));
  int64_t shed_wait = QueryContext::NowMicros() - arrived;
  Metrics().queue_wait_us.Record(static_cast<double>(shed_wait));
  // A shed query's wait is still attributable cost — charge it so a
  // shed-adjacent slow query shows where its time went.
  obs::ProfileCount("admission_wait_micros",
                    static_cast<uint64_t>(std::max<int64_t>(shed_wait, 0)));
  if (ctx != nullptr && ctx->cancel_token().cancelled()) {
    return ctx->CheckStatus();  // kCancelled, not a shed
  }
  Metrics().shed.Increment();
  if (ctx != nullptr && ctx->has_deadline() && ctx->RemainingMicros() <= 0) {
    Metrics().expired_in_queue.Increment();
    Metrics().shed_deadline_expired.Increment();
    if (shed_cause != nullptr) *shed_cause = ShedCause::kDeadlineExpired;
    return Status::ResourceExhausted("deadline expired waiting for admission");
  }
  Metrics().shed_queue_wait.Increment();
  if (shed_cause != nullptr) *shed_cause = ShedCause::kQueueWait;
  return Status::ResourceExhausted("queue-wait bound exceeded for admission");
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release();
  controller_ = nullptr;
}

void AdmissionController::Release() {
  if (options_.max_concurrent == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ > 0) --running_;
    Metrics().running.Set(static_cast<int64_t>(running_));
  }
  cv_.notify_one();
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace sdms::coupling
