#ifndef SDMS_COUPLING_CALL_GUARD_H_
#define SDMS_COUPLING_CALL_GUARD_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace sdms::coupling {

/// Retry/backoff/deadline policy for one guarded call.
struct RetryOptions {
  /// Total attempts (first try + retries). 1 disables retries.
  int max_attempts = 3;
  /// Backoff before retry k is initial * multiplier^(k-1), capped at
  /// max, then jittered by ±jitter (fraction of the backoff).
  uint64_t initial_backoff_micros = 500;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_micros = 50000;
  double jitter = 0.5;
  /// Per-call budget across all attempts; once exceeded, a failing
  /// call returns kAborted("deadline exceeded...") instead of
  /// retrying. 0 = no deadline. A *successful* attempt that finishes
  /// late is still used — the result is in hand and correct.
  uint64_t deadline_micros = 0;
};

/// Circuit-breaker policy: closed -> open after `failure_threshold`
/// consecutive failures; open rejects calls instantly for
/// `open_micros`; then one half-open probe decides (success -> closed,
/// failure -> open again).
struct BreakerOptions {
  int failure_threshold = 5;
  uint64_t open_micros = 200000;
};

struct CallGuardOptions {
  RetryOptions retry;
  BreakerOptions breaker;
  /// Seed for backoff jitter. 0 (the default) derives a per-instance
  /// seed from process entropy, so independent guards — and therefore
  /// independent clients hammering a recovering server — draw
  /// *different* backoff sequences instead of retrying in lockstep.
  /// A nonzero seed pins the sequence (deterministic tests).
  uint64_t jitter_seed = 0;
};

enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

const char* BreakerStateName(BreakerState state);

/// Per-dependency circuit breaker. Thread-safe.
class CircuitBreaker {
 public:
  CircuitBreaker(BreakerOptions options, std::string name);

  /// True if a call may proceed; transitions open -> half-open once
  /// the open window has elapsed (the caller becomes the probe).
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  int consecutive_failures() const;
  uint64_t opens() const { return opens_; }

  /// Back to closed with counters cleared (post-repair).
  void Reset();

 private:
  void SetState(BreakerState next);
  /// Rewrites the state gauges unconditionally (SetState skips them
  /// when the state is unchanged; Reset must not).
  void PublishState();

  BreakerOptions options_;
  std::string name_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  uint64_t opens_ = 0;
  std::chrono::steady_clock::time_point open_until_{};
};

/// Counters of one guard instance (tests and stats aggregation read
/// these; the process-wide `coupling.irs.*` metrics mirror them).
struct CallGuardStats {
  uint64_t calls = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t failures = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t breaker_rejections = 0;
};

/// Wraps every OODBMS -> IRS call with a per-call deadline, bounded
/// retry with exponential backoff + jitter (only kIoError / kAborted
/// are retried — the transient classes the fault framework and a
/// flaky external IRS produce), and a shared circuit breaker.
class CallGuard {
 public:
  CallGuard(CallGuardOptions options, std::string name);
  ~CallGuard();

  /// Runs `fn` under the policy. `op` labels logs/metrics. The
  /// returned status is `fn`'s last status, kAborted("circuit open...")
  /// on breaker rejection, or kAborted("deadline exceeded...") when the
  /// call budget ran out on a failing call.
  ///
  /// `breaker_rejected`, when non-null, is set true iff the call was
  /// refused by the open breaker without any attempt — fan-out callers
  /// report such shards as "skipped" rather than "failed".
  Status Run(const char* op, const std::function<Status()>& fn,
             bool* breaker_rejected = nullptr);

  CircuitBreaker& breaker() { return breaker_; }
  const CallGuardStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// The backoff (with jitter) the guard would sleep before retry
  /// `attempt` — public so tests can observe the jitter sequence
  /// without timing sleeps. Advances the guard's jitter RNG.
  uint64_t NextBackoffMicros(int attempt);

 private:
  CallGuardOptions options_;
  std::string name_;
  CircuitBreaker breaker_;
  CallGuardStats stats_;
  std::mutex rng_mu_;
  uint64_t rng_state_[2];
  /// Per-name labeled counters (`coupling.callguard.<field>.<name>`),
  /// so guards of individual shards are attributable in the metrics —
  /// the process-global `coupling.irs.*` counters aggregate across all
  /// guards and cannot tell shard 2's failures from shard 5's.
  struct NamedMetrics;
  std::unique_ptr<NamedMetrics> named_;
};

/// Transient failure classes: injected/real I/O errors, crashes,
/// per-call deadline overruns, and breaker rejections all surface as
/// kIoError or kAborted. Only these are retried.
bool IsRetriable(const Status& s);

/// Degradable failure classes: the retriable set plus kDeadlineExceeded
/// (a caller whose QueryContext deadline fired wants a cheap fallback —
/// stale buffer, null score, derivation — never another attempt).
/// Degraded serving triggers only for these; logic errors and explicit
/// cancellation (kCancelled) still propagate.
inline bool IsUnavailable(const Status& s) {
  return IsRetriable(s) || s.IsDeadlineExceeded();
}

}  // namespace sdms::coupling

#endif  // SDMS_COUPLING_CALL_GUARD_H_
