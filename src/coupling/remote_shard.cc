#include "coupling/remote_shard.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/fault/fault.h"
#include "common/net/socket.h"
#include "common/obs/log.h"
#include "common/obs/metrics.h"
#include "common/query_context.h"

namespace sdms::coupling {

namespace {

const char* StableShardPointName(
    size_t shard, const char* prefix, const char* suffix,
    std::vector<std::unique_ptr<std::string>>& names, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  while (names.size() <= shard) {
    names.push_back(std::make_unique<std::string>(
        prefix + std::to_string(names.size()) + suffix));
  }
  return names[shard]->c_str();
}

obs::Counter& Metric(const char* name) {
  return obs::GetCounter(std::string("coupling.remote_shard.") + name);
}

}  // namespace

const char* ShardNetConnectFaultPoint(size_t shard) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  return StableShardPointName(shard, "net.shard", ".connect", names, mu);
}

const char* ShardNetReadFaultPoint(size_t shard) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  return StableShardPointName(shard, "net.shard", ".read", names, mu);
}

const char* ShardNetStallFaultPoint(size_t shard) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  return StableShardPointName(shard, "net.shard", ".stall", names, mu);
}

const char* ShardNetPartitionFaultPoint(size_t shard) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  return StableShardPointName(shard, "net.shard", ".partition", names, mu);
}

RemoteShardChannel::RemoteShardChannel(RemoteShardOptions options)
    : options_(std::move(options)) {
  jitter_state_ = options_.jitter_seed != 0
                      ? options_.jitter_seed
                      : 0x9e3779b97f4a7c15ull ^
                            (static_cast<uint64_t>(options_.shard) << 32) ^
                            options_.port;
  if (jitter_state_ == 0) jitter_state_ = 1;
}

RemoteShardChannel::~RemoteShardChannel() { Close(); }

bool RemoteShardChannel::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

bool RemoteShardChannel::synced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0 && synced_;
}

RemoteShardChannelStats RemoteShardChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ShardStatusMsg RemoteShardChannel::last_peer_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peer_status_;
}

void RemoteShardChannel::MarkUnsynced() {
  std::lock_guard<std::mutex> lock(mu_);
  synced_ = false;
  // The cached peer status no longer proves anything — the next sync
  // re-asks over the live connection (or the reconnect handshake).
  have_peer_status_ = false;
}

void RemoteShardChannel::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
}

void RemoteShardChannel::CloseLocked() {
  if (fd_ >= 0) {
    net::CloseFd(fd_);
    fd_ = -1;
  }
  synced_ = false;
  have_peer_status_ = false;
}

Status RemoteShardChannel::CheckNetFaultLocked(const char* global_point,
                                               const char* shard_point) {
  SDMS_RETURN_IF_ERROR(fault::InjectFault(global_point));
  return fault::InjectFault(shard_point);
}

Status RemoteShardChannel::CheckPartitionLocked() {
  return CheckNetFaultLocked(kShardPartitionFaultPoint,
                             ShardNetPartitionFaultPoint(options_.shard));
}

void RemoteShardChannel::ScheduleBackoffLocked() {
  ++consecutive_connect_failures_;
  int shift = std::min(consecutive_connect_failures_ - 1, 10);
  int64_t delay_ms = static_cast<int64_t>(options_.backoff_min_ms) << shift;
  delay_ms = std::min<int64_t>(delay_ms, options_.backoff_max_ms);
  // xorshift64* jitter in [0.5, 1.5) of the delay — parallel routers
  // probing a recovering server spread out instead of stampeding.
  jitter_state_ ^= jitter_state_ >> 12;
  jitter_state_ ^= jitter_state_ << 25;
  jitter_state_ ^= jitter_state_ >> 27;
  uint64_t draw = jitter_state_ * 0x2545f4914f6cdd1dull;
  double factor = 0.5 + static_cast<double>(draw % 1000) / 1000.0;
  delay_ms = std::max<int64_t>(1, static_cast<int64_t>(delay_ms * factor));
  next_connect_micros_ = QueryContext::NowMicros() + delay_ms * 1000;
  Metric("reconnect_backoffs").Increment();
}

Status RemoteShardChannel::ConnectLocked() {
  if (fd_ >= 0) return Status::OK();
  int64_t now = QueryContext::NowMicros();
  if (now < next_connect_micros_) {
    ++stats_.backoff_skips;
    return Status::IoError(
        "shard " + std::to_string(options_.shard) +
        " reconnect backoff active (" +
        std::to_string((next_connect_micros_ - now) / 1000) + " ms left)");
  }
  Status injected = CheckPartitionLocked();
  if (injected.ok()) {
    injected = CheckNetFaultLocked(kShardConnectFaultPoint,
                                   ShardNetConnectFaultPoint(options_.shard));
  }
  if (!injected.ok()) {
    ++stats_.connect_failures;
    ScheduleBackoffLocked();
    return injected;
  }
  auto fd = net::ConnectTcp(options_.host, options_.port,
                            options_.connect_timeout_ms);
  if (!fd.ok()) {
    ++stats_.connect_failures;
    ScheduleBackoffLocked();
    return fd.status();
  }
  fd_ = fd.value();
  ShardHello hello;
  hello.collection = options_.collection;
  hello.shard = options_.shard;
  hello.num_shards = options_.num_shards;
  hello.model_name = options_.model_name;
  hello.analyzer = options_.analyzer;
  hello.peer = "remote_shard_channel";
  Status s = net::WriteFrame(fd_, net::FrameType::kShardHello,
                             EncodeShardHello(hello), options_.io_timeout_ms,
                             options_.max_frame_bytes);
  if (s.ok()) {
    auto frame = net::ReadFrame(fd_, options_.io_timeout_ms,
                                options_.io_timeout_ms,
                                options_.max_frame_bytes);
    if (!frame.ok()) {
      s = frame.status();
    } else if (frame.value().type == net::FrameType::kError) {
      s = DecodeShardError(frame.value().payload);
    } else if (frame.value().type != net::FrameType::kShardStatus) {
      s = Status::Corruption(std::string("unexpected ") +
                             net::FrameTypeName(frame.value().type) +
                             " frame answering shard hello");
    } else {
      auto status_msg = DecodeShardStatusMsg(frame.value().payload);
      if (!status_msg.ok()) {
        s = status_msg.status();
      } else {
        peer_status_ = status_msg.value();
        have_peer_status_ = true;
      }
    }
  }
  if (!s.ok()) {
    CloseLocked();
    ++stats_.connect_failures;
    // Version/config rejections are not transient: surface them typed
    // (no retry loop will fix a v2 peer), but still rate-limit the
    // reconnect attempts.
    ScheduleBackoffLocked();
    return s;
  }
  consecutive_connect_failures_ = 0;
  next_connect_micros_ = 0;
  ++stats_.connects;
  Metric("connects").Increment();
  SDMS_LOG(INFO) << "remote shard " << options_.collection << "/"
                 << options_.shard << " connected to " << options_.host << ":"
                 << options_.port << " (peer applied_seq="
                 << peer_status_.applied_seq
                 << " docs=" << peer_status_.doc_count << ")";
  return Status::OK();
}

StatusOr<net::Frame> RemoteShardChannel::RoundTripLocked(
    net::FrameType type, const std::string& payload, int64_t wait_ms) {
  if (fd_ < 0) return Status::IoError("shard channel not connected");
  // The deadline covers the whole round trip — send included — so a
  // stalled send (or the injected stall below) consumes the budget
  // exactly like a peer that never answers.
  int64_t deadline = QueryContext::NowMicros() + wait_ms * 1000;
  SDMS_RETURN_IF_ERROR(CheckPartitionLocked());
  // A stall rule sleeps here; a long enough one pushes the request
  // past its deadline, exactly like a wedged peer or network.
  SDMS_RETURN_IF_ERROR(CheckNetFaultLocked(
      kShardStallFaultPoint, ShardNetStallFaultPoint(options_.shard)));
  Status s = net::WriteFrame(fd_, type, payload, options_.io_timeout_ms,
                             options_.max_frame_bytes);
  if (!s.ok()) {
    CloseLocked();
    return s;
  }
  QueryContext* ctx = QueryContext::Current();
  for (;;) {
    if (ctx != nullptr) {
      Status stop = ctx->CheckStatus();
      if (!stop.ok()) return stop;
    }
    int64_t remaining_ms = (deadline - QueryContext::NowMicros()) / 1000;
    if (remaining_ms <= 0) {
      CloseLocked();
      return Status::DeadlineExceeded(
          "shard " + std::to_string(options_.shard) + " response after " +
          std::to_string(wait_ms) + " ms");
    }
    Status readable = net::WaitReadable(
        fd_, static_cast<int>(std::min<int64_t>(remaining_ms, 20)));
    if (readable.code() == StatusCode::kDeadlineExceeded) continue;
    if (!readable.ok()) {
      CloseLocked();
      return readable;
    }
    break;
  }
  Status injected = CheckPartitionLocked();
  if (injected.ok()) {
    injected = CheckNetFaultLocked(kShardReadFaultPoint,
                                   ShardNetReadFaultPoint(options_.shard));
  }
  if (!injected.ok()) {
    CloseLocked();
    return injected;
  }
  auto frame = net::ReadFrame(fd_, options_.io_timeout_ms,
                              options_.io_timeout_ms, options_.max_frame_bytes);
  if (!frame.ok()) {
    CloseLocked();
    // A clean EOF mid-request is still a transport failure (the peer
    // died or dropped us); surface it in the guard's retriable class.
    if (net::IsConnClosed(frame.status())) {
      return Status::IoError("shard " + std::to_string(options_.shard) +
                             " connection closed mid-request");
    }
    return frame.status();
  }
  if (frame.value().type == net::FrameType::kError) {
    // Typed server-side error: the connection stays usable.
    return DecodeShardError(frame.value().payload);
  }
  return frame;
}

void RemoteShardChannel::RetainOpLocked(const ShardOp& op) {
  ring_.push_back(op);
  while (ring_.size() > options_.retained_ops) {
    const ShardOp& dropped = ring_.front();
    if (dropped.seq == 0) {
      // An unsequenced op fell off: replay can no longer prove it
      // covers the gap from any floor. Installs only, until the next
      // install resets the ring.
      ring_usable_ = false;
    } else {
      ring_base_seq_ = std::max(ring_base_seq_, dropped.seq);
    }
    ring_.pop_front();
  }
}

Status RemoteShardChannel::SendCatchUpLocked(net::FrameType type,
                                             const std::string& payload) {
  auto frame = RoundTripLocked(type, payload, options_.io_catchup_timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != net::FrameType::kShardStatus) {
    CloseLocked();
    return Status::Corruption(std::string("unexpected ") +
                              net::FrameTypeName(frame.value().type) +
                              " frame answering shard catch-up");
  }
  SDMS_ASSIGN_OR_RETURN(peer_status_,
                        DecodeShardStatusMsg(frame.value().payload));
  have_peer_status_ = true;
  return Status::OK();
}

Status RemoteShardChannel::EnsureSyncedLocked(irs::IrsCollection* local) {
  if (fd_ >= 0 && synced_) return Status::OK();
  SDMS_RETURN_IF_ERROR(ConnectLocked());
  if (local == nullptr) {
    return Status::FailedPrecondition(
        "shard channel has no local collection to sync from");
  }
  if (!have_peer_status_) {
    // Connected but the cached status was invalidated (MarkUnsynced):
    // re-hello on the live stream to learn where the server stands.
    ShardHello hello;
    hello.collection = options_.collection;
    hello.shard = options_.shard;
    hello.num_shards = options_.num_shards;
    hello.model_name = options_.model_name;
    hello.analyzer = options_.analyzer;
    hello.peer = "remote_shard_channel";
    SDMS_RETURN_IF_ERROR(SendCatchUpLocked(net::FrameType::kShardHello,
                                           EncodeShardHello(hello)));
  }
  const uint64_t local_seq = local->shard_applied_seq(options_.shard);
  const uint64_t local_docs = local->shard(options_.shard).doc_count();
  if (have_peer_status_ && peer_status_.applied_seq == local_seq &&
      peer_status_.doc_count == local_docs) {
    synced_ = true;
    return Status::OK();
  }
  // Replay when the retained tail provably covers the server's gap:
  // every op applied locally after ring_base_seq_ is still in the
  // ring, and the server's floor is at or past that base.
  if (have_peer_status_ && ring_usable_ &&
      peer_status_.applied_seq >= ring_base_seq_ &&
      peer_status_.applied_seq <= local_seq) {
    ShardOpsBatch batch;
    batch.high = local_seq;
    for (const ShardOp& op : ring_) batch.ops.push_back(op);
    SDMS_RETURN_IF_ERROR(SendCatchUpLocked(net::FrameType::kShardOps,
                                           EncodeShardOpsBatch(batch)));
    if (peer_status_.applied_seq == local_seq &&
        peer_status_.doc_count == local_docs) {
      synced_ = true;
      ++stats_.catchup_replays;
      Metric("catchup_replays").Increment();
      SDMS_LOG(INFO) << "remote shard " << options_.collection << "/"
                     << options_.shard << " caught up by replaying "
                     << batch.ops.size() << " ops to seq " << local_seq;
      return Status::OK();
    }
    // Replay did not converge (e.g. divergence the ring cannot
    // explain) — fall through to the always-correct full install.
  }
  SDMS_ASSIGN_OR_RETURN(std::string image,
                        local->SerializeShard(options_.shard));
  ShardInstall install;
  install.index_bytes = std::move(image);
  install.applied_seq = local_seq;
  SDMS_RETURN_IF_ERROR(SendCatchUpLocked(net::FrameType::kShardInstall,
                                         EncodeShardInstall(install)));
  if (peer_status_.applied_seq != local_seq ||
      peer_status_.doc_count != local_docs) {
    CloseLocked();
    return Status::Internal(
        "remote shard " + std::to_string(options_.shard) +
        " diverged after full install (peer docs=" +
        std::to_string(peer_status_.doc_count) +
        " local docs=" + std::to_string(local_docs) + ")");
  }
  synced_ = true;
  ring_.clear();
  ring_base_seq_ = local_seq;
  ring_usable_ = true;
  ++stats_.catchup_installs;
  Metric("catchup_installs").Increment();
  SDMS_LOG(INFO) << "remote shard " << options_.collection << "/"
                 << options_.shard << " caught up by full install ("
                 << install.index_bytes.size() << " bytes, seq " << local_seq
                 << ", " << local_docs << " docs)";
  return Status::OK();
}

Status RemoteShardChannel::EnsureSynced(irs::IrsCollection* local) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnsureSyncedLocked(local);
}

StatusOr<std::vector<irs::SearchHit>> RemoteShardChannel::Search(
    const std::string& query, const irs::IrsCollection::SearchPlan& plan,
    irs::IrsCollection* local) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.searches;
  Metric("searches").Increment();
  Status synced = EnsureSyncedLocked(local);
  if (!synced.ok()) {
    ++stats_.search_failures;
    Metric("search_failures").Increment();
    return synced;
  }
  ShardSearchRequest req;
  req.request_id = ++next_request_id_;
  req.query = query;
  req.k = plan.k;
  req.stats = irs::IrsCollection::EncodePlanStats(plan);
  int64_t wait_ms = options_.search_deadline_ms;
  QueryContext* ctx = QueryContext::Current();
  if (ctx != nullptr && ctx->has_deadline()) {
    int64_t remaining_ms = ctx->RemainingMicros() / 1000;
    if (remaining_ms <= 0) {
      ++stats_.search_failures;
      return Status::DeadlineExceeded("query deadline before shard search");
    }
    wait_ms = std::min<int64_t>(wait_ms, remaining_ms);
  }
  req.deadline_ms = wait_ms;
  auto frame = RoundTripLocked(net::FrameType::kShardSearch,
                               EncodeShardSearchRequest(req), wait_ms);
  if (!frame.ok()) {
    ++stats_.search_failures;
    Metric("search_failures").Increment();
    return frame.status();
  }
  if (frame.value().type != net::FrameType::kShardHits) {
    ++stats_.search_failures;
    CloseLocked();
    return Status::Corruption(std::string("unexpected ") +
                              net::FrameTypeName(frame.value().type) +
                              " frame answering shard search");
  }
  auto resp = DecodeShardSearchResponse(frame.value().payload);
  if (!resp.ok()) {
    ++stats_.search_failures;
    CloseLocked();
    return resp.status();
  }
  if (resp.value().request_id != req.request_id) {
    ++stats_.search_failures;
    CloseLocked();
    return Status::Corruption("shard response id " +
                              std::to_string(resp.value().request_id) +
                              " does not match request " +
                              std::to_string(req.request_id));
  }
  std::vector<irs::SearchHit> hits;
  hits.reserve(resp.value().hits.size());
  for (ShardHit& h : resp.value().hits) {
    hits.push_back(irs::SearchHit{std::move(h.key), h.score});
  }
  return hits;
}

Status RemoteShardChannel::PushOps(const std::vector<ShardOp>& ops,
                                   uint64_t high,
                                   const irs::IrsCollection* local) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ShardOp& op : ops) RetainOpLocked(op);
  auto fail = [this](Status s) {
    ++stats_.push_failures;
    Metric("push_failures").Increment();
    synced_ = false;
    have_peer_status_ = false;
    return s;
  };
  if (fd_ < 0 || !synced_) {
    return fail(Status::IoError("shard channel not connected"));
  }
  ShardOpsBatch batch;
  batch.ops = ops;
  batch.high = high;
  Status s =
      SendCatchUpLocked(net::FrameType::kShardOps, EncodeShardOpsBatch(batch));
  if (!s.ok()) return fail(std::move(s));
  if (local != nullptr) {
    const uint64_t local_docs = local->shard(options_.shard).doc_count();
    const uint64_t local_seq = local->shard_applied_seq(options_.shard);
    if (peer_status_.doc_count != local_docs ||
        peer_status_.applied_seq != local_seq) {
      return fail(Status::Internal(
          "remote shard " + std::to_string(options_.shard) +
          " diverged after op push (peer docs=" +
          std::to_string(peer_status_.doc_count) +
          " seq=" + std::to_string(peer_status_.applied_seq) +
          ", local docs=" + std::to_string(local_docs) +
          " seq=" + std::to_string(local_seq) + ")"));
    }
  }
  stats_.ops_pushed += ops.size();
  Metric("ops_pushed").Increment();
  return Status::OK();
}

Status RemoteShardChannel::Probe() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.probes;
  Metric("probes").Increment();
  auto fail = [this](Status s) {
    ++stats_.probe_failures;
    Metric("probe_failures").Increment();
    return s;
  };
  if (fd_ < 0) {
    Status s = ConnectLocked();
    if (!s.ok()) return fail(std::move(s));
  }
  auto frame = RoundTripLocked(net::FrameType::kPing, std::string(),
                               options_.io_timeout_ms);
  if (!frame.ok()) return fail(frame.status());
  if (frame.value().type != net::FrameType::kPong) {
    CloseLocked();
    return fail(Status::Corruption(std::string("unexpected ") +
                                   net::FrameTypeName(frame.value().type) +
                                   " frame answering ping"));
  }
  return Status::OK();
}

ShardHealthMonitor::ShardHealthMonitor(std::vector<Target> targets,
                                       int interval_ms)
    : targets_(std::move(targets)), interval_ms_(interval_ms) {
  thread_ = std::thread([this] { Loop(); });
}

ShardHealthMonitor::~ShardHealthMonitor() { Stop(); }

void ShardHealthMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ShardHealthMonitor::ProbeRound() {
  for (const Target& t : targets_) {
    if (t.channel == nullptr) continue;
    Status s = t.channel->Probe();
    if (t.guard != nullptr) {
      if (s.ok()) {
        t.guard->breaker().RecordSuccess();
      } else {
        t.guard->breaker().RecordFailure();
      }
    }
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

void ShardHealthMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    ProbeRound();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
  }
}

}  // namespace sdms::coupling
