#include "coupling/update_log.h"

#include <algorithm>

#include "common/obs/metrics.h"

namespace sdms::coupling {

using oodb::UpdateKind;

namespace {

struct UpdateLogMetrics {
  obs::Counter& recorded = obs::GetCounter("coupling.update_log.recorded");
  obs::Counter& cancelled = obs::GetCounter("coupling.update_log.cancelled");
  /// Net operations handed to propagation per Drain. Linear-ish bucket
  /// growth keeps small batches distinguishable.
  obs::Histogram& batch_size = obs::GetHistogram(
      "coupling.update_log.batch_size",
      obs::Histogram::Options{1.0, 1.5, 24});
};

UpdateLogMetrics& Metrics() {
  static UpdateLogMetrics* m = new UpdateLogMetrics();
  return *m;
}

}  // namespace

void UpdateLog::Record(UpdateKind kind, Oid oid, uint64_t seq) {
  ++recorded_;
  Metrics().recorded.Increment();
  Fold(kind, oid, seq);
}

void UpdateLog::Requeue(const PendingOp& op) { Fold(op.kind, op.oid, op.seq); }

void UpdateLog::Fold(UpdateKind kind, Oid oid, uint64_t seq) {
  last_seq_ = std::max(last_seq_, seq);
  auto it = net_.find(oid);
  if (it == net_.end()) {
    NetState s = kind == UpdateKind::kInsert   ? NetState::kInsert
                 : kind == UpdateKind::kModify ? NetState::kModify
                                               : NetState::kDelete;
    net_.emplace(oid, Entry{s, seq});
    order_.push_back(oid);
    return;
  }
  it->second.seq = std::max(it->second.seq, seq);
  uint64_t cancelled_before = cancelled_;
  switch (it->second.state) {
    case NetState::kInsert:
      if (kind == UpdateKind::kDelete) {
        // insert + delete annihilate: both operations vanish.
        net_.erase(it);
        order_.erase(std::find(order_.begin(), order_.end(), oid));
        cancelled_ += 2;
      } else {
        // insert + modify stays an insert (indexing sees final state).
        ++cancelled_;
      }
      break;
    case NetState::kModify:
      if (kind == UpdateKind::kDelete) {
        it->second.state = NetState::kDelete;
        ++cancelled_;  // The modify became unnecessary.
      } else {
        // modify + modify collapse to one modify.
        ++cancelled_;
      }
      break;
    case NetState::kDelete:
      if (kind == UpdateKind::kInsert) {
        // OIDs are never reused by the database, but a caller may
        // re-register the same document key: treat conservatively as a
        // modify (remove + add in the IRS).
        it->second.state = NetState::kModify;
        ++cancelled_;
      }
      break;
  }
  Metrics().cancelled.Add(cancelled_ - cancelled_before);
}

std::vector<PendingOp> UpdateLog::Peek() const {
  std::vector<PendingOp> out;
  out.reserve(net_.size());
  for (Oid oid : order_) {
    auto it = net_.find(oid);
    if (it == net_.end()) continue;
    UpdateKind kind = it->second.state == NetState::kInsert
                          ? UpdateKind::kInsert
                      : it->second.state == NetState::kModify
                          ? UpdateKind::kModify
                          : UpdateKind::kDelete;
    out.push_back(PendingOp{kind, oid, it->second.seq});
  }
  return out;
}

std::vector<PendingOp> UpdateLog::Drain() {
  std::vector<PendingOp> out = Peek();
  if (!out.empty()) {
    Metrics().batch_size.Record(static_cast<double>(out.size()));
  }
  Clear();
  return out;
}

void UpdateLog::Clear() {
  net_.clear();
  order_.clear();
}

}  // namespace sdms::coupling
