#include "coupling/hypertext.h"

#include <algorithm>

#include "oodb/builtins.h"

namespace sdms::coupling {

using oodb::AttributeDef;
using oodb::ClassDef;
using oodb::MethodContext;
using oodb::Value;
using oodb::ValueList;
using oodb::ValueType;

Status RegisterHypertext(Coupling& coupling) {
  oodb::Database& db = coupling.db();
  if (!db.schema().HasClass(kLinkClass)) {
    ClassDef link;
    link.name = kLinkClass;
    link.super = oodb::kObjectClass;
    link.attributes = {
        AttributeDef{"SOURCE", ValueType::kOid, Value()},
        AttributeDef{"TARGET", ValueType::kOid, Value()},
        AttributeDef{"LTYPE", ValueType::kString, Value(kImpliesLinkType)},
    };
    SDMS_RETURN_IF_ERROR(db.schema().DefineClass(std::move(link)));
    SDMS_RETURN_IF_ERROR(db.CreateIndex(kLinkClass, "TARGET"));
    SDMS_RETURN_IF_ERROR(db.CreateIndex(kLinkClass, "SOURCE"));
  }

  // Text mode 3: own text plus the text of implies-link sources.
  Coupling* cp = &coupling;
  coupling.RegisterTextProvider(
      kTextModeWithLinks,
      [cp](oodb::Database&, Oid oid) -> StatusOr<std::string> {
        SDMS_ASSIGN_OR_RETURN(std::string text, cp->SubtreeText(oid));
        SDMS_ASSIGN_OR_RETURN(std::vector<Oid> sources,
                              LinkSources(*cp, oid, kImpliesLinkType));
        for (Oid src : sources) {
          SDMS_ASSIGN_OR_RETURN(std::string fragment, cp->SubtreeText(src));
          if (fragment.empty()) continue;
          if (!text.empty()) text += " ";
          text += fragment;
        }
        return text;
      });

  // Navigation methods available inside VQL.
  db.methods().Register(
      "IRSObject", "linksTo",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        std::string type = kImpliesLinkType;
        if (args.size() == 1 && args[0].is_string()) type = args[0].as_string();
        Coupling* c = static_cast<Coupling*>(ctx.coupling);
        SDMS_ASSIGN_OR_RETURN(std::vector<Oid> sources,
                              LinkSources(*c, self, type));
        ValueList out;
        for (Oid s : sources) out.push_back(Value(s));
        return Value(std::move(out));
      });
  db.methods().Register(
      "IRSObject", "linksFrom",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        std::string type = kImpliesLinkType;
        if (args.size() == 1 && args[0].is_string()) type = args[0].as_string();
        Coupling* c = static_cast<Coupling*>(ctx.coupling);
        SDMS_ASSIGN_OR_RETURN(std::vector<Oid> targets,
                              LinkTargets(*c, self, type));
        ValueList out;
        for (Oid t : targets) out.push_back(Value(t));
        return Value(std::move(out));
      });
  return Status::OK();
}

StatusOr<Oid> CreateLink(Coupling& coupling, Oid source, Oid target,
                         const std::string& type) {
  oodb::Database& db = coupling.db();
  oodb::TxnId txn = db.Begin();
  auto oid_or = db.CreateObject(kLinkClass, txn);
  if (!oid_or.ok()) {
    (void)db.Abort(txn);
    return oid_or.status();
  }
  Oid oid = *oid_or;
  Status s = db.SetAttribute(oid, "SOURCE", Value(source), txn);
  if (s.ok()) s = db.SetAttribute(oid, "TARGET", Value(target), txn);
  if (s.ok()) s = db.SetAttribute(oid, "LTYPE", Value(type), txn);
  if (!s.ok()) {
    (void)db.Abort(txn);
    return s;
  }
  SDMS_RETURN_IF_ERROR(db.Commit(txn));
  return oid;
}

namespace {

StatusOr<std::vector<Oid>> LinkEndpoints(Coupling& coupling, Oid anchor,
                                         const std::string& type,
                                         const char* anchor_attr,
                                         const char* result_attr) {
  oodb::Database& db = coupling.db();
  std::vector<Oid> links;
  auto indexed = db.IndexLookup(kLinkClass, anchor_attr, Value(anchor));
  if (indexed.ok()) {
    links = std::move(*indexed);
  } else {
    links = db.Extent(kLinkClass);
  }
  std::vector<Oid> out;
  for (Oid link : links) {
    auto a = db.GetAttribute(link, anchor_attr);
    if (!a.ok() || !a->is_oid() || a->as_oid() != anchor) continue;
    auto lt = db.GetAttribute(link, "LTYPE");
    if (!lt.ok() || !lt->is_string() || lt->as_string() != type) continue;
    auto r = db.GetAttribute(link, result_attr);
    if (r.ok() && r->is_oid()) out.push_back(r->as_oid());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

StatusOr<Oid> FindDocumentById(Coupling& coupling, const std::string& docid) {
  oodb::Database& db = coupling.db();
  if (db.HasIndex("MMFDOC", "DOCID")) {
    auto hits = db.IndexLookup("MMFDOC", "DOCID", Value(docid));
    if (hits.ok() && !hits->empty()) return (*hits)[0];
    return Status::NotFound("no document with DOCID " + docid);
  }
  for (Oid oid : db.Extent("MMFDOC")) {
    auto value = db.GetAttribute(oid, "DOCID");
    if (value.ok() && value->is_string() && value->as_string() == docid) {
      return oid;
    }
  }
  return Status::NotFound("no document with DOCID " + docid);
}

StatusOr<size_t> MaterializeHyperlinks(Coupling& coupling, Oid root) {
  oodb::Database& db = coupling.db();
  size_t created = 0;
  // Walk the subtree collecting HYPERLINK elements.
  std::vector<Oid> stack = {root};
  while (!stack.empty()) {
    Oid cur = stack.back();
    stack.pop_back();
    SDMS_ASSIGN_OR_RETURN(std::string cls, db.ClassOf(cur));
    if (cls == "HYPERLINK") {
      auto target_id = db.GetAttribute(cur, "TARGET");
      if (!target_id.ok() || !target_id->is_string()) continue;
      auto target = FindDocumentById(coupling, target_id->as_string());
      if (!target.ok()) continue;  // Dangling markup: skip.
      std::string type = kImpliesLinkType;
      auto lt = db.GetAttribute(cur, "LINKTYPE");
      if (lt.ok() && lt->is_string() && !lt->as_string().empty()) {
        type = lt->as_string();
      }
      // Source: the containing paragraph when there is one.
      SDMS_ASSIGN_OR_RETURN(Oid para, coupling.ContainingOf(cur, "PARA"));
      Oid source = para.valid() ? para : cur;
      SDMS_RETURN_IF_ERROR(
          CreateLink(coupling, source, *target, type).status());
      ++created;
      continue;  // HYPERLINK content is its anchor text, not links.
    }
    SDMS_ASSIGN_OR_RETURN(std::vector<Oid> children, coupling.ChildrenOf(cur));
    for (Oid c : children) stack.push_back(c);
  }
  return created;
}

StatusOr<std::vector<Oid>> LinkSources(Coupling& coupling, Oid target,
                                       const std::string& type) {
  return LinkEndpoints(coupling, target, type, "TARGET", "SOURCE");
}

StatusOr<std::vector<Oid>> LinkTargets(Coupling& coupling, Oid source,
                                       const std::string& type) {
  return LinkEndpoints(coupling, source, type, "SOURCE", "TARGET");
}

namespace {

class LinkDerivationScheme : public DerivationScheme {
 public:
  LinkDerivationScheme(Coupling* coupling, std::string link_type,
                       double damping)
      : coupling_(coupling),
        link_type_(std::move(link_type)),
        damping_(damping) {}

  std::string name() const override { return "link"; }

  StatusOr<double> Derive(const DerivationContext& ctx) const override {
    double best = ctx.default_value;
    // (a) Component maximum over structural children.
    SDMS_ASSIGN_OR_RETURN(std::vector<Oid> components,
                          ctx.components_of(ctx.object));
    for (Oid c : components) {
      SDMS_ASSIGN_OR_RETURN(double v, ctx.component_value(c, ctx.irs_query));
      best = std::max(best, v);
    }
    // (b) Damped best value among implying nodes (link semantics).
    SDMS_ASSIGN_OR_RETURN(std::vector<Oid> sources,
                          LinkSources(*coupling_, ctx.object, link_type_));
    for (Oid src : sources) {
      SDMS_ASSIGN_OR_RETURN(double v, ctx.component_value(src, ctx.irs_query));
      best = std::max(best, damping_ * v);
    }
    return best;
  }

 private:
  Coupling* coupling_;
  std::string link_type_;
  double damping_;
};

}  // namespace

std::unique_ptr<DerivationScheme> MakeLinkDerivationScheme(
    Coupling* coupling, std::string link_type, double damping) {
  return std::make_unique<LinkDerivationScheme>(coupling, std::move(link_type),
                                                damping);
}

}  // namespace sdms::coupling
