#ifndef SDMS_OODB_DATABASE_H_
#define SDMS_OODB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/oid.h"
#include "common/status.h"
#include "oodb/index/btree.h"
#include "oodb/lock_manager.h"
#include "oodb/method_registry.h"
#include "oodb/object_store.h"
#include "oodb/schema.h"
#include "oodb/storage/wal.h"
#include "oodb/value.h"

namespace sdms::oodb {

/// Kinds of data updates reported to listeners (paper Section 4.6: one
/// of three update methods must be invoked whenever a relevant update
/// occurs — insertion, modification, deletion).
enum class UpdateKind { kInsert, kModify, kDelete };

/// Observer interface for committed object changes; the IRS coupling
/// registers one listener per COLLECTION to drive update propagation.
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;
  /// `attr` is the modified attribute for kModify, empty otherwise.
  /// `seq` is the event's global monotonic sequence number — assigned
  /// at commit, persisted in the WAL (kUpdateEvent), and the unit of
  /// the coupling's exactly-once accounting.
  virtual void OnUpdate(UpdateKind kind, Oid oid,
                        const std::string& class_name,
                        const std::string& attr, uint64_t seq) = 0;
};

/// One committed update event reconstructed from the WAL during
/// recovery. The coupling re-routes these (filtered by each IRS
/// snapshot's high-water sequence number) to rebuild exactly the
/// update-log state a crash destroyed.
struct RecoveredUpdate {
  uint64_t seq = 0;
  UpdateKind kind = UpdateKind::kInsert;
  Oid oid;
  std::string cls;
  std::string attr;
};

/// Special transaction handle: each call runs in its own transaction
/// that commits immediately.
inline constexpr TxnId kAutoCommit = 0;

/// The object database: schema + object store + methods + transactions
/// + durability (WAL with snapshot checkpoints) + attribute indexes.
/// This is the "VODAK" substitute of the reproduction; the coupling
/// uses only manifesto-level features of it.
class Database {
 public:
  struct Options {
    /// Directory for snapshot + WAL. Empty = fully in-memory.
    std::string data_dir;
    /// fsync the WAL on every commit (durability over speed).
    bool sync_commits = false;
  };

  /// Opens a database. With a `data_dir`, loads the latest snapshot and
  /// replays the WAL (crash recovery).
  static StatusOr<std::unique_ptr<Database>> Open(Options options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }
  MethodRegistry& methods() { return methods_; }
  const MethodRegistry& methods() const { return methods_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  /// Sets the opaque coupling context exposed to method invocations.
  void set_coupling_context(void* ctx) { coupling_context_ = ctx; }
  void* coupling_context() const { return coupling_context_; }

  // --- Transactions -------------------------------------------------

  /// Starts an explicit transaction.
  TxnId Begin();

  /// Commits `txn`: logs redo records, releases locks, fires update
  /// listeners for the net effects.
  Status Commit(TxnId txn);

  /// Aborts `txn`: rolls back all its changes and releases locks.
  Status Abort(TxnId txn);

  // --- Object operations (txn = kAutoCommit wraps a transaction) ----

  /// Creates an object of `cls` with schema defaults applied.
  StatusOr<Oid> CreateObject(const std::string& cls, TxnId txn = kAutoCommit);

  /// Deletes the object `oid`.
  Status DeleteObject(Oid oid, TxnId txn = kAutoCommit);

  /// Sets attribute `attr` (validated against the schema) on `oid`.
  Status SetAttribute(Oid oid, const std::string& attr, Value value,
                      TxnId txn = kAutoCommit);

  /// Reads attribute `attr` of `oid` (falling back to schema default).
  StatusOr<Value> GetAttribute(Oid oid, const std::string& attr) const;

  /// Const access to a stored object.
  StatusOr<const DbObject*> GetObject(Oid oid) const;

  /// Class of `oid`, or NotFound.
  StatusOr<std::string> ClassOf(Oid oid) const;

  /// Extent of `cls`; includes subclass extents by default (the VQL
  /// `FROM x IN Cls` semantics).
  std::vector<Oid> Extent(const std::string& cls,
                          bool include_subclasses = true) const;

  // --- Method invocation --------------------------------------------

  /// Invokes method `name` on `self` with `args`, dispatching through
  /// the inheritance hierarchy.
  StatusOr<Value> Invoke(Oid self, const std::string& name,
                         const std::vector<Value>& args);

  // --- Indexes -------------------------------------------------------

  /// Creates (and backfills) a B-tree index on `cls.attr`. Lookups via
  /// the index include subclass objects, matching Extent semantics.
  Status CreateIndex(const std::string& cls, const std::string& attr);

  /// Index-assisted equality lookup; NotFound when no index exists.
  StatusOr<std::vector<Oid>> IndexLookup(const std::string& cls,
                                         const std::string& attr,
                                         const Value& key) const;

  /// Index-assisted range scan over [lo, hi] (either bound optional);
  /// NotFound when no index exists.
  StatusOr<std::vector<Oid>> IndexRange(const std::string& cls,
                                        const std::string& attr,
                                        const std::optional<Value>& lo,
                                        bool lo_inclusive,
                                        const std::optional<Value>& hi,
                                        bool hi_inclusive) const;

  bool HasIndex(const std::string& cls, const std::string& attr) const;

  // --- Durability ----------------------------------------------------

  /// Writes a full snapshot and truncates the WAL. When a checkpoint
  /// hook is installed it runs first; a failing hook aborts the
  /// checkpoint (the WAL — including its update events — survives).
  Status Checkpoint();

  /// Installs a pre-checkpoint hook. Truncating the WAL discards the
  /// kUpdateEvent records the coupling needs for exactly-once replay,
  /// so the coupling registers a hook that propagates and persists the
  /// IRS indexes (advancing their high-water marks) before the events
  /// are dropped.
  void SetCheckpointHook(std::function<Status()> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Sequence number of the most recent committed update event (0 when
  /// none). Monotonic across restarts: recovered from the snapshot and
  /// replayed WAL events.
  uint64_t last_update_seq() const { return next_update_seq_ - 1; }

  /// Committed update events replayed from the WAL by Open(), in
  /// commit order. Ownership moves to the caller; a second call
  /// returns an empty vector.
  std::vector<RecoveredUpdate> TakeRecoveredUpdates() {
    return std::move(recovered_updates_);
  }

  // --- Update listeners ----------------------------------------------

  void AddUpdateListener(UpdateListener* listener) {
    listeners_.push_back(listener);
  }
  void RemoveUpdateListener(UpdateListener* listener);

  /// Count of committed update events fired (metrics for E7).
  uint64_t update_events_fired() const { return update_events_fired_; }

 private:
  struct UndoRecord;
  struct PendingUpdate;
  struct TxnState;
  /// Per-transaction replay buffers: redo payloads plus update events,
  /// both applied/surfaced only once the commit record is seen.
  struct ReplayBuffer;

  explicit Database(Options options);

  Status Recover();
  Status LoadSnapshot(const std::string& path);
  Status ApplyWalRecord(std::string_view payload,
                        std::map<TxnId, ReplayBuffer>& pending);
  Status ApplyRedoPayload(std::string_view payload);

  TxnState* GetTxn(TxnId txn);
  StatusOr<TxnId> EnsureTxn(TxnId txn, bool& implicit);
  Status FinishImplicit(TxnId txn, bool implicit, Status status);

  void IndexInsert(const DbObject& obj);
  void IndexRemoveAll(const DbObject& obj);
  void IndexUpdate(const DbObject& obj, const std::string& attr,
                   const Value* old_value, const Value* new_value);

  Options options_;
  Schema schema_;
  ObjectStore store_;
  MethodRegistry methods_;
  LockManager locks_;
  Wal wal_;
  void* coupling_context_ = nullptr;

  TxnId next_txn_ = 1;
  std::map<TxnId, std::unique_ptr<TxnState>> txns_;

  // Indexes keyed by "<class>::<attr>".
  std::map<std::string, std::unique_ptr<BTreeIndex>> indexes_;

  std::vector<UpdateListener*> listeners_;
  uint64_t update_events_fired_ = 0;

  /// Next global update-event sequence number (1-based; gaps are
  /// allowed, order is what matters).
  uint64_t next_update_seq_ = 1;
  std::vector<RecoveredUpdate> recovered_updates_;
  std::function<Status()> checkpoint_hook_;
};

}  // namespace sdms::oodb

#endif  // SDMS_OODB_DATABASE_H_
