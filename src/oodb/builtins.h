#ifndef SDMS_OODB_BUILTINS_H_
#define SDMS_OODB_BUILTINS_H_

#include "oodb/database.h"

namespace sdms::oodb {

/// Root class name under which the builtin methods are registered.
/// Applications should derive their classes from it (directly or
/// transitively) to inherit the methods.
inline constexpr char kObjectClass[] = "Object";

/// Defines class `Object` (if absent) and registers the builtin
/// methods on it:
///   getAttributeValue(name)        -> Value
///   setAttributeValue(name, value) -> TRUE (mutating)
///   className()                    -> STRING
///   oidString()                    -> STRING
Status RegisterBuiltins(Database& db);

}  // namespace sdms::oodb

#endif  // SDMS_OODB_BUILTINS_H_
