#include "oodb/value.h"

#include <cmath>
#include <sstream>

namespace sdms::oodb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kReal:
      return "REAL";
    case ValueType::kString:
      return "STRING";
    case ValueType::kOid:
      return "OID";
    case ValueType::kList:
      return "LIST";
    case ValueType::kDict:
      return "DICT";
  }
  return "UNKNOWN";
}

StatusOr<double> Value::AsNumber() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_real()) return as_real();
  return Status::TypeError(std::string("expected numeric value, got ") +
                           ValueTypeName(type()));
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return as_bool();
    case ValueType::kInt:
      return as_int() != 0;
    case ValueType::kReal:
      return as_real() != 0.0;
    case ValueType::kString:
      return !as_string().empty();
    case ValueType::kOid:
      return as_oid().valid();
    case ValueType::kList:
      return !as_list().empty();
    case ValueType::kDict:
      return !as_dict().empty();
  }
  return false;
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return AsNumber().value() == other.AsNumber().value();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return as_bool() == other.as_bool();
    case ValueType::kInt:
      return as_int() == other.as_int();
    case ValueType::kReal:
      return as_real() == other.as_real();
    case ValueType::kString:
      return as_string() == other.as_string();
    case ValueType::kOid:
      return as_oid() == other.as_oid();
    case ValueType::kList: {
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case ValueType::kDict: {
      const ValueDict& a = as_dict();
      const ValueDict& b = other.as_dict();
      if (a.size() != b.size()) return false;
      auto ia = a.begin();
      auto ib = b.begin();
      for (; ia != a.end(); ++ia, ++ib) {
        if (ia->first != ib->first || !ia->second.Equals(ib->second)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

StatusOr<int> Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = AsNumber().value();
    double b = other.AsNumber().value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    int c = as_string().compare(other.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_oid() && other.is_oid()) {
    if (as_oid() < other.as_oid()) return -1;
    if (other.as_oid() < as_oid()) return 1;
    return 0;
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
  }
  if (is_null() && other.is_null()) return 0;
  return Status::TypeError(std::string("cannot compare ") +
                           ValueTypeName(type()) + " with " +
                           ValueTypeName(other.type()));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kReal: {
      std::ostringstream os;
      os << as_real();
      return os.str();
    }
    case ValueType::kString:
      return "'" + as_string() + "'";
    case ValueType::kOid:
      return as_oid().ToString();
    case ValueType::kList: {
      std::string out = "[";
      const ValueList& l = as_list();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i > 0) out += ", ";
        out += l[i].ToString();
      }
      out += "]";
      return out;
    }
    case ValueType::kDict: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : as_dict()) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + v.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

}  // namespace sdms::oodb
