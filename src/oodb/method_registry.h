#ifndef SDMS_OODB_METHOD_REGISTRY_H_
#define SDMS_OODB_METHOD_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/oid.h"
#include "common/status.h"
#include "oodb/schema.h"
#include "oodb/value.h"

namespace sdms::oodb {

class Database;

/// Context passed to every method invocation. `coupling` is an opaque
/// hook the coupling layer uses to reach the IRS from inside VQL method
/// calls (e.g. `p -> getIRSValue(coll, 'WWW')`).
struct MethodContext {
  Database* db = nullptr;
  void* coupling = nullptr;
};

/// Signature of a database method: invoked on object `self` with
/// evaluated argument values, returns a Value or an error.
using MethodFn = std::function<StatusOr<Value>(
    const MethodContext&, Oid self, const std::vector<Value>& args)>;

/// Per-class method table with inheritance-aware dispatch: resolving a
/// method on class C walks C's isA chain and returns the most specific
/// implementation, which is how IRSObject's getIRSValue/deriveIRSValue
/// are inherited (and can be overridden) by element-type classes.
class MethodRegistry {
 public:
  /// Registers `fn` as method `name` on class `cls`. Re-registering on
  /// the same class replaces the implementation (override-in-place).
  void Register(const std::string& cls, const std::string& name, MethodFn fn);

  /// Resolves `name` for an object of class `cls`, walking the schema's
  /// inheritance chain from most-derived to root.
  StatusOr<const MethodFn*> Resolve(const Schema& schema,
                                    const std::string& cls,
                                    const std::string& name) const;

  /// True if `cls` (or an ancestor) defines `name`.
  bool Has(const Schema& schema, const std::string& cls,
           const std::string& name) const {
    return Resolve(schema, cls, name).ok();
  }

 private:
  // Key: "<class>::<method>".
  std::unordered_map<std::string, MethodFn> methods_;
};

}  // namespace sdms::oodb

#endif  // SDMS_OODB_METHOD_REGISTRY_H_
