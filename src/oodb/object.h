#ifndef SDMS_OODB_OBJECT_H_
#define SDMS_OODB_OBJECT_H_

#include <map>
#include <string>

#include "common/oid.h"
#include "common/status.h"
#include "oodb/value.h"

namespace sdms::oodb {

/// One stored database object: an OID, the name of its class, and its
/// attribute values. Behaviour (methods) lives in the MethodRegistry,
/// dispatched by class name, so objects stay plain data on disk.
class DbObject {
 public:
  DbObject(Oid oid, std::string class_name)
      : oid_(oid), class_name_(std::move(class_name)) {}

  Oid oid() const { return oid_; }
  const std::string& class_name() const { return class_name_; }

  /// Returns the value of `attr`, or NotFound.
  StatusOr<Value> Get(const std::string& attr) const;

  /// Returns the value of `attr`, or `fallback` when absent.
  Value GetOr(const std::string& attr, Value fallback) const;

  bool Has(const std::string& attr) const { return attrs_.count(attr) > 0; }

  /// Sets `attr` to `value` (no schema check here; Database::SetAttribute
  /// validates against the schema and records undo/redo).
  void Set(const std::string& attr, Value value) {
    attrs_[attr] = std::move(value);
  }

  /// Removes `attr` if present.
  void Unset(const std::string& attr) { attrs_.erase(attr); }

  const std::map<std::string, Value>& attributes() const { return attrs_; }

  /// Debug rendering: "ClassName(oid:n){attr: value, ...}".
  std::string ToString() const;

 private:
  Oid oid_;
  std::string class_name_;
  std::map<std::string, Value> attrs_;
};

}  // namespace sdms::oodb

#endif  // SDMS_OODB_OBJECT_H_
