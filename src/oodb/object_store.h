#ifndef SDMS_OODB_OBJECT_STORE_H_
#define SDMS_OODB_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/oid.h"
#include "common/status.h"
#include "oodb/object.h"

namespace sdms::oodb {

/// In-memory primary storage of all objects plus per-class extents.
/// Durability is layered on top by Database (WAL + snapshot); the store
/// itself is a plain container with OID allocation.
class ObjectStore {
 public:
  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Allocates the next OID (monotonically increasing, never reused).
  Oid AllocateOid() { return Oid(next_oid_++); }

  /// Ensures future allocations are above `oid` (used by recovery).
  void BumpOidWatermark(Oid oid) {
    if (oid.raw() >= next_oid_) next_oid_ = oid.raw() + 1;
  }

  /// Inserts `obj`; fails if its OID is taken.
  Status Insert(DbObject obj);

  /// Removes the object with `oid`.
  Status Remove(Oid oid);

  /// Mutable object lookup.
  StatusOr<DbObject*> Get(Oid oid);

  /// Const object lookup.
  StatusOr<const DbObject*> Get(Oid oid) const;

  bool Contains(Oid oid) const { return objects_.count(oid) > 0; }

  /// OIDs of the *direct* extent of `cls` (no subclasses), in OID order.
  std::vector<Oid> DirectExtent(const std::string& cls) const;

  /// Number of objects in the direct extent of `cls`.
  size_t DirectExtentSize(const std::string& cls) const;

  size_t size() const { return objects_.size(); }

  /// Iterates all objects in OID order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [oid, obj] : objects_) fn(*obj);
  }

  /// Drops all contents (used when loading a snapshot).
  void Clear();

  uint64_t next_oid() const { return next_oid_; }
  void set_next_oid(uint64_t v) { next_oid_ = v; }

 private:
  // std::map keeps deterministic OID-ordered iteration, which the query
  // evaluator and snapshot writer rely on for reproducible output.
  std::map<Oid, std::unique_ptr<DbObject>> objects_;
  std::unordered_map<std::string, std::set<Oid>> extents_;
  uint64_t next_oid_ = 1;
};

}  // namespace sdms::oodb

#endif  // SDMS_OODB_OBJECT_STORE_H_
