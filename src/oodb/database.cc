#include "oodb/database.h"

#include <algorithm>
#include <optional>

#include "common/file_util.h"
#include "oodb/storage/serializer.h"

namespace sdms::oodb {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53444d53;    // "SDMS" (v1, no seq)
constexpr uint32_t kSnapshotMagicV2 = 0x53444d54;  // v1 + next_update_seq

std::string SnapshotPath(const std::string& dir) { return dir + "/snapshot.db"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

}  // namespace

// ---------------------------------------------------------------------------
// Transaction bookkeeping
// ---------------------------------------------------------------------------

struct Database::UndoRecord {
  enum Kind { kCreated, kDeleted, kSetAttr } kind;
  Oid oid;
  // Full object image for kDeleted (restored on abort).
  std::optional<DbObject> snapshot;
  // Attribute rollback data for kSetAttr.
  std::string attr;
  std::optional<Value> old_value;  // nullopt = attribute was absent
};

struct Database::PendingUpdate {
  UpdateKind kind;
  Oid oid;
  std::string cls;
  std::string attr;
};

struct Database::TxnState {
  std::vector<UndoRecord> undo;
  std::vector<std::string> redo;  // Encoded WAL payloads.
  std::vector<PendingUpdate> updates;
};

struct Database::ReplayBuffer {
  std::vector<std::string> redo;
  std::vector<RecoveredUpdate> events;
};

// ---------------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------------

Database::Database(Options options) : options_(std::move(options)) {}
Database::~Database() = default;

StatusOr<std::unique_ptr<Database>> Database::Open(Options options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  if (!db->options_.data_dir.empty()) {
    SDMS_RETURN_IF_ERROR(MakeDirs(db->options_.data_dir));
    SDMS_RETURN_IF_ERROR(db->Recover());
    SDMS_RETURN_IF_ERROR(db->wal_.Open(WalPath(db->options_.data_dir)));
  }
  return db;
}

Status Database::Recover() {
  const std::string snap = SnapshotPath(options_.data_dir);
  if (PathExists(snap)) {
    SDMS_RETURN_IF_ERROR(LoadSnapshot(snap));
  }
  // Replay committed transactions from the WAL. Records are buffered
  // per transaction and applied only when the commit record is seen, so
  // a crash mid-transaction leaves no partial effects.
  std::map<TxnId, ReplayBuffer> pending;
  return Wal::Replay(WalPath(options_.data_dir),
                     [&](std::string_view payload) {
                       return ApplyWalRecord(payload, pending);
                     });
}

Status Database::ApplyWalRecord(std::string_view payload,
                                std::map<TxnId, ReplayBuffer>& pending) {
  Decoder dec(payload);
  SDMS_ASSIGN_OR_RETURN(uint8_t type_raw, dec.GetU8());
  auto type = static_cast<WalRecordType>(type_raw);
  if (type == WalRecordType::kCheckpoint) return Status::OK();
  SDMS_ASSIGN_OR_RETURN(uint64_t txn, dec.GetU64());
  // Retire every transaction id seen in the log — committed or not. A
  // crash mid-commit leaves the transaction's already-appended redo
  // records physically in the WAL with no commit record; if a later
  // incarnation reused the id, its own commit record would adopt those
  // orphaned records on the next replay and resurrect effects of a
  // transaction that never committed.
  next_txn_ = std::max<TxnId>(next_txn_, txn + 1);
  switch (type) {
    case WalRecordType::kCommit: {
      auto it = pending.find(txn);
      if (it != pending.end()) {
        for (const std::string& p : it->second.redo) {
          SDMS_RETURN_IF_ERROR(ApplyRedoPayload(p));
        }
        for (RecoveredUpdate& ev : it->second.events) {
          next_update_seq_ = std::max(next_update_seq_, ev.seq + 1);
          recovered_updates_.push_back(std::move(ev));
        }
        pending.erase(it);
      }
      return Status::OK();
    }
    case WalRecordType::kAbort:
      pending.erase(txn);
      return Status::OK();
    case WalRecordType::kUpdateEvent: {
      RecoveredUpdate ev;
      SDMS_ASSIGN_OR_RETURN(ev.seq, dec.GetU64());
      SDMS_ASSIGN_OR_RETURN(uint8_t kind_raw, dec.GetU8());
      if (kind_raw > static_cast<uint8_t>(UpdateKind::kDelete)) {
        return Status::Corruption("bad update-event kind");
      }
      ev.kind = static_cast<UpdateKind>(kind_raw);
      SDMS_ASSIGN_OR_RETURN(uint64_t oid_raw, dec.GetU64());
      ev.oid = Oid(oid_raw);
      SDMS_ASSIGN_OR_RETURN(ev.cls, dec.GetString());
      SDMS_ASSIGN_OR_RETURN(ev.attr, dec.GetString());
      pending[txn].events.push_back(std::move(ev));
      return Status::OK();
    }
    default:
      pending[txn].redo.emplace_back(payload);
      return Status::OK();
  }
}

// Redo is idempotent (the ARIES principle): a crash between the
// checkpoint's snapshot rename and its WAL truncation leaves a WAL
// whose every record is already reflected in the snapshot. Replaying
// that WAL re-applies a full prefix of history, which converges to the
// snapshot state as long as each record reconciles against the current
// store instead of asserting preconditions: a create of an existing
// object resets it (its attribute sets follow later in the log), a set
// or delete of a missing object is a no-op (the object was deleted
// later in the same replayed prefix).
Status Database::ApplyRedoPayload(std::string_view payload) {
  Decoder dec(payload);
  SDMS_ASSIGN_OR_RETURN(uint8_t type_raw, dec.GetU8());
  auto type = static_cast<WalRecordType>(type_raw);
  SDMS_ASSIGN_OR_RETURN(uint64_t txn, dec.GetU64());
  (void)txn;
  switch (type) {
    case WalRecordType::kCreateObject: {
      SDMS_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
      SDMS_ASSIGN_OR_RETURN(std::string cls, dec.GetString());
      if (store_.Contains(Oid(raw))) {
        SDMS_RETURN_IF_ERROR(store_.Remove(Oid(raw)));
      }
      return store_.Insert(DbObject(Oid(raw), std::move(cls)));
    }
    case WalRecordType::kSetAttribute: {
      SDMS_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
      SDMS_ASSIGN_OR_RETURN(std::string attr, dec.GetString());
      SDMS_ASSIGN_OR_RETURN(Value value, dec.GetValue());
      if (!store_.Contains(Oid(raw))) return Status::OK();
      SDMS_ASSIGN_OR_RETURN(DbObject * obj, store_.Get(Oid(raw)));
      obj->Set(attr, std::move(value));
      return Status::OK();
    }
    case WalRecordType::kDeleteObject: {
      SDMS_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
      if (!store_.Contains(Oid(raw))) return Status::OK();
      return store_.Remove(Oid(raw));
    }
    default:
      return Status::Corruption("unexpected redo record");
  }
}

Status Database::LoadSnapshot(const std::string& path) {
  SDMS_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  if (data.size() < 4) return Status::Corruption("snapshot too small");
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>(data[i]))
                  << (8 * i);
  }
  std::string_view body(data.data() + 4, data.size() - 4);
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("snapshot checksum mismatch: " + path);
  }
  Decoder dec(body);
  SDMS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kSnapshotMagic && magic != kSnapshotMagicV2) {
    return Status::Corruption("bad snapshot magic");
  }
  SDMS_ASSIGN_OR_RETURN(uint64_t next_oid, dec.GetU64());
  if (magic == kSnapshotMagicV2) {
    SDMS_ASSIGN_OR_RETURN(uint64_t next_seq, dec.GetU64());
    next_update_seq_ = std::max(next_update_seq_, next_seq);
  }
  SDMS_ASSIGN_OR_RETURN(uint64_t count, dec.GetU64());
  store_.Clear();
  for (uint64_t i = 0; i < count; ++i) {
    SDMS_ASSIGN_OR_RETURN(DbObject obj, dec.GetObject());
    SDMS_RETURN_IF_ERROR(store_.Insert(std::move(obj)));
  }
  store_.set_next_oid(std::max(next_oid, store_.next_oid()));
  return Status::OK();
}

Status Database::Checkpoint() {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("in-memory database: no checkpointing");
  }
  // Truncating the WAL below discards its kUpdateEvent records; the
  // hook lets the coupling flush those events into the IRS snapshots
  // first. A failing hook keeps the WAL (and the events) intact.
  if (checkpoint_hook_) {
    SDMS_RETURN_IF_ERROR(checkpoint_hook_());
  }
  Encoder enc;
  enc.PutU32(kSnapshotMagicV2);
  enc.PutU64(store_.next_oid());
  enc.PutU64(next_update_seq_);
  enc.PutU64(store_.size());
  store_.ForEach([&](const DbObject& obj) { enc.PutObject(obj); });
  std::string body = enc.Release();
  std::string file;
  uint32_t crc = Crc32(body);
  for (int i = 0; i < 4; ++i) {
    file.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  file += body;
  SDMS_RETURN_IF_ERROR(
      WriteFileAtomic(SnapshotPath(options_.data_dir), file));
  return wal_.Truncate();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

TxnId Database::Begin() {
  TxnId id = next_txn_++;
  txns_[id] = std::make_unique<TxnState>();
  return id;
}

Database::TxnState* Database::GetTxn(TxnId txn) {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : it->second.get();
}

StatusOr<TxnId> Database::EnsureTxn(TxnId txn, bool& implicit) {
  if (txn == kAutoCommit) {
    implicit = true;
    return Begin();
  }
  implicit = false;
  if (GetTxn(txn) == nullptr) {
    return Status::InvalidArgument("unknown transaction " +
                                   std::to_string(txn));
  }
  return txn;
}

Status Database::FinishImplicit(TxnId txn, bool implicit, Status status) {
  if (!implicit) return status;
  if (status.ok()) return Commit(txn);
  Status abort_status = Abort(txn);
  (void)abort_status;  // Original error takes precedence.
  return status;
}

Status Database::Commit(TxnId txn) {
  TxnState* state = GetTxn(txn);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown transaction " +
                                   std::to_string(txn));
  }
  // Assign global sequence numbers to this transaction's update
  // events. Gaps (from commits that later fail at the WAL) are fine:
  // consumers rely on monotonicity, not density.
  std::vector<uint64_t> seqs;
  seqs.reserve(state->updates.size());
  for (size_t i = 0; i < state->updates.size(); ++i) {
    seqs.push_back(next_update_seq_++);
  }
  if (wal_.is_open()) {
    for (const std::string& payload : state->redo) {
      SDMS_RETURN_IF_ERROR(wal_.Append(payload));
    }
    // Event records ride inside the transaction (before its commit
    // record), so replay surfaces exactly the committed events.
    for (size_t i = 0; i < state->updates.size(); ++i) {
      const PendingUpdate& u = state->updates[i];
      Encoder ev;
      ev.PutU8(static_cast<uint8_t>(WalRecordType::kUpdateEvent));
      ev.PutU64(txn);
      ev.PutU64(seqs[i]);
      ev.PutU8(static_cast<uint8_t>(u.kind));
      ev.PutU64(u.oid.raw());
      ev.PutString(u.cls);
      ev.PutString(u.attr);
      SDMS_RETURN_IF_ERROR(wal_.Append(ev.data()));
    }
    Encoder commit_rec;
    commit_rec.PutU8(static_cast<uint8_t>(WalRecordType::kCommit));
    commit_rec.PutU64(txn);
    SDMS_RETURN_IF_ERROR(wal_.Append(commit_rec.data()));
    if (options_.sync_commits) {
      SDMS_RETURN_IF_ERROR(wal_.Sync());
    }
  }
  // Fire listeners for the net effects, post-commit (paper 4.6: the
  // coupling's update methods are invoked for every relevant update).
  for (size_t i = 0; i < state->updates.size(); ++i) {
    const PendingUpdate& u = state->updates[i];
    ++update_events_fired_;
    for (UpdateListener* l : listeners_) {
      l->OnUpdate(u.kind, u.oid, u.cls, u.attr, seqs[i]);
    }
  }
  locks_.ReleaseAll(txn);
  txns_.erase(txn);
  return Status::OK();
}

Status Database::Abort(TxnId txn) {
  TxnState* state = GetTxn(txn);
  if (state == nullptr) {
    return Status::InvalidArgument("unknown transaction " +
                                   std::to_string(txn));
  }
  // Undo in reverse order.
  for (auto it = state->undo.rbegin(); it != state->undo.rend(); ++it) {
    switch (it->kind) {
      case UndoRecord::kCreated: {
        auto obj = store_.Get(it->oid);
        if (obj.ok()) {
          IndexRemoveAll(**obj);
          (void)store_.Remove(it->oid);
        }
        break;
      }
      case UndoRecord::kDeleted: {
        if (it->snapshot.has_value()) {
          (void)store_.Insert(*it->snapshot);
          auto obj = store_.Get(it->oid);
          if (obj.ok()) IndexInsert(**obj);
        }
        break;
      }
      case UndoRecord::kSetAttr: {
        auto obj = store_.Get(it->oid);
        if (obj.ok()) {
          Value current = (*obj)->GetOr(it->attr, Value());
          if (it->old_value.has_value()) {
            (*obj)->Set(it->attr, *it->old_value);
            IndexUpdate(**obj, it->attr, &current, &*it->old_value);
          } else {
            (*obj)->Unset(it->attr);
            IndexUpdate(**obj, it->attr, &current, nullptr);
          }
        }
        break;
      }
    }
  }
  if (wal_.is_open()) {
    Encoder abort_rec;
    abort_rec.PutU8(static_cast<uint8_t>(WalRecordType::kAbort));
    abort_rec.PutU64(txn);
    (void)wal_.Append(abort_rec.data());
  }
  locks_.ReleaseAll(txn);
  txns_.erase(txn);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Object operations
// ---------------------------------------------------------------------------

StatusOr<Oid> Database::CreateObject(const std::string& cls, TxnId txn) {
  SDMS_ASSIGN_OR_RETURN(const ClassDef* def, schema_.GetClass(cls));
  if (def->abstract) {
    return Status::InvalidArgument("class " + cls + " is abstract");
  }
  bool implicit = false;
  auto txn_or = EnsureTxn(txn, implicit);
  if (!txn_or.ok()) return txn_or.status();
  TxnId tid = *txn_or;
  TxnState* state = GetTxn(tid);

  Oid oid = store_.AllocateOid();
  Status status = locks_.Acquire(tid, oid, LockMode::kExclusive);
  if (status.ok()) {
    DbObject obj(oid, cls);
    // Apply schema defaults (inherited attributes included).
    auto attrs = schema_.AllAttributes(cls);
    if (attrs.ok()) {
      for (const AttributeDef& a : *attrs) {
        if (!a.default_value.is_null()) obj.Set(a.name, a.default_value);
      }
    }
    status = store_.Insert(std::move(obj));
    if (status.ok()) {
      auto stored = store_.Get(oid);
      if (stored.ok()) IndexInsert(**stored);
      state->undo.push_back(UndoRecord{UndoRecord::kCreated, oid, std::nullopt,
                                       "", std::nullopt});
      Encoder enc;
      enc.PutU8(static_cast<uint8_t>(WalRecordType::kCreateObject));
      enc.PutU64(tid);
      enc.PutU64(oid.raw());
      enc.PutString(cls);
      state->redo.push_back(enc.Release());
      // Defaults must also reach the redo log.
      if (stored.ok()) {
        for (const auto& [k, v] : (*stored)->attributes()) {
          Encoder attr_enc;
          attr_enc.PutU8(static_cast<uint8_t>(WalRecordType::kSetAttribute));
          attr_enc.PutU64(tid);
          attr_enc.PutU64(oid.raw());
          attr_enc.PutString(k);
          attr_enc.PutValue(v);
          state->redo.push_back(attr_enc.Release());
        }
      }
      state->updates.push_back(PendingUpdate{UpdateKind::kInsert, oid, cls, ""});
    }
  }
  Status final = FinishImplicit(tid, implicit, status);
  if (!final.ok()) return final;
  return oid;
}

Status Database::DeleteObject(Oid oid, TxnId txn) {
  bool implicit = false;
  auto txn_or = EnsureTxn(txn, implicit);
  if (!txn_or.ok()) return txn_or.status();
  TxnId tid = *txn_or;
  TxnState* state = GetTxn(tid);

  Status status = locks_.Acquire(tid, oid, LockMode::kExclusive);
  if (status.ok()) {
    auto obj_or = store_.Get(oid);
    if (!obj_or.ok()) {
      status = obj_or.status();
    } else {
      DbObject snapshot = **obj_or;
      IndexRemoveAll(snapshot);
      status = store_.Remove(oid);
      if (status.ok()) {
        std::string cls = snapshot.class_name();
        state->undo.push_back(UndoRecord{UndoRecord::kDeleted, oid,
                                         std::move(snapshot), "",
                                         std::nullopt});
        Encoder enc;
        enc.PutU8(static_cast<uint8_t>(WalRecordType::kDeleteObject));
        enc.PutU64(tid);
        enc.PutU64(oid.raw());
        state->redo.push_back(enc.Release());
        state->updates.push_back(
            PendingUpdate{UpdateKind::kDelete, oid, cls, ""});
      }
    }
  }
  return FinishImplicit(tid, implicit, status);
}

Status Database::SetAttribute(Oid oid, const std::string& attr, Value value,
                              TxnId txn) {
  bool implicit = false;
  auto txn_or = EnsureTxn(txn, implicit);
  if (!txn_or.ok()) return txn_or.status();
  TxnId tid = *txn_or;
  TxnState* state = GetTxn(tid);

  Status status = locks_.Acquire(tid, oid, LockMode::kExclusive);
  if (status.ok()) {
    auto obj_or = store_.Get(oid);
    if (!obj_or.ok()) {
      status = obj_or.status();
    } else {
      DbObject* obj = *obj_or;
      // Schema validation: the attribute must be declared, and a
      // declared type must match (ints are accepted where REAL is
      // declared and silently widened).
      auto decl = schema_.FindAttribute(obj->class_name(), attr);
      if (!decl.ok()) {
        status = decl.status();
      } else {
        ValueType want = (*decl)->type;
        if (want == ValueType::kReal && value.is_int()) {
          value = Value(static_cast<double>(value.as_int()));
        }
        if (want != ValueType::kNull && !value.is_null() &&
            value.type() != want) {
          status = Status::TypeError(
              "attribute " + attr + " expects " + ValueTypeName(want) +
              ", got " + ValueTypeName(value.type()));
        } else {
          std::optional<Value> old;
          if (obj->Has(attr)) old = obj->GetOr(attr, Value());
          const Value* old_ptr = old.has_value() ? &*old : nullptr;
          obj->Set(attr, value);
          IndexUpdate(*obj, attr, old_ptr, &value);
          state->undo.push_back(
              UndoRecord{UndoRecord::kSetAttr, oid, std::nullopt, attr, old});
          Encoder enc;
          enc.PutU8(static_cast<uint8_t>(WalRecordType::kSetAttribute));
          enc.PutU64(tid);
          enc.PutU64(oid.raw());
          enc.PutString(attr);
          enc.PutValue(value);
          state->redo.push_back(enc.Release());
          state->updates.push_back(
              PendingUpdate{UpdateKind::kModify, oid, obj->class_name(), attr});
        }
      }
    }
  }
  return FinishImplicit(tid, implicit, status);
}

StatusOr<Value> Database::GetAttribute(Oid oid, const std::string& attr) const {
  SDMS_ASSIGN_OR_RETURN(const DbObject* obj, store_.Get(oid));
  if (obj->Has(attr)) return obj->GetOr(attr, Value());
  // Declared but unset: null.
  SDMS_ASSIGN_OR_RETURN(const AttributeDef* decl,
                        schema_.FindAttribute(obj->class_name(), attr));
  return decl->default_value;
}

StatusOr<const DbObject*> Database::GetObject(Oid oid) const {
  return store_.Get(oid);
}

StatusOr<std::string> Database::ClassOf(Oid oid) const {
  SDMS_ASSIGN_OR_RETURN(const DbObject* obj, store_.Get(oid));
  return obj->class_name();
}

std::vector<Oid> Database::Extent(const std::string& cls,
                                  bool include_subclasses) const {
  if (!include_subclasses) return store_.DirectExtent(cls);
  std::vector<Oid> out;
  for (const std::string& sub : schema_.SubclassesOf(cls)) {
    std::vector<Oid> part = store_.DirectExtent(sub);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<Value> Database::Invoke(Oid self, const std::string& name,
                                 const std::vector<Value>& args) {
  SDMS_ASSIGN_OR_RETURN(const DbObject* obj, store_.Get(self));
  SDMS_ASSIGN_OR_RETURN(const MethodFn* fn,
                        methods_.Resolve(schema_, obj->class_name(), name));
  MethodContext ctx{this, coupling_context_};
  return (*fn)(ctx, self, args);
}

// ---------------------------------------------------------------------------
// Indexes
// ---------------------------------------------------------------------------

Status Database::CreateIndex(const std::string& cls, const std::string& attr) {
  SDMS_RETURN_IF_ERROR(schema_.GetClass(cls).status());
  std::string key = cls + "::" + attr;
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index exists on " + key);
  }
  auto index = std::make_unique<BTreeIndex>();
  for (Oid oid : Extent(cls, /*include_subclasses=*/true)) {
    auto obj = store_.Get(oid);
    if (obj.ok() && (*obj)->Has(attr)) {
      index->Insert((*obj)->GetOr(attr, Value()), oid);
    }
  }
  indexes_.emplace(key, std::move(index));
  return Status::OK();
}

StatusOr<std::vector<Oid>> Database::IndexLookup(const std::string& cls,
                                                 const std::string& attr,
                                                 const Value& key) const {
  auto it = indexes_.find(cls + "::" + attr);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + cls + "::" + attr);
  }
  return it->second->Lookup(key);
}

StatusOr<std::vector<Oid>> Database::IndexRange(
    const std::string& cls, const std::string& attr,
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive) const {
  auto it = indexes_.find(cls + "::" + attr);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + cls + "::" + attr);
  }
  return it->second->Range(lo, lo_inclusive, hi, hi_inclusive);
}

bool Database::HasIndex(const std::string& cls, const std::string& attr) const {
  return indexes_.count(cls + "::" + attr) > 0;
}

void Database::IndexInsert(const DbObject& obj) {
  for (auto& [key, index] : indexes_) {
    size_t sep = key.find("::");
    std::string icls = key.substr(0, sep);
    std::string iattr = key.substr(sep + 2);
    if (schema_.IsSubclassOf(obj.class_name(), icls) && obj.Has(iattr)) {
      index->Insert(obj.GetOr(iattr, Value()), obj.oid());
    }
  }
}

void Database::IndexRemoveAll(const DbObject& obj) {
  for (auto& [key, index] : indexes_) {
    size_t sep = key.find("::");
    std::string icls = key.substr(0, sep);
    std::string iattr = key.substr(sep + 2);
    if (schema_.IsSubclassOf(obj.class_name(), icls) && obj.Has(iattr)) {
      index->Remove(obj.GetOr(iattr, Value()), obj.oid());
    }
  }
}

void Database::IndexUpdate(const DbObject& obj, const std::string& attr,
                           const Value* old_value, const Value* new_value) {
  for (auto& [key, index] : indexes_) {
    size_t sep = key.find("::");
    std::string icls = key.substr(0, sep);
    std::string iattr = key.substr(sep + 2);
    if (iattr != attr || !schema_.IsSubclassOf(obj.class_name(), icls)) {
      continue;
    }
    if (old_value != nullptr) index->Remove(*old_value, obj.oid());
    if (new_value != nullptr) index->Insert(*new_value, obj.oid());
  }
}

void Database::RemoveUpdateListener(UpdateListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

}  // namespace sdms::oodb
