#include "oodb/builtins.h"

namespace sdms::oodb {

Status RegisterBuiltins(Database& db) {
  if (!db.schema().HasClass(kObjectClass)) {
    ClassDef object_class;
    object_class.name = kObjectClass;
    object_class.abstract = true;
    SDMS_RETURN_IF_ERROR(db.schema().DefineClass(std::move(object_class)));
  }

  db.methods().Register(
      kObjectClass, "getAttributeValue",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 1 || !args[0].is_string()) {
          return Status::InvalidArgument(
              "getAttributeValue expects one string argument");
        }
        return ctx.db->GetAttribute(self, args[0].as_string());
      });

  db.methods().Register(
      kObjectClass, "setAttributeValue",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 2 || !args[0].is_string()) {
          return Status::InvalidArgument(
              "setAttributeValue expects (name, value)");
        }
        SDMS_RETURN_IF_ERROR(
            ctx.db->SetAttribute(self, args[0].as_string(), args[1]));
        return Value(true);
      });

  db.methods().Register(
      kObjectClass, "className",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        if (!args.empty()) {
          return Status::InvalidArgument("className takes no arguments");
        }
        SDMS_ASSIGN_OR_RETURN(std::string cls, ctx.db->ClassOf(self));
        return Value(std::move(cls));
      });

  db.methods().Register(
      kObjectClass, "oidString",
      [](const MethodContext& ctx, Oid self,
         const std::vector<Value>& args) -> StatusOr<Value> {
        (void)ctx;
        if (!args.empty()) {
          return Status::InvalidArgument("oidString takes no arguments");
        }
        return Value(self.ToString());
      });

  return Status::OK();
}

}  // namespace sdms::oodb
