#include "oodb/object_store.h"

namespace sdms::oodb {

Status ObjectStore::Insert(DbObject obj) {
  Oid oid = obj.oid();
  if (!oid.valid()) return Status::InvalidArgument("cannot insert null OID");
  if (objects_.count(oid) > 0) {
    return Status::AlreadyExists("object exists: " + oid.ToString());
  }
  extents_[obj.class_name()].insert(oid);
  BumpOidWatermark(oid);
  objects_.emplace(oid, std::make_unique<DbObject>(std::move(obj)));
  return Status::OK();
}

Status ObjectStore::Remove(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  extents_[it->second->class_name()].erase(oid);
  objects_.erase(it);
  return Status::OK();
}

StatusOr<DbObject*> ObjectStore::Get(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  return it->second.get();
}

StatusOr<const DbObject*> ObjectStore::Get(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  return static_cast<const DbObject*>(it->second.get());
}

std::vector<Oid> ObjectStore::DirectExtent(const std::string& cls) const {
  std::vector<Oid> out;
  auto it = extents_.find(cls);
  if (it == extents_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

size_t ObjectStore::DirectExtentSize(const std::string& cls) const {
  auto it = extents_.find(cls);
  return it == extents_.end() ? 0 : it->second.size();
}

void ObjectStore::Clear() {
  objects_.clear();
  extents_.clear();
  next_oid_ = 1;
}

}  // namespace sdms::oodb
