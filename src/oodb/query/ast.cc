#include "oodb/query/ast.h"

namespace sdms::oodb::vql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kVarRef:
      return name;
    case ExprKind::kMethodCall: {
      std::string out = child->ToString() + " -> " + name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kAttrAccess:
      return child->ToString() + "." + name;
    case ExprKind::kBinary:
      return "(" + child->ToString() + " " + BinOpName(bin_op) + " " +
             rhs->ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnOp::kNot ? "NOT " + child->ToString()
                                 : "-" + child->ToString();
    case ExprKind::kListExpr: {
      std::string out = "[";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->name = name;
  out->bin_op = bin_op;
  out->un_op = un_op;
  if (child) out->child = child->Clone();
  if (rhs) out->rhs = rhs->Clone();
  for (const auto& a : args) out->args.push_back(a->Clone());
  return out;
}

std::string ParsedQuery::ToString() const {
  std::string out = "ACCESS ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i]->ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += ", ";
    out += bindings[i].var + " IN " + bindings[i].class_name;
  }
  if (where) out += " WHERE " + where->ToString();
  if (order_by) {
    out += " ORDER BY " + order_by->expr->ToString();
    if (order_by->descending) out += " DESC";
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::unique_ptr<Expr> MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> MakeVarRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->name = std::move(name);
  return e;
}

std::unique_ptr<Expr> MakeMethodCall(std::unique_ptr<Expr> recv,
                                     std::string name,
                                     std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kMethodCall;
  e->child = std::move(recv);
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> MakeAttrAccess(std::unique_ptr<Expr> recv,
                                     std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAttrAccess;
  e->child = std::move(recv);
  e->name = std::move(name);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->child = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

std::unique_ptr<Expr> MakeUnary(UnOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->child = std::move(operand);
  return e;
}

}  // namespace sdms::oodb::vql
