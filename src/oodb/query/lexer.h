#ifndef SDMS_OODB_QUERY_LEXER_H_
#define SDMS_OODB_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sdms::oodb::vql {

/// Token categories of the VQL lexer.
enum class TokenType {
  kIdent,     // names (keywords detected by the parser, case-insensitive)
  kInt,       // 42
  kReal,      // 0.6
  kString,    // 'WWW'
  kArrow,     // ->
  kEq,        // == or =
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kPlus,      // +
  kMinus,     // -
  kStar,      // *
  kSlash,     // /
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kDot,       // .
  kSemicolon, // ;
  kEnd,       // end of input
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type;
  std::string text;   // Raw text; string literals are unquoted.
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;
};

/// Tokenizes a VQL query string. Fails with ParseError on malformed
/// literals or unexpected characters.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sdms::oodb::vql

#endif  // SDMS_OODB_QUERY_LEXER_H_
