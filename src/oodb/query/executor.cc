#include "oodb/query/executor.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/obs/metrics.h"
#include "common/obs/profile.h"
#include "common/obs/stats.h"
#include "common/obs/trace.h"
#include "common/query_context.h"
#include "common/string_util.h"
#include "oodb/query/parser.h"

namespace sdms::oodb::vql {

namespace {

struct QueryMetrics {
  obs::Counter& runs = obs::GetCounter("oodb.query.runs");
  obs::Counter& errors = obs::GetCounter("oodb.query.errors");
  obs::Counter& rows = obs::GetCounter("oodb.query.rows_emitted");
  obs::Counter& bindings = obs::GetCounter("oodb.query.bindings_scanned");
  obs::Counter& index_lookups = obs::GetCounter("oodb.query.index_lookups");
  obs::Counter& partial_results = obs::GetCounter("oodb.query.partial_results");
  obs::Histogram& parse_us = obs::GetHistogram("oodb.query.parse_micros");
  obs::Histogram& plan_us = obs::GetHistogram("oodb.query.plan_micros");
  obs::Histogram& join_us = obs::GetHistogram("oodb.query.join_micros");
  obs::Histogram& run_us = obs::GetHistogram("oodb.query.run_micros");
};

QueryMetrics& Metrics() {
  static QueryMetrics* m = new QueryMetrics();
  return *m;
}

/// An index-usable equality: `var.attr == literal` (or the method form
/// `var -> getAttributeValue('attr') == literal`, and mirrored sides).
struct IndexableEq {
  std::string var;
  std::string attr;
  Value key;
};

/// Tries to interpret `e` as attribute access on a direct variable.
bool AsVarAttr(const Expr& e, std::string* var, std::string* attr) {
  if (e.kind == ExprKind::kAttrAccess &&
      e.child->kind == ExprKind::kVarRef) {
    *var = e.child->name;
    *attr = e.name;
    return true;
  }
  if (e.kind == ExprKind::kMethodCall && e.child->kind == ExprKind::kVarRef &&
      EqualsIgnoreCase(e.name, "getAttributeValue") && e.args.size() == 1 &&
      e.args[0]->kind == ExprKind::kLiteral &&
      e.args[0]->literal.is_string()) {
    *var = e.child->name;
    *attr = e.args[0]->literal.as_string();
    return true;
  }
  return false;
}

bool AsIndexableEq(const Expr& e, IndexableEq* out) {
  if (e.kind != ExprKind::kBinary || e.bin_op != BinOp::kEq) return false;
  const Expr* lhs = e.child.get();
  const Expr* rhs = e.rhs.get();
  for (int swap = 0; swap < 2; ++swap) {
    std::string var, attr;
    if (AsVarAttr(*lhs, &var, &attr) && rhs->kind == ExprKind::kLiteral) {
      out->var = std::move(var);
      out->attr = std::move(attr);
      out->key = rhs->literal;
      return true;
    }
    std::swap(lhs, rhs);
  }
  return false;
}

/// An index-usable range predicate: `var.attr <op> literal` with an
/// ordering operator (or the mirrored literal-first form).
struct IndexableRange {
  std::string var;
  std::string attr;
  std::optional<Value> lo;
  bool lo_inclusive = false;
  std::optional<Value> hi;
  bool hi_inclusive = false;
};

bool AsIndexableRange(const Expr& e, IndexableRange* out) {
  if (e.kind != ExprKind::kBinary) return false;
  BinOp op = e.bin_op;
  if (op != BinOp::kLt && op != BinOp::kLe && op != BinOp::kGt &&
      op != BinOp::kGe) {
    return false;
  }
  const Expr* lhs = e.child.get();
  const Expr* rhs = e.rhs.get();
  bool mirrored = false;
  std::string var, attr;
  if (AsVarAttr(*lhs, &var, &attr) && rhs->kind == ExprKind::kLiteral) {
    // var.attr <op> literal
  } else if (AsVarAttr(*rhs, &var, &attr) &&
             lhs->kind == ExprKind::kLiteral) {
    // literal <op> var.attr: flip the operator.
    mirrored = true;
    std::swap(lhs, rhs);
  } else {
    return false;
  }
  if (mirrored) {
    switch (op) {
      case BinOp::kLt:
        op = BinOp::kGt;
        break;
      case BinOp::kLe:
        op = BinOp::kGe;
        break;
      case BinOp::kGt:
        op = BinOp::kLt;
        break;
      default:
        op = BinOp::kLe;
        break;
    }
  }
  out->var = std::move(var);
  out->attr = std::move(attr);
  switch (op) {
    case BinOp::kGt:
      out->lo = rhs->literal;
      out->lo_inclusive = false;
      break;
    case BinOp::kGe:
      out->lo = rhs->literal;
      out->lo_inclusive = true;
      break;
    case BinOp::kLt:
      out->hi = rhs->literal;
      out->hi_inclusive = false;
      break;
    default:
      out->hi = rhs->literal;
      out->hi_inclusive = true;
      break;
  }
  return true;
}

}  // namespace

std::vector<const Expr*> SplitConjuncts(const Expr* where) {
  std::vector<const Expr*> out;
  if (where == nullptr) return out;
  if (where->kind == ExprKind::kBinary && where->bin_op == BinOp::kAnd) {
    auto l = SplitConjuncts(where->child.get());
    auto r = SplitConjuncts(where->rhs.get());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(where);
  return out;
}

void CollectVars(const Expr& expr, std::vector<std::string>& out) {
  switch (expr.kind) {
    case ExprKind::kVarRef:
      if (std::find(out.begin(), out.end(), expr.name) == out.end()) {
        out.push_back(expr.name);
      }
      return;
    case ExprKind::kLiteral:
      return;
    default:
      if (expr.child) CollectVars(*expr.child, out);
      if (expr.rhs) CollectVars(*expr.rhs, out);
      for (const auto& a : expr.args) CollectVars(*a, out);
      return;
  }
}

bool AllVarsBound(const Expr& expr, const std::vector<std::string>& bound) {
  std::vector<std::string> vars;
  CollectVars(expr, vars);
  for (const std::string& v : vars) {
    if (std::find(bound.begin(), bound.end(), v) == bound.end()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

struct QueryEngine::BindingPlan {
  Binding binding;
  /// Candidate OIDs (from index) or empty to scan the extent.
  std::optional<std::vector<Oid>> candidates;
  /// Single-variable conjuncts evaluated as soon as this var is bound.
  std::vector<const Expr*> filters;
  /// Join conjuncts evaluated at this depth (all vars bound here).
  std::vector<const Expr*> join_conjuncts;
  /// Planner's cardinality estimate (for reorder decisions).
  size_t estimate = 0;
};

StatusOr<std::vector<QueryEngine::BindingPlan>> QueryEngine::BuildPlan(
    const ParsedQuery& query) {
  obs::TraceSpan span("vql.plan");
  obs::ProfileStageScope stage("plan");
  std::vector<BindingPlan> plan;
  for (const Binding& b : query.bindings) {
    if (!db_->schema().HasClass(b.class_name)) {
      return Status::NotFound("unknown class in FROM: " + b.class_name);
    }
    BindingPlan bp;
    bp.binding = b;
    auto ov = candidate_overrides_.find(b.var);
    if (ov != candidate_overrides_.end()) {
      std::vector<Oid> sorted = ov->second;
      std::sort(sorted.begin(), sorted.end());
      bp.candidates = std::move(sorted);
      bp.estimate = bp.candidates->size();
    } else {
      bp.estimate = db_->Extent(b.class_name).size();
      // Planner sees the true extent size here — snapshot it for the
      // cost model.
      obs::StatisticsService::Instance().RecordExtentCardinality(
          b.class_name, bp.estimate);
    }
    plan.push_back(std::move(bp));
  }

  std::vector<const Expr*> conjuncts = SplitConjuncts(query.where.get());
  std::vector<const Expr*> remaining;

  // Index selection + single-variable filter classification.
  auto apply_candidates = [&](BindingPlan& bp, std::vector<Oid> hits) {
    ++stats_.index_lookups;
    std::sort(hits.begin(), hits.end());
    if (bp.candidates.has_value()) {
      // Intersect with any earlier index result on the same var.
      std::vector<Oid> merged;
      std::set_intersection(bp.candidates->begin(), bp.candidates->end(),
                            hits.begin(), hits.end(),
                            std::back_inserter(merged));
      bp.candidates = std::move(merged);
    } else {
      bp.candidates = std::move(hits);
    }
    bp.estimate = bp.candidates->size();
    // The conjunct is still re-checked as a filter afterwards, which
    // keeps the engine honest about index contents.
  };
  for (const Expr* c : conjuncts) {
    if (options_.use_indexes) {
      IndexableEq eq;
      IndexableRange range;
      if (AsIndexableEq(*c, &eq)) {
        for (BindingPlan& bp : plan) {
          if (bp.binding.var == eq.var &&
              db_->HasIndex(bp.binding.class_name, eq.attr)) {
            auto hits =
                db_->IndexLookup(bp.binding.class_name, eq.attr, eq.key);
            if (hits.ok()) apply_candidates(bp, std::move(*hits));
            break;
          }
        }
      } else if (AsIndexableRange(*c, &range)) {
        for (BindingPlan& bp : plan) {
          if (bp.binding.var == range.var &&
              db_->HasIndex(bp.binding.class_name, range.attr)) {
            auto hits = db_->IndexRange(bp.binding.class_name, range.attr,
                                        range.lo, range.lo_inclusive,
                                        range.hi, range.hi_inclusive);
            if (hits.ok()) apply_candidates(bp, std::move(*hits));
            break;
          }
        }
      }
    }
    remaining.push_back(c);
  }

  // Filter pushdown: single-variable conjuncts attach to their binding.
  std::vector<const Expr*> join_conjuncts;
  for (const Expr* c : remaining) {
    std::vector<std::string> vars;
    CollectVars(*c, vars);
    if (options_.pushdown_filters && vars.size() == 1) {
      bool attached = false;
      for (BindingPlan& bp : plan) {
        if (bp.binding.var == vars[0]) {
          bp.filters.push_back(c);
          attached = true;
          break;
        }
      }
      if (!attached) join_conjuncts.push_back(c);
    } else {
      join_conjuncts.push_back(c);
    }
  }

  // Binding reorder: cheapest candidate set first.
  if (options_.reorder_bindings) {
    std::stable_sort(plan.begin(), plan.end(),
                     [](const BindingPlan& a, const BindingPlan& b) {
                       return a.estimate < b.estimate;
                     });
  }

  // Assign join conjuncts to the earliest depth where all vars bound.
  std::vector<std::string> bound;
  for (BindingPlan& bp : plan) {
    bound.push_back(bp.binding.var);
    for (auto it = join_conjuncts.begin(); it != join_conjuncts.end();) {
      if (AllVarsBound(**it, bound)) {
        bp.join_conjuncts.push_back(*it);
        it = join_conjuncts.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!join_conjuncts.empty()) {
    // Conjuncts referencing unknown variables.
    std::vector<std::string> vars;
    CollectVars(*join_conjuncts.front(), vars);
    return Status::InvalidArgument("WHERE references unbound variable(s) in " +
                                   join_conjuncts.front()->ToString());
  }
  Metrics().plan_us.Record(static_cast<double>(span.ElapsedMicros()));
  return plan;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

StatusOr<Value> QueryEngine::Eval(const Expr& expr,
                                  const std::map<std::string, Value>& env) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kVarRef: {
      auto it = env.find(expr.name);
      if (it == env.end()) {
        return Status::InvalidArgument("unbound variable: " + expr.name);
      }
      return it->second;
    }
    case ExprKind::kAttrAccess: {
      SDMS_ASSIGN_OR_RETURN(Value recv, Eval(*expr.child, env));
      if (!recv.is_oid()) {
        return Status::TypeError("attribute access on non-object: " +
                                 expr.ToString());
      }
      return db_->GetAttribute(recv.as_oid(), expr.name);
    }
    case ExprKind::kMethodCall: {
      SDMS_ASSIGN_OR_RETURN(Value recv, Eval(*expr.child, env));
      if (!recv.is_oid()) {
        return Status::TypeError("method call on non-object: " +
                                 expr.ToString());
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        SDMS_ASSIGN_OR_RETURN(Value v, Eval(*a, env));
        args.push_back(std::move(v));
      }
      ++stats_.method_calls;
      return db_->Invoke(recv.as_oid(), expr.name, args);
    }
    case ExprKind::kListExpr: {
      ValueList list;
      list.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        SDMS_ASSIGN_OR_RETURN(Value v, Eval(*a, env));
        list.push_back(std::move(v));
      }
      return Value(std::move(list));
    }
    case ExprKind::kUnary: {
      SDMS_ASSIGN_OR_RETURN(Value v, Eval(*expr.child, env));
      if (expr.un_op == UnOp::kNot) return Value(!v.Truthy());
      SDMS_ASSIGN_OR_RETURN(double d, v.AsNumber());
      if (v.is_int()) return Value(-v.as_int());
      return Value(-d);
    }
    case ExprKind::kBinary: {
      // AND/OR short-circuit.
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        SDMS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.child, env));
        bool l = lhs.Truthy();
        if (expr.bin_op == BinOp::kAnd && !l) return Value(false);
        if (expr.bin_op == BinOp::kOr && l) return Value(true);
        SDMS_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.rhs, env));
        return Value(rhs.Truthy());
      }
      SDMS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.child, env));
      SDMS_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.rhs, env));
      switch (expr.bin_op) {
        case BinOp::kEq:
          return Value(lhs.Equals(rhs));
        case BinOp::kNe:
          return Value(!lhs.Equals(rhs));
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          // Comparisons involving null are false (unknown-as-false).
          if (lhs.is_null() || rhs.is_null()) return Value(false);
          auto cmp = lhs.Compare(rhs);
          if (!cmp.ok()) return cmp.status();
          int c = *cmp;
          switch (expr.bin_op) {
            case BinOp::kLt:
              return Value(c < 0);
            case BinOp::kLe:
              return Value(c <= 0);
            case BinOp::kGt:
              return Value(c > 0);
            default:
              return Value(c >= 0);
          }
        }
        case BinOp::kAdd: {
          if (lhs.is_string() || rhs.is_string()) {
            std::string l = lhs.is_string() ? lhs.as_string() : lhs.ToString();
            std::string r = rhs.is_string() ? rhs.as_string() : rhs.ToString();
            return Value(l + r);
          }
          if (lhs.is_int() && rhs.is_int()) {
            return Value(lhs.as_int() + rhs.as_int());
          }
          SDMS_ASSIGN_OR_RETURN(double a, lhs.AsNumber());
          SDMS_ASSIGN_OR_RETURN(double b, rhs.AsNumber());
          return Value(a + b);
        }
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv: {
          if (lhs.is_int() && rhs.is_int() && expr.bin_op != BinOp::kDiv) {
            int64_t a = lhs.as_int();
            int64_t b = rhs.as_int();
            return Value(expr.bin_op == BinOp::kSub ? a - b : a * b);
          }
          SDMS_ASSIGN_OR_RETURN(double a, lhs.AsNumber());
          SDMS_ASSIGN_OR_RETURN(double b, rhs.AsNumber());
          if (expr.bin_op == BinOp::kSub) return Value(a - b);
          if (expr.bin_op == BinOp::kMul) return Value(a * b);
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
        }
        default:
          return Status::Internal("unhandled binary op");
      }
    }
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<QueryResult> QueryEngine::Run(const std::string& vql) {
  obs::TraceSpan span("vql.parse");
  StatusOr<ParsedQuery> parsed = [&] {
    obs::ProfileStageScope stage("parse");
    return ParseQuery(vql);
  }();
  Metrics().parse_us.Record(static_cast<double>(span.ElapsedMicros()));
  if (!parsed.ok()) {
    Metrics().errors.Increment();
    return parsed.status();
  }
  return Run(*parsed);
}

StatusOr<std::string> QueryEngine::Explain(const std::string& vql) {
  SDMS_ASSIGN_OR_RETURN(ParsedQuery query, ParseQuery(vql));
  auto plan_or = BuildPlan(query);
  candidate_overrides_.clear();
  if (!plan_or.ok()) return plan_or.status();
  std::string out = "plan for: " + query.ToString() + "\n";
  int step = 0;
  for (const BindingPlan& bp : *plan_or) {
    out += StrFormat("%d. %s IN %s: ", ++step, bp.binding.var.c_str(),
                     bp.binding.class_name.c_str());
    if (bp.candidates.has_value()) {
      out += StrFormat("index/injected candidates (%zu objects)",
                       bp.candidates->size());
    } else {
      out += StrFormat("extent scan (%zu objects)", bp.estimate);
    }
    for (const Expr* f : bp.filters) {
      out += "\n     filter: " + f->ToString();
    }
    for (const Expr* jc : bp.join_conjuncts) {
      out += "\n     join:   " + jc->ToString();
    }
    out += "\n";
  }
  if (query.order_by != nullptr) {
    out += "sort: " + query.order_by->expr->ToString() +
           (query.order_by->descending ? " DESC" : " ASC") + "\n";
  }
  if (query.limit >= 0) {
    out += "limit: " + std::to_string(query.limit) + "\n";
  }
  return out;
}

StatusOr<QueryResult> QueryEngine::Run(const ParsedQuery& query) {
  obs::TraceSpan run_span("vql.run");
  QueryMetrics& metrics = Metrics();
  metrics.runs.Increment();
  stats_ = QueryStats{};
  QueryContext* ctx = QueryContext::Current();
  if (ctx != nullptr) {
    // A query whose deadline already passed (or that was cancelled
    // before starting) never reaches the prepare hooks or the join.
    Status pre = ctx->CheckStatus();
    if (!pre.ok() && !(ctx->allow_partial() && !pre.IsCancelled())) {
      candidate_overrides_.clear();
      metrics.errors.Increment();
      return pre;
    }
  }
  bool prepare_degraded = false;
  {
    obs::ProfileStageScope prepare_stage("prepare");
    for (const PrepareHook& hook : prepare_hooks_) {
      Status hook_status = hook(*db_, query);
      if (!hook_status.ok()) {
        // Prepare hooks are optimizations (buffer warmups); when the
        // deadline fires inside one and the query tolerates partial
        // answers, skip the warmup instead of failing the statement.
        if (ctx != nullptr && ctx->allow_partial() &&
            (hook_status.IsDeadlineExceeded() ||
             hook_status.IsResourceExhausted())) {
          prepare_degraded = true;
          break;
        }
        candidate_overrides_.clear();
        metrics.errors.Increment();
        return hook_status;
      }
    }
  }
  auto plan_or = BuildPlan(query);
  candidate_overrides_.clear();  // Overrides apply to this Run only.
  if (!plan_or.ok()) {
    metrics.errors.Increment();
    return plan_or.status();
  }
  std::vector<BindingPlan> plan = std::move(plan_or).value();

  QueryResult result;
  for (const auto& e : query.select) result.columns.push_back(e->ToString());

  std::map<std::string, Value> env;
  bool partial_stop = prepare_degraded;
  {
    obs::TraceSpan join_span("vql.join");
    obs::ProfileStageScope join_stage("join");
    Status join_status = RunJoin(query, plan, 0, env, result, &partial_stop);
    metrics.join_us.Record(static_cast<double>(join_span.ElapsedMicros()));
    obs::ProfileCount("tuples_considered", stats_.tuples_considered);
    obs::ProfileCount("method_calls", stats_.method_calls);
    if (!join_status.ok()) {
      metrics.errors.Increment();
      return join_status;
    }
  }
  if (partial_stop) {
    result.degraded = true;
    result.degraded_reason =
        ctx != nullptr && !ctx->StopStatus().ok()
            ? ctx->StopStatus().ToString()
            : "DeadlineExceeded: prepare-stage deadline";
    if (ctx != nullptr) ctx->NoteDegraded();
    metrics.partial_results.Increment();
  }

  // DISTINCT: keep the first row per distinct select-column tuple
  // (the hidden sort key, when present, follows the first occurrence).
  if (query.distinct && !result.rows.empty()) {
    std::set<std::string> seen;
    std::vector<std::vector<Value>> unique_rows;
    unique_rows.reserve(result.rows.size());
    for (auto& row : result.rows) {
      std::string key;
      for (size_t i = 0; i < query.select.size() && i < row.size(); ++i) {
        key += row[i].ToString();
        key.push_back('\x1f');
      }
      if (seen.insert(std::move(key)).second) {
        unique_rows.push_back(std::move(row));
      }
    }
    result.rows = std::move(unique_rows);
  }

  // ORDER BY: sort rows by a sort key computed per row. The key is
  // evaluated against the select expressions' environment, so it must
  // be one of the select expressions or an expression over constants;
  // to keep it general we re-evaluate with the captured env per row,
  // which requires storing envs. Instead we evaluate the key during
  // emission (appended as a hidden column) and strip it afterwards.
  if (query.order_by != nullptr && !result.rows.empty()) {
    size_t key_col = result.columns.size();  // hidden column index
    bool desc = query.order_by->descending;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
                       auto cmp = a[key_col].Compare(b[key_col]);
                       int c = cmp.ok() ? *cmp : 0;
                       return desc ? c > 0 : c < 0;
                     });
    for (auto& row : result.rows) row.pop_back();
  }
  if (query.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(query.limit)) {
    result.rows.resize(static_cast<size_t>(query.limit));
  }
  stats_.rows_emitted = result.rows.size();
  metrics.rows.Add(stats_.rows_emitted);
  metrics.bindings.Add(stats_.bindings_scanned);
  metrics.index_lookups.Add(stats_.index_lookups);
  metrics.run_us.Record(static_cast<double>(run_span.ElapsedMicros()));
  // Batch the per-run stats into the active profile so the stage tree
  // and the process-wide counters above move in lockstep.
  obs::ProfileCount("rows_emitted", stats_.rows_emitted);
  obs::ProfileCount("bindings_scanned", stats_.bindings_scanned);
  obs::ProfileCount("index_lookups", stats_.index_lookups);
  return result;
}

Status QueryEngine::RunJoin(const ParsedQuery& query,
                            const std::vector<BindingPlan>& plan, size_t depth,
                            std::map<std::string, Value>& env,
                            QueryResult& result, bool* partial_stop) {
  if (depth == plan.size()) {
    QueryContext* row_ctx = QueryContext::Current();
    if (row_ctx != nullptr) row_ctx->ChargeRows(1);
    return EmitRow(query, env, result);
  }
  const BindingPlan& bp = plan[depth];
  std::vector<Oid> candidates =
      bp.candidates.has_value()
          ? *bp.candidates
          : db_->Extent(bp.binding.class_name, /*include_subclasses=*/true);
  QueryContext* ctx = QueryContext::Current();
  for (Oid oid : candidates) {
    if (*partial_stop) break;
    if (ctx != nullptr && ctx->ShouldStop()) {
      // Cancellation always errors; deadline/budget stops degrade to a
      // partial result when the context allows it (mixed queries).
      if (ctx->allow_partial() &&
          ctx->stop_reason() != QueryContext::StopReason::kCancelled) {
        *partial_stop = true;
        break;
      }
      env.erase(bp.binding.var);
      return ctx->StopStatus();
    }
    if (!db_->store().Contains(oid)) continue;
    ++stats_.bindings_scanned;
    env[bp.binding.var] = Value(oid);
    bool pass = true;
    for (const Expr* f : bp.filters) {
      SDMS_ASSIGN_OR_RETURN(Value v, Eval(*f, env));
      if (!v.Truthy()) {
        pass = false;
        break;
      }
    }
    if (pass) {
      for (const Expr* jc : bp.join_conjuncts) {
        SDMS_ASSIGN_OR_RETURN(Value v, Eval(*jc, env));
        if (!v.Truthy()) {
          pass = false;
          break;
        }
      }
    }
    if (pass) {
      ++stats_.tuples_considered;
      SDMS_RETURN_IF_ERROR(
          RunJoin(query, plan, depth + 1, env, result, partial_stop));
    }
  }
  env.erase(bp.binding.var);
  return Status::OK();
}

Status QueryEngine::EmitRow(const ParsedQuery& query,
                            std::map<std::string, Value>& env,
                            QueryResult& result) {
  std::vector<Value> row;
  row.reserve(query.select.size() + 1);
  for (const auto& e : query.select) {
    SDMS_ASSIGN_OR_RETURN(Value v, Eval(*e, env));
    row.push_back(std::move(v));
  }
  if (query.order_by != nullptr) {
    SDMS_ASSIGN_OR_RETURN(Value key, Eval(*query.order_by->expr, env));
    row.push_back(std::move(key));  // Hidden sort key, stripped later.
  }
  result.rows.push_back(std::move(row));
  return Status::OK();
}

std::string QueryResult::ToTable(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  std::vector<std::vector<std::string>> cells;
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    std::vector<std::string> row;
    for (size_t i = 0; i < rows[r].size() && i < columns.size(); ++i) {
      row.push_back(rows[r][i].ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  auto add_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };
  add_row(columns);
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out += std::string(widths[i] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : cells) add_row(row);
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size() - max_rows) + " more rows)\n";
  }
  return out;
}

}  // namespace sdms::oodb::vql
