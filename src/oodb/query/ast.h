#ifndef SDMS_OODB_QUERY_AST_H_
#define SDMS_OODB_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "oodb/value.h"

namespace sdms::oodb::vql {

/// Expression node kinds of the VQL AST.
enum class ExprKind {
  kLiteral,     // 42, 0.6, 'WWW', TRUE, NULL
  kVarRef,      // p
  kMethodCall,  // p -> getIRSValue(coll, 'WWW')
  kAttrAccess,  // p.year
  kBinary,      // a AND b, a == b, a + b ...
  kUnary,       // NOT a, -a
  kListExpr,    // [e1, e2, ...]
};

/// Binary operators.
enum class BinOp {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

/// Unary operators.
enum class UnOp { kNot, kNeg };

/// Returns the VQL spelling of a binary operator.
const char* BinOpName(BinOp op);

/// One node of an expression tree. Plain struct (per style rules this
/// is a passive data carrier); ownership via unique_ptr children.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kVarRef / kMethodCall / kAttrAccess: name of variable, method or
  // attribute.
  std::string name;

  // kMethodCall / kAttrAccess receiver; kUnary operand; kBinary lhs.
  std::unique_ptr<Expr> child;

  // kBinary rhs.
  std::unique_ptr<Expr> rhs;

  // kMethodCall arguments; kListExpr elements.
  std::vector<std::unique_ptr<Expr>> args;

  // kBinary / kUnary operator.
  BinOp bin_op = BinOp::kAnd;
  UnOp un_op = UnOp::kNot;

  /// Renders the expression back to VQL-ish text (for plans & errors).
  std::string ToString() const;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;
};

/// One range variable: `p IN PARA`.
struct Binding {
  std::string var;
  std::string class_name;
};

/// Sort specification: `ORDER BY expr [DESC]`.
struct OrderBy {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

/// A parsed VQL query:
/// `ACCESS [DISTINCT] <select...> FROM <bindings...> [WHERE expr]
///  [ORDER BY expr [ASC|DESC]] [LIMIT n]`.
struct ParsedQuery {
  std::vector<std::unique_ptr<Expr>> select;
  std::vector<Binding> bindings;
  std::unique_ptr<Expr> where;  // may be null
  std::unique_ptr<OrderBy> order_by;  // may be null
  int64_t limit = -1;  // -1 = unlimited
  /// Deduplicate result rows on the select columns (first wins).
  bool distinct = false;

  std::string ToString() const;
};

// Convenience constructors used by the parser and by tests.
std::unique_ptr<Expr> MakeLiteral(Value v);
std::unique_ptr<Expr> MakeVarRef(std::string name);
std::unique_ptr<Expr> MakeMethodCall(std::unique_ptr<Expr> recv,
                                     std::string name,
                                     std::vector<std::unique_ptr<Expr>> args);
std::unique_ptr<Expr> MakeAttrAccess(std::unique_ptr<Expr> recv,
                                     std::string name);
std::unique_ptr<Expr> MakeBinary(BinOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs);
std::unique_ptr<Expr> MakeUnary(UnOp op, std::unique_ptr<Expr> operand);

}  // namespace sdms::oodb::vql

#endif  // SDMS_OODB_QUERY_AST_H_
