#ifndef SDMS_OODB_QUERY_PARSER_H_
#define SDMS_OODB_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "oodb/query/ast.h"

namespace sdms::oodb::vql {

/// Parses a full VQL query:
///   ACCESS e1, e2 FROM p IN PARA, d IN MMFDOC
///   WHERE <expr> [ORDER BY <expr> [ASC|DESC]] [LIMIT n] [;]
StatusOr<ParsedQuery> ParseQuery(const std::string& input);

/// Parses a bare expression (used for specification queries given as
/// predicates and for tests).
StatusOr<std::unique_ptr<Expr>> ParseExpression(const std::string& input);

}  // namespace sdms::oodb::vql

#endif  // SDMS_OODB_QUERY_PARSER_H_
