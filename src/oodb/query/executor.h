#ifndef SDMS_OODB_QUERY_EXECUTOR_H_
#define SDMS_OODB_QUERY_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "oodb/database.h"
#include "oodb/query/ast.h"

namespace sdms::oodb::vql {

/// Tabular result of a VQL query.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// True when the rows are a *partial* answer: the query's
  /// QueryContext allowed partial results (allow_partial) and its
  /// deadline or budget fired mid-join. Extends the coupling's
  /// stale-read flag convention (docs/robustness.md) to the VQL layer.
  bool degraded = false;
  /// Why the result is partial ("DeadlineExceeded: ...", ...).
  std::string degraded_reason;

  /// Pretty-prints as an aligned ASCII table (examples/benches).
  std::string ToTable(size_t max_rows = 50) const;
};

/// Counters exposed after each query; benches use them to show the
/// effect of optimizations (index use, binding reorder, IRS prefetch).
struct QueryStats {
  uint64_t bindings_scanned = 0;   // candidate objects enumerated
  uint64_t tuples_considered = 0;  // join tuples evaluated
  uint64_t method_calls = 0;       // VQL method invocations
  uint64_t index_lookups = 0;      // B-tree probes
  uint64_t rows_emitted = 0;
};

/// Hook invoked before evaluation with the parsed query; the coupling
/// layer uses it for semantic query optimization [AbF95]: it spots
/// `getIRSValue(coll, 'q')` conjuncts and warms the collection's IRS
/// result buffer with a single batched IRS call.
using PrepareHook = std::function<Status(Database&, const ParsedQuery&)>;

/// Evaluates VQL queries against a Database: parsing, optimization
/// (filter pushdown, index selection, binding reorder) and nested-loop
/// join evaluation with short-circuit predicates.
class QueryEngine {
 public:
  struct Options {
    bool use_indexes = true;
    bool reorder_bindings = true;
    bool pushdown_filters = true;
  };

  explicit QueryEngine(Database* db) : db_(db) {}

  Options& options() { return options_; }

  /// Registers a prepare hook (run in registration order).
  void AddPrepareHook(PrepareHook hook) {
    prepare_hooks_.push_back(std::move(hook));
  }

  /// Restricts the candidate set of range variable `var` for the *next*
  /// Run only (cleared afterwards). This is how the IRS-first mixed-
  /// query strategy (paper Section 4.5.3, alternative 2) feeds the
  /// IRS-selected objects into the database evaluation: the IRS
  /// restricts the search space, the DBMS verifies the structure
  /// conditions on those objects only.
  void SetCandidateOverride(const std::string& var, std::vector<Oid> oids) {
    candidate_overrides_[var] = std::move(oids);
  }

  /// Parses and runs `vql`.
  StatusOr<QueryResult> Run(const std::string& vql);

  /// Runs an already-parsed query.
  StatusOr<QueryResult> Run(const ParsedQuery& query);

  /// Renders the evaluation plan for `vql` without running it: binding
  /// order, candidate sources (extent scan / index lookup / injected
  /// candidates), pushed-down filters and join conjuncts.
  StatusOr<std::string> Explain(const std::string& vql);

  /// Evaluates a bare expression with variables bound to objects.
  StatusOr<Value> Eval(const Expr& expr,
                       const std::map<std::string, Value>& env);

  /// Stats of the most recent Run.
  const QueryStats& last_stats() const { return stats_; }

  Database* db() { return db_; }

 private:
  struct BindingPlan;

  StatusOr<std::vector<BindingPlan>> BuildPlan(const ParsedQuery& query);
  /// `partial_stop` is per-Run join state (not a member: the engine is
  /// externally synchronized but keeps no per-call mutable state beyond
  /// stats): set when the current QueryContext demands a stop that
  /// degrades to a partial result instead of an error.
  Status RunJoin(const ParsedQuery& query,
                 const std::vector<BindingPlan>& plan, size_t depth,
                 std::map<std::string, Value>& env, QueryResult& result,
                 bool* partial_stop);
  Status EmitRow(const ParsedQuery& query,
                 std::map<std::string, Value>& env, QueryResult& result);

  Database* db_;
  Options options_;
  std::vector<PrepareHook> prepare_hooks_;
  std::map<std::string, std::vector<Oid>> candidate_overrides_;
  QueryStats stats_;
};

// --- Expression analysis helpers (shared with the coupling layer) -----

/// Splits a WHERE tree into top-level AND conjuncts.
std::vector<const Expr*> SplitConjuncts(const Expr* where);

/// Collects the names of all range variables referenced by `expr`.
void CollectVars(const Expr& expr, std::vector<std::string>& out);

/// True if every variable used by `expr` is in `bound`.
bool AllVarsBound(const Expr& expr, const std::vector<std::string>& bound);

}  // namespace sdms::oodb::vql

#endif  // SDMS_OODB_QUERY_EXECUTOR_H_
