#include "oodb/query/lexer.h"

#include <cctype>

namespace sdms::oodb::vql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      out.push_back({TokenType::kIdent, input.substr(i, j - i), 0, 0.0, start});
      i = j;
      continue;
    }
    // Numbers: integer or real.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j + 1 < n && input[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      std::string text = input.substr(i, j - i);
      Token t;
      t.offset = start;
      t.text = text;
      if (is_real) {
        t.type = TokenType::kReal;
        try {
          t.real_value = std::stod(text);
        } catch (...) {
          return Status::ParseError("real literal out of range: " + text);
        }
      } else {
        t.type = TokenType::kInt;
        try {
          t.int_value = std::stoll(text);
        } catch (...) {
          return Status::ParseError("integer literal out of range: " + text);
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // String literals, single- or double-quoted; '' escapes a quote.
    if (c == '\'' || c == '"') {
      char quote = c;
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == quote) {
          if (j + 1 < n && input[j + 1] == quote) {
            text.push_back(quote);
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      out.push_back({TokenType::kString, std::move(text), 0, 0.0, start});
      i = j;
      continue;
    }
    // Operators & punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('-', '>')) {
      out.push_back({TokenType::kArrow, "->", 0, 0.0, start});
      i += 2;
    } else if (two('=', '=')) {
      out.push_back({TokenType::kEq, "==", 0, 0.0, start});
      i += 2;
    } else if (two('!', '=')) {
      out.push_back({TokenType::kNe, "!=", 0, 0.0, start});
      i += 2;
    } else if (two('<', '=')) {
      out.push_back({TokenType::kLe, "<=", 0, 0.0, start});
      i += 2;
    } else if (two('>', '=')) {
      out.push_back({TokenType::kGe, ">=", 0, 0.0, start});
      i += 2;
    } else if (two('<', '>')) {
      out.push_back({TokenType::kNe, "<>", 0, 0.0, start});
      i += 2;
    } else {
      TokenType type;
      switch (c) {
        case '=':
          type = TokenType::kEq;
          break;
        case '<':
          type = TokenType::kLt;
          break;
        case '>':
          type = TokenType::kGt;
          break;
        case '+':
          type = TokenType::kPlus;
          break;
        case '-':
          type = TokenType::kMinus;
          break;
        case '*':
          type = TokenType::kStar;
          break;
        case '/':
          type = TokenType::kSlash;
          break;
        case '(':
          type = TokenType::kLParen;
          break;
        case ')':
          type = TokenType::kRParen;
          break;
        case '[':
          type = TokenType::kLBracket;
          break;
        case ']':
          type = TokenType::kRBracket;
          break;
        case ',':
          type = TokenType::kComma;
          break;
        case '.':
          type = TokenType::kDot;
          break;
        case ';':
          type = TokenType::kSemicolon;
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(start));
      }
      out.push_back({type, std::string(1, c), 0, 0.0, start});
      ++i;
    }
  }
  out.push_back({TokenType::kEnd, "", 0, 0.0, n});
  return out;
}

}  // namespace sdms::oodb::vql
