#include "oodb/query/parser.h"

#include "common/string_util.h"
#include "oodb/query/lexer.h"

namespace sdms::oodb::vql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedQuery> ParseQuery();
  StatusOr<std::unique_ptr<Expr>> ParseBareExpression();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdent && EqualsIgnoreCase(Peek().text, kw);
  }
  bool ConsumeKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Consume(TokenType t) {
    if (Peek().type == t) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* what) {
    if (!Consume(t)) {
      return Status::ParseError(std::string("expected ") + what + " at '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().offset) + ")");
    }
    return Status::OK();
  }

  // Reserved words that terminate an expression context.
  bool AtClauseBoundary() const {
    return PeekKeyword("FROM") || PeekKeyword("WHERE") ||
           PeekKeyword("ORDER") || PeekKeyword("LIMIT") ||
           Peek().type == TokenType::kEnd ||
           Peek().type == TokenType::kSemicolon;
  }

  StatusOr<std::unique_ptr<Expr>> ParseExpr();     // OR level
  StatusOr<std::unique_ptr<Expr>> ParseAnd();
  StatusOr<std::unique_ptr<Expr>> ParseNot();
  StatusOr<std::unique_ptr<Expr>> ParseComparison();
  StatusOr<std::unique_ptr<Expr>> ParseAdditive();
  StatusOr<std::unique_ptr<Expr>> ParseMultiplicative();
  StatusOr<std::unique_ptr<Expr>> ParseUnary();
  StatusOr<std::unique_ptr<Expr>> ParsePostfix();
  StatusOr<std::unique_ptr<Expr>> ParsePrimary();
  StatusOr<std::vector<std::unique_ptr<Expr>>> ParseArgs(TokenType closer);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<ParsedQuery> Parser::ParseQuery() {
  ParsedQuery q;
  if (!ConsumeKeyword("ACCESS") && !ConsumeKeyword("SELECT")) {
    return Status::ParseError("query must start with ACCESS");
  }
  q.distinct = ConsumeKeyword("DISTINCT");
  // Select list.
  while (true) {
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    q.select.push_back(std::move(e));
    if (!Consume(TokenType::kComma)) break;
  }
  // FROM clause.
  if (!ConsumeKeyword("FROM")) {
    return Status::ParseError("expected FROM at '" + Peek().text + "'");
  }
  while (true) {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected range variable at '" + Peek().text +
                                "'");
    }
    Binding b;
    b.var = Advance().text;
    if (!ConsumeKeyword("IN")) {
      return Status::ParseError("expected IN after variable " + b.var);
    }
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected class name at '" + Peek().text +
                                "'");
    }
    b.class_name = Advance().text;
    q.bindings.push_back(std::move(b));
    if (!Consume(TokenType::kComma)) break;
  }
  // Optional WHERE.
  if (ConsumeKeyword("WHERE")) {
    SDMS_ASSIGN_OR_RETURN(q.where, ParseExpr());
  }
  // Optional ORDER BY.
  if (ConsumeKeyword("ORDER")) {
    if (!ConsumeKeyword("BY")) {
      return Status::ParseError("expected BY after ORDER");
    }
    auto ob = std::make_unique<OrderBy>();
    SDMS_ASSIGN_OR_RETURN(ob->expr, ParseExpr());
    if (ConsumeKeyword("DESC")) {
      ob->descending = true;
    } else {
      ConsumeKeyword("ASC");
    }
    q.order_by = std::move(ob);
  }
  // Optional LIMIT.
  if (ConsumeKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInt) {
      return Status::ParseError("expected integer after LIMIT");
    }
    q.limit = Advance().int_value;
  }
  Consume(TokenType::kSemicolon);
  if (!AtEnd()) {
    return Status::ParseError("trailing input at '" + Peek().text + "'");
  }
  return q;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseBareExpression() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
  Consume(TokenType::kSemicolon);
  if (!AtEnd()) {
    return Status::ParseError("trailing input at '" + Peek().text + "'");
  }
  return e;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseExpr() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
  while (PeekKeyword("OR")) {
    Advance();
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
    lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseAnd() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
  while (PeekKeyword("AND")) {
    Advance();
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
    lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (ConsumeKeyword("NOT")) {
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseNot());
    return MakeUnary(UnOp::kNot, std::move(e));
  }
  return ParseComparison();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseComparison() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
  BinOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinOp::kEq;
      break;
    case TokenType::kNe:
      op = BinOp::kNe;
      break;
    case TokenType::kLt:
      op = BinOp::kLt;
      break;
    case TokenType::kLe:
      op = BinOp::kLe;
      break;
    case TokenType::kGt:
      op = BinOp::kGt;
      break;
    case TokenType::kGe:
      op = BinOp::kGe;
      break;
    default:
      return lhs;
  }
  Advance();
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
  return MakeBinary(op, std::move(lhs), std::move(rhs));
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
  while (Peek().type == TokenType::kPlus ||
         Peek().type == TokenType::kMinus) {
    BinOp op = Peek().type == TokenType::kPlus ? BinOp::kAdd : BinOp::kSub;
    Advance();
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
  while (Peek().type == TokenType::kStar ||
         Peek().type == TokenType::kSlash) {
    BinOp op = Peek().type == TokenType::kStar ? BinOp::kMul : BinOp::kDiv;
    Advance();
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (Consume(TokenType::kMinus)) {
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseUnary());
    return MakeUnary(UnOp::kNeg, std::move(e));
  }
  return ParsePostfix();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParsePostfix() {
  SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParsePrimary());
  while (true) {
    if (Consume(TokenType::kArrow)) {
      if (Peek().type != TokenType::kIdent) {
        return Status::ParseError("expected method name after ->");
      }
      std::string name = Advance().text;
      SDMS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      SDMS_ASSIGN_OR_RETURN(auto args, ParseArgs(TokenType::kRParen));
      e = MakeMethodCall(std::move(e), std::move(name), std::move(args));
    } else if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdent) {
        return Status::ParseError("expected attribute name after '.'");
      }
      e = MakeAttrAccess(std::move(e), Advance().text);
    } else {
      break;
    }
  }
  return e;
}

StatusOr<std::vector<std::unique_ptr<Expr>>> Parser::ParseArgs(
    TokenType closer) {
  std::vector<std::unique_ptr<Expr>> args;
  if (Consume(closer)) return args;
  while (true) {
    SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    args.push_back(std::move(e));
    if (Consume(closer)) break;
    SDMS_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
  }
  return args;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInt: {
      Advance();
      return MakeLiteral(Value(t.int_value));
    }
    case TokenType::kReal: {
      Advance();
      return MakeLiteral(Value(t.real_value));
    }
    case TokenType::kString: {
      Advance();
      return MakeLiteral(Value(t.text));
    }
    case TokenType::kLParen: {
      Advance();
      SDMS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      SDMS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kLBracket: {
      Advance();
      SDMS_ASSIGN_OR_RETURN(auto args, ParseArgs(TokenType::kRBracket));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kListExpr;
      e->args = std::move(args);
      return StatusOr<std::unique_ptr<Expr>>(std::move(e));
    }
    case TokenType::kIdent: {
      if (EqualsIgnoreCase(t.text, "TRUE")) {
        Advance();
        return MakeLiteral(Value(true));
      }
      if (EqualsIgnoreCase(t.text, "FALSE")) {
        Advance();
        return MakeLiteral(Value(false));
      }
      if (EqualsIgnoreCase(t.text, "NULL")) {
        Advance();
        return MakeLiteral(Value());
      }
      Advance();
      return MakeVarRef(t.text);
    }
    default:
      return Status::ParseError("unexpected token '" + t.text +
                                "' at offset " + std::to_string(t.offset));
  }
}

}  // namespace

StatusOr<ParsedQuery> ParseQuery(const std::string& input) {
  SDMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseQuery();
}

StatusOr<std::unique_ptr<Expr>> ParseExpression(const std::string& input) {
  SDMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseBareExpression();
}

}  // namespace sdms::oodb::vql
