#include "oodb/object.h"

namespace sdms::oodb {

StatusOr<Value> DbObject::Get(const std::string& attr) const {
  auto it = attrs_.find(attr);
  if (it == attrs_.end()) {
    return Status::NotFound("attribute '" + attr + "' not set on " +
                            oid_.ToString());
  }
  return it->second;
}

Value DbObject::GetOr(const std::string& attr, Value fallback) const {
  auto it = attrs_.find(attr);
  if (it == attrs_.end()) return fallback;
  return it->second;
}

std::string DbObject::ToString() const {
  std::string out = class_name_ + "(" + oid_.ToString() + "){";
  bool first = true;
  for (const auto& [k, v] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += k + ": " + v.ToString();
  }
  out += "}";
  return out;
}

}  // namespace sdms::oodb
