#include "oodb/storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/fault/fault.h"
#include "common/file_util.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "oodb/storage/serializer.h"

namespace sdms::oodb {

namespace {

struct WalMetrics {
  obs::Counter& appends = obs::GetCounter("oodb.wal.appends");
  obs::Counter& bytes = obs::GetCounter("oodb.wal.bytes");
  obs::Counter& syncs = obs::GetCounter("oodb.wal.syncs");
  obs::Histogram& sync_us = obs::GetHistogram("oodb.wal.sync_micros");
};

WalMetrics& Metrics() {
  static WalMetrics* m = new WalMetrics();
  return *m;
}

void PutFixed32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

Wal::~Wal() { Close(); }

Status Wal::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

Status Wal::Append(std::string_view payload) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  SDMS_RETURN_IF_ERROR(fault::InjectFault("wal.append"));
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutFixed32(frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(frame, Crc32(payload));
  frame.append(payload.data(), payload.size());
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IoError("WAL write failed");
  }
  Metrics().appends.Increment();
  Metrics().bytes.Add(frame.size());
  return Status::OK();
}

Status Wal::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  obs::TraceSpan span("wal.sync");
  SDMS_RETURN_IF_ERROR(fault::InjectFault("wal.sync"));
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  // Durability: fflush only hands the frames to the OS; a power cut
  // can still lose them. fsync on every commit unless the bench
  // escape hatch SDMS_NO_FSYNC is set.
  if (FsyncEnabled() && ::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed: " +
                           std::string(std::strerror(errno)));
  }
  Metrics().syncs.Increment();
  Metrics().sync_us.Record(static_cast<double>(span.ElapsedMicros()));
  return Status::OK();
}

Status Wal::AppendDurable(std::string_view payload) {
  SDMS_RETURN_IF_ERROR(Append(payload));
  return Sync();
}

void Wal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status Wal::Truncate() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot truncate WAL " + path_);
  }
  return Status::OK();
}

Status Wal::ReplaceAtomic(const std::vector<std::string>& payloads) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::string content;
  for (const std::string& payload : payloads) {
    PutFixed32(content, static_cast<uint32_t>(payload.size()));
    PutFixed32(content, Crc32(payload));
    content.append(payload);
  }
  // Close before the rename so the stale handle never writes past it;
  // on any failure reopen in append mode to restore the class
  // invariant (the old file if the rename did not happen, the new one
  // if it did).
  std::fclose(file_);
  file_ = nullptr;
  Status status = WriteFileAtomic(path_, content);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot reopen WAL " + path_ + ": " +
                           std::strerror(errno));
  }
  Metrics().bytes.Add(content.size());
  return status;
}

Status Wal::Replay(const std::string& path,
                   const std::function<Status(std::string_view)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // No log yet: nothing to replay.
  std::vector<char> header(8);
  std::string payload;
  Status status = Status::OK();
  while (true) {
    size_t got = std::fread(header.data(), 1, 8, f);
    if (got < 8) break;  // Clean end or torn header: stop.
    uint32_t len = GetFixed32(header.data());
    uint32_t crc = GetFixed32(header.data() + 4);
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) break;  // Torn record.
    if (Crc32(payload) != crc) break;  // Corrupt tail: stop replay.
    status = fn(payload);
    if (!status.ok()) break;
  }
  std::fclose(f);
  return status;
}

}  // namespace sdms::oodb
